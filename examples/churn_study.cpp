// Example: open-market (churn) study — paper Sec. VI-E.
//
// Peers arrive with fresh credits and leave with whatever they hold, so the
// market is an open Jackson network. The example measures how peer lifespan
// shapes inequality, and cross-checks the model-level intuition with an
// analytic open-network solution.
#include <iostream>

#include "core/market.hpp"
#include "queueing/open_network.hpp"
#include "util/table.hpp"

namespace {

creditflow::core::MarketReport run_churn(double arrival_rate,
                                         double mean_lifespan) {
  using namespace creditflow;
  core::MarketConfig cfg;
  cfg.protocol.initial_peers = static_cast<std::size_t>(
      std::max(100.0, arrival_rate * mean_lifespan));
  cfg.protocol.max_peers = cfg.protocol.initial_peers * 2 + 128;
  cfg.protocol.initial_credits = 100;
  cfg.protocol.seed = 31;
  cfg.protocol.heterogeneity.spend_rate_cv = 0.3;
  cfg.protocol.churn.enabled = true;
  cfg.protocol.churn.arrival_rate = arrival_rate;
  cfg.protocol.churn.mean_lifespan = mean_lifespan;
  cfg.horizon = 5000.0;
  cfg.snapshot_interval = 250.0;
  core::CreditMarket market(cfg);
  return market.run();
}

}  // namespace

int main() {
  using namespace creditflow;
  std::cout << "Peer churn vs credit inequality (open market, c=100)...\n\n";

  util::ConsoleTable table("lifespan sweep at arrival rate 1 peer/s");
  table.set_header({"mean_lifespan_s", "expected_size", "gini",
                    "arrivals", "departures"});
  for (const double lifespan : {250.0, 500.0, 1000.0}) {
    const auto r = run_churn(1.0, lifespan);
    table.add_row({lifespan, lifespan * 1.0, r.converged_gini(),
                   static_cast<std::int64_t>(r.churn_arrivals),
                   static_cast<std::int64_t>(r.churn_departures)});
  }
  table.print();
  std::cout << "\nLonger-lived peers accumulate for longer: the Gini grows "
               "with lifespan, yet\nstays below a static overlay's level — "
               "both paper findings.\n\n";

  // Model-level intuition: an open Jackson network where every queue also
  // "leaks" jobs (departing peers). Higher leak (shorter lifespans) lowers
  // every queue's utilization and with it the stationary inequality.
  util::ConsoleTable model("open Jackson model: leak probability sweep");
  model.set_header({"leak_per_hop", "rho", "expected_wealth",
                    "p_bankrupt"});
  for (const double leak : {0.05, 0.1, 0.2, 0.4}) {
    queueing::TransferMatrix p(2);
    // Two symmetric peers trading with each other, leaking `leak` per hop
    // (total traffic λ = γ/leak); external injection fixed at 0.05/s.
    p.set_row(0, {{1, 1.0 - leak}});
    p.set_row(1, {{0, 1.0 - leak}});
    const queueing::OpenNetwork net(p, {0.05, 0.05}, {1.2, 1.2});
    model.add_row({leak, net.solution().rho[0], net.expected_wealth(0),
                   net.empty_probability(0)});
  }
  model.print();
  std::cout << "\nShorter effective residence (larger leak) -> lower load "
               "and a lighter wealth\ntail, mirroring the simulated "
               "lifespan sweep.\n";
  return 0;
}
