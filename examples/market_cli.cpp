// market_cli — run a custom credit market, a named scenario, or a full
// parameter sweep from the command line.
//
// Single run:
//   market_cli [--scenario NAME|FILE] [--set key=value]... [legacy flags]
//
// Sweep (any --sweep axis or --seeds > 1 switches modes):
//   market_cli --scenario fig09_taxation
//              --sweep tax.threshold=10:120:5 --sweep tax.rate=0.1,0.2
//              --seeds 4 --jobs 0 --out fig09_sweep.csv
//
// Sweeps expand the cartesian grid of all axes, replicate each point with
// independent derived RNG streams, and run everything on a thread pool
// (--jobs 0 = all cores). Aggregated mean ± CI rows render to the console
// and, with --out, land as CSV (or JSON with --json); --runs-out writes the
// raw per-run rows. Outputs are byte-identical for any --jobs value.
//
// Prints the market report (single-run mode), optionally the Gini chart,
// and (with --trace) the sustainability analyzer's verdict on the
// empirical Table I mapping. Exit code 0 on success/conserved ledger, 2 on
// a conservation violation or failed sweep runs.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/analyzer.hpp"
#include "core/market.hpp"
#include "scenario/scenario.hpp"
#include "util/assert.hpp"
#include "util/chart.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "scenario selection:\n"
      << "  --scenario NAME|FILE named preset (see --list-scenarios) or a\n"
      << "                       spec file saved with --print-spec\n"
      << "  --list-scenarios     list the built-in presets and exit\n"
      << "  --print-spec         print the effective spec and exit\n"
      << "  --set key=value      override any scenario parameter\n"
      << "sweep mode:\n"
      << "  --sweep key=SPEC     add a grid axis; SPEC is lo:hi:step,\n"
      << "                       a,b,c or a single value (repeatable)\n"
      << "  --seeds N            replications per grid point (default 1)\n"
      << "  --jobs N             worker threads, 0 = all cores (default 0)\n"
      << "  --out FILE           write aggregated rows (CSV, or JSON\n"
      << "                       with --json)\n"
      << "  --runs-out FILE      write raw per-run rows as CSV\n"
      << "  --json               aggregate output as JSON instead of CSV\n"
      << "  --quiet              suppress per-run progress lines\n"
      << "single-run convenience flags (aliases of --set):\n"
      << "  --peers N --credits C --horizon S --seed K\n"
      << "  --pricing uniform|poisson|perseller|linear\n"
      << "  --spend-cv X --upload-cv X\n"
      << "  --tax RATE THRESH    enable income taxation\n"
      << "  --dynamic M          dynamic spending with threshold m\n"
      << "  --churn RATE LIFE    open market: arrivals/s, mean lifespan s\n"
      << "  --inject INT AMT     mint AMT credits/peer every INT seconds\n"
      << "  --condensed          the Fig. 1 no-safeguards configuration\n"
      << "  --trace              enable trace + analyzer verdict\n"
      << "  --chart              render the Gini(t) chart\n";
  std::exit(64);
}

double parse_double(const char* s, const char* argv0) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s) usage(argv0);
  return v;
}

void apply_or_die(creditflow::scenario::ScenarioSpec& spec,
                  const std::string& key, double value, const char* argv0) {
  if (!spec.set(key, value)) {
    std::cerr << "unknown parameter: " << key << "\n";
    usage(argv0);
  }
}

creditflow::scenario::ScenarioSpec load_scenario(const std::string& name) {
  using creditflow::scenario::ScenarioRegistry;
  using creditflow::scenario::ScenarioSpec;
  if (const ScenarioSpec* spec = ScenarioRegistry::builtin().find(name)) {
    return *spec;
  }
  std::ifstream in(name);
  if (in) {
    std::ostringstream text;
    text << in.rdbuf();
    return ScenarioSpec::parse(text.str());
  }
  std::cerr << "unknown scenario (and no such spec file): " << name << "\n"
            << "available presets:\n";
  for (const auto& known : ScenarioRegistry::builtin().names()) {
    std::cerr << "  " << known << "\n";
  }
  std::exit(64);
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  if (!out) {
    std::cerr << "failed to write " << path << "\n";
    return false;
  }
  return true;
}

int run_sweep(const creditflow::scenario::ScenarioSpec& spec,
              creditflow::scenario::SweepSpec sweep, std::size_t jobs,
              const std::string& out_path, const std::string& runs_out_path,
              bool json, bool quiet) {
  using namespace creditflow;
  std::cerr << "sweep: " << sweep.num_points() << " grid points x "
            << sweep.seeds << " seeds = " << sweep.num_runs()
            << " runs (base scenario " << spec.name << ")\n";

  scenario::SweepRunner::Options options;
  options.jobs = jobs;
  options.keep_reports = false;
  if (!quiet) {
    const std::size_t total = sweep.num_runs();
    std::size_t done = 0;
    options.on_result = [&done, total](const scenario::RunResult& r) {
      ++done;
      std::cerr << "[" << done << "/" << total << "] run " << r.run_index;
      if (!r.error.empty()) {
        std::cerr << " FAILED: " << r.error;
      } else {
        std::cerr << " gini=" << r.metric("converged_gini");
      }
      std::cerr << "\n";
    };
  }

  scenario::SweepRunner runner(spec, std::move(sweep), std::move(options));
  scenario::ResultSink sink;
  sink.add_all(runner.run());

  std::size_t failures = 0;
  for (const auto& run : sink.runs()) {
    if (!run.error.empty()) ++failures;
  }

  const std::vector<std::string> metrics = {
      "converged_gini", "mean_buffer_fill", "exchange_efficiency",
      "mean_balance",   "bankrupt_fraction"};
  sink.aggregate_table("sweep results — " + spec.name, metrics).print();

  if (!out_path.empty()) {
    const std::string payload =
        json ? sink.aggregate_json() : sink.aggregate_csv();
    if (!write_file(out_path, payload)) return 2;
    std::cout << "[out] " << out_path << "\n";
  }
  if (!runs_out_path.empty()) {
    if (!write_file(runs_out_path, sink.runs_csv())) return 2;
    std::cout << "[runs] " << runs_out_path << "\n";
  }
  if (failures > 0) {
    std::cerr << failures << " run(s) failed\n";
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace creditflow;

  // The legacy default market; --scenario replaces the whole spec.
  scenario::ScenarioSpec spec;
  spec.name = "custom";
  spec.config.protocol.initial_peers = 300;
  spec.config.protocol.max_peers = 300;
  spec.config.protocol.initial_credits = 100;
  spec.config.protocol.seed = 2012;
  spec.config.horizon = 5000.0;
  spec.config.snapshot_interval = 125.0;

  scenario::SweepSpec sweep;
  std::size_t jobs = 0;
  std::string out_path;
  std::string runs_out_path;
  bool json = false;
  bool quiet = false;
  bool want_chart = false;
  bool print_spec = false;

  bool spec_overridden = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](int more = 1) {
      if (i + more >= argc) usage(argv[0]);
      return argv[++i];
    };
    auto set_param = [&](const std::string& key, double value) {
      spec_overridden = true;
      apply_or_die(spec, key, value, argv[0]);
    };
    if (arg == "--scenario") {
      if (spec_overridden) {
        // Loading a scenario replaces the whole spec; silently dropping
        // the overrides that came before it would run the wrong market.
        std::cerr << "--scenario must come before --set and other "
                     "parameter flags\n";
        return 64;
      }
      try {
        spec = load_scenario(next());
      } catch (const util::PreconditionError& e) {
        std::cerr << e.what() << "\n";  // malformed spec file
        return 64;
      }
    } else if (arg == "--list-scenarios") {
      for (const auto& name : scenario::ScenarioRegistry::builtin().names()) {
        const auto* s = scenario::ScenarioRegistry::builtin().find(name);
        std::cout << name << "\n    " << s->description << "\n";
      }
      return 0;
    } else if (arg == "--print-spec") {
      print_spec = true;
    } else if (arg == "--set") {
      const std::string kv = next();
      const auto eq = kv.find('=');
      if (eq == std::string::npos) usage(argv[0]);
      set_param(kv.substr(0, eq), parse_double(kv.c_str() + eq + 1, argv[0]));
    } else if (arg == "--sweep") {
      try {
        sweep.axes.push_back(scenario::SweepAxis::parse(next()));
      } catch (const util::PreconditionError& e) {
        std::cerr << e.what() << "\n";
        return 64;
      }
    } else if (arg == "--seeds") {
      sweep.seeds =
          static_cast<std::size_t>(parse_double(next(), argv[0]));
      if (sweep.seeds == 0) usage(argv[0]);
    } else if (arg == "--jobs") {
      jobs = static_cast<std::size_t>(parse_double(next(), argv[0]));
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--runs-out") {
      runs_out_path = next();
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--peers") {
      const double v = parse_double(next(), argv[0]);
      set_param("peers", v);
      set_param("max_peers", v);
    } else if (arg == "--credits") {
      set_param("credits", parse_double(next(), argv[0]));
    } else if (arg == "--horizon") {
      const double h = parse_double(next(), argv[0]);
      set_param("horizon", h);
      set_param("snapshot_interval", h / 40.0);
    } else if (arg == "--seed") {
      set_param("seed", parse_double(next(), argv[0]));
    } else if (arg == "--pricing") {
      const std::string name = next();
      double kind = -1;
      if (name == "uniform") kind = 0;
      else if (name == "poisson") kind = 1;
      else if (name == "perseller") kind = 2;
      else if (name == "linear") kind = 3;
      else usage(argv[0]);
      set_param("pricing.kind", kind);
    } else if (arg == "--spend-cv") {
      set_param("spend_cv", parse_double(next(), argv[0]));
    } else if (arg == "--upload-cv") {
      set_param("upload_cv", parse_double(next(), argv[0]));
    } else if (arg == "--tax") {
      set_param("tax.enabled", 1);
      set_param("tax.rate", parse_double(next(2), argv[0]));
      set_param("tax.threshold", parse_double(next(), argv[0]));
    } else if (arg == "--dynamic") {
      set_param("spending.dynamic", 1);
      set_param("spending.threshold", parse_double(next(), argv[0]));
    } else if (arg == "--churn") {
      set_param("churn.enabled", 1);
      set_param("churn.arrival_rate", parse_double(next(2), argv[0]));
      set_param("churn.mean_lifespan", parse_double(next(), argv[0]));
      set_param("max_peers",
                static_cast<double>(
                    spec.config.protocol.initial_peers * 2 + 256));
    } else if (arg == "--inject") {
      set_param("inject.enabled", 1);
      set_param("inject.interval", parse_double(next(2), argv[0]));
      set_param("inject.amount", parse_double(next(), argv[0]));
    } else if (arg == "--condensed") {
      set_param("upload_capacity", 8.0);
      set_param("seller_choice", 1);
      set_param("reserve_credits", 0.0);
      set_param("deficit_seeding", 0);
      set_param("pricing.kind", 1);
    } else if (arg == "--trace") {
      set_param("trace", 1);
    } else if (arg == "--chart") {
      want_chart = true;
    } else {
      usage(argv[0]);
    }
  }

  if (print_spec) {
    std::cout << spec.serialize();
    return 0;
  }

  if (!sweep.axes.empty() || sweep.seeds > 1) {
    return run_sweep(spec, std::move(sweep), jobs, out_path, runs_out_path,
                     json, quiet);
  }

  // ---- Single-run mode (the original market_cli behavior). --------------
  core::CreditMarket market(spec.materialize());
  const auto report = market.run();
  const auto& cfg = market.config();

  std::cout << "== market report ==\n"
            << report.summary() << "\n"
            << "final wealth: mean=" << report.final_wealth.mean
            << " median=" << report.final_wealth.median
            << " gini=" << report.final_wealth.gini
            << " top10=" << report.final_wealth.top10_share
            << " bankrupt=" << report.final_wealth.bankrupt_fraction << "\n"
            << "buffer fill: " << report.mean_buffer_fill.last_value()
            << "  alive peers: " << report.alive_peers.last_value() << "\n";
  if (cfg.protocol.tax.enabled) {
    std::cout << "tax: collected=" << report.tax_collected
              << " redistributed=" << report.tax_redistributed << "\n";
  }
  if (cfg.protocol.churn.enabled) {
    std::cout << "churn: arrivals=" << report.churn_arrivals
              << " departures=" << report.churn_departures << "\n";
  }

  if (want_chart && !report.gini_balances.empty()) {
    util::ChartOptions opts;
    opts.title = "Gini of balances over time";
    std::cout << "\n"
              << util::render_chart({{"gini", &report.gini_balances}}, opts);
  }

  if (cfg.enable_trace) {
    const auto verdict = core::analyze_market(market.empirical_mapping());
    std::cout << "\n== sustainability verdict ==\n"
              << "equilibrium exists: "
              << (verdict.equilibrium_exists ? "yes" : "no")
              << " (residual " << verdict.equilibrium_residual << ")\n"
              << "utilization symmetric: "
              << (verdict.symmetric_utilization ? "yes" : "no") << "\n"
              << "threshold T: "
              << (verdict.condensation.threshold_finite
                      ? std::to_string(verdict.condensation.threshold)
                      : std::string("+inf"))
              << "  c=" << verdict.condensation.average_wealth << "\n"
              << "condensation predicted: "
              << (verdict.condensation.condensation_predicted ? "YES" : "no")
              << "\n"
              << "model equilibrium gini: " << verdict.predicted_gini
              << "  efficiency exact/eq9: " << verdict.efficiency_exact
              << "/" << verdict.efficiency_eq9 << "\n";
  }
  return report.ledger_conserved ? 0 : 2;
}
