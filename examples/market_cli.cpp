// market_cli — run a custom credit market from the command line.
//
//   market_cli [--peers N] [--credits C] [--horizon S] [--seed K]
//              [--pricing uniform|poisson|perseller|linear]
//              [--spend-cv X] [--upload-cv X]
//              [--tax RATE THRESHOLD] [--dynamic M]
//              [--churn ARRIVAL LIFESPAN] [--inject INTERVAL AMOUNT]
//              [--condensed] [--trace] [--chart]
//
// Prints the market report, optionally the Gini evolution chart, and (with
// --trace) the sustainability analyzer's verdict on the empirical Table I
// mapping. Exit code 0 on a conserved ledger, 2 otherwise.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/analyzer.hpp"
#include "core/market.hpp"
#include "util/chart.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --peers N            population (default 300)\n"
      << "  --credits C          initial credits per peer (default 100)\n"
      << "  --horizon S          simulated seconds (default 5000)\n"
      << "  --seed K             RNG seed (default 2012)\n"
      << "  --pricing NAME       uniform|poisson|perseller|linear\n"
      << "  --spend-cv X         lognormal CV of spending rates (asymmetry)\n"
      << "  --upload-cv X        lognormal CV of upload capacities\n"
      << "  --tax RATE THRESH    enable income taxation\n"
      << "  --dynamic M          dynamic spending with threshold m\n"
      << "  --churn RATE LIFE    open market: arrivals/s, mean lifespan s\n"
      << "  --inject INT AMT     mint AMT credits/peer every INT seconds\n"
      << "  --condensed          the Fig. 1 no-safeguards configuration\n"
      << "  --trace              enable trace + analyzer verdict\n"
      << "  --chart              render the Gini(t) chart\n";
  std::exit(64);
}

double parse_double(const char* s, const char* argv0) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s) usage(argv0);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace creditflow;
  core::MarketConfig cfg;
  cfg.protocol.initial_peers = 300;
  cfg.protocol.max_peers = 300;
  cfg.protocol.initial_credits = 100;
  cfg.protocol.seed = 2012;
  cfg.horizon = 5000.0;
  cfg.snapshot_interval = 125.0;
  bool want_chart = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](int more = 1) {
      if (i + more >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--peers") {
      cfg.protocol.initial_peers =
          static_cast<std::size_t>(parse_double(next(), argv[0]));
      cfg.protocol.max_peers = cfg.protocol.initial_peers;
    } else if (arg == "--credits") {
      cfg.protocol.initial_credits =
          static_cast<p2p::Credits>(parse_double(next(), argv[0]));
    } else if (arg == "--horizon") {
      cfg.horizon = parse_double(next(), argv[0]);
      cfg.snapshot_interval = cfg.horizon / 40.0;
    } else if (arg == "--seed") {
      cfg.protocol.seed =
          static_cast<std::uint64_t>(parse_double(next(), argv[0]));
    } else if (arg == "--pricing") {
      const std::string name = next();
      if (name == "uniform") {
        cfg.protocol.pricing.kind = econ::PricingKind::kUniform;
      } else if (name == "poisson") {
        cfg.protocol.pricing.kind = econ::PricingKind::kPoisson;
      } else if (name == "perseller") {
        cfg.protocol.pricing.kind = econ::PricingKind::kPerSeller;
      } else if (name == "linear") {
        cfg.protocol.pricing.kind = econ::PricingKind::kLinearSize;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--spend-cv") {
      cfg.protocol.heterogeneity.spend_rate_cv =
          parse_double(next(), argv[0]);
    } else if (arg == "--upload-cv") {
      cfg.protocol.heterogeneity.upload_capacity_cv =
          parse_double(next(), argv[0]);
    } else if (arg == "--tax") {
      cfg.protocol.tax.enabled = true;
      cfg.protocol.tax.rate = parse_double(next(2), argv[0]);
      cfg.protocol.tax.threshold = parse_double(next(), argv[0]);
    } else if (arg == "--dynamic") {
      cfg.protocol.spending.dynamic = true;
      cfg.protocol.spending.dynamic_threshold =
          parse_double(next(), argv[0]);
    } else if (arg == "--churn") {
      cfg.protocol.churn.enabled = true;
      cfg.protocol.churn.arrival_rate = parse_double(next(2), argv[0]);
      cfg.protocol.churn.mean_lifespan = parse_double(next(), argv[0]);
      cfg.protocol.max_peers = cfg.protocol.initial_peers * 2 + 256;
    } else if (arg == "--inject") {
      cfg.protocol.injection.enabled = true;
      cfg.protocol.injection.interval_seconds =
          parse_double(next(2), argv[0]);
      cfg.protocol.injection.credits_per_peer =
          static_cast<p2p::Credits>(parse_double(next(), argv[0]));
    } else if (arg == "--condensed") {
      cfg.protocol.upload_capacity = 8.0;
      cfg.protocol.weight_sellers_by_fill = true;
      cfg.protocol.reserve_credits = 0.0;
      cfg.protocol.deficit_seeding = false;
      cfg.protocol.pricing.kind = econ::PricingKind::kPoisson;
    } else if (arg == "--trace") {
      cfg.enable_trace = true;
    } else if (arg == "--chart") {
      want_chart = true;
    } else {
      usage(argv[0]);
    }
  }

  core::CreditMarket market(cfg);
  const auto report = market.run();

  std::cout << "== market report ==\n"
            << report.summary() << "\n"
            << "final wealth: mean=" << report.final_wealth.mean
            << " median=" << report.final_wealth.median
            << " gini=" << report.final_wealth.gini
            << " top10=" << report.final_wealth.top10_share
            << " bankrupt=" << report.final_wealth.bankrupt_fraction << "\n"
            << "buffer fill: " << report.mean_buffer_fill.last_value()
            << "  alive peers: " << report.alive_peers.last_value() << "\n";
  if (cfg.protocol.tax.enabled) {
    std::cout << "tax: collected=" << report.tax_collected
              << " redistributed=" << report.tax_redistributed << "\n";
  }
  if (cfg.protocol.churn.enabled) {
    std::cout << "churn: arrivals=" << report.churn_arrivals
              << " departures=" << report.churn_departures << "\n";
  }

  if (want_chart && !report.gini_balances.empty()) {
    util::ChartOptions opts;
    opts.title = "Gini of balances over time";
    std::cout << "\n"
              << util::render_chart({{"gini", &report.gini_balances}}, opts);
  }

  if (cfg.enable_trace) {
    const auto verdict = core::analyze_market(market.empirical_mapping());
    std::cout << "\n== sustainability verdict ==\n"
              << "equilibrium exists: "
              << (verdict.equilibrium_exists ? "yes" : "no")
              << " (residual " << verdict.equilibrium_residual << ")\n"
              << "utilization symmetric: "
              << (verdict.symmetric_utilization ? "yes" : "no") << "\n"
              << "threshold T: "
              << (verdict.condensation.threshold_finite
                      ? std::to_string(verdict.condensation.threshold)
                      : std::string("+inf"))
              << "  c=" << verdict.condensation.average_wealth << "\n"
              << "condensation predicted: "
              << (verdict.condensation.condensation_predicted ? "YES" : "no")
              << "\n"
              << "model equilibrium gini: " << verdict.predicted_gini
              << "  efficiency exact/eq9: " << verdict.efficiency_exact
              << "/" << verdict.efficiency_eq9 << "\n";
  }
  return report.ledger_conserved ? 0 : 2;
}
