// market_cli — run a custom credit market, a named scenario, or a full
// parameter sweep from the command line.
//
// Single run:
//   market_cli [--scenario NAME|FILE] [--set key=value]... [legacy flags]
//
// Sweep (any --sweep axis or --seeds > 1 switches modes):
//   market_cli --scenario fig09_taxation
//              --sweep tax.threshold=10:120:5 --sweep tax.rate=0.1,0.2
//              --seeds 4 --jobs 0 --out fig09_sweep.csv
//
// Sweeps expand the cartesian grid of all axes, replicate each point with
// independent derived RNG streams, and run everything on a thread pool
// (--jobs 0 = all cores). Aggregated mean ± CI rows render to the console
// and, with --out, land as CSV (or JSON with --json); --runs-out writes the
// raw per-run rows. Outputs are byte-identical for any --jobs value.
//
// Sweep execution API v2 extras:
//   --cache-dir DIR   content-addressed run cache: re-running a grid after
//                     adding axes/seeds only computes the missing runs
//   --shard I/N       execute only the i-th strided shard of the run list;
//                     --out then writes the partial set as run records
//   --merge FILE      (repeatable, own mode) merge shard record files back
//                     into the aggregate outputs — byte-identical to the
//                     single-process sweep
//   --eta             live per-run progress with a wall-time ETA, and
//                     telemetry columns in --runs-out
//
// Distributed sweeps (work-stealing over TCP; see scenario/coordinator.hpp):
//   --serve PORT         coordinate this sweep on 0.0.0.0:PORT, handing
//                        runs to socket workers dynamically and emitting
//                        the usual outputs — byte-identical to the
//                        single-process sweep
//   --coordinator H:P    same, binding an explicit address (e.g.
//                        127.0.0.1:9000 to keep a sweep loopback-only)
//   --worker HOST:PORT   join the sweep served at HOST:PORT as a worker
//                        (--jobs parallel sessions; no sweep flags needed
//                        — the plan arrives over the wire)
//   --lease-timeout S    revoke + re-queue a silent worker's leases after
//                        S seconds (coordinator side; default 30)
//   --journal FILE       crash-safe write-ahead journal: every grant /
//                        completion / requeue is logged so a killed
//                        coordinator restarted with --resume executes
//                        only the missing runs (needs --cache-dir)
//   --resume             resume an interrupted sweep from --journal
//   --lease-batch K      grant up to K runs per NEXT, sized per worker
//                        from measured throughput (default 4)
//   --fsync              fsync cache and journal appends
//
// Prints the market report (single-run mode), optionally the Gini chart,
// and (with --trace) the sustainability analyzer's verdict on the
// empirical Table I mapping. Exit code 0 on success/conserved ledger, 2 on
// a conservation violation or failed sweep runs.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/analyzer.hpp"
#include "core/market.hpp"
#include "scenario/scenario.hpp"
#include "util/assert.hpp"
#include "util/chart.hpp"
#include "util/fsio.hpp"
#include "util/socket.hpp"
#include "util/trace.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "scenario selection:\n"
      << "  --scenario NAME|FILE named preset (see --list-scenarios) or a\n"
      << "                       spec file saved with --print-spec\n"
      << "  --list-scenarios     list the built-in presets and exit\n"
      << "  --print-spec         print the effective spec and exit\n"
      << "  --set key=value      override any scenario parameter\n"
      << "sweep mode:\n"
      << "  --sweep key=SPEC     add a grid axis; SPEC is lo:hi:step,\n"
      << "                       a,b,c or a single value (repeatable)\n"
      << "  --seeds N            replications per grid point (default 1)\n"
      << "  --jobs N             worker threads, 0 = all cores (default 0)\n"
      << "  --out FILE           write aggregated rows (CSV, or JSON\n"
      << "                       with --json); in --shard mode, the\n"
      << "                       partial run-record set instead\n"
      << "  --runs-out FILE      write raw per-run rows as CSV\n"
      << "  --json               aggregate output as JSON instead of CSV\n"
      << "  --quiet              suppress per-run progress lines\n"
      << "  --cache-dir DIR      skip runs already in the content-addressed\n"
      << "                       run cache at DIR; append fresh ones\n"
      << "  --shard I/N          execute only shard I of N (strided run-\n"
      << "                       list partition, 0-based)\n"
      << "  --merge FILE         merge shard record files (repeatable) and\n"
      << "                       emit the aggregate outputs; no execution\n"
      << "  --eta                live ETA in progress lines (overrides\n"
      << "                       --quiet) + wall-time telemetry columns\n"
      << "                       in --runs-out\n"
      << "distributed sweep mode (work-stealing over TCP):\n"
      << "  --serve PORT         coordinate this sweep on 0.0.0.0:PORT\n"
      << "  --coordinator H:P    coordinate, binding host H port P\n"
      << "  --worker HOST:PORT   join the sweep served at HOST:PORT\n"
      << "                       (--jobs = parallel worker sessions)\n"
      << "  --lease-timeout S    re-queue a silent worker's runs after S\n"
      << "                       seconds (coordinator side; default 30)\n"
      << "  --journal FILE       coordinator write-ahead journal: grants,\n"
      << "                       completions and requeues are logged so a\n"
      << "                       killed coordinator can --resume; requires\n"
      << "                       --cache-dir\n"
      << "  --resume             resume an interrupted sweep from the\n"
      << "                       --journal (recalls completed runs, holds\n"
      << "                       orphaned leases for their workers)\n"
      << "  --lease-batch K      grant up to K runs per NEXT, adaptively\n"
      << "                       sized per worker (default 4; 1 disables)\n"
      << "  --fsync              fsync run-cache and journal appends\n"
      << "single-run convenience flags (aliases of --set):\n"
      << "  --peers N --credits C --horizon S --seed K\n"
      << "  --pricing uniform|poisson|perseller|linear\n"
      << "  --spend-cv X --upload-cv X\n"
      << "  --tax RATE THRESH    enable income taxation\n"
      << "  --dynamic M          dynamic spending with threshold m\n"
      << "  --churn RATE LIFE    open market: arrivals/s, mean lifespan s\n"
      << "  --inject INT AMT     mint AMT credits/peer every INT seconds\n"
      << "  --condensed          the Fig. 1 no-safeguards configuration\n"
      << "  --trace              enable trace + analyzer verdict\n"
      << "  --chart              render the Gini(t) chart\n"
      << "observability (all modes unless noted):\n"
      << "  --trace-out FILE     capture a Chrome trace-event JSON of\n"
      << "                       protocol phases, event dispatch, and run\n"
      << "                       lifecycles (load in Perfetto / about:tracing)\n"
      << "  --series-out FILE    per-round time-series CSV (single run); in\n"
      << "                       sweep mode a prefix: FILE.run<idx>.csv per\n"
      << "                       executed run (cache hits don't simulate,\n"
      << "                       so they emit none)\n"
      << "  --series-every N     sample every N rounds (default 1)\n"
      << "  --status-port P      with --serve/--coordinator: answer HTTP\n"
      << "                       GET /status with live JSON progress on\n"
      << "                       port P (0 picks a free one)\n"
      << "stdout stays machine-clean: pass `-` to --out/--runs-out to pipe\n"
      << "the payload; all progress chatter goes to stderr.\n";
  std::exit(64);
}

double parse_double(const char* s, const char* argv0) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s) usage(argv0);
  return v;
}

void apply_or_die(creditflow::scenario::ScenarioSpec& spec,
                  const std::string& key, double value, const char* argv0) {
  if (!spec.set(key, value)) {
    std::cerr << "unknown parameter: " << key << "\n";
    usage(argv0);
  }
}

creditflow::scenario::ScenarioSpec load_scenario(const std::string& name) {
  using creditflow::scenario::ScenarioRegistry;
  using creditflow::scenario::ScenarioSpec;
  if (const ScenarioSpec* spec = ScenarioRegistry::builtin().find(name)) {
    return *spec;
  }
  std::ifstream in(name);
  if (in) {
    std::ostringstream text;
    text << in.rdbuf();
    return ScenarioSpec::parse(text.str());
  }
  std::cerr << "unknown scenario (and no such spec file): " << name << "\n"
            << "available presets:\n";
  for (const auto& known : ScenarioRegistry::builtin().names()) {
    std::cerr << "  " << known << "\n";
  }
  std::exit(64);
}

bool write_file(const std::string& path, const std::string& content) {
  if (path == "-") {
    // Machine-clean piping: every progress line in this binary goes to
    // stderr, so "-" hands the payload to stdout uncorrupted.
    std::cout << content;
    std::cout.flush();
    return static_cast<bool>(std::cout);
  }
  // Temp-file + rename: a crash (or a concurrent reader) never sees a
  // torn output file.
  if (!creditflow::util::atomic_write_file(path, content)) {
    std::cerr << "failed to write " << path << "\n";
    return false;
  }
  return true;
}

/// RAII trace capture: enabled at startup by --trace-out, written on every
/// exit path that unwinds main.
struct TraceDump {
  std::string path;
  ~TraceDump() {
    if (path.empty()) return;
    auto& tracer = creditflow::util::Tracer::instance();
    const std::size_t events = tracer.snapshot().size();
    tracer.write_json(path);
    std::cerr << "[trace] " << path << " (" << events << " events";
    if (tracer.dropped() > 0) {
      std::cerr << ", " << tracer.dropped() << " overwritten by ring wrap";
    }
    std::cerr << ")\n";
  }
};

/// Everything sweep mode and merge mode share downstream of execution.
struct SweepOutputOptions {
  std::string out_path;
  std::string runs_out_path;
  bool json = false;
  bool timing_columns = false;
};

/// Print the first few failed-run errors (the rest are in the JSON/CSV
/// outputs), returning the failure count.
std::size_t report_failures(const creditflow::scenario::ResultSink& sink) {
  std::size_t failures = 0;
  constexpr std::size_t kMaxPrinted = 5;
  for (const auto& run : sink.runs()) {
    if (run.error.empty()) continue;
    if (++failures <= kMaxPrinted) {
      std::cerr << "  run " << run.run_index << ": " << run.error << "\n";
    }
  }
  if (failures > kMaxPrinted) {
    std::cerr << "  ... and " << failures - kMaxPrinted << " more\n";
  }
  return failures;
}

/// Write --out/--runs-out and report failures; exit code 0/2. With
/// `records` set (shard mode), --out receives that run-record payload
/// instead of the aggregate, and the (partial, hence misleading)
/// aggregate table is suppressed.
int emit_sweep_outputs(creditflow::scenario::ResultSink& sink,
                       const std::string& title,
                       const SweepOutputOptions& out,
                       const std::string* records = nullptr) {
  using namespace creditflow;
  sink.set_timing_columns(out.timing_columns);

  if (records == nullptr) {
    const std::vector<std::string> metrics = {
        "converged_gini", "mean_buffer_fill", "exchange_efficiency",
        "mean_balance",   "bankrupt_fraction"};
    // The human-facing table is progress chatter like everything else
    // here: stderr, so `--out -` leaves stdout machine-clean.
    sink.aggregate_table(title, metrics).print(std::cerr);
  }

  if (!out.out_path.empty()) {
    const std::string payload =
        records != nullptr
            ? *records
            : (out.json ? sink.aggregate_json() : sink.aggregate_csv());
    if (!write_file(out.out_path, payload)) return 2;
    if (records != nullptr) {
      std::cerr << "[shard] " << out.out_path << " (" << sink.size()
                << " run records)\n";
    } else {
      std::cerr << "[out] " << out.out_path << "\n";
    }
  }
  if (!out.runs_out_path.empty()) {
    if (!write_file(out.runs_out_path, sink.runs_csv())) return 2;
    std::cerr << "[runs] " << out.runs_out_path << "\n";
  }
  const std::size_t failures = report_failures(sink);
  if (failures > 0) {
    std::cerr << failures << " run(s) failed\n";
    return 2;
  }
  return 0;
}

struct SweepCliOptions {
  std::size_t jobs = 0;
  bool quiet = false;
  bool eta = false;
  std::string cache_dir;
  bool sharded = false;  ///< --shard given (even 0/1 — output run records)
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  bool coordinate = false;  ///< --serve/--coordinator given
  std::string bind_host = "0.0.0.0";
  std::uint16_t bind_port = 0;
  double lease_timeout = 30.0;
  std::string journal;       ///< --journal (coordinator mode); empty off
  bool resume = false;       ///< --resume: continue from --journal
  std::size_t lease_batch = 4;  ///< --lease-batch ceiling per NEXT
  bool fsync = false;        ///< --fsync cache + journal appends
  int status_port = -1;  ///< --status-port (coordinator mode); -1 off
  std::string series_out;
  std::size_t series_every = 1;
  SweepOutputOptions out;
};

int run_sweep(const creditflow::scenario::ScenarioSpec& spec,
              creditflow::scenario::SweepSpec sweep,
              const SweepCliOptions& cli) {
  using namespace creditflow;
  const scenario::SweepPlan plan(spec, sweep);
  const std::size_t total =
      plan.shard(cli.shard_index, cli.shard_count).size();
  std::cerr << "sweep: " << sweep.num_points() << " grid points x "
            << sweep.seeds << " seeds = " << sweep.num_runs() << " runs";
  if (cli.sharded) {
    std::cerr << ", shard " << cli.shard_index << "/" << cli.shard_count
              << " owns " << total;
  }
  std::cerr << " (base scenario " << spec.name << ")\n";

  scenario::SweepRunner::Options options;
  options.jobs = cli.jobs;
  options.keep_reports = false;
  options.cache_dir = cli.cache_dir;
  options.shard_index = cli.shard_index;
  options.shard_count = cli.shard_count;
  if (!cli.series_out.empty()) {
    options.series_every = cli.series_every;
    options.series_out_prefix = cli.series_out;
    if (!cli.cache_dir.empty()) {
      std::cerr << "[series] note: cache hits skip the simulation and "
                   "write no series CSV\n";
    }
  }
  std::size_t done = 0;
  std::size_t executed = 0;
  double executed_wall = 0.0;
  const double workers = static_cast<double>(
      cli.jobs != 0 ? cli.jobs
                    : std::max(1u, std::thread::hardware_concurrency()));
  // --eta overrides --quiet: a requested ETA needs the progress lines that
  // carry it.
  if (!cli.quiet || cli.eta) {
    options.on_result = [&](const scenario::RunResult& r) {
      ++done;
      if (!r.telemetry.from_cache) {
        ++executed;
        executed_wall += r.telemetry.wall_seconds;
      }
      std::cerr << "[" << done << "/" << total << "] run " << r.run_index;
      if (!r.error.empty()) {
        std::cerr << " FAILED: " << r.error;
      } else if (r.telemetry.from_cache) {
        std::cerr << " cached gini=" << r.metric("converged_gini");
      } else {
        std::cerr << " gini=" << r.metric("converged_gini");
      }
      if (cli.eta && executed > 0) {
        // Remaining runs are almost all uncached (hits resolve first), so
        // the mean executed wall time is the right per-run estimate.
        const double mean_wall = executed_wall / static_cast<double>(executed);
        const double eta =
            static_cast<double>(total - done) * mean_wall / workers;
        std::cerr << " | eta " << static_cast<int>(eta + 0.5) << "s";
      }
      std::cerr << "\n";
    };
  }

  scenario::SweepRunner runner(spec, std::move(sweep), std::move(options));
  scenario::ResultSink sink;
  // Every grid point receives exactly `seeds` runs, so the sink can stream:
  // each point folds down to its statistics (and frees its per-run buffer)
  // the moment its last replication lands.
  sink.set_expected_replications(runner.sweep().seeds);
  auto results = runner.run();

  if (!cli.cache_dir.empty()) {
    std::cerr << "[cache] hits=" << runner.cache_hits()
              << " executed=" << runner.executed() << "\n";
  }

  if (cli.sharded) {
    // A shard emits its partial result set as run records — the merge
    // input — rather than a (misleadingly partial) aggregate.
    std::ostringstream records;
    for (const auto& r : results) {
      records << scenario::serialize_run_record(plan.key(r.run_index), r)
              << "\n";
    }
    const std::string payload = records.str();
    sink.add_all(std::move(results));
    return emit_sweep_outputs(sink, "", cli.out, &payload);
  }

  sink.add_all(std::move(results));
  return emit_sweep_outputs(sink, "sweep results — " + spec.name, cli.out);
}

/// --serve/--coordinator mode: own the plan, lease runs to socket workers
/// dynamically (work-stealing), merge the streamed-back records, and emit
/// the same outputs — byte for byte — a single-process sweep would.
int run_coordinator_sweep(const creditflow::scenario::ScenarioSpec& spec,
                          creditflow::scenario::SweepSpec sweep,
                          const SweepCliOptions& cli) {
  using namespace creditflow;
  const std::size_t total = sweep.num_runs();
  std::cerr << "sweep: " << sweep.num_points() << " grid points x "
            << sweep.seeds << " seeds = " << total
            << " runs (base scenario " << spec.name << ")\n";

  scenario::Coordinator::Options options;
  options.host = cli.bind_host;
  options.port = cli.bind_port;
  options.lease_timeout_seconds = cli.lease_timeout;
  options.cache_dir = cli.cache_dir;
  options.journal_path = cli.journal;
  options.resume = cli.resume;
  options.lease_batch_max = cli.lease_batch;
  options.fsync = cli.fsync;
  options.status_port = cli.status_port;
  if (cli.status_port >= 0) {
    // Give scrapers a real window to observe the drained terminal state
    // (completed == plan_runs) before the process exits.
    options.drain_seconds = std::max(options.drain_seconds, 5.0);
  }
  if (!cli.series_out.empty()) {
    // Workers collect the per-run series alongside each result and stream
    // it back; the coordinator writes the same FILE.run<idx>.csv files a
    // local sweep would, byte for byte.
    options.series_every = cli.series_every;
    options.series_out_prefix = cli.series_out;
    if (!cli.cache_dir.empty()) {
      std::cerr << "[series] note: cache hits skip the simulation and "
                   "write no series CSV\n";
    }
  }
  std::size_t done = 0;
  if (!cli.quiet) {
    options.on_result = [&](const scenario::RunResult& r) {
      ++done;
      std::cerr << "[" << done << "/" << total << "] run " << r.run_index;
      if (!r.error.empty()) {
        std::cerr << " FAILED: " << r.error;
      } else if (r.telemetry.from_cache) {
        std::cerr << " cached gini=" << r.metric("converged_gini");
      } else {
        std::cerr << " gini=" << r.metric("converged_gini");
      }
      std::cerr << "\n";
    };
  }

  const std::size_t seeds = sweep.seeds;
  scenario::Coordinator coordinator(spec, std::move(sweep),
                                    std::move(options));
  std::cerr << "[coordinator] listening on " << cli.bind_host << ":"
            << coordinator.port() << " (lease timeout " << cli.lease_timeout
            << "s)\n";
  if (coordinator.status_port() != 0) {
    std::cerr << "[status] GET http://" << cli.bind_host << ":"
              << coordinator.status_port() << "/status\n";
  }

  scenario::ResultSink sink;
  sink.set_expected_replications(seeds);
  auto results = coordinator.run();
  std::cerr << "[coordinator] executed=" << coordinator.executed()
            << " cache_hits=" << coordinator.cache_hits()
            << " requeued=" << coordinator.requeued()
            << " duplicates=" << coordinator.duplicates()
            << " resumed=" << coordinator.leases_resumed()
            << " orphans=" << coordinator.journal_orphans()
            << " workers=" << coordinator.workers_seen() << "\n";

  sink.add_all(std::move(results));
  return emit_sweep_outputs(sink, "sweep results — " + spec.name, cli.out);
}

/// --worker mode: join the sweep served at host:port; the plan arrives
/// over the wire, so no scenario flags are needed on this side.
int run_worker_mode(const std::string& host, std::uint16_t port,
                    std::size_t jobs, bool quiet) {
  using namespace creditflow;
  scenario::WorkerOptions options;
  options.sessions = jobs;
  if (!quiet) {
    options.on_result = [](const scenario::RunResult& r) {
      std::cerr << "[worker] run " << r.run_index;
      if (!r.error.empty()) {
        std::cerr << " FAILED: " << r.error;
      } else {
        std::cerr << " gini=" << r.metric("converged_gini");
      }
      std::cerr << "\n";
    };
  }
  std::cerr << "[worker] joining sweep at " << host << ":" << port << "\n";
  const scenario::WorkerReport report =
      scenario::run_worker(host, port, options);
  std::cerr << "[worker] executed=" << report.runs_executed
            << " duplicates=" << report.duplicates
            << " connect_retries=" << report.connect_retries
            << " wait_retries=" << report.wait_retries
            << " reconnects=" << report.reconnects
            << " resumed=" << report.leases_resumed
            << (report.completed ? " (sweep complete)" : "") << "\n";
  if (!report.completed) {
    std::cerr << "[worker] "
              << (report.error.empty() ? "coordinator went away"
                                       : report.error)
              << "\n";
    return 1;
  }
  return 0;
}

/// Parse "HOST:PORT" — or a bare "PORT", which leaves `host` at its
/// caller-supplied default; exits via usage() on malformed input.
void parse_host_port(const std::string& text, std::string& host,
                     std::uint16_t& port, const char* argv0) {
  std::string port_text = text;
  const auto colon = text.rfind(':');
  if (colon != std::string::npos) {
    host = text.substr(0, colon);
    port_text = text.substr(colon + 1);
    if (host.empty()) usage(argv0);
  }
  char* end = nullptr;
  const unsigned long v = std::strtoul(port_text.c_str(), &end, 10);
  if (end != port_text.c_str() + port_text.size() || port_text.empty() ||
      v == 0 || v > 65535) {
    usage(argv0);
  }
  port = static_cast<std::uint16_t>(v);
}

/// --merge mode: parse shard record files, recombine by run_index, emit the
/// same outputs a single-process sweep would.
int run_merge(const std::vector<std::string>& merge_files,
              const SweepOutputOptions& out) {
  using namespace creditflow;
  scenario::ResultSink sink;
  for (const auto& path : merge_files) {
    const auto records = scenario::read_run_records(path);
    std::cerr << "[merge] " << path << ": " << records.size()
              << " run records\n";
    for (const auto& record : records) sink.add(record.result);
  }
  return emit_sweep_outputs(sink, "merged sweep results", out);
}

/// Parse "I/N" (0-based shard of N); exits via usage() on malformed input.
void parse_shard(const std::string& text, SweepCliOptions& cli,
                 const char* argv0) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) usage(argv0);
  char* end = nullptr;
  const std::string i_str = text.substr(0, slash);
  const std::string n_str = text.substr(slash + 1);
  cli.shard_index = std::strtoull(i_str.c_str(), &end, 10);
  if (end != i_str.c_str() + i_str.size() || i_str.empty()) usage(argv0);
  cli.shard_count = std::strtoull(n_str.c_str(), &end, 10);
  if (end != n_str.c_str() + n_str.size() || n_str.empty()) usage(argv0);
  if (cli.shard_count == 0 || cli.shard_index >= cli.shard_count) {
    std::cerr << "--shard wants I/N with I < N, got: " << text << "\n";
    usage(argv0);
  }
  cli.sharded = true;
}

/// Single-run mode (defined after main for readability); throws on a
/// configuration the market constructors reject.
int run_single(const creditflow::scenario::ScenarioSpec& spec,
               const SweepCliOptions& cli, bool want_chart);

}  // namespace

int main(int argc, char** argv) {
  using namespace creditflow;

  // The legacy default market; --scenario replaces the whole spec.
  scenario::ScenarioSpec spec;
  spec.name = "custom";
  spec.config.protocol.initial_peers = 300;
  spec.config.protocol.max_peers = 300;
  spec.config.protocol.initial_credits = 100;
  spec.config.protocol.seed = 2012;
  spec.config.horizon = 5000.0;
  spec.config.snapshot_interval = 125.0;

  scenario::SweepSpec sweep;
  SweepCliOptions cli;
  std::vector<std::string> merge_files;
  std::string trace_out;
  bool worker_mode = false;
  std::string worker_host = "127.0.0.1";
  std::uint16_t worker_port = 0;
  bool want_chart = false;
  bool print_spec = false;

  bool spec_overridden = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](int more = 1) {
      if (i + more >= argc) usage(argv[0]);
      return argv[++i];
    };
    auto set_param = [&](const std::string& key, double value) {
      spec_overridden = true;
      apply_or_die(spec, key, value, argv[0]);
    };
    if (arg == "--scenario") {
      if (spec_overridden) {
        // Loading a scenario replaces the whole spec; silently dropping
        // the overrides that came before it would run the wrong market.
        std::cerr << "--scenario must come before --set and other "
                     "parameter flags\n";
        return 64;
      }
      try {
        spec = load_scenario(next());
      } catch (const util::PreconditionError& e) {
        std::cerr << e.what() << "\n";  // malformed spec file
        return 64;
      }
    } else if (arg == "--list-scenarios") {
      for (const auto& name : scenario::ScenarioRegistry::builtin().names()) {
        const auto* s = scenario::ScenarioRegistry::builtin().find(name);
        std::cout << name << "\n    " << s->description << "\n";
      }
      return 0;
    } else if (arg == "--print-spec") {
      print_spec = true;
    } else if (arg == "--set") {
      // Strict value handling: a malformed or out-of-range value is a
      // failed run (exit 2, one diagnostic line), never a silent clamp or
      // an unsigned wrap through the raw setter. Only an unknown key is a
      // usage error.
      const std::string kv = next();
      const auto eq = kv.find('=');
      if (eq == std::string::npos) usage(argv[0]);
      const std::string key = kv.substr(0, eq);
      const std::string value_text = kv.substr(eq + 1);
      char* end = nullptr;
      const double value = std::strtod(value_text.c_str(), &end);
      if (value_text.empty() ||
          end != value_text.c_str() + value_text.size()) {
        std::cerr << "--set " << kv << ": value is not a number\n";
        return 2;
      }
      spec_overridden = true;
      if (const auto err = spec.set_checked(key, value)) {
        std::cerr << "--set " << kv << ": " << *err << "\n";
        return err->rfind("unknown parameter", 0) == 0 ? 64 : 2;
      }
    } else if (arg == "--sweep") {
      try {
        sweep.axes.push_back(scenario::SweepAxis::parse(next()));
      } catch (const util::PreconditionError& e) {
        // Same contract as --set: one clean diagnostic line (strip the
        // assertion preamble), exit 2 for malformed values, 64 for an
        // unknown key (a usage error).
        std::string msg = e.what();
        if (const auto dash = msg.rfind(" — "); dash != std::string::npos) {
          msg = msg.substr(dash + std::string(" — ").size());
        }
        std::cerr << "--sweep: " << msg << "\n";
        return msg.rfind("unknown sweep parameter", 0) == 0 ? 64 : 2;
      }
    } else if (arg == "--seeds") {
      sweep.seeds =
          static_cast<std::size_t>(parse_double(next(), argv[0]));
      if (sweep.seeds == 0) usage(argv[0]);
    } else if (arg == "--jobs") {
      cli.jobs = static_cast<std::size_t>(parse_double(next(), argv[0]));
    } else if (arg == "--out") {
      cli.out.out_path = next();
    } else if (arg == "--runs-out") {
      cli.out.runs_out_path = next();
    } else if (arg == "--json") {
      cli.out.json = true;
    } else if (arg == "--quiet") {
      cli.quiet = true;
    } else if (arg == "--cache-dir") {
      cli.cache_dir = next();
    } else if (arg == "--shard") {
      parse_shard(next(), cli, argv[0]);
    } else if (arg == "--merge") {
      merge_files.push_back(next());
    } else if (arg == "--serve" || arg == "--coordinator") {
      // Two spellings of coordinator mode: a bare PORT binds every
      // interface, HOST:PORT pins the host (e.g. 127.0.0.1 to stay
      // loopback-only).
      cli.coordinate = true;
      cli.bind_host = "0.0.0.0";
      parse_host_port(next(), cli.bind_host, cli.bind_port, argv[0]);
    } else if (arg == "--worker") {
      worker_mode = true;
      parse_host_port(next(), worker_host, worker_port, argv[0]);
    } else if (arg == "--lease-timeout") {
      cli.lease_timeout = parse_double(next(), argv[0]);
      if (cli.lease_timeout <= 0.0) usage(argv[0]);
    } else if (arg == "--journal") {
      cli.journal = next();
    } else if (arg == "--resume") {
      cli.resume = true;
    } else if (arg == "--lease-batch") {
      cli.lease_batch =
          static_cast<std::size_t>(parse_double(next(), argv[0]));
      if (cli.lease_batch == 0) usage(argv[0]);
    } else if (arg == "--fsync") {
      cli.fsync = true;
    } else if (arg == "--eta") {
      cli.eta = true;
      cli.out.timing_columns = true;
    } else if (arg == "--trace-out") {
      trace_out = next();
    } else if (arg == "--series-out") {
      cli.series_out = next();
    } else if (arg == "--series-every") {
      cli.series_every =
          static_cast<std::size_t>(parse_double(next(), argv[0]));
      if (cli.series_every == 0) usage(argv[0]);
    } else if (arg == "--status-port") {
      const double p = parse_double(next(), argv[0]);
      if (p < 0 || p > 65535) usage(argv[0]);
      cli.status_port = static_cast<int>(p);
    } else if (arg == "--peers") {
      const double v = parse_double(next(), argv[0]);
      set_param("peers", v);
      set_param("max_peers", v);
    } else if (arg == "--credits") {
      set_param("credits", parse_double(next(), argv[0]));
    } else if (arg == "--horizon") {
      const double h = parse_double(next(), argv[0]);
      set_param("horizon", h);
      set_param("snapshot_interval", h / 40.0);
    } else if (arg == "--seed") {
      set_param("seed", parse_double(next(), argv[0]));
    } else if (arg == "--pricing") {
      const std::string name = next();
      double kind = -1;
      if (name == "uniform") kind = 0;
      else if (name == "poisson") kind = 1;
      else if (name == "perseller") kind = 2;
      else if (name == "linear") kind = 3;
      else usage(argv[0]);
      set_param("pricing.kind", kind);
    } else if (arg == "--spend-cv") {
      set_param("spend_cv", parse_double(next(), argv[0]));
    } else if (arg == "--upload-cv") {
      set_param("upload_cv", parse_double(next(), argv[0]));
    } else if (arg == "--tax") {
      set_param("tax.enabled", 1);
      set_param("tax.rate", parse_double(next(2), argv[0]));
      set_param("tax.threshold", parse_double(next(), argv[0]));
    } else if (arg == "--dynamic") {
      set_param("spending.dynamic", 1);
      set_param("spending.threshold", parse_double(next(), argv[0]));
    } else if (arg == "--churn") {
      set_param("churn.enabled", 1);
      set_param("churn.arrival_rate", parse_double(next(2), argv[0]));
      set_param("churn.mean_lifespan", parse_double(next(), argv[0]));
      set_param("max_peers",
                static_cast<double>(
                    spec.config.protocol.initial_peers * 2 + 256));
    } else if (arg == "--inject") {
      set_param("inject.enabled", 1);
      set_param("inject.interval", parse_double(next(2), argv[0]));
      set_param("inject.amount", parse_double(next(), argv[0]));
    } else if (arg == "--condensed") {
      set_param("upload_capacity", 8.0);
      set_param("seller_choice", 1);
      set_param("reserve_credits", 0.0);
      set_param("deficit_seeding", 0);
      set_param("pricing.kind", 1);
    } else if (arg == "--trace") {
      set_param("trace", 1);
    } else if (arg == "--chart") {
      want_chart = true;
    } else {
      usage(argv[0]);
    }
  }

  if (print_spec) {
    std::cout << spec.serialize();
    return 0;
  }

  if (cli.status_port >= 0 && !cli.coordinate) {
    std::cerr << "--status-port requires --serve/--coordinator\n";
    return 64;
  }
  if (!cli.journal.empty() && !cli.coordinate) {
    std::cerr << "--journal requires --serve/--coordinator (the journal "
                 "records coordinator scheduling state)\n";
    return 64;
  }
  if (!cli.journal.empty() && cli.cache_dir.empty()) {
    std::cerr << "--journal requires --cache-dir (results must be as "
                 "durable as the scheduling state they journal)\n";
    return 64;
  }
  if (cli.resume && cli.journal.empty()) {
    std::cerr << "--resume requires --journal\n";
    return 64;
  }
  if (cli.fsync && !cli.coordinate) {
    std::cerr << "--fsync requires --serve/--coordinator\n";
    return 64;
  }

  // Tracing switches on before any simulation and is dumped by the guard on
  // every exit path below. It records wall-clock spans only — no RNG, no
  // report bytes — so traced outputs stay byte-identical.
  TraceDump trace_dump;
  if (!trace_out.empty()) {
    util::Tracer::instance().enable();
    trace_dump.path = trace_out;
  }

  if (worker_mode) {
    if (cli.coordinate || cli.sharded || !merge_files.empty()) {
      std::cerr << "--worker excludes --serve/--coordinator/--shard/"
                   "--merge\n";
      return 64;
    }
    // Sweep definition and output flags belong on the coordinator side; a
    // worker silently dropping them would surprise whoever expected the
    // files — reject loudly instead.
    if (!sweep.axes.empty() || sweep.seeds > 1 ||
        !cli.out.out_path.empty() || !cli.out.runs_out_path.empty() ||
        !cli.cache_dir.empty() || cli.eta || !cli.series_out.empty()) {
      std::cerr << "--worker takes no sweep/output flags (the plan and the "
                   "outputs live on the coordinator)\n";
      return 64;
    }
    return run_worker_mode(worker_host, worker_port, cli.jobs, cli.quiet);
  }

  if (!merge_files.empty()) {
    try {
      return run_merge(merge_files, cli.out);
    } catch (const util::PreconditionError& e) {
      std::cerr << e.what() << "\n";  // unreadable/malformed record file
      return 64;
    }
  }

  if (cli.coordinate) {
    if (cli.sharded) {
      std::cerr << "--serve/--coordinator replaces --shard (the "
                   "coordinator partitions dynamically)\n";
      return 64;
    }
    try {
      return run_coordinator_sweep(spec, std::move(sweep), cli);
    } catch (const util::SocketError& e) {
      std::cerr << e.what() << "\n";
      return 1;
    } catch (const util::PreconditionError& e) {
      // Journal/option conflicts: stale journal without --resume, plan
      // mismatch, unwritable journal path.
      std::cerr << e.what() << "\n";
      return 64;
    }
  }

  if (!sweep.axes.empty() || sweep.seeds > 1 || cli.sharded) {
    return run_sweep(spec, std::move(sweep), cli);
  }

  // ---- Single-run mode (the original market_cli behavior). --------------
  // A configuration the market rejects (CF_EXPECTS in the constructors) is
  // a failed run: one diagnostic line and exit 2, not an uncaught throw.
  try {
    return run_single(spec, cli, want_chart);
  } catch (const std::exception& e) {
    std::cerr << "run failed: " << e.what() << "\n";
    return 2;
  }
}

namespace {

int run_single(const creditflow::scenario::ScenarioSpec& spec,
               const SweepCliOptions& cli, bool want_chart) {
  using namespace creditflow;
  core::MarketConfig run_cfg = spec.materialize();
  if (!cli.series_out.empty()) {
    run_cfg.series_every_rounds = cli.series_every;
  }
  core::CreditMarket market(std::move(run_cfg));
  const auto report = market.run();
  const auto& cfg = market.config();

  if (market.series() != nullptr) {
    if (!write_file(cli.series_out, market.series()->csv())) return 2;
    std::cerr << "[series] " << cli.series_out << " ("
              << market.series()->rows().size() << " rows)\n";
  }

  // When the series CSV streams to stdout, the human-readable report moves
  // to stderr so the stream stays machine-clean.
  std::ostream& human = cli.series_out == "-" ? std::cerr : std::cout;

  human << "== market report ==\n"
        << report.summary() << "\n"
        << "final wealth: mean=" << report.final_wealth.mean
        << " median=" << report.final_wealth.median
        << " gini=" << report.final_wealth.gini
        << " top10=" << report.final_wealth.top10_share
        << " bankrupt=" << report.final_wealth.bankrupt_fraction << "\n"
        << "buffer fill: " << report.mean_buffer_fill.last_value()
        << "  alive peers: " << report.alive_peers.last_value() << "\n";
  if (cfg.protocol.tax.enabled) {
    human << "tax: collected=" << report.tax_collected
          << " redistributed=" << report.tax_redistributed << "\n";
  }
  if (cfg.protocol.churn.enabled) {
    human << "churn: arrivals=" << report.churn_arrivals
          << " departures=" << report.churn_departures << "\n";
  }

  if (want_chart && !report.gini_balances.empty()) {
    util::ChartOptions opts;
    opts.title = "Gini of balances over time";
    human << "\n"
          << util::render_chart({{"gini", &report.gini_balances}}, opts);
  }

  if (cfg.enable_trace) {
    const auto verdict = core::analyze_market(market.empirical_mapping());
    human << "\n== sustainability verdict ==\n"
          << "equilibrium exists: "
          << (verdict.equilibrium_exists ? "yes" : "no")
          << " (residual " << verdict.equilibrium_residual << ")\n"
          << "utilization symmetric: "
          << (verdict.symmetric_utilization ? "yes" : "no") << "\n"
          << "threshold T: "
          << (verdict.condensation.threshold_finite
                  ? std::to_string(verdict.condensation.threshold)
                  : std::string("+inf"))
          << "  c=" << verdict.condensation.average_wealth << "\n"
          << "condensation predicted: "
          << (verdict.condensation.condensation_predicted ? "YES" : "no")
          << "\n"
          << "model equilibrium gini: " << verdict.predicted_gini
          << "  efficiency exact/eq9: " << verdict.efficiency_exact
          << "/" << verdict.efficiency_eq9 << "\n";
  }
  return report.ledger_conserved ? 0 : 2;
}

}  // namespace
