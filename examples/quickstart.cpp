// CreditFlow quickstart: build a small credit-incentivized streaming market,
// run it, and ask the sustainability analyzer whether the credit system can
// sustain — the full pipeline of the paper in ~60 lines.
//
//   market  : 300 peers, scale-free overlay, uniform pricing, c = 50
//   run     : 4000 simulated seconds
//   analyze : equilibrium existence, condensation threshold, expected Gini
#include <iostream>

#include "core/analyzer.hpp"
#include "core/market.hpp"

int main() {
  using namespace creditflow;

  core::MarketConfig config;
  config.protocol.initial_peers = 300;
  config.protocol.max_peers = 300;
  config.protocol.initial_credits = 50;
  config.protocol.seed = 2012;
  config.horizon = 4000.0;
  config.snapshot_interval = 100.0;
  config.enable_trace = true;  // needed for the empirical Table I mapping

  std::cout << "Running a 300-peer credit market for "
            << config.horizon << " simulated seconds...\n";
  core::CreditMarket market(config);
  const core::MarketReport report = market.run();

  std::cout << "run summary: " << report.summary() << "\n";
  std::cout << "final mean balance: " << report.final_wealth.mean
            << " credits, gini " << report.final_wealth.gini
            << ", top-10% share " << report.final_wealth.top10_share
            << "\n\n";

  // Map the observed market onto the paper's Jackson network (Table I) and
  // run the analytical pipeline on it.
  const core::JacksonMapping mapping = market.empirical_mapping();
  const core::SustainabilityVerdict verdict = core::analyze_market(mapping);

  std::cout << "Table I mapping extracted: N=" << mapping.num_peers()
            << " peers, M=" << mapping.total_credits
            << " credits (c=" << mapping.average_wealth << ")\n";
  std::cout << "equilibrium exists: "
            << (verdict.equilibrium_exists ? "yes" : "no")
            << " (residual " << verdict.equilibrium_residual << ")\n";
  std::cout << "utilization symmetric: "
            << (verdict.symmetric_utilization ? "yes" : "no") << "\n";
  std::cout << "condensation threshold T: "
            << (verdict.condensation.threshold_finite
                    ? std::to_string(verdict.condensation.threshold)
                    : "+inf (corollary: no condensation)")
            << "\n";
  std::cout << "condensation predicted: "
            << (verdict.condensation.condensation_predicted ? "YES" : "no")
            << "\n";
  std::cout << "model-predicted equilibrium gini: " << verdict.predicted_gini
            << " | efficiency (Eq.9) " << verdict.efficiency_eq9
            << " vs exact " << verdict.efficiency_exact << "\n";
  return 0;
}
