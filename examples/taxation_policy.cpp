// Example: designing a taxation counter-measure (paper Sec. VI-C).
//
// An operator whose swarm shows condensation pressure (heterogeneous upload
// capacity) sweeps income-tax rates and thresholds, looking for the policy
// that flattens the wealth distribution without collapsing trade volume.
#include <iostream>

#include "core/market.hpp"
#include "util/table.hpp"

namespace {

creditflow::core::MarketReport run_with_tax(bool enabled, double rate,
                                            double threshold) {
  using namespace creditflow;
  core::MarketConfig cfg;
  cfg.protocol.initial_peers = 300;
  cfg.protocol.max_peers = 300;
  cfg.protocol.initial_credits = 100;
  cfg.protocol.seed = 11;
  cfg.protocol.heterogeneity.spend_rate_cv = 0.3;
  cfg.protocol.tax.enabled = enabled;
  cfg.protocol.tax.rate = rate;
  cfg.protocol.tax.threshold = threshold;
  cfg.horizon = 6000.0;
  cfg.snapshot_interval = 300.0;
  core::CreditMarket market(cfg);
  return market.run();
}

}  // namespace

int main() {
  using namespace creditflow;
  std::cout << "Sweeping income-tax policies on an asymmetric 300-peer "
               "market (c=100)...\n\n";

  util::ConsoleTable table("tax policy sweep");
  table.set_header({"policy", "gini", "bankrupt", "volume",
                    "collected", "redistributed"});

  const auto baseline = run_with_tax(false, 0.0, 0.0);
  table.add_row({std::string("no tax"), baseline.converged_gini(),
                 baseline.final_wealth.bankrupt_fraction,
                 static_cast<std::int64_t>(baseline.volume),
                 static_cast<std::int64_t>(0), static_cast<std::int64_t>(0)});

  for (const double rate : {0.1, 0.2}) {
    for (const double threshold : {50.0, 80.0, 120.0}) {
      const auto r = run_with_tax(true, rate, threshold);
      table.add_row(
          {"rate " + std::to_string(rate).substr(0, 4) + " thr " +
               std::to_string(static_cast<int>(threshold)),
           r.converged_gini(), r.final_wealth.bankrupt_fraction,
           static_cast<std::int64_t>(r.volume),
           static_cast<std::int64_t>(r.tax_collected),
           static_cast<std::int64_t>(r.tax_redistributed)});
    }
  }
  table.print();

  std::cout << "\nAs in the paper: taxation curbs the Gini drift; thresholds "
               "near the average\nwealth let the rate matter, very low "
               "thresholds blunt it.\n";
  return 0;
}
