// faultnet_proxy — stand-alone driver for util::FaultProxy, so shell-based
// chaos tests (CI smoke jobs) can put a deterministic flaky network
// between a sweep worker and its coordinator.
//
//   faultnet_proxy --listen-port P --target-port Q [--target-host H]
//                  [--seed S] [--short-write P] [--delay P]
//                  [--max-delay SEC] [--disconnect P]
//                  [--disconnect-after-bytes N] [--max-disconnects N]
//
// Prints "LISTENING <port>" once ready, then proxies until killed.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "util/faultnet.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

[[noreturn]] void usage_error(const char* what) {
  std::fprintf(stderr, "faultnet_proxy: %s\n", what);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  creditflow::util::FaultProxy::Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage_error(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--listen-host") {
      options.listen_host = value();
    } else if (arg == "--listen-port") {
      options.listen_port = static_cast<std::uint16_t>(std::atoi(value()));
    } else if (arg == "--target-host") {
      options.target_host = value();
    } else if (arg == "--target-port") {
      options.target_port = static_cast<std::uint16_t>(std::atoi(value()));
    } else if (arg == "--seed") {
      options.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--short-write") {
      options.short_write_probability = std::atof(value());
    } else if (arg == "--delay") {
      options.delay_probability = std::atof(value());
    } else if (arg == "--max-delay") {
      options.max_delay_seconds = std::atof(value());
    } else if (arg == "--disconnect") {
      options.disconnect_probability = std::atof(value());
    } else if (arg == "--disconnect-after-bytes") {
      options.disconnect_after_bytes = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--max-disconnects") {
      options.max_disconnects =
          static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else {
      usage_error(("unknown flag " + arg).c_str());
    }
  }
  if (options.target_port == 0) usage_error("--target-port is required");

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  creditflow::util::FaultProxy proxy(options);
  std::printf("LISTENING %u\n", static_cast<unsigned>(proxy.port()));
  std::fflush(stdout);
  while (g_stop == 0) ::usleep(100 * 1000);
  proxy.stop();
  const auto counters = proxy.counters();
  std::fprintf(stderr,
               "faultnet_proxy: connections=%zu short_writes=%zu "
               "delays=%zu disconnects=%zu\n",
               counters.connections, counters.short_writes, counters.delays,
               counters.disconnects);
  return 0;
}
