// Example: a live-streaming operator evaluates two credit-market designs.
//
// The scenario the paper's introduction motivates: a mesh streaming swarm
// pays for uploads with virtual credits. Design A is careless — lots of
// initial credits, heterogeneous chunk prices, demand concentrated on the
// chunk-rich; Design B caps upload headroom, prices uniformly, and keeps
// the endowment modest. The example runs both markets and compares
// streaming health (download rates, buffer fill) with economic health
// (Gini, bankruptcies).
#include <iostream>
#include <numeric>

#include "core/market.hpp"
#include "econ/gini.hpp"
#include "util/table.hpp"

namespace {

creditflow::core::MarketReport run_design(bool careless) {
  using namespace creditflow;
  core::MarketConfig cfg;
  cfg.protocol.initial_peers = 400;
  cfg.protocol.max_peers = 400;
  cfg.protocol.seed = 77;
  cfg.horizon = 5000.0;
  cfg.snapshot_interval = 250.0;
  if (careless) {
    cfg.protocol.initial_credits = 200;
    cfg.protocol.upload_capacity = 8.0;
    cfg.protocol.weight_sellers_by_fill = true;
    cfg.protocol.deficit_seeding = false;
    cfg.protocol.reserve_credits = 0.0;
    cfg.protocol.pricing.kind = econ::PricingKind::kPoisson;
    cfg.protocol.pricing.poisson_mean = 1.0;
  } else {
    cfg.protocol.initial_credits = 40;
  }
  core::CreditMarket market(cfg);
  return market.run();
}

double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

}  // namespace

int main() {
  using namespace creditflow;
  std::cout << "Comparing two credit-market designs for a 400-peer "
               "streaming swarm (5000 s simulated)...\n\n";

  const auto careless = run_design(true);
  const auto careful = run_design(false);

  util::ConsoleTable table("streaming + economic health");
  table.set_header({"metric", "careless_design", "careful_design"});
  table.add_row({std::string("final gini (balances)"),
                 careless.final_wealth.gini, careful.final_wealth.gini});
  table.add_row({std::string("bankrupt fraction"),
                 careless.final_wealth.bankrupt_fraction,
                 careful.final_wealth.bankrupt_fraction});
  table.add_row({std::string("top-10% wealth share"),
                 careless.final_wealth.top10_share,
                 careful.final_wealth.top10_share});
  table.add_row({std::string("mean download rate (chunks/s)"),
                 mean_of(careless.final_download_rates),
                 mean_of(careful.final_download_rates)});
  table.add_row({std::string("mean buffer fill"),
                 careless.mean_buffer_fill.last_value(),
                 careful.mean_buffer_fill.last_value()});
  table.add_row({std::string("transactions"),
                 static_cast<std::int64_t>(careless.transactions),
                 static_cast<std::int64_t>(careful.transactions)});
  table.print();

  std::cout << "\nThe careless design condenses credits (high Gini, mass "
               "bankruptcy) and its\nstreaming quality decays with the "
               "credit flow — the wealth-condensation threat\nthe paper "
               "analyzes. The careful design sustains both.\n";
  return 0;
}
