// Example: pure-analytics walkthrough of the paper's theory — no simulation.
//
//  1. Lemma 1:    a positive stationary credit flow exists on any connected
//                 overlay (computed two ways).
//  2. Eq. (2):    normalized utilization profiles.
//  3. Eq. (4):    the condensation threshold T, for profiles with thin and
//                 heavy tails near u = 1, plus the symmetric corollary.
//  4. Sec. V-B:   exact finite-network wealth distribution via Buzen —
//                 expected wealth, bankruptcy probabilities, Gini.
#include <iostream>

#include "core/analyzer.hpp"
#include "graph/generators.hpp"
#include "queueing/closed_network.hpp"
#include "queueing/condensation.hpp"
#include "queueing/equilibrium.hpp"
#include "util/table.hpp"

int main() {
  using namespace creditflow;
  util::Rng rng(2012);

  // 1) Stationary flow on a scale-free overlay (Lemma 1).
  graph::ScaleFreeParams sf;
  const auto overlay = graph::scale_free(400, sf, rng);
  const auto routing = queueing::TransferMatrix::uniform_from_graph(overlay);
  const auto direct = queueing::solve_equilibrium_power(routing);
  std::cout << "Lemma 1 on a 400-peer scale-free overlay: converged="
            << direct.converged << ", residual=" << direct.residual
            << ", min λ="
            << *std::min_element(direct.lambda.begin(), direct.lambda.end())
            << " (> 0 as the theorem promises)\n\n";

  // 2-3) Utilization profiles and the threshold T.
  util::ConsoleTable thresholds("condensation threshold T (Eq. 4)");
  thresholds.set_header({"utilization_profile", "T", "c=20_condenses"});

  // Heavy mass at u=1 (symmetric corollary): T = +inf.
  {
    std::vector<double> u(400, 1.0);
    const auto v = core::analyze_utilization(u, 400 * 20);
    thresholds.add_row({std::string("symmetric (all u=1)"),
                        std::string("+inf (corollary)"),
                        std::string(v.condensation.condensation_predicted
                                        ? "yes"
                                        : "no")});
  }
  // Thin tail near 1: finite T, condensation at c=20.
  {
    std::vector<double> u(400);
    for (std::size_t i = 0; i < u.size(); ++i) {
      u[i] = 0.1 + 0.6 * static_cast<double>(i) / 400.0;
    }
    u[0] = 1.0;
    const auto v = core::analyze_utilization(u, 400 * 20);
    thresholds.add_row({std::string("thin tail (bulk ≤ 0.7)"),
                        v.condensation.threshold,
                        std::string(v.condensation.condensation_predicted
                                        ? "yes"
                                        : "no")});
  }
  thresholds.print();

  // 4) Exact finite-network equilibrium for an asymmetric market.
  std::cout << "\nExact product-form equilibrium (Buzen), N=10, M=200:\n";
  std::vector<double> u = {1.0, 0.95, 0.9, 0.85, 0.8,
                           0.7, 0.6,  0.5, 0.4,  0.3};
  const queueing::ClosedNetwork net(u, 200);
  util::ConsoleTable wealth("per-peer equilibrium wealth");
  wealth.set_header({"peer", "utilization", "E[wealth]", "P[bankrupt]"});
  for (std::size_t i = 0; i < u.size(); ++i) {
    wealth.add_row({static_cast<std::int64_t>(i), u[i],
                    net.expected_wealth(i), net.empty_probability(i)});
  }
  wealth.print();
  std::cout << "\nCredits pile onto the max-utilization peer exactly as "
               "Theorem 3 predicts once\nc exceeds the threshold.\n";
  return 0;
}
