#!/usr/bin/env python3
"""Render the BM_SimulationCoreScale sweep as a CSV artifact and a
GitHub-flavored markdown table.

Input: a google-benchmark JSON export containing BM_SimulationCoreScale
runs (one per peer count). Output: scaling_curve.csv with columns
(peers, round_us_per_round, phase_us_per_round, us_per_peer_round,
bytes_per_peer, peak_rss_bytes), plus the same rows as a markdown table on
stdout — the CI job appends that to $GITHUB_STEP_SUMMARY.

  scaling_curve.py BENCH_scaling.json --csv scaling_curve.csv
"""

from __future__ import annotations

import argparse
import csv
import json
import re
import sys

COLUMNS = ("peers", "round_us_per_round", "phase_us_per_round",
           "us_per_peer_round", "bytes_per_peer", "peak_rss_bytes")


def extract_rows(path: str) -> list[dict]:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    rows = []
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        match = re.search(r"BM_SimulationCoreScale/peers:(\d+)",
                          bench.get("name", ""))
        if not match:
            continue
        peers = int(match.group(1))
        round_us = float(bench.get("round_us_per_round", 0.0))
        rows.append({
            "peers": peers,
            "round_us_per_round": round(round_us, 1),
            "phase_us_per_round":
                round(float(bench.get("phase_us_per_round", 0.0)), 1),
            "us_per_peer_round": round(round_us / peers, 4),
            "bytes_per_peer":
                round(float(bench.get("bytes_per_peer", 0.0)), 0),
            "peak_rss_bytes":
                round(float(bench.get("peak_rss_bytes", 0.0)), 0),
        })
    rows.sort(key=lambda r: r["peers"])
    return rows


def write_csv(rows: list[dict], path: str) -> None:
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=COLUMNS)
        writer.writeheader()
        writer.writerows(rows)


def markdown_table(rows: list[dict]) -> str:
    lines = [
        "### Simulation-core scaling curve",
        "",
        "| peers | µs/round | purchase µs/round | µs/(peer·round) "
        "| bytes/peer | peak RSS |",
        "|------:|---------:|------------------:|----------------:"
        "|-----------:|---------:|",
    ]
    for r in rows:
        rss_mb = r["peak_rss_bytes"] / 1e6
        lines.append(
            f"| {r['peers']:,} | {r['round_us_per_round']:,.0f} "
            f"| {r['phase_us_per_round']:,.0f} "
            f"| {r['us_per_peer_round']:.3f} "
            f"| {r['bytes_per_peer']:,.0f} | {rss_mb:,.0f} MB |")
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark_json")
    parser.add_argument("--csv", help="write scaling_curve.csv here")
    args = parser.parse_args()

    rows = extract_rows(args.benchmark_json)
    if not rows:
        print(f"ERROR: no BM_SimulationCoreScale rows in "
              f"{args.benchmark_json}", file=sys.stderr)
        return 1
    if args.csv:
        write_csv(rows, args.csv)
    print(markdown_table(rows))
    return 0


if __name__ == "__main__":
    return_code = main()
    sys.exit(return_code)
