#!/usr/bin/env python3
"""Perf-regression gate for the google-benchmark JSON exports.

Compares a fresh benchmark run against a committed baseline and fails
(exit 1) when any gated counter regressed beyond the tolerance. The gated
counters are the per-round wall-time readouts (round_us_per_round,
phase_us_per_round); memory (peak_rss_bytes) is reported but not gated —
RSS is a process-wide high-water mark and too machine-shaped to gate on.

Benchmarks are matched by exact name. Benchmarks present only in the run
(new benchmarks) or only in the baseline (retired ones) are reported and
skipped, so adding a benchmark never requires touching the gate.

Baselines are machine-scoped: absolute microseconds from the CI runner
class. The tolerance (default 15%, overridable with --tolerance or the
BENCH_TOLERANCE env var) absorbs runner jitter; refresh the baseline with
--update after an intentional perf change.

  check_bench_regression.py --baseline bench/baselines/B.json --run out.json
  check_bench_regression.py --baseline B.json --run out.json --update
  check_bench_regression.py --self-test

--self-test proves the gate itself: it must go red on a synthetically
inflated result (+30% on a gated counter) and green on an identical one.
"""

from __future__ import annotations

import argparse
import copy
import json
import os
import shutil
import sys

GATED_COUNTERS = ("round_us_per_round", "phase_us_per_round")
REPORT_ONLY_COUNTERS = ("peak_rss_bytes", "bytes_per_peer")
DEFAULT_TOLERANCE = 0.15


def load_benchmarks(path: str) -> dict[str, dict]:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    out: dict[str, dict] = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        out[bench["name"]] = bench
    return out


def compare(baseline: dict[str, dict], run: dict[str, dict],
            tolerance: float) -> tuple[list[str], list[str]]:
    """Returns (failures, report_lines)."""
    failures: list[str] = []
    lines: list[str] = []
    for name in sorted(set(baseline) | set(run)):
        if name not in run:
            lines.append(f"SKIP {name}: only in baseline (retired?)")
            continue
        if name not in baseline:
            lines.append(f"SKIP {name}: only in run (new benchmark)")
            continue
        base, fresh = baseline[name], run[name]
        for counter in GATED_COUNTERS:
            if counter not in base:
                continue
            if counter not in fresh:
                failures.append(f"{name}: counter {counter} missing from run")
                continue
            b, f = float(base[counter]), float(fresh[counter])
            if b <= 0.0:
                lines.append(f"SKIP {name}/{counter}: non-positive baseline")
                continue
            ratio = f / b
            verdict = "OK"
            if ratio > 1.0 + tolerance:
                verdict = "REGRESSED"
                failures.append(
                    f"{name}: {counter} {f:.1f} vs baseline {b:.1f} "
                    f"({ratio:+.1%} > +{tolerance:.0%} tolerance)")
            lines.append(
                f"{verdict:>9} {name}/{counter}: {f:.1f} vs {b:.1f} "
                f"({ratio - 1.0:+.1%})")
        for counter in REPORT_ONLY_COUNTERS:
            if counter in base and counter in fresh:
                b, f = float(base[counter]), float(fresh[counter])
                delta = f / b - 1.0 if b > 0 else 0.0
                lines.append(
                    f"{'INFO':>9} {name}/{counter}: {f:.0f} vs {b:.0f} "
                    f"({delta:+.1%}, not gated)")
    return failures, lines


def run_gate(baseline_path: str, run_path: str, tolerance: float,
             update: bool) -> int:
    if update:
        shutil.copyfile(run_path, baseline_path)
        print(f"baseline updated: {baseline_path} <- {run_path}")
        return 0
    baseline = load_benchmarks(baseline_path)
    run = load_benchmarks(run_path)
    if not baseline:
        print(f"ERROR: no benchmarks in baseline {baseline_path}")
        return 1
    failures, lines = compare(baseline, run, tolerance)
    for line in lines:
        print(line)
    if failures:
        print(f"\nFAIL: {len(failures)} regression(s) beyond "
              f"+{tolerance:.0%}:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"\nPASS: no gated counter regressed beyond +{tolerance:.0%}")
    return 0


def self_test() -> int:
    """The gate gates: red on a +30% inflated counter, green on identity."""
    baseline = {
        "benchmarks": [
            {
                "name": "BM_SimulationCore/arrival_rate:1",
                "round_us_per_round": 1000.0,
                "phase_us_per_round": 400.0,
                "peak_rss_bytes": 50e6,
            },
            {
                "name": "BM_ProtocolRound/200",
                "round_us_per_round": 100.0,
                "phase_us_per_round": 60.0,
            },
        ]
    }
    base_map = {b["name"]: b for b in baseline["benchmarks"]}

    identical = copy.deepcopy(base_map)
    failures, _ = compare(base_map, identical, DEFAULT_TOLERANCE)
    if failures:
        print("SELF-TEST FAIL: identical run flagged as regression")
        return 1

    within = copy.deepcopy(base_map)
    within["BM_SimulationCore/arrival_rate:1"]["round_us_per_round"] *= 1.10
    failures, _ = compare(base_map, within, DEFAULT_TOLERANCE)
    if failures:
        print("SELF-TEST FAIL: +10% (within tolerance) flagged")
        return 1

    inflated = copy.deepcopy(base_map)
    inflated["BM_SimulationCore/arrival_rate:1"]["round_us_per_round"] *= 1.30
    failures, _ = compare(base_map, inflated, DEFAULT_TOLERANCE)
    if not failures:
        print("SELF-TEST FAIL: +30% regression NOT flagged")
        return 1
    if "round_us_per_round" not in failures[0]:
        print(f"SELF-TEST FAIL: wrong counter flagged: {failures[0]}")
        return 1

    # Memory is report-only: inflating RSS alone must stay green.
    rss_only = copy.deepcopy(base_map)
    rss_only["BM_SimulationCore/arrival_rate:1"]["peak_rss_bytes"] *= 10.0
    failures, _ = compare(base_map, rss_only, DEFAULT_TOLERANCE)
    if failures:
        print("SELF-TEST FAIL: ungated RSS counter flagged")
        return 1

    # New/retired benchmarks are skipped, never failed.
    extra = copy.deepcopy(base_map)
    extra["BM_Brand/New"] = {"name": "BM_Brand/New",
                             "round_us_per_round": 5.0}
    del extra["BM_ProtocolRound/200"]
    failures, lines = compare(base_map, extra, DEFAULT_TOLERANCE)
    if failures:
        print("SELF-TEST FAIL: unmatched benchmarks flagged")
        return 1
    if not any("only in run" in l for l in lines) or \
       not any("only in baseline" in l for l in lines):
        print("SELF-TEST FAIL: unmatched benchmarks not reported")
        return 1

    print("SELF-TEST PASS: gate is red on +30%, green on identity, "
          "+10%, RSS-only inflation, and unmatched benchmarks")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", help="committed baseline JSON")
    parser.add_argument("--run", help="fresh benchmark JSON export")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_TOLERANCE", DEFAULT_TOLERANCE)),
        help="allowed fractional slowdown (default 0.15 or $BENCH_TOLERANCE)")
    parser.add_argument("--update", action="store_true",
                        help="overwrite the baseline with the run")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate flags synthetic regressions")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.run:
        parser.error("--baseline and --run are required (or --self-test)")
    return run_gate(args.baseline, args.run, args.tolerance, args.update)


if __name__ == "__main__":
    sys.exit(main())
