file(REMOVE_RECURSE
  "CMakeFiles/taxation_policy.dir/examples/taxation_policy.cpp.o"
  "CMakeFiles/taxation_policy.dir/examples/taxation_policy.cpp.o.d"
  "taxation_policy"
  "taxation_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxation_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
