# Empty dependencies file for taxation_policy.
# This may be replaced when dependencies are built.
