# Empty dependencies file for bench_fig03_gini_vs_wealth.
# This may be replaced when dependencies are built.
