file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_gini_vs_wealth.dir/bench/fig03_gini_vs_wealth.cpp.o"
  "CMakeFiles/bench_fig03_gini_vs_wealth.dir/bench/fig03_gini_vs_wealth.cpp.o.d"
  "fig03_gini_vs_wealth"
  "fig03_gini_vs_wealth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_gini_vs_wealth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
