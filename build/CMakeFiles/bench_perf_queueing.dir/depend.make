# Empty dependencies file for bench_perf_queueing.
# This may be replaced when dependencies are built.
