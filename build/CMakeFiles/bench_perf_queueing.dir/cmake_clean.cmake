file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_queueing.dir/bench/perf_queueing.cpp.o"
  "CMakeFiles/bench_perf_queueing.dir/bench/perf_queueing.cpp.o.d"
  "perf_queueing"
  "perf_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
