file(REMOVE_RECURSE
  "CMakeFiles/test_chunk_ledger.dir/tests/test_chunk_ledger.cpp.o"
  "CMakeFiles/test_chunk_ledger.dir/tests/test_chunk_ledger.cpp.o.d"
  "test_chunk_ledger"
  "test_chunk_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chunk_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
