# Empty dependencies file for test_chunk_ledger.
# This may be replaced when dependencies are built.
