file(REMOVE_RECURSE
  "CMakeFiles/test_property_market.dir/tests/test_property_market.cpp.o"
  "CMakeFiles/test_property_market.dir/tests/test_property_market.cpp.o.d"
  "test_property_market"
  "test_property_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
