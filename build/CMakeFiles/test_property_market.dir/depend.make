# Empty dependencies file for test_property_market.
# This may be replaced when dependencies are built.
