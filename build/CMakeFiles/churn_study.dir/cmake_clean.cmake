file(REMOVE_RECURSE
  "CMakeFiles/churn_study.dir/examples/churn_study.cpp.o"
  "CMakeFiles/churn_study.dir/examples/churn_study.cpp.o.d"
  "churn_study"
  "churn_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
