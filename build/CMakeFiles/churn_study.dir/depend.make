# Empty dependencies file for churn_study.
# This may be replaced when dependencies are built.
