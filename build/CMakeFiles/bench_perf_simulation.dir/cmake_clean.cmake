file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_simulation.dir/bench/perf_simulation.cpp.o"
  "CMakeFiles/bench_perf_simulation.dir/bench/perf_simulation.cpp.o.d"
  "perf_simulation"
  "perf_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
