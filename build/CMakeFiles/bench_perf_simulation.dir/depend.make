# Empty dependencies file for bench_perf_simulation.
# This may be replaced when dependencies are built.
