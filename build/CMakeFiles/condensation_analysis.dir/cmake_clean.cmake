file(REMOVE_RECURSE
  "CMakeFiles/condensation_analysis.dir/examples/condensation_analysis.cpp.o"
  "CMakeFiles/condensation_analysis.dir/examples/condensation_analysis.cpp.o.d"
  "condensation_analysis"
  "condensation_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/condensation_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
