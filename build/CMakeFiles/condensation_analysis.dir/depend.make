# Empty dependencies file for condensation_analysis.
# This may be replaced when dependencies are built.
