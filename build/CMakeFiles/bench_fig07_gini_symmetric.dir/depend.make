# Empty dependencies file for bench_fig07_gini_symmetric.
# This may be replaced when dependencies are built.
