file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_gini_symmetric.dir/bench/fig07_gini_symmetric.cpp.o"
  "CMakeFiles/bench_fig07_gini_symmetric.dir/bench/fig07_gini_symmetric.cpp.o.d"
  "fig07_gini_symmetric"
  "fig07_gini_symmetric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_gini_symmetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
