file(REMOVE_RECURSE
  "CMakeFiles/market_cli.dir/examples/market_cli.cpp.o"
  "CMakeFiles/market_cli.dir/examples/market_cli.cpp.o.d"
  "market_cli"
  "market_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
