# Empty dependencies file for market_cli.
# This may be replaced when dependencies are built.
