file(REMOVE_RECURSE
  "libcreditflow.a"
)
