# Empty dependencies file for creditflow.
# This may be replaced when dependencies are built.
