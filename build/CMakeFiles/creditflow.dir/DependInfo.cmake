
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analyzer.cpp" "CMakeFiles/creditflow.dir/src/core/analyzer.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/core/analyzer.cpp.o.d"
  "/root/repo/src/core/mapping.cpp" "CMakeFiles/creditflow.dir/src/core/mapping.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/core/mapping.cpp.o.d"
  "/root/repo/src/core/market.cpp" "CMakeFiles/creditflow.dir/src/core/market.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/core/market.cpp.o.d"
  "/root/repo/src/core/report.cpp" "CMakeFiles/creditflow.dir/src/core/report.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/core/report.cpp.o.d"
  "/root/repo/src/econ/gini.cpp" "CMakeFiles/creditflow.dir/src/econ/gini.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/econ/gini.cpp.o.d"
  "/root/repo/src/econ/lorenz.cpp" "CMakeFiles/creditflow.dir/src/econ/lorenz.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/econ/lorenz.cpp.o.d"
  "/root/repo/src/econ/pricing.cpp" "CMakeFiles/creditflow.dir/src/econ/pricing.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/econ/pricing.cpp.o.d"
  "/root/repo/src/econ/taxation.cpp" "CMakeFiles/creditflow.dir/src/econ/taxation.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/econ/taxation.cpp.o.d"
  "/root/repo/src/econ/wealth.cpp" "CMakeFiles/creditflow.dir/src/econ/wealth.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/econ/wealth.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "CMakeFiles/creditflow.dir/src/graph/generators.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "CMakeFiles/creditflow.dir/src/graph/graph.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/graph/graph.cpp.o.d"
  "/root/repo/src/p2p/chunk.cpp" "CMakeFiles/creditflow.dir/src/p2p/chunk.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/p2p/chunk.cpp.o.d"
  "/root/repo/src/p2p/ledger.cpp" "CMakeFiles/creditflow.dir/src/p2p/ledger.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/p2p/ledger.cpp.o.d"
  "/root/repo/src/p2p/overlay.cpp" "CMakeFiles/creditflow.dir/src/p2p/overlay.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/p2p/overlay.cpp.o.d"
  "/root/repo/src/p2p/protocol.cpp" "CMakeFiles/creditflow.dir/src/p2p/protocol.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/p2p/protocol.cpp.o.d"
  "/root/repo/src/p2p/spending.cpp" "CMakeFiles/creditflow.dir/src/p2p/spending.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/p2p/spending.cpp.o.d"
  "/root/repo/src/p2p/trace.cpp" "CMakeFiles/creditflow.dir/src/p2p/trace.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/p2p/trace.cpp.o.d"
  "/root/repo/src/queueing/approx.cpp" "CMakeFiles/creditflow.dir/src/queueing/approx.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/queueing/approx.cpp.o.d"
  "/root/repo/src/queueing/closed_network.cpp" "CMakeFiles/creditflow.dir/src/queueing/closed_network.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/queueing/closed_network.cpp.o.d"
  "/root/repo/src/queueing/condensation.cpp" "CMakeFiles/creditflow.dir/src/queueing/condensation.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/queueing/condensation.cpp.o.d"
  "/root/repo/src/queueing/ctmc.cpp" "CMakeFiles/creditflow.dir/src/queueing/ctmc.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/queueing/ctmc.cpp.o.d"
  "/root/repo/src/queueing/equilibrium.cpp" "CMakeFiles/creditflow.dir/src/queueing/equilibrium.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/queueing/equilibrium.cpp.o.d"
  "/root/repo/src/queueing/mva.cpp" "CMakeFiles/creditflow.dir/src/queueing/mva.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/queueing/mva.cpp.o.d"
  "/root/repo/src/queueing/open_network.cpp" "CMakeFiles/creditflow.dir/src/queueing/open_network.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/queueing/open_network.cpp.o.d"
  "/root/repo/src/queueing/transfer_matrix.cpp" "CMakeFiles/creditflow.dir/src/queueing/transfer_matrix.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/queueing/transfer_matrix.cpp.o.d"
  "/root/repo/src/scenario/params.cpp" "CMakeFiles/creditflow.dir/src/scenario/params.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/scenario/params.cpp.o.d"
  "/root/repo/src/scenario/registry.cpp" "CMakeFiles/creditflow.dir/src/scenario/registry.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/scenario/registry.cpp.o.d"
  "/root/repo/src/scenario/result.cpp" "CMakeFiles/creditflow.dir/src/scenario/result.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/scenario/result.cpp.o.d"
  "/root/repo/src/scenario/runner.cpp" "CMakeFiles/creditflow.dir/src/scenario/runner.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/scenario/runner.cpp.o.d"
  "/root/repo/src/scenario/spec.cpp" "CMakeFiles/creditflow.dir/src/scenario/spec.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/scenario/spec.cpp.o.d"
  "/root/repo/src/scenario/sweep.cpp" "CMakeFiles/creditflow.dir/src/scenario/sweep.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/scenario/sweep.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "CMakeFiles/creditflow.dir/src/sim/event_queue.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "CMakeFiles/creditflow.dir/src/sim/metrics.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "CMakeFiles/creditflow.dir/src/sim/simulator.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/sim/simulator.cpp.o.d"
  "/root/repo/src/util/chart.cpp" "CMakeFiles/creditflow.dir/src/util/chart.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/util/chart.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "CMakeFiles/creditflow.dir/src/util/logging.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/util/logging.cpp.o.d"
  "/root/repo/src/util/math.cpp" "CMakeFiles/creditflow.dir/src/util/math.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/util/math.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/creditflow.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/creditflow.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/creditflow.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/creditflow.dir/src/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
