# Empty dependencies file for test_gini_lorenz.
# This may be replaced when dependencies are built.
