file(REMOVE_RECURSE
  "CMakeFiles/test_gini_lorenz.dir/tests/test_gini_lorenz.cpp.o"
  "CMakeFiles/test_gini_lorenz.dir/tests/test_gini_lorenz.cpp.o.d"
  "test_gini_lorenz"
  "test_gini_lorenz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gini_lorenz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
