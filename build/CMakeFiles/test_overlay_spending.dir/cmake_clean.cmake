file(REMOVE_RECURSE
  "CMakeFiles/test_overlay_spending.dir/tests/test_overlay_spending.cpp.o"
  "CMakeFiles/test_overlay_spending.dir/tests/test_overlay_spending.cpp.o.d"
  "test_overlay_spending"
  "test_overlay_spending.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overlay_spending.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
