# Empty dependencies file for test_overlay_spending.
# This may be replaced when dependencies are built.
