# Empty dependencies file for bench_fig09_taxation.
# This may be replaced when dependencies are built.
