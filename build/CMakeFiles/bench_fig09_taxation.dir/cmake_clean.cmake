file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_taxation.dir/bench/fig09_taxation.cpp.o"
  "CMakeFiles/bench_fig09_taxation.dir/bench/fig09_taxation.cpp.o.d"
  "fig09_taxation"
  "fig09_taxation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_taxation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
