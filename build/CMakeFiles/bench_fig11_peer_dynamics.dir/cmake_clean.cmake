file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_peer_dynamics.dir/bench/fig11_peer_dynamics.cpp.o"
  "CMakeFiles/bench_fig11_peer_dynamics.dir/bench/fig11_peer_dynamics.cpp.o.d"
  "fig11_peer_dynamics"
  "fig11_peer_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_peer_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
