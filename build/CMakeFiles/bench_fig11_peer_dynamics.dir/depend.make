# Empty dependencies file for bench_fig11_peer_dynamics.
# This may be replaced when dependencies are built.
