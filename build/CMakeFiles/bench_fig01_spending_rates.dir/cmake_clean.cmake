file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_spending_rates.dir/bench/fig01_spending_rates.cpp.o"
  "CMakeFiles/bench_fig01_spending_rates.dir/bench/fig01_spending_rates.cpp.o.d"
  "fig01_spending_rates"
  "fig01_spending_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_spending_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
