# Empty dependencies file for bench_fig01_spending_rates.
# This may be replaced when dependencies are built.
