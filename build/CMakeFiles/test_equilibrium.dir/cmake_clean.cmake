file(REMOVE_RECURSE
  "CMakeFiles/test_equilibrium.dir/tests/test_equilibrium.cpp.o"
  "CMakeFiles/test_equilibrium.dir/tests/test_equilibrium.cpp.o.d"
  "test_equilibrium"
  "test_equilibrium.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_equilibrium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
