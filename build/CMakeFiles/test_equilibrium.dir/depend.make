# Empty dependencies file for test_equilibrium.
# This may be replaced when dependencies are built.
