file(REMOVE_RECURSE
  "CMakeFiles/test_topology_equilibrium_properties.dir/tests/test_topology_equilibrium_properties.cpp.o"
  "CMakeFiles/test_topology_equilibrium_properties.dir/tests/test_topology_equilibrium_properties.cpp.o.d"
  "test_topology_equilibrium_properties"
  "test_topology_equilibrium_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology_equilibrium_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
