# Empty dependencies file for test_topology_equilibrium_properties.
# This may be replaced when dependencies are built.
