file(REMOVE_RECURSE
  "CMakeFiles/streaming_market.dir/examples/streaming_market.cpp.o"
  "CMakeFiles/streaming_market.dir/examples/streaming_market.cpp.o.d"
  "streaming_market"
  "streaming_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
