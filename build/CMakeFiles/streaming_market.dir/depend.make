# Empty dependencies file for streaming_market.
# This may be replaced when dependencies are built.
