file(REMOVE_RECURSE
  "CMakeFiles/test_closed_network.dir/tests/test_closed_network.cpp.o"
  "CMakeFiles/test_closed_network.dir/tests/test_closed_network.cpp.o.d"
  "test_closed_network"
  "test_closed_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_closed_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
