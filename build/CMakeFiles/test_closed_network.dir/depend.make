# Empty dependencies file for test_closed_network.
# This may be replaced when dependencies are built.
