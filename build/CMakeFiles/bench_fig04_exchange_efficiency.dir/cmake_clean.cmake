file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_exchange_efficiency.dir/bench/fig04_exchange_efficiency.cpp.o"
  "CMakeFiles/bench_fig04_exchange_efficiency.dir/bench/fig04_exchange_efficiency.cpp.o.d"
  "fig04_exchange_efficiency"
  "fig04_exchange_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_exchange_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
