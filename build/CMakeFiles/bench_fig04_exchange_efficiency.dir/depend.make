# Empty dependencies file for bench_fig04_exchange_efficiency.
# This may be replaced when dependencies are built.
