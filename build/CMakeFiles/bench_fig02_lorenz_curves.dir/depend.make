# Empty dependencies file for bench_fig02_lorenz_curves.
# This may be replaced when dependencies are built.
