file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_lorenz_curves.dir/bench/fig02_lorenz_curves.cpp.o"
  "CMakeFiles/bench_fig02_lorenz_curves.dir/bench/fig02_lorenz_curves.cpp.o.d"
  "fig02_lorenz_curves"
  "fig02_lorenz_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_lorenz_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
