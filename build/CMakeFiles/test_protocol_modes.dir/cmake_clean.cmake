file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_modes.dir/tests/test_protocol_modes.cpp.o"
  "CMakeFiles/test_protocol_modes.dir/tests/test_protocol_modes.cpp.o.d"
  "test_protocol_modes"
  "test_protocol_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
