# Empty dependencies file for test_protocol_modes.
# This may be replaced when dependencies are built.
