file(REMOVE_RECURSE
  "CMakeFiles/test_ctmc.dir/tests/test_ctmc.cpp.o"
  "CMakeFiles/test_ctmc.dir/tests/test_ctmc.cpp.o.d"
  "test_ctmc"
  "test_ctmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ctmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
