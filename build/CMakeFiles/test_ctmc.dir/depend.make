# Empty dependencies file for test_ctmc.
# This may be replaced when dependencies are built.
