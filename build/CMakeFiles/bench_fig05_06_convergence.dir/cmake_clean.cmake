file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_06_convergence.dir/bench/fig05_06_convergence.cpp.o"
  "CMakeFiles/bench_fig05_06_convergence.dir/bench/fig05_06_convergence.cpp.o.d"
  "fig05_06_convergence"
  "fig05_06_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_06_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
