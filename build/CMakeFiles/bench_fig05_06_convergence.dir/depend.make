# Empty dependencies file for bench_fig05_06_convergence.
# This may be replaced when dependencies are built.
