file(REMOVE_RECURSE
  "CMakeFiles/test_transfer_matrix.dir/tests/test_transfer_matrix.cpp.o"
  "CMakeFiles/test_transfer_matrix.dir/tests/test_transfer_matrix.cpp.o.d"
  "test_transfer_matrix"
  "test_transfer_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transfer_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
