# Empty dependencies file for test_transfer_matrix.
# This may be replaced when dependencies are built.
