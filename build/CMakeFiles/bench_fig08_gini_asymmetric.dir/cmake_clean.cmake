file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_gini_asymmetric.dir/bench/fig08_gini_asymmetric.cpp.o"
  "CMakeFiles/bench_fig08_gini_asymmetric.dir/bench/fig08_gini_asymmetric.cpp.o.d"
  "fig08_gini_asymmetric"
  "fig08_gini_asymmetric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_gini_asymmetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
