# Empty dependencies file for bench_fig08_gini_asymmetric.
# This may be replaced when dependencies are built.
