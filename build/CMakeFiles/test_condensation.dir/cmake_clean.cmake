file(REMOVE_RECURSE
  "CMakeFiles/test_condensation.dir/tests/test_condensation.cpp.o"
  "CMakeFiles/test_condensation.dir/tests/test_condensation.cpp.o.d"
  "test_condensation"
  "test_condensation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_condensation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
