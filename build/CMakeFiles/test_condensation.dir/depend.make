# Empty dependencies file for test_condensation.
# This may be replaced when dependencies are built.
