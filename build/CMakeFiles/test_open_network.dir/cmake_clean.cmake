file(REMOVE_RECURSE
  "CMakeFiles/test_open_network.dir/tests/test_open_network.cpp.o"
  "CMakeFiles/test_open_network.dir/tests/test_open_network.cpp.o.d"
  "test_open_network"
  "test_open_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_open_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
