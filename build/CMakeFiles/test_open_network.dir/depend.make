# Empty dependencies file for test_open_network.
# This may be replaced when dependencies are built.
