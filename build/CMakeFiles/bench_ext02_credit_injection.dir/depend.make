# Empty dependencies file for bench_ext02_credit_injection.
# This may be replaced when dependencies are built.
