file(REMOVE_RECURSE
  "CMakeFiles/bench_ext02_credit_injection.dir/bench/ext02_credit_injection.cpp.o"
  "CMakeFiles/bench_ext02_credit_injection.dir/bench/ext02_credit_injection.cpp.o.d"
  "ext02_credit_injection"
  "ext02_credit_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext02_credit_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
