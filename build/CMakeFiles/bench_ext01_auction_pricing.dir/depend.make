# Empty dependencies file for bench_ext01_auction_pricing.
# This may be replaced when dependencies are built.
