file(REMOVE_RECURSE
  "CMakeFiles/bench_ext01_auction_pricing.dir/bench/ext01_auction_pricing.cpp.o"
  "CMakeFiles/bench_ext01_auction_pricing.dir/bench/ext01_auction_pricing.cpp.o.d"
  "ext01_auction_pricing"
  "ext01_auction_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext01_auction_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
