# Empty dependencies file for test_pricing_taxation.
# This may be replaced when dependencies are built.
