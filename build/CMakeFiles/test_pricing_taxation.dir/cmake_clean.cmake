file(REMOVE_RECURSE
  "CMakeFiles/test_pricing_taxation.dir/tests/test_pricing_taxation.cpp.o"
  "CMakeFiles/test_pricing_taxation.dir/tests/test_pricing_taxation.cpp.o.d"
  "test_pricing_taxation"
  "test_pricing_taxation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pricing_taxation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
