file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_dynamic_spending.dir/bench/fig10_dynamic_spending.cpp.o"
  "CMakeFiles/bench_fig10_dynamic_spending.dir/bench/fig10_dynamic_spending.cpp.o.d"
  "fig10_dynamic_spending"
  "fig10_dynamic_spending.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_dynamic_spending.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
