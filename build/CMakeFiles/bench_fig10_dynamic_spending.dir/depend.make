# Empty dependencies file for bench_fig10_dynamic_spending.
# This may be replaced when dependencies are built.
