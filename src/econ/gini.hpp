// CreditFlow: the Gini index — the paper's measure of wealth condensation
// (0 = perfect equality, →1 = extreme inequality; Sec. III-A / V-B2).
#pragma once

#include <span>
#include <vector>

namespace creditflow::econ {

/// Gini index of a finite sample of non-negative wealth values, computed
/// exactly from order statistics in O(n log n):
///   G = Σ_k (2k - n - 1) x_(k) / (n Σ x) ,  x_(k) ascending.
/// Requires a positive total. A sample of identical values gives 0; a sample
/// with a single owner gives (n-1)/n.
[[nodiscard]] double gini(std::span<const double> wealth);

/// Scratch-reusing flavor: the sample is copied into `scratch` and sorted
/// there, so periodic sampling performs no allocation once the buffer has
/// warmed up. Result is bit-identical to gini(wealth).
[[nodiscard]] double gini(std::span<const double> wealth,
                          std::vector<double>& scratch);

/// Gini index of a wealth *distribution* with PMF over {0,1,2,...}:
///   G = E|X - Y| / (2 E X)   for i.i.d. X, Y ~ pmf.
/// O(L) over the support via the CDF identity
///   E|X-Y| = 2 Σ_b F(b)(1 - F(b)).
/// Requires positive mean. PMF need not be normalized.
[[nodiscard]] double gini_from_pmf(std::span<const double> pmf);

/// Convenience overload for integer wealth samples.
[[nodiscard]] double gini_u64(std::span<const unsigned long long> wealth);

}  // namespace creditflow::econ
