// CreditFlow: Lorenz curves — the cumulative wealth-share curves of
// Fig. 2 of the paper (and the geometric object underlying the Gini index).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace creditflow::econ {

/// A Lorenz curve: points (x_k, y_k) with x = cumulative population share
/// (sorted poorest-first) and y = cumulative wealth share. Both run from
/// (0,0) to (1,1); y is convex and y_k <= x_k for wealth data.
struct LorenzCurve {
  std::vector<double> population_share;  ///< x coordinates (ascending)
  std::vector<double> wealth_share;      ///< y coordinates (ascending)

  [[nodiscard]] std::size_t size() const { return population_share.size(); }
  /// Linear interpolation of y at any x in [0,1].
  [[nodiscard]] double share_at(double x) const;
};

/// Lorenz curve of a finite sample of wealth values (each >= 0, positive sum).
[[nodiscard]] LorenzCurve lorenz_from_samples(std::span<const double> wealth);

/// Scratch-reusing flavor: the sample is copied into `scratch` and sorted
/// there, and the curve is built into `out` (reusing its vectors), so
/// repeated curve extraction performs no allocation once the buffers have
/// warmed up. The resulting curve is bit-identical to
/// lorenz_from_samples(wealth).
void lorenz_from_samples(std::span<const double> wealth,
                         std::vector<double>& scratch, LorenzCurve& out);

/// Lorenz curve of a *distribution*: each peer's wealth is an i.i.d. draw
/// from pmf over {0,1,...} (pmf need not be normalized; positive mean
/// required). This is the construction used for the paper's Fig. 2, applied
/// to the marginal PMF of Eq. (8).
[[nodiscard]] LorenzCurve lorenz_from_pmf(std::span<const double> pmf);

/// Area between the equality diagonal and the curve, times 2 — i.e., the
/// Gini index computed geometrically from the curve (trapezoidal).
[[nodiscard]] double gini_from_lorenz(const LorenzCurve& curve);

}  // namespace creditflow::econ
