#include "econ/wealth.hpp"

#include <algorithm>
#include <cmath>

#include "econ/gini.hpp"
#include "util/assert.hpp"

namespace creditflow::econ {

WealthSummary summarize_wealth(std::span<const double> wealth) {
  CF_EXPECTS(!wealth.empty());
  WealthSummary s;
  std::vector<double> sorted(wealth.begin(), wealth.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  for (double w : sorted) {
    CF_EXPECTS_MSG(w >= 0.0, "wealth values must be non-negative");
    s.total += w;
  }
  s.mean = s.total / static_cast<double>(n);
  s.median = n % 2 == 1 ? sorted[n / 2]
                        : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  s.max = sorted.back();
  std::size_t zeros = 0;
  for (double w : sorted) {
    if (w == 0.0) ++zeros;
  }
  s.bankrupt_fraction = static_cast<double>(zeros) / static_cast<double>(n);
  if (s.total > 0.0) {
    s.gini = gini(wealth);
    s.top1_share = top_share(wealth, 0.01);
    s.top10_share = top_share(wealth, 0.10);
  }
  return s;
}

double top_share(std::span<const double> wealth, double fraction) {
  CF_EXPECTS(!wealth.empty());
  CF_EXPECTS(fraction > 0.0 && fraction <= 1.0);
  std::vector<double> sorted(wealth.begin(), wealth.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  double total = 0.0;
  for (double w : sorted) total += w;
  if (total <= 0.0) return 0.0;
  const auto k = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(fraction * static_cast<double>(sorted.size()))));
  double top = 0.0;
  for (std::size_t i = 0; i < k; ++i) top += sorted[i];
  return top / total;
}

double fraction_below(std::span<const double> wealth, double threshold) {
  CF_EXPECTS(!wealth.empty());
  std::size_t count = 0;
  for (double w : wealth) {
    if (w < threshold) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(wealth.size());
}

std::vector<double> sorted_ascending(std::span<const double> wealth) {
  std::vector<double> sorted(wealth.begin(), wealth.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace creditflow::econ
