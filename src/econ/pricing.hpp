// CreditFlow: chunk pricing schemes (Sec. V-C of the paper).
//
// The price a seller charges per chunk shapes the spending rates μ and the
// transfer probabilities P, and with them the utilization profile that
// decides condensation. The paper evaluates uniform pricing (1 credit per
// chunk) and Poisson-distributed prices (mean 1); the related-work schemes
// (single price per peer, linear pricing) are provided for ablations.
//
// Prices are deterministic functions of (seller, chunk) — hashed, not
// stateful — so runs are reproducible and schedulers may query prices
// without mutating anything.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace creditflow::econ {

using Credits = std::uint64_t;

/// Interface: how many credits seller `seller` charges for chunk `chunk`.
class PricingScheme {
 public:
  virtual ~PricingScheme() = default;
  [[nodiscard]] virtual Credits price(std::uint32_t seller,
                                      std::uint64_t chunk) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Long-run mean price across sellers/chunks (exact where closed-form).
  [[nodiscard]] virtual double mean_price() const = 0;
};

/// Every chunk costs the same flat price everywhere.
class UniformPricing final : public PricingScheme {
 public:
  explicit UniformPricing(Credits price_per_chunk = 1);
  [[nodiscard]] Credits price(std::uint32_t seller,
                              std::uint64_t chunk) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double mean_price() const override;

 private:
  Credits price_;
};

/// Poisson-distributed price per (seller, chunk) pair with the given mean —
/// the paper's Fig. 1 "condensed" configuration (mean 1). `min_price` floors
/// the draw (0 keeps genuine free chunks, which transfer no credits).
class PoissonPricing final : public PricingScheme {
 public:
  PoissonPricing(double mean, Credits min_price = 0,
                 std::uint64_t salt = 0x9e3779b97f4a7c15ULL);
  [[nodiscard]] Credits price(std::uint32_t seller,
                              std::uint64_t chunk) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double mean_price() const override;

 private:
  double mean_;
  Credits min_price_;
  std::uint64_t salt_;
};

/// Each seller draws a single personal price in [lo, hi] once (hashed from
/// its id) and charges it for every chunk — "a single price per peer".
class PerSellerPricing final : public PricingScheme {
 public:
  PerSellerPricing(Credits lo, Credits hi,
                   std::uint64_t salt = 0x517cc1b727220a95ULL);
  [[nodiscard]] Credits price(std::uint32_t seller,
                              std::uint64_t chunk) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double mean_price() const override;

 private:
  Credits lo_;
  Credits hi_;
  std::uint64_t salt_;
};

/// Price linear in a hashed per-chunk "size" s ∈ [1, max_size]:
/// price = base + slope·(s-1). Models linear pricing over heterogeneous
/// chunk sizes.
class LinearSizePricing final : public PricingScheme {
 public:
  LinearSizePricing(Credits base, Credits slope, std::uint32_t max_size = 4,
                    std::uint64_t salt = 0x2545f4914f6cdd1dULL);
  [[nodiscard]] Credits price(std::uint32_t seller,
                              std::uint64_t chunk) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double mean_price() const override;

 private:
  Credits base_;
  Credits slope_;
  std::uint32_t max_size_;
  std::uint64_t salt_;
};

/// Pricing scheme selector used by MarketConfig.
enum class PricingKind {
  kUniform,
  kPoisson,
  kPerSeller,
  kLinearSize,
};

/// Parameters for make_pricing.
struct PricingParams {
  PricingKind kind = PricingKind::kUniform;
  Credits uniform_price = 1;
  double poisson_mean = 1.0;
  Credits poisson_min = 0;
  Credits per_seller_lo = 1;
  Credits per_seller_hi = 3;
  Credits linear_base = 1;
  Credits linear_slope = 1;
  std::uint32_t linear_max_size = 4;
  std::uint64_t salt = 0x9e3779b97f4a7c15ULL;
};

[[nodiscard]] std::unique_ptr<PricingScheme> make_pricing(
    const PricingParams& params);

}  // namespace creditflow::econ
