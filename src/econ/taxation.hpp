// CreditFlow: the taxation counter-measure of Sec. VI-C of the paper.
//
// "For a peer with a wealth above a given tax threshold, the system collects
//  a fixed proportion of its income. Whenever the system has collected N
//  units of credits, it returns a unit to each peer."
//
// Credits are integral, so fractional liabilities accrue in a per-peer
// accumulator and are collected one whole credit at a time; the engine is
// pure policy — actual balance movements are executed by the caller (the
// ledger), keeping conservation checkable in one place.
#pragma once

#include <cstdint>
#include <unordered_map>

namespace creditflow::econ {

/// Static tax parameters.
struct TaxPolicy {
  bool enabled = false;
  double rate = 0.1;        ///< proportion of income collected, in [0,1)
  double threshold = 50.0;  ///< wealth level above which income is taxed
};

/// Bookkeeping engine for threshold income taxation with equal redistribution.
class TaxationEngine {
 public:
  explicit TaxationEngine(TaxPolicy policy);

  [[nodiscard]] const TaxPolicy& policy() const { return policy_; }

  /// Record that peer `peer` earned `income` credits, holding
  /// `wealth_after_income` after the sale. Returns the number of whole
  /// credits the caller must move from the peer into the treasury now
  /// (possibly 0). Disabled policies always return 0.
  [[nodiscard]] std::uint64_t on_income(std::uint32_t peer,
                                        std::uint64_t income,
                                        std::uint64_t wealth_after_income);

  /// Credits collected into the treasury and not yet redistributed.
  [[nodiscard]] std::uint64_t treasury() const { return treasury_; }
  /// Lifetime totals for reporting.
  [[nodiscard]] std::uint64_t total_collected() const { return collected_; }
  [[nodiscard]] std::uint64_t total_redistributed() const {
    return redistributed_;
  }

  /// The redistribution rule: when the treasury holds at least
  /// `population_size` credits, remove that many and return true — the
  /// caller then credits one unit to every current peer. Returns false
  /// (no change) otherwise. `population_size` must be positive.
  [[nodiscard]] bool try_redistribute(std::uint64_t population_size);

  /// Forget a departed peer's fractional liability (open networks).
  void forget_peer(std::uint32_t peer);

  /// Credits the treasury directly (used when a departing peer's residual
  /// balance is recycled instead of leaving the system — optional rule).
  void deposit(std::uint64_t credits);

 private:
  TaxPolicy policy_;
  std::uint64_t treasury_ = 0;
  std::uint64_t collected_ = 0;
  std::uint64_t redistributed_ = 0;
  std::unordered_map<std::uint32_t, double> fractional_debt_;
};

}  // namespace creditflow::econ
