#include "econ/lorenz.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace creditflow::econ {

double LorenzCurve::share_at(double x) const {
  CF_EXPECTS(x >= 0.0 && x <= 1.0);
  CF_EXPECTS(!population_share.empty());
  if (x <= population_share.front()) {
    // Interpolate from the implicit origin (0,0).
    const double x0 = population_share.front();
    return x0 > 0.0 ? wealth_share.front() * (x / x0) : wealth_share.front();
  }
  const auto it = std::lower_bound(population_share.begin(),
                                   population_share.end(), x);
  const auto hi = static_cast<std::size_t>(it - population_share.begin());
  if (hi >= population_share.size()) return wealth_share.back();
  if (population_share[hi] == x) return wealth_share[hi];
  const std::size_t lo = hi - 1;
  const double x0 = population_share[lo];
  const double x1 = population_share[hi];
  const double y0 = wealth_share[lo];
  const double y1 = wealth_share[hi];
  return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
}

LorenzCurve lorenz_from_samples(std::span<const double> wealth) {
  LorenzCurve curve;
  std::vector<double> scratch;
  lorenz_from_samples(wealth, scratch, curve);
  return curve;
}

void lorenz_from_samples(std::span<const double> wealth,
                         std::vector<double>& scratch, LorenzCurve& out) {
  CF_EXPECTS(!wealth.empty());
  scratch.assign(wealth.begin(), wealth.end());
  double total = 0.0;
  for (double w : scratch) {
    CF_EXPECTS_MSG(w >= 0.0, "wealth values must be non-negative");
    total += w;
  }
  CF_EXPECTS_MSG(total > 0.0, "total wealth must be positive");
  std::sort(scratch.begin(), scratch.end());

  const std::size_t n = scratch.size();
  out.population_share.clear();
  out.wealth_share.clear();
  out.population_share.reserve(n + 1);
  out.wealth_share.reserve(n + 1);
  out.population_share.push_back(0.0);
  out.wealth_share.push_back(0.0);
  double cum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    cum += scratch[k];
    out.population_share.push_back(static_cast<double>(k + 1) /
                                   static_cast<double>(n));
    out.wealth_share.push_back(cum / total);
  }
  out.wealth_share.back() = 1.0;  // absorb rounding
}

LorenzCurve lorenz_from_pmf(std::span<const double> pmf) {
  CF_EXPECTS(!pmf.empty());
  double mass = 0.0;
  double mean = 0.0;
  for (std::size_t b = 0; b < pmf.size(); ++b) {
    CF_EXPECTS_MSG(pmf[b] >= 0.0, "PMF entries must be non-negative");
    mass += pmf[b];
    mean += static_cast<double>(b) * pmf[b];
  }
  CF_EXPECTS_MSG(mass > 0.0, "PMF has no mass");
  CF_EXPECTS_MSG(mean > 0.0, "distribution mean must be positive");

  LorenzCurve curve;
  curve.population_share.reserve(pmf.size() + 1);
  curve.wealth_share.reserve(pmf.size() + 1);
  curve.population_share.push_back(0.0);
  curve.wealth_share.push_back(0.0);
  double cum_pop = 0.0;
  double cum_wealth = 0.0;
  for (std::size_t b = 0; b < pmf.size(); ++b) {
    if (pmf[b] == 0.0) continue;
    cum_pop += pmf[b] / mass;
    cum_wealth += static_cast<double>(b) * pmf[b] / mean;
    curve.population_share.push_back(std::min(cum_pop, 1.0));
    curve.wealth_share.push_back(std::min(cum_wealth, 1.0));
  }
  curve.population_share.back() = 1.0;
  curve.wealth_share.back() = 1.0;
  return curve;
}

double gini_from_lorenz(const LorenzCurve& curve) {
  CF_EXPECTS(curve.size() >= 2);
  // Gini = 1 - 2 * area under the Lorenz curve (trapezoidal rule).
  double area = 0.0;
  for (std::size_t k = 1; k < curve.size(); ++k) {
    const double dx =
        curve.population_share[k] - curve.population_share[k - 1];
    area += 0.5 * dx * (curve.wealth_share[k] + curve.wealth_share[k - 1]);
  }
  return std::clamp(1.0 - 2.0 * area, 0.0, 1.0);
}

}  // namespace creditflow::econ
