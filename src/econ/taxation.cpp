#include "econ/taxation.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace creditflow::econ {

TaxationEngine::TaxationEngine(TaxPolicy policy) : policy_(policy) {
  CF_EXPECTS(policy.rate >= 0.0 && policy.rate < 1.0);
  CF_EXPECTS(policy.threshold >= 0.0);
}

std::uint64_t TaxationEngine::on_income(std::uint32_t peer,
                                        std::uint64_t income,
                                        std::uint64_t wealth_after_income) {
  if (!policy_.enabled || policy_.rate == 0.0 || income == 0) return 0;
  if (static_cast<double>(wealth_after_income) <= policy_.threshold) return 0;

  double& debt = fractional_debt_[peer];
  debt += policy_.rate * static_cast<double>(income);
  // The epsilon keeps accumulated binary-rounding error (e.g. ten 0.1
  // liabilities summing to 0.9999…) from deferring a whole due credit.
  auto due = static_cast<std::uint64_t>(std::floor(debt + 1e-9));
  if (due == 0) return 0;
  // Never collect more than the peer can pay right now.
  if (due > wealth_after_income) due = wealth_after_income;
  debt -= static_cast<double>(due);
  treasury_ += due;
  collected_ += due;
  return due;
}

bool TaxationEngine::try_redistribute(std::uint64_t population_size) {
  CF_EXPECTS(population_size > 0);
  if (!policy_.enabled) return false;
  if (treasury_ < population_size) return false;
  treasury_ -= population_size;
  redistributed_ += population_size;
  return true;
}

void TaxationEngine::forget_peer(std::uint32_t peer) {
  fractional_debt_.erase(peer);
}

void TaxationEngine::deposit(std::uint64_t credits) { treasury_ += credits; }

}  // namespace creditflow::econ
