#include "econ/pricing.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace creditflow::econ {

namespace {

/// Stable 64-bit mix of (seller, chunk, salt) → uniform double in [0,1).
double hashed_uniform(std::uint32_t seller, std::uint64_t chunk,
                      std::uint64_t salt) {
  util::SplitMix64 sm(salt ^ (static_cast<std::uint64_t>(seller) << 32) ^
                      (chunk * 0xff51afd7ed558ccdULL));
  (void)sm.next();  // decorrelate nearby keys
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

/// Poisson inverse-CDF from a single uniform (mean expected to be small).
std::uint64_t poisson_from_uniform(double mean, double u) {
  double p = std::exp(-mean);
  double cdf = p;
  std::uint64_t k = 0;
  while (u > cdf && k < 10000) {
    ++k;
    p *= mean / static_cast<double>(k);
    cdf += p;
  }
  return k;
}

}  // namespace

UniformPricing::UniformPricing(Credits price_per_chunk)
    : price_(price_per_chunk) {
  CF_EXPECTS_MSG(price_per_chunk > 0, "uniform price must be positive");
}

Credits UniformPricing::price(std::uint32_t, std::uint64_t) const {
  return price_;
}

std::string UniformPricing::name() const {
  return "uniform(" + std::to_string(price_) + ")";
}

double UniformPricing::mean_price() const {
  return static_cast<double>(price_);
}

PoissonPricing::PoissonPricing(double mean, Credits min_price,
                               std::uint64_t salt)
    : mean_(mean), min_price_(min_price), salt_(salt) {
  CF_EXPECTS_MSG(mean > 0.0, "poisson mean must be positive");
}

Credits PoissonPricing::price(std::uint32_t seller,
                              std::uint64_t chunk) const {
  const double u = hashed_uniform(seller, chunk, salt_);
  const Credits draw = poisson_from_uniform(mean_, u);
  return draw < min_price_ ? min_price_ : draw;
}

std::string PoissonPricing::name() const {
  return "poisson(mean=" + std::to_string(mean_) + ")";
}

double PoissonPricing::mean_price() const {
  if (min_price_ == 0) return mean_;
  // E[max(X, m)] = m + Σ_{k>m} (k-m) P(X=k); compute numerically.
  double p = std::exp(-mean_);
  double acc = static_cast<double>(min_price_);
  for (std::uint64_t k = 1; k < min_price_ + 200; ++k) {
    p *= mean_ / static_cast<double>(k);
    if (k > min_price_)
      acc += static_cast<double>(k - min_price_) * p;
  }
  return acc;
}

PerSellerPricing::PerSellerPricing(Credits lo, Credits hi, std::uint64_t salt)
    : lo_(lo), hi_(hi), salt_(salt) {
  CF_EXPECTS(lo >= 1 && lo <= hi);
}

Credits PerSellerPricing::price(std::uint32_t seller, std::uint64_t) const {
  const double u = hashed_uniform(seller, 0, salt_);
  const auto range = hi_ - lo_ + 1;
  return lo_ + static_cast<Credits>(u * static_cast<double>(range));
}

std::string PerSellerPricing::name() const {
  return "per-seller[" + std::to_string(lo_) + "," + std::to_string(hi_) + "]";
}

double PerSellerPricing::mean_price() const {
  return 0.5 * static_cast<double>(lo_ + hi_);
}

LinearSizePricing::LinearSizePricing(Credits base, Credits slope,
                                     std::uint32_t max_size,
                                     std::uint64_t salt)
    : base_(base), slope_(slope), max_size_(max_size), salt_(salt) {
  CF_EXPECTS(base >= 1);
  CF_EXPECTS(max_size >= 1);
}

Credits LinearSizePricing::price(std::uint32_t, std::uint64_t chunk) const {
  // Size is a property of the chunk alone so all sellers agree on it.
  const double u = hashed_uniform(0, chunk, salt_);
  const auto size =
      1 + static_cast<std::uint32_t>(u * static_cast<double>(max_size_));
  const auto clamped = size > max_size_ ? max_size_ : size;
  return base_ + slope_ * (clamped - 1);
}

std::string LinearSizePricing::name() const {
  return "linear(base=" + std::to_string(base_) +
         ",slope=" + std::to_string(slope_) + ")";
}

double LinearSizePricing::mean_price() const {
  return static_cast<double>(base_) +
         static_cast<double>(slope_) * 0.5 *
             static_cast<double>(max_size_ - 1);
}

std::unique_ptr<PricingScheme> make_pricing(const PricingParams& params) {
  switch (params.kind) {
    case PricingKind::kUniform:
      return std::make_unique<UniformPricing>(params.uniform_price);
    case PricingKind::kPoisson:
      return std::make_unique<PoissonPricing>(params.poisson_mean,
                                              params.poisson_min, params.salt);
    case PricingKind::kPerSeller:
      return std::make_unique<PerSellerPricing>(
          params.per_seller_lo, params.per_seller_hi, params.salt);
    case PricingKind::kLinearSize:
      return std::make_unique<LinearSizePricing>(
          params.linear_base, params.linear_slope, params.linear_max_size,
          params.salt);
  }
  throw util::InvariantError("unknown pricing kind");
}

}  // namespace creditflow::econ
