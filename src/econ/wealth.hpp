// CreditFlow: wealth-distribution summaries and condensation indicators
// beyond the Gini index (top-share, bankruptcy fraction, skew diagnostics).
#pragma once

#include <span>
#include <vector>

namespace creditflow::econ {

/// Summary of a wealth snapshot across peers.
struct WealthSummary {
  double total = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double max = 0.0;
  double gini = 0.0;
  double top1_share = 0.0;        ///< wealth share of the richest 1%
  double top10_share = 0.0;       ///< wealth share of the richest 10%
  double bankrupt_fraction = 0.0; ///< fraction of peers with wealth == 0
};

/// Compute all summary fields; requires a non-empty sample with a positive
/// total (a fully-bankrupt population is reported with gini = 0 and
/// bankrupt_fraction = 1 rather than rejected).
[[nodiscard]] WealthSummary summarize_wealth(std::span<const double> wealth);

/// Wealth share of the richest `fraction` of peers (fraction in (0,1]).
[[nodiscard]] double top_share(std::span<const double> wealth,
                               double fraction);

/// Fraction of peers whose wealth is strictly below `threshold`.
[[nodiscard]] double fraction_below(std::span<const double> wealth,
                                    double threshold);

/// Sorted copy (ascending) — the x-axis ordering used by the paper's
/// Figs. 1, 5, 6 ("peer indices sorted in increasing order").
[[nodiscard]] std::vector<double> sorted_ascending(
    std::span<const double> wealth);

}  // namespace creditflow::econ
