#include "econ/gini.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/assert.hpp"

namespace creditflow::econ {

namespace {

/// Shared kernel: sorts `sorted` in place and evaluates the order-statistic
/// formula. Both public flavors funnel here so their results are
/// bit-identical by construction.
double gini_inplace(std::vector<double>& sorted) {
  CF_EXPECTS(!sorted.empty());
  double total = 0.0;
  for (double w : sorted) {
    CF_EXPECTS_MSG(w >= 0.0, "wealth values must be non-negative");
    total += w;
  }
  CF_EXPECTS_MSG(total > 0.0, "total wealth must be positive");
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double weighted = 0.0;
  for (std::size_t k = 0; k < sorted.size(); ++k) {
    weighted += (2.0 * static_cast<double>(k + 1) - n - 1.0) * sorted[k];
  }
  return std::clamp(weighted / (n * total), 0.0, 1.0);
}

}  // namespace

double gini(std::span<const double> wealth) {
  std::vector<double> sorted(wealth.begin(), wealth.end());
  return gini_inplace(sorted);
}

double gini(std::span<const double> wealth, std::vector<double>& scratch) {
  scratch.assign(wealth.begin(), wealth.end());
  return gini_inplace(scratch);
}

double gini_from_pmf(std::span<const double> pmf) {
  CF_EXPECTS(!pmf.empty());
  double mass = 0.0;
  double mean = 0.0;
  for (std::size_t b = 0; b < pmf.size(); ++b) {
    CF_EXPECTS_MSG(pmf[b] >= 0.0, "PMF entries must be non-negative");
    mass += pmf[b];
    mean += static_cast<double>(b) * pmf[b];
  }
  CF_EXPECTS_MSG(mass > 0.0, "PMF has no mass");
  CF_EXPECTS_MSG(mean > 0.0, "distribution mean must be positive");

  // E|X-Y| = 2 Σ_b F(b)(1-F(b)) over integer support (b = 0..L-1), with F
  // normalized by the total mass.
  double cdf = 0.0;
  double e_abs_diff = 0.0;
  for (std::size_t b = 0; b + 1 < pmf.size(); ++b) {
    cdf += pmf[b] / mass;
    e_abs_diff += 2.0 * cdf * (1.0 - cdf);
  }
  const double normalized_mean = mean / mass;
  return std::clamp(e_abs_diff / (2.0 * normalized_mean), 0.0, 1.0);
}

double gini_u64(std::span<const unsigned long long> wealth) {
  std::vector<double> w(wealth.size());
  for (std::size_t i = 0; i < wealth.size(); ++i)
    w[i] = static_cast<double>(wealth[i]);
  return gini(w);
}

}  // namespace creditflow::econ
