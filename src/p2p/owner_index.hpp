// CreditFlow: the per-round chunk→owner index behind the streaming
// protocol's purchase fast path.
//
// The naive purchase loop rescans every neighbor for every missing chunk —
// O(window × degree) BufferMap::has calls per peer per round, the hot path
// called out in ROADMAP.md. The index replaces those scans with word-wide
// bit arithmetic: it mirrors every peer's window ownership as a 64-bit
// bitmap keyed by the same ring slot BufferMap uses (slot = chunk %
// window), maintained incrementally as chunks are seeded, purchased,
// evicted, and as peers join/leave. A buyer then resolves "which of my
// neighbors own chunk c and still have upload budget" for its whole
// shopping list at once: AND each eligible neighbor's ownership word(s)
// against the mask of wanted chunks and walk the set bits.
//
// Layout choice: the index is peer→chunk bitmaps, not a global chunk→owner
// list. A global owner list is the wrong shape twice over — in a healthy
// market most peers own most chunks (hundreds of owners per chunk vs a few
// dozen neighbors), and the protocol's tie-break contract (uniform choice /
// cheapest-ask over candidates *in the buyer's neighbor-list order*) would
// force a re-sort of every candidate set. Walking neighbors in list order
// and appending their owned-∧-wanted bits yields each chunk's candidate
// list already in neighbor order, so the indexed protocol reproduces the
// naive scan's RNG draws — and therefore its results — bit for bit.
//
// Slot-aliasing invariant: a bitmap slot only identifies a chunk relative
// to a window base, and the index stores no bases. That is sound because
// every alive peer shares the same window base whenever the index is
// queried (run_round advances all windows in lockstep before the purchase
// phase, and churn events never interleave with a round), and eviction
// clears bits before a slot is ever reused by a later chunk.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "p2p/chunk.hpp"
#include "p2p/ledger.hpp"

namespace creditflow::p2p {

class BufferMap;

/// Incrementally-maintained per-peer window-ownership bitmaps.
class OwnerIndex {
 public:
  /// Index for `max_peers` slots over windows of `window_capacity` chunks.
  OwnerIndex(std::size_t max_peers, std::size_t window_capacity);

  [[nodiscard]] std::size_t capacity() const { return max_peers_; }
  [[nodiscard]] std::size_t window_capacity() const { return window_; }
  /// 64-bit words per peer bitmap.
  [[nodiscard]] std::size_t words_per_peer() const { return words_; }

  /// Ring slot of a chunk id (identical to BufferMap's mapping).
  [[nodiscard]] std::size_t slot(ChunkId c) const {
    return static_cast<std::size_t>(c % window_);
  }

  // ---- Incremental maintenance (mirrors BufferMap mutations) -------------

  /// Peer now holds `c` (delivered, seeded, or warm-started). Inline: this
  /// runs once per chunk delivery, squarely on the hot path.
  void on_gain(PeerId peer, ChunkId c) {
    const std::size_t s = slot(c);
    bits_[peer * words_ + s / 64] |= std::uint64_t{1} << (s % 64);
  }
  /// Peer's window advanced from `old_base` to `new_base`: chunks falling
  /// out of the window are evicted (same clearing rule as
  /// BufferMap::advance).
  void on_advance(PeerId peer, ChunkId old_base, ChunkId new_base);
  /// Peer left the market or reset its window: drop all ownership bits.
  void on_clear(PeerId peer);

  // ---- Queries ------------------------------------------------------------

  /// The peer's ownership bitmap (words_per_peer() words; bit `slot(c)`
  /// set ⟺ the peer holds chunk c of the current window). Inline: the
  /// purchase phase reads one bitmap per neighbor per buyer.
  [[nodiscard]] std::span<const std::uint64_t> owned(PeerId peer) const {
    return {bits_.data() + peer * words_, words_};
  }

  /// True when the peer's bitmap matches the buffer's contents bit for bit
  /// (invariant check for tests; O(window)).
  [[nodiscard]] bool mirrors(PeerId peer, const BufferMap& buffer) const;

 private:
  std::size_t max_peers_;
  std::size_t window_;
  std::size_t words_;
  std::vector<std::uint64_t> bits_;  ///< max_peers_ × words_, row-major
};

}  // namespace creditflow::p2p
