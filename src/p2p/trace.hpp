// CreditFlow: transaction traces — the raw record from which the Table I
// mapping (P, λ, μ) is estimated empirically (core/mapping.*).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "p2p/ledger.hpp"

namespace creditflow::p2p {

/// One chunk purchase: buyer paid `price` to seller for `chunk` at `time`.
struct TransactionRecord {
  double time = 0.0;
  PeerId buyer = 0;
  PeerId seller = 0;
  std::uint64_t chunk = 0;
  Credits price = 0;
};

/// Optional transaction log with pairwise flow aggregation.
///
/// Full logging is O(#transactions) memory, so it is off by default and
/// enabled for analysis runs; pair aggregation alone is cheap and always on
/// once the trace is enabled.
class TransactionTrace {
 public:
  TransactionTrace() = default;

  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }
  /// Keep individual records (implies enabled).
  void set_keep_records(bool keep);

  /// Inline: called once per transaction on the hot path; the disabled
  /// case (the default) must cost two counter bumps, not a function call.
  void record(double time, PeerId buyer, PeerId seller, std::uint64_t chunk,
              Credits price) {
    ++count_;
    volume_ += price;
    if (enabled_) record_full(time, buyer, seller, chunk, price);
  }

  [[nodiscard]] const std::vector<TransactionRecord>& records() const {
    return records_;
  }
  /// Credits that flowed buyer→seller, keyed by (buyer << 32) | seller.
  [[nodiscard]] const std::unordered_map<std::uint64_t, Credits>& pair_flows()
      const {
    return pair_flows_;
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] Credits volume() const { return volume_; }

  static std::uint64_t pair_key(PeerId buyer, PeerId seller) {
    return (static_cast<std::uint64_t>(buyer) << 32) | seller;
  }

  void clear();

 private:
  void record_full(double time, PeerId buyer, PeerId seller,
                   std::uint64_t chunk, Credits price);

  bool enabled_ = false;
  bool keep_records_ = false;
  std::vector<TransactionRecord> records_;
  std::unordered_map<std::uint64_t, Credits> pair_flows_;
  std::uint64_t count_ = 0;
  Credits volume_ = 0;
};

}  // namespace creditflow::p2p
