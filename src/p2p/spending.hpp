// CreditFlow: spending-rate policies (Sec. VI-D of the paper).
//
// A peer's maximum spending rate μ_i caps how many credits it may spend per
// unit time. The paper compares a fixed rate against the dynamic adjustment
//
//     μ_i = μ_i^s · B_i / m   when B_i > m,   μ_i = μ_i^s otherwise,
//
// where B_i is the instantaneous balance and m a wealth threshold — rich
// peers spend proportionally faster, which drains accumulations.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace creditflow::p2p {

/// Interface: credits a peer may spend during a scheduling round.
class SpendingPolicy {
 public:
  virtual ~SpendingPolicy() = default;
  /// `base_rate` is μ_i^s in credits/sec; `balance` the current credits;
  /// `round_seconds` the round length. Returns the round budget in credits
  /// (fractional budgets are meaningful: the scheduler compares prices
  /// against the running remainder).
  [[nodiscard]] virtual double round_budget(double base_rate,
                                            std::uint64_t balance,
                                            double round_seconds) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// μ_i = μ_i^s regardless of wealth.
class FixedSpending final : public SpendingPolicy {
 public:
  [[nodiscard]] double round_budget(double base_rate, std::uint64_t balance,
                                    double round_seconds) const override;
  [[nodiscard]] std::string name() const override;
};

/// The paper's dynamic adjustment with threshold m.
class DynamicSpending final : public SpendingPolicy {
 public:
  explicit DynamicSpending(double threshold);
  [[nodiscard]] double round_budget(double base_rate, std::uint64_t balance,
                                    double round_seconds) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double threshold() const { return threshold_; }

 private:
  double threshold_;
};

/// Policy selector for MarketConfig.
struct SpendingParams {
  bool dynamic = false;
  double dynamic_threshold = 100.0;  ///< m
};

[[nodiscard]] std::unique_ptr<SpendingPolicy> make_spending_policy(
    const SpendingParams& params);

}  // namespace creditflow::p2p
