// CreditFlow: stream chunks and per-peer availability windows.
//
// A live stream is an unbounded sequence of chunks 0,1,2,… emitted at a
// fixed rate. Peers hold a sliding playback window; the BufferMap tracks
// which chunks inside the window a peer currently has, backed by a ring
// buffer so advancing the window is O(evicted), not O(window).
#pragma once

#include <cstdint>
#include <vector>

namespace creditflow::p2p {

using ChunkId = std::uint64_t;

/// Sliding-window chunk availability bitmap (64-bit words under the hood,
/// so missing-chunk extraction and eviction are bit-walks, not per-slot
/// branches).
///
/// Word storage comes in two flavors: self-owned (the standalone
/// constructor, used by tests and ad-hoc callers) or externally provided
/// (the arena constructor) — the market backs every peer's window with one
/// contiguous arena sized at construction, so a million BufferMaps cost one
/// allocation and their words pack densely in slot order. Copies always
/// deep-copy into owned storage (a snapshot must not alias the live arena).
class BufferMap {
 public:
  /// Number of 64-bit words backing a window of `capacity` slots.
  [[nodiscard]] static std::size_t words_for(std::size_t capacity) {
    return (capacity + 63) / 64;
  }

  /// Window of `capacity` consecutive chunk slots starting at chunk 0,
  /// with self-owned word storage.
  explicit BufferMap(std::size_t capacity);

  /// Arena-backed flavor: `words` must point at words_for(capacity) words
  /// that outlive this map; they are zeroed here.
  BufferMap(std::size_t capacity, std::uint64_t* words);

  BufferMap(const BufferMap& other);
  BufferMap& operator=(const BufferMap& other);
  BufferMap(BufferMap&& other) noexcept;
  BufferMap& operator=(BufferMap&& other) noexcept;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// First chunk id inside the window.
  [[nodiscard]] ChunkId base() const { return base_; }
  /// One-past-last chunk id inside the window.
  [[nodiscard]] ChunkId end() const { return base_ + capacity_; }
  /// Number of chunks currently held.
  [[nodiscard]] std::size_t count() const { return count_; }
  /// Fill ratio in [0,1].
  [[nodiscard]] double fill() const;

  // Inline: has/set/in_window run once per purchase candidate / delivery,
  // millions of times per simulated run.
  [[nodiscard]] bool in_window(ChunkId c) const {
    return c >= base_ && c < base_ + capacity_;
  }
  /// True when the peer holds chunk c (false outside the window).
  [[nodiscard]] bool has(ChunkId c) const {
    if (!in_window(c)) return false;
    return bit(slot(c));
  }
  /// Mark chunk c as held; returns false if c is outside the window or
  /// already held.
  bool set(ChunkId c) {
    if (!in_window(c)) return false;
    const std::size_t s = slot(c);
    if (bit(s)) return false;
    words_[s / 64] |= std::uint64_t{1} << (s % 64);
    ++count_;
    return true;
  }

  /// Advance the window base to `new_base` (>= current base), evicting
  /// chunks that fall out. Returns the number of held chunks evicted.
  std::size_t advance(ChunkId new_base);

  /// Chunk ids in the window the peer is missing, ascending (most urgent
  /// first for playback), capped at `max_results` (0 = no cap).
  [[nodiscard]] std::vector<ChunkId> missing(std::size_t max_results = 0) const;

  /// missing() into a caller-owned vector (cleared first) — the
  /// allocation-free flavor for per-round hot loops.
  void missing_into(std::vector<ChunkId>& out, std::size_t max_results = 0) const;

  /// Reset to an empty window at the given base.
  void reset(ChunkId new_base);

 private:
  [[nodiscard]] std::size_t slot(ChunkId c) const {
    return static_cast<std::size_t>(c % capacity_);
  }
  [[nodiscard]] bool bit(std::size_t s) const {
    return (words_[s / 64] >> (s % 64)) & 1;
  }
  void clear_bit(std::size_t s) {
    words_[s / 64] &= ~(std::uint64_t{1} << (s % 64));
  }
  /// Append the chunks whose slots in [s_lo, s_hi) are unset, as
  /// `chunk_at_lo + (s - s_lo)`, until `cap` results; returns false when
  /// the cap was hit.
  bool missing_in_slot_range(std::size_t s_lo, std::size_t s_hi,
                             ChunkId chunk_at_lo,
                             std::vector<ChunkId>& out,
                             std::size_t cap) const;

  /// Self-owned storage; empty when arena-backed. words_ points at
  /// whichever backing is live and is what every accessor reads.
  std::vector<std::uint64_t> own_;
  std::uint64_t* words_ = nullptr;  ///< words_for(capacity_) words
  std::size_t capacity_;
  ChunkId base_ = 0;
  std::size_t count_ = 0;
};

}  // namespace creditflow::p2p
