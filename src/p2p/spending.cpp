#include "p2p/spending.hpp"

#include "util/assert.hpp"

namespace creditflow::p2p {

double FixedSpending::round_budget(double base_rate, std::uint64_t,
                                   double round_seconds) const {
  CF_EXPECTS(base_rate >= 0.0 && round_seconds > 0.0);
  return base_rate * round_seconds;
}

std::string FixedSpending::name() const { return "fixed"; }

DynamicSpending::DynamicSpending(double threshold) : threshold_(threshold) {
  CF_EXPECTS_MSG(threshold > 0.0, "dynamic spending threshold must be > 0");
}

double DynamicSpending::round_budget(double base_rate, std::uint64_t balance,
                                     double round_seconds) const {
  CF_EXPECTS(base_rate >= 0.0 && round_seconds > 0.0);
  const auto b = static_cast<double>(balance);
  const double rate =
      b > threshold_ ? base_rate * b / threshold_ : base_rate;
  return rate * round_seconds;
}

std::string DynamicSpending::name() const {
  return "dynamic(m=" + std::to_string(threshold_) + ")";
}

std::unique_ptr<SpendingPolicy> make_spending_policy(
    const SpendingParams& params) {
  if (params.dynamic) {
    return std::make_unique<DynamicSpending>(params.dynamic_threshold);
  }
  return std::make_unique<FixedSpending>();
}

}  // namespace creditflow::p2p
