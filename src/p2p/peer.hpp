// CreditFlow: per-peer protocol state. Balances live in the CreditLedger;
// everything else a peer carries through the streaming protocol lives in
// the PeerTable — a structure-of-arrays layout where each field is one
// dense array indexed by slot, so the round loop's field sweeps (window
// advance, budget refresh, snapshots) walk contiguous memory instead of
// striding over interleaved structs. PeerState remains as the by-value
// snapshot handed to introspection callers.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "p2p/chunk.hpp"
#include "p2p/ledger.hpp"
#include "strategy/strategy.hpp"
#include "util/assert.hpp"

namespace creditflow::p2p {

/// Point-in-time copy of one peer slot's state (see PeerTable for the live
/// layout). The buffer is a deep copy — snapshots never alias the market's
/// live word arena.
struct PeerState {
  PeerId id = 0;
  bool alive = false;

  // Static capabilities (drawn at join).
  double upload_capacity = 8.0;   ///< chunks per second it can serve
  double base_spend_rate = 8.0;   ///< μ_i^s, credits per second

  // Lifecycle.
  double join_time = 0.0;
  double depart_time = std::numeric_limits<double>::infinity();

  // Chunk availability window.
  BufferMap buffer{1};

  // Cumulative accounting (monotone; rates derive from deltas).
  std::uint64_t credits_earned = 0;
  std::uint64_t credits_spent = 0;
  std::uint64_t chunks_downloaded = 0;  ///< purchased chunks received
  std::uint64_t chunks_uploaded = 0;    ///< chunks sold to others
  std::uint64_t chunks_seeded = 0;      ///< free chunks pushed by the source
  std::uint64_t failed_affordability = 0;  ///< wanted but lacked credits
  std::uint64_t failed_availability = 0;   ///< wanted but no seller had it

  /// Seconds spent in the system up to `now`.
  [[nodiscard]] double age(double now) const { return now - join_time; }

  /// Lifetime average spending rate in credits/sec at time `now`.
  [[nodiscard]] double lifetime_spend_rate(double now) const {
    const double a = age(now);
    return a > 0.0 ? static_cast<double>(credits_spent) / a : 0.0;
  }

  /// Lifetime average download rate in chunks/sec at time `now` (purchased
  /// plus seeded).
  [[nodiscard]] double lifetime_download_rate(double now) const {
    const double a = age(now);
    return a > 0.0
               ? static_cast<double>(chunks_downloaded + chunks_seeded) / a
               : 0.0;
  }
};

/// Structure-of-arrays store of every peer slot's protocol state. One field
/// = one dense array indexed by PeerId, allocated once at construction; all
/// BufferMap windows share a single word arena packed in slot order, so a
/// million peers cost a handful of allocations and the hot phases touch
/// only the arrays they need.
class PeerTable {
 public:
  PeerTable(std::size_t max_peers, std::size_t window_chunks);

  PeerTable(const PeerTable&) = delete;
  PeerTable& operator=(const PeerTable&) = delete;

  [[nodiscard]] std::size_t size() const { return alive_.size(); }

  [[nodiscard]] bool alive(PeerId i) const { return alive_[i] != 0; }
  void set_alive(PeerId i, bool v) { alive_[i] = v ? 1 : 0; }

  [[nodiscard]] double upload_capacity(PeerId i) const {
    return upload_capacity_[i];
  }
  void set_upload_capacity(PeerId i, double v) { upload_capacity_[i] = v; }

  [[nodiscard]] double base_spend_rate(PeerId i) const {
    return base_spend_rate_[i];
  }
  void set_base_spend_rate(PeerId i, double v) { base_spend_rate_[i] = v; }

  [[nodiscard]] double join_time(PeerId i) const { return join_time_[i]; }
  void set_join_time(PeerId i, double v) { join_time_[i] = v; }

  [[nodiscard]] double depart_time(PeerId i) const { return depart_time_[i]; }
  void set_depart_time(PeerId i, double v) { depart_time_[i] = v; }

  [[nodiscard]] BufferMap& buffer(PeerId i) { return buffers_[i]; }
  [[nodiscard]] const BufferMap& buffer(PeerId i) const { return buffers_[i]; }

  [[nodiscard]] std::uint64_t& credits_earned(PeerId i) {
    return credits_earned_[i];
  }
  [[nodiscard]] std::uint64_t credits_earned(PeerId i) const {
    return credits_earned_[i];
  }
  [[nodiscard]] std::uint64_t& credits_spent(PeerId i) {
    return credits_spent_[i];
  }
  [[nodiscard]] std::uint64_t credits_spent(PeerId i) const {
    return credits_spent_[i];
  }
  [[nodiscard]] std::uint64_t& chunks_downloaded(PeerId i) {
    return chunks_downloaded_[i];
  }
  [[nodiscard]] std::uint64_t& chunks_uploaded(PeerId i) {
    return chunks_uploaded_[i];
  }
  [[nodiscard]] std::uint64_t& chunks_seeded(PeerId i) {
    return chunks_seeded_[i];
  }
  [[nodiscard]] std::uint64_t& failed_affordability(PeerId i) {
    return failed_affordability_[i];
  }
  [[nodiscard]] std::uint64_t& failed_availability(PeerId i) {
    return failed_availability_[i];
  }

  /// Behavioral strategy of the slot's occupant (hash-assigned at
  /// activation; kHonest everywhere when the strategy layer is off).
  [[nodiscard]] strategy::Strategy strategy(PeerId i) const {
    return static_cast<strategy::Strategy>(strategy_[i]);
  }
  void set_strategy(PeerId i, strategy::Strategy s) {
    strategy_[i] = static_cast<std::uint8_t>(s);
  }

  /// How many times this slot has been activated (survives reset_slot —
  /// the rejoin-mint policy keys off it, so a whitewasher cycling its slot
  /// cannot reset the count it is trying to exploit).
  [[nodiscard]] std::uint32_t activations(PeerId i) const {
    return activations_[i];
  }
  /// Increment and return the slot's activation count.
  std::uint32_t bump_activations(PeerId i) { return ++activations_[i]; }

  /// Reset a slot's scalar fields for (re)activation: counters to zero,
  /// lifecycle to [now, ∞). Buffer and capabilities are the caller's to
  /// set — they depend on RNG draws the caller sequences. The strategy tag
  /// and activation count survive: both are properties of the slot id, not
  /// of one occupancy.
  void reset_slot(PeerId i, double now);

  /// Lifetime average spending rate in credits/sec at time `now`.
  [[nodiscard]] double lifetime_spend_rate(PeerId i, double now) const {
    const double a = now - join_time_[i];
    return a > 0.0 ? static_cast<double>(credits_spent_[i]) / a : 0.0;
  }

  /// Lifetime average download rate in chunks/sec at time `now` (purchased
  /// plus seeded).
  [[nodiscard]] double lifetime_download_rate(PeerId i, double now) const {
    const double a = now - join_time_[i];
    return a > 0.0 ? static_cast<double>(chunks_downloaded_[i] +
                                         chunks_seeded_[i]) /
                         a
                   : 0.0;
  }

  /// Deep-copied point-in-time view of one slot (the introspection API).
  [[nodiscard]] PeerState snapshot(PeerId i) const;

 private:
  std::vector<std::uint8_t> alive_;
  std::vector<double> upload_capacity_;
  std::vector<double> base_spend_rate_;
  std::vector<double> join_time_;
  std::vector<double> depart_time_;
  /// One arena of BufferMap words for the whole table, packed in slot
  /// order; sized once and never resized (buffers_ hold raw pointers in).
  std::vector<std::uint64_t> buffer_words_;
  std::vector<BufferMap> buffers_;  ///< arena-backed views, one per slot
  std::vector<std::uint64_t> credits_earned_;
  std::vector<std::uint64_t> credits_spent_;
  std::vector<std::uint64_t> chunks_downloaded_;
  std::vector<std::uint64_t> chunks_uploaded_;
  std::vector<std::uint64_t> chunks_seeded_;
  std::vector<std::uint64_t> failed_affordability_;
  std::vector<std::uint64_t> failed_availability_;
  std::vector<std::uint8_t> strategy_;
  std::vector<std::uint32_t> activations_;
};

}  // namespace creditflow::p2p
