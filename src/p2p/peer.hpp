// CreditFlow: per-peer protocol state. Balances live in the CreditLedger;
// everything else a peer carries through the streaming protocol is here.
#pragma once

#include <cstdint>
#include <limits>

#include "p2p/chunk.hpp"
#include "p2p/ledger.hpp"

namespace creditflow::p2p {

/// Mutable state of one peer slot in the streaming market.
struct PeerState {
  PeerId id = 0;
  bool alive = false;

  // Static capabilities (drawn at join).
  double upload_capacity = 8.0;   ///< chunks per second it can serve
  double base_spend_rate = 8.0;   ///< μ_i^s, credits per second

  // Lifecycle.
  double join_time = 0.0;
  double depart_time = std::numeric_limits<double>::infinity();

  // Chunk availability window.
  BufferMap buffer{1};

  // Cumulative accounting (monotone; rates derive from deltas).
  std::uint64_t credits_earned = 0;
  std::uint64_t credits_spent = 0;
  std::uint64_t chunks_downloaded = 0;  ///< purchased chunks received
  std::uint64_t chunks_uploaded = 0;    ///< chunks sold to others
  std::uint64_t chunks_seeded = 0;      ///< free chunks pushed by the source
  std::uint64_t failed_affordability = 0;  ///< wanted but lacked credits
  std::uint64_t failed_availability = 0;   ///< wanted but no seller had it

  /// Seconds spent in the system up to `now`.
  [[nodiscard]] double age(double now) const { return now - join_time; }

  /// Lifetime average spending rate in credits/sec at time `now`.
  [[nodiscard]] double lifetime_spend_rate(double now) const {
    const double a = age(now);
    return a > 0.0 ? static_cast<double>(credits_spent) / a : 0.0;
  }

  /// Lifetime average download rate in chunks/sec at time `now` (purchased
  /// plus seeded).
  [[nodiscard]] double lifetime_download_rate(double now) const {
    const double a = age(now);
    return a > 0.0
               ? static_cast<double>(chunks_downloaded + chunks_seeded) / a
               : 0.0;
  }
};

}  // namespace creditflow::p2p
