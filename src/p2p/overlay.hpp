// CreditFlow: dynamic overlay management.
//
// The static case wraps a generated scale-free graph. Under churn, joining
// peers attach preferentially by degree (preserving the scale-free shape, as
// in the measurement study the paper builds on) and departures remove all
// incident edges.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace creditflow::p2p {

/// Slot-addressed adjacency with join/leave support.
class Overlay {
 public:
  /// Create with a fixed slot capacity; all slots start inactive.
  explicit Overlay(std::size_t max_peers);

  /// Activate slots 0..g.num_nodes()-1 with the edges of `g`.
  void init_from_graph(const graph::Graph& g);

  [[nodiscard]] std::size_t capacity() const { return adj_.size(); }
  [[nodiscard]] std::size_t num_active() const { return active_count_; }
  [[nodiscard]] bool is_active(std::uint32_t peer) const;
  [[nodiscard]] std::span<const std::uint32_t> neighbors(
      std::uint32_t peer) const;
  [[nodiscard]] std::size_t degree(std::uint32_t peer) const;
  /// Active peer ids (stable order; rebuilt on demand).
  [[nodiscard]] std::vector<std::uint32_t> active_peers() const;

  /// Activate a slot and attach `target_links` edges by preferential
  /// attachment over current degrees (degree+1 weighting so isolated peers
  /// remain reachable). Requires the slot to be inactive.
  void join(std::uint32_t peer, std::size_t target_links, util::Rng& rng);

  /// Deactivate a slot, removing all incident edges.
  void leave(std::uint32_t peer);

  /// Add one undirected edge between active peers; false on duplicates/self.
  bool add_edge(std::uint32_t a, std::uint32_t b);

  [[nodiscard]] double mean_degree() const;

 private:
  void remove_directed(std::uint32_t from, std::uint32_t to);

  std::vector<std::vector<std::uint32_t>> adj_;
  std::vector<bool> active_;
  std::size_t active_count_ = 0;
};

}  // namespace creditflow::p2p
