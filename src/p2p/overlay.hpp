// CreditFlow: dynamic overlay management.
//
// The static case wraps a generated scale-free graph. Under churn, joining
// peers attach preferentially by degree (preserving the scale-free shape, as
// in the measurement study the paper builds on) and departures remove all
// incident edges.
//
// Membership is tracked three ways, kept in sync by join/leave:
//  * a word-packed activity bitmap (O(1) is_active, amortized-O(1) lowest
//    free slot via a word cursor hint),
//  * a dense active-peer array in ascending id order, handed out as a span
//    so the round loop iterates the population without copying it, and
//  * the adjacency rows themselves.
// The dense array is kept *ordered* (binary-search insert/erase, O(active)
// memmove per membership change) rather than swap-remove compacted: churn
// events are thousands of times rarer than active-set iterations, and the
// ascending order is what keeps every RNG-consuming walk over the
// population — seeding, taxation, snapshots — bit-identical to the
// pre-span engine that rebuilt the sorted vector on every call.
//
// Adjacency lives in a fixed-capacity EDGE POOL sized at construction: one
// pool of 8-byte {neighbor, next} cells shared by every row, with freed
// cells recycled through a free list. Joins and leaves therefore allocate
// nothing — the million-peer market's churn path is heap-silent end to end.
// Rows are singly-linked chains that reproduce the retired
// vector<vector> engine's order EXACTLY: appends go to the tail, and
// removals copy the tail's value over the removed cell before freeing the
// tail (the linked-list rendering of swap-with-back + pop). Every
// RNG-consuming walk over a neighbor list — candidate masks, seller picks,
// join weights — sees the same sequence as before, bit for bit.
//
// Because rows are chains, there is no contiguous span to hand out;
// neighbors are consumed through for_each_neighbor() (zero-copy visit) or
// neighbors_into() (materialize into a caller-owned scratch buffer whose
// lifetime the caller controls).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace creditflow::p2p {

/// Slot-addressed adjacency with join/leave support.
class Overlay {
 public:
  /// Create with a fixed slot capacity; all slots start inactive.
  /// `edge_cells` fixes the pool size (directed cells: one undirected edge
  /// consumes two); 0 picks a generous default for paper-scale overlays.
  /// The pool never grows — when it is exhausted add_edge() refuses the
  /// edge (logged once, counted) instead of allocating.
  explicit Overlay(std::size_t max_peers, std::size_t edge_cells = 0);

  /// Activate slots 0..g.num_nodes()-1 with the edges of `g`.
  void init_from_graph(const graph::Graph& g);

  [[nodiscard]] std::size_t capacity() const { return row_head_.size(); }
  [[nodiscard]] std::size_t num_active() const { return active_list_.size(); }
  [[nodiscard]] bool is_active(std::uint32_t peer) const;
  [[nodiscard]] std::size_t degree(std::uint32_t peer) const {
    CF_EXPECTS(peer < degree_.size());
    return degree_[peer];
  }

  /// Visit the peer's neighbors in row order (identical to the retired
  /// vector engine's iteration order). The callback must not mutate the
  /// overlay.
  template <typename Fn>
  void for_each_neighbor(std::uint32_t peer, Fn&& fn) const {
    CF_EXPECTS(peer < row_head_.size());
    for (std::uint32_t c = row_head_[peer]; c != kNullCell;
         c = cells_[c].next) {
      fn(cells_[c].to);
    }
  }

  /// Materialize the peer's neighbor list (row order) into `out` (cleared
  /// first). Allocation-free once `out` has reached its high-water
  /// capacity; the caller owns the lifetime, so nested queries are safe.
  void neighbors_into(std::uint32_t peer, std::vector<std::uint32_t>& out) const;

  /// Active peer ids in ascending order, O(1), no copy.
  ///
  /// LIFETIME: the span aliases the overlay's internal dense array; any
  /// join(), leave(), or init_from_graph() — and destruction — invalidates
  /// it. Consume it (or copy it) before the membership can change; never
  /// hold one across a simulated event boundary.
  [[nodiscard]] std::span<const std::uint32_t> active_peers() const {
    return active_list_;
  }

  /// Lowest-numbered inactive slot, or nullopt when the overlay is full.
  /// Amortized O(1) under churn: the scan starts from a word cursor below
  /// which every word is known-full (leaves rewind it, scans advance it),
  /// instead of re-walking all capacity/64 words from zero on every
  /// arrival. The result is the exact lowest-index free slot — identical
  /// to the from-zero scan, bit for bit.
  [[nodiscard]] std::optional<std::uint32_t> lowest_inactive_slot() const;

  /// Activate a slot and attach `target_links` edges by preferential
  /// attachment over current degrees (degree+1 weighting so isolated peers
  /// remain reachable). Requires the slot to be inactive.
  void join(std::uint32_t peer, std::size_t target_links, util::Rng& rng);

  /// Deactivate a slot, removing all incident edges (cells return to the
  /// pool's free list).
  void leave(std::uint32_t peer);

  /// Add one undirected edge between active peers; false on duplicates/self
  /// (and, loudly, when the edge pool is exhausted).
  bool add_edge(std::uint32_t a, std::uint32_t b);

  [[nodiscard]] double mean_degree() const;

  /// Pool introspection (tests and capacity planning).
  [[nodiscard]] std::size_t edge_cell_capacity() const { return cells_.size(); }
  [[nodiscard]] std::size_t edge_cells_in_use() const { return cells_in_use_; }
  /// Edges refused because the pool was exhausted.
  [[nodiscard]] std::uint64_t edges_dropped() const { return edges_dropped_; }

 private:
  static constexpr std::uint32_t kNullCell = 0xffffffffu;

  /// One directed adjacency entry: a neighbor id and the next cell of the
  /// owning row (or, on the free list, the next free cell).
  struct EdgeCell {
    std::uint32_t to;
    std::uint32_t next;
  };

  void remove_directed(std::uint32_t from, std::uint32_t to);
  void set_active_bit(std::uint32_t peer, bool value);
  /// Ordered insert into / erase from the dense active array.
  void list_insert(std::uint32_t peer);
  void list_erase(std::uint32_t peer);
  /// Pop a cell off the free list; kNullCell when the pool is exhausted.
  std::uint32_t alloc_cell();
  void free_cell(std::uint32_t cell);
  /// Append `to` at the tail of `from`'s row (vector push_back order).
  void row_push_back(std::uint32_t from, std::uint32_t to);
  /// Return every cell of the row to the free list and reset the row.
  void row_clear(std::uint32_t peer);
  void reset_free_list();

  std::vector<EdgeCell> cells_;               ///< the pool, fixed capacity
  std::uint32_t free_head_ = kNullCell;       ///< free-list head
  std::size_t cells_in_use_ = 0;
  std::uint64_t edges_dropped_ = 0;
  std::vector<std::uint32_t> row_head_;       ///< per-peer chain head
  std::vector<std::uint32_t> row_tail_;       ///< per-peer chain tail
  std::vector<std::uint32_t> degree_;         ///< per-peer chain length
  std::vector<std::uint64_t> active_words_;   ///< ceil(capacity/64) words
  std::vector<std::uint32_t> active_list_;    ///< active ids, ascending
  std::vector<double> join_weights_;          ///< scratch for join()
  /// Free-slot scan cursor: every word below it is fully active. Mutable
  /// because the scan (const) advances it past words it proves full.
  mutable std::size_t free_word_hint_ = 0;
};

}  // namespace creditflow::p2p
