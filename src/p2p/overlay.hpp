// CreditFlow: dynamic overlay management.
//
// The static case wraps a generated scale-free graph. Under churn, joining
// peers attach preferentially by degree (preserving the scale-free shape, as
// in the measurement study the paper builds on) and departures remove all
// incident edges.
//
// Membership is tracked three ways, kept in sync by join/leave:
//  * a word-packed activity bitmap (O(1) is_active, O(capacity/64) lowest
//    free slot),
//  * a dense active-peer array in ascending id order, handed out as a span
//    so the round loop iterates the population without copying it, and
//  * the adjacency rows themselves.
// The dense array is kept *ordered* (binary-search insert/erase, O(active)
// memmove per membership change) rather than swap-remove compacted: churn
// events are thousands of times rarer than active-set iterations, and the
// ascending order is what keeps every RNG-consuming walk over the
// population — seeding, taxation, snapshots — bit-identical to the
// pre-span engine that rebuilt the sorted vector on every call.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace creditflow::p2p {

/// Slot-addressed adjacency with join/leave support.
class Overlay {
 public:
  /// Create with a fixed slot capacity; all slots start inactive.
  explicit Overlay(std::size_t max_peers);

  /// Activate slots 0..g.num_nodes()-1 with the edges of `g`.
  void init_from_graph(const graph::Graph& g);

  [[nodiscard]] std::size_t capacity() const { return adj_.size(); }
  [[nodiscard]] std::size_t num_active() const { return active_list_.size(); }
  [[nodiscard]] bool is_active(std::uint32_t peer) const;
  [[nodiscard]] std::span<const std::uint32_t> neighbors(
      std::uint32_t peer) const;
  [[nodiscard]] std::size_t degree(std::uint32_t peer) const;
  /// Active peer ids in ascending order, O(1), no copy.
  ///
  /// LIFETIME: the span aliases the overlay's internal dense array; any
  /// join(), leave(), or init_from_graph() — and destruction — invalidates
  /// it. Consume it (or copy it) before the membership can change; never
  /// hold one across a simulated event boundary.
  [[nodiscard]] std::span<const std::uint32_t> active_peers() const {
    return active_list_;
  }

  /// Lowest-numbered inactive slot, or nullopt when the overlay is full.
  /// Word-scan over the activity bitmap (capacity/64 words), replacing the
  /// O(capacity) per-arrival scan over peer state.
  [[nodiscard]] std::optional<std::uint32_t> lowest_inactive_slot() const;

  /// Activate a slot and attach `target_links` edges by preferential
  /// attachment over current degrees (degree+1 weighting so isolated peers
  /// remain reachable). Requires the slot to be inactive.
  void join(std::uint32_t peer, std::size_t target_links, util::Rng& rng);

  /// Deactivate a slot, removing all incident edges.
  void leave(std::uint32_t peer);

  /// Add one undirected edge between active peers; false on duplicates/self.
  bool add_edge(std::uint32_t a, std::uint32_t b);

  [[nodiscard]] double mean_degree() const;

 private:
  void remove_directed(std::uint32_t from, std::uint32_t to);
  void set_active_bit(std::uint32_t peer, bool value);
  /// Ordered insert into / erase from the dense active array.
  void list_insert(std::uint32_t peer);
  void list_erase(std::uint32_t peer);

  std::vector<std::vector<std::uint32_t>> adj_;
  std::vector<std::uint64_t> active_words_;   ///< ceil(capacity/64) words
  std::vector<std::uint32_t> active_list_;    ///< active ids, ascending
  std::vector<double> join_weights_;          ///< scratch for join()
};

}  // namespace creditflow::p2p
