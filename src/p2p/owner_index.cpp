#include "p2p/owner_index.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace creditflow::p2p {

OwnerIndex::OwnerIndex(std::size_t max_peers, std::size_t window_capacity)
    : max_peers_(max_peers),
      window_(window_capacity),
      words_((window_capacity + 63) / 64),
      bits_(max_peers * words_, 0) {
  CF_EXPECTS(max_peers > 0);
  CF_EXPECTS(window_capacity > 0);
}

void OwnerIndex::on_advance(PeerId peer, ChunkId old_base, ChunkId new_base) {
  CF_EXPECTS(peer < max_peers_);
  CF_EXPECTS(new_base >= old_base);
  if (new_base >= old_base + window_) {
    on_clear(peer);
    return;
  }
  std::uint64_t* row = bits_.data() + peer * words_;
  for (ChunkId c = old_base; c < new_base; ++c) {
    const std::size_t s = slot(c);
    row[s / 64] &= ~(std::uint64_t{1} << (s % 64));
  }
}

void OwnerIndex::on_clear(PeerId peer) {
  CF_EXPECTS(peer < max_peers_);
  std::fill_n(bits_.begin() + static_cast<std::ptrdiff_t>(peer * words_),
              words_, std::uint64_t{0});
}

bool OwnerIndex::mirrors(PeerId peer, const BufferMap& buffer) const {
  CF_EXPECTS(peer < max_peers_);
  if (buffer.capacity() != window_) return false;
  const std::uint64_t* row = bits_.data() + peer * words_;
  for (ChunkId c = buffer.base(); c < buffer.end(); ++c) {
    const std::size_t s = slot(c);
    const bool bit = (row[s / 64] >> (s % 64)) & 1;
    if (bit != buffer.has(c)) return false;
  }
  return true;
}

}  // namespace creditflow::p2p
