#include "p2p/overlay.hpp"

#include <algorithm>
#include <bit>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace creditflow::p2p {

namespace {

/// Default pool sizing: room for twice a paper-scale overlay's steady-state
/// degree, floored so tiny test overlays never starve.
std::size_t default_edge_cells(std::size_t max_peers) {
  return std::max<std::size_t>(256, max_peers * 64);
}

}  // namespace

Overlay::Overlay(std::size_t max_peers, std::size_t edge_cells)
    : cells_(edge_cells == 0 ? default_edge_cells(max_peers) : edge_cells),
      row_head_(max_peers, kNullCell),
      row_tail_(max_peers, kNullCell),
      degree_(max_peers, 0),
      active_words_((max_peers + 63) / 64, 0) {
  CF_EXPECTS(max_peers > 0);
  CF_EXPECTS(cells_.size() >= 2);  // one undirected edge = two cells
  active_list_.reserve(max_peers);
  reset_free_list();
}

void Overlay::reset_free_list() {
  for (std::size_t c = 0; c + 1 < cells_.size(); ++c) {
    cells_[c].next = static_cast<std::uint32_t>(c + 1);
  }
  cells_.back().next = kNullCell;
  free_head_ = 0;
  cells_in_use_ = 0;
}

std::uint32_t Overlay::alloc_cell() {
  if (free_head_ == kNullCell) return kNullCell;
  const std::uint32_t c = free_head_;
  free_head_ = cells_[c].next;
  ++cells_in_use_;
  return c;
}

void Overlay::free_cell(std::uint32_t cell) {
  cells_[cell].next = free_head_;
  free_head_ = cell;
  --cells_in_use_;
}

void Overlay::row_push_back(std::uint32_t from, std::uint32_t to) {
  const std::uint32_t c = alloc_cell();
  CF_ENSURES(c != kNullCell);  // callers check pool headroom first
  cells_[c].to = to;
  cells_[c].next = kNullCell;
  if (row_tail_[from] == kNullCell) {
    row_head_[from] = c;
  } else {
    cells_[row_tail_[from]].next = c;
  }
  row_tail_[from] = c;
  ++degree_[from];
}

void Overlay::row_clear(std::uint32_t peer) {
  std::uint32_t c = row_head_[peer];
  while (c != kNullCell) {
    const std::uint32_t next = cells_[c].next;
    free_cell(c);
    c = next;
  }
  row_head_[peer] = kNullCell;
  row_tail_[peer] = kNullCell;
  degree_[peer] = 0;
}

void Overlay::init_from_graph(const graph::Graph& g) {
  CF_EXPECTS(g.num_nodes() <= row_head_.size());
  CF_EXPECTS_MSG(2 * g.num_edges() <= cells_.size(),
                 "edge pool smaller than the bootstrap graph");
  std::fill(row_head_.begin(), row_head_.end(), kNullCell);
  std::fill(row_tail_.begin(), row_tail_.end(), kNullCell);
  std::fill(degree_.begin(), degree_.end(), 0u);
  reset_free_list();
  std::fill(active_words_.begin(), active_words_.end(), 0);
  active_list_.clear();
  free_word_hint_ = 0;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    set_active_bit(u, true);
    active_list_.push_back(u);
    for (const graph::NodeId v : g.neighbors(u)) row_push_back(u, v);
  }
}

bool Overlay::is_active(std::uint32_t peer) const {
  CF_EXPECTS(peer < row_head_.size());
  return (active_words_[peer / 64] >> (peer % 64)) & 1;
}

void Overlay::set_active_bit(std::uint32_t peer, bool value) {
  const std::uint64_t mask = std::uint64_t{1} << (peer % 64);
  if (value) {
    active_words_[peer / 64] |= mask;
  } else {
    active_words_[peer / 64] &= ~mask;
    // The freed slot's word may now be the lowest with a free bit.
    free_word_hint_ =
        std::min(free_word_hint_, static_cast<std::size_t>(peer / 64));
  }
}

void Overlay::list_insert(std::uint32_t peer) {
  const auto it =
      std::lower_bound(active_list_.begin(), active_list_.end(), peer);
  active_list_.insert(it, peer);
}

void Overlay::list_erase(std::uint32_t peer) {
  const auto it =
      std::lower_bound(active_list_.begin(), active_list_.end(), peer);
  CF_ENSURES(it != active_list_.end() && *it == peer);
  active_list_.erase(it);
}

void Overlay::neighbors_into(std::uint32_t peer,
                             std::vector<std::uint32_t>& out) const {
  CF_EXPECTS(peer < row_head_.size());
  out.clear();
  for (std::uint32_t c = row_head_[peer]; c != kNullCell;
       c = cells_[c].next) {
    out.push_back(cells_[c].to);
  }
}

std::optional<std::uint32_t> Overlay::lowest_inactive_slot() const {
  // Invariant: every word below free_word_hint_ is fully active, so the
  // scan may start there. Words it proves full advance the cursor, which
  // set_active_bit(false) rewinds — under heavy churn at large capacities
  // the scan touches O(1) words amortized instead of capacity/64.
  for (std::size_t w = free_word_hint_; w < active_words_.size(); ++w) {
    const std::uint64_t free = ~active_words_[w];
    if (free == 0) {
      free_word_hint_ = w + 1;
      continue;
    }
    const auto slot = static_cast<std::uint32_t>(
        w * 64 + static_cast<std::size_t>(std::countr_zero(free)));
    if (slot >= row_head_.size()) break;  // padding bits of the last word
    free_word_hint_ = w;
    return slot;
  }
  return std::nullopt;
}

void Overlay::join(std::uint32_t peer, std::size_t target_links,
                   util::Rng& rng) {
  CF_EXPECTS(peer < row_head_.size());
  CF_EXPECTS_MSG(!is_active(peer), "slot already active");
  set_active_bit(peer, true);
  list_insert(peer);
  if (active_list_.size() == 1) return;  // first peer has nobody to link to

  // Preferential attachment: sample candidates with weight degree+1.
  const std::span<const std::uint32_t> candidates = active_list_;
  join_weights_.clear();
  for (auto c : candidates) {
    join_weights_.push_back(
        c == peer ? 0.0 : static_cast<double>(degree_[c]) + 1.0);
  }
  const std::size_t want =
      std::min(target_links, active_list_.size() - 1);
  std::size_t added = 0;
  std::size_t attempts = 0;
  while (added < want && attempts < 20 * want + 40) {
    ++attempts;
    const std::size_t idx = rng.discrete(join_weights_);
    if (add_edge(peer, candidates[idx])) {
      ++added;
      join_weights_[idx] = 0.0;  // at most one edge per target
    }
  }
}

void Overlay::leave(std::uint32_t peer) {
  CF_EXPECTS(peer < row_head_.size());
  CF_EXPECTS_MSG(is_active(peer), "slot not active");
  for (std::uint32_t c = row_head_[peer]; c != kNullCell;
       c = cells_[c].next) {
    remove_directed(cells_[c].to, peer);
  }
  row_clear(peer);
  set_active_bit(peer, false);
  list_erase(peer);
}

bool Overlay::add_edge(std::uint32_t a, std::uint32_t b) {
  CF_EXPECTS(a < row_head_.size() && b < row_head_.size());
  CF_EXPECTS_MSG(is_active(a) && is_active(b),
                 "both endpoints must be active");
  if (a == b) return false;
  for (std::uint32_t c = row_head_[a]; c != kNullCell; c = cells_[c].next) {
    if (cells_[c].to == b) return false;
  }
  if (cells_in_use_ + 2 > cells_.size()) {
    if (edges_dropped_ == 0) {
      CF_LOG_WARN("edge pool exhausted (capacity "
                  << cells_.size()
                  << " cells); edge refused, further drops counted silently");
    }
    ++edges_dropped_;
    return false;
  }
  row_push_back(a, b);
  row_push_back(b, a);
  return true;
}

void Overlay::remove_directed(std::uint32_t from, std::uint32_t to) {
  // The linked rendering of the vector engine's swap-with-back removal:
  // copy the tail's value over the removed entry, then drop the tail cell.
  // Walk once, remembering the cell holding `to` and the tail's
  // predecessor; the resulting order matches `*it = row.back(); pop_back()`
  // exactly, which every RNG-consuming neighbor walk depends on.
  std::uint32_t found = kNullCell;
  std::uint32_t prev = kNullCell;
  std::uint32_t prev_of_tail = kNullCell;
  std::uint32_t prev_of_found = kNullCell;
  for (std::uint32_t c = row_head_[from]; c != kNullCell;
       c = cells_[c].next) {
    if (found == kNullCell && cells_[c].to == to) {
      found = c;
      prev_of_found = prev;
    }
    if (cells_[c].next == kNullCell) prev_of_tail = prev;
    prev = c;
  }
  if (found == kNullCell) return;
  const std::uint32_t tail = row_tail_[from];
  if (found == tail) {
    // Removing the last entry: unlink the tail directly.
    if (prev_of_found == kNullCell) {
      row_head_[from] = kNullCell;
      row_tail_[from] = kNullCell;
    } else {
      cells_[prev_of_found].next = kNullCell;
      row_tail_[from] = prev_of_found;
    }
  } else {
    cells_[found].to = cells_[tail].to;
    if (prev_of_tail == kNullCell) {
      // Tail had no predecessor: row has a single cell, so found == tail —
      // handled above. Unreachable, kept as a guard.
      row_head_[from] = kNullCell;
      row_tail_[from] = kNullCell;
    } else {
      cells_[prev_of_tail].next = kNullCell;
      row_tail_[from] = prev_of_tail;
    }
  }
  free_cell(tail);
  --degree_[from];
}

double Overlay::mean_degree() const {
  if (active_list_.empty()) return 0.0;
  std::size_t total = 0;
  for (std::uint32_t p : active_list_) total += degree_[p];
  return static_cast<double>(total) /
         static_cast<double>(active_list_.size());
}

}  // namespace creditflow::p2p
