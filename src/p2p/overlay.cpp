#include "p2p/overlay.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace creditflow::p2p {

Overlay::Overlay(std::size_t max_peers)
    : adj_(max_peers), active_(max_peers, false) {
  CF_EXPECTS(max_peers > 0);
}

void Overlay::init_from_graph(const graph::Graph& g) {
  CF_EXPECTS(g.num_nodes() <= adj_.size());
  for (auto& row : adj_) row.clear();
  std::fill(active_.begin(), active_.end(), false);
  active_count_ = 0;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    active_[u] = true;
    ++active_count_;
    const auto nbrs = g.neighbors(u);
    adj_[u].assign(nbrs.begin(), nbrs.end());
  }
}

bool Overlay::is_active(std::uint32_t peer) const {
  CF_EXPECTS(peer < adj_.size());
  return active_[peer];
}

std::span<const std::uint32_t> Overlay::neighbors(std::uint32_t peer) const {
  CF_EXPECTS(peer < adj_.size());
  return adj_[peer];
}

std::size_t Overlay::degree(std::uint32_t peer) const {
  CF_EXPECTS(peer < adj_.size());
  return adj_[peer].size();
}

std::vector<std::uint32_t> Overlay::active_peers() const {
  std::vector<std::uint32_t> out;
  out.reserve(active_count_);
  for (std::uint32_t p = 0; p < adj_.size(); ++p) {
    if (active_[p]) out.push_back(p);
  }
  return out;
}

void Overlay::join(std::uint32_t peer, std::size_t target_links,
                   util::Rng& rng) {
  CF_EXPECTS(peer < adj_.size());
  CF_EXPECTS_MSG(!active_[peer], "slot already active");
  active_[peer] = true;
  ++active_count_;
  if (active_count_ == 1) return;  // first peer has nobody to link to

  // Preferential attachment: sample candidates with weight degree+1.
  const auto candidates = active_peers();
  std::vector<double> weights;
  weights.reserve(candidates.size());
  for (auto c : candidates) {
    weights.push_back(c == peer ? 0.0
                                : static_cast<double>(adj_[c].size()) + 1.0);
  }
  const std::size_t want = std::min(target_links, active_count_ - 1);
  std::size_t added = 0;
  std::size_t attempts = 0;
  while (added < want && attempts < 20 * want + 40) {
    ++attempts;
    const std::size_t idx = rng.discrete(weights);
    if (add_edge(peer, candidates[idx])) {
      ++added;
      weights[idx] = 0.0;  // at most one edge per target
    }
  }
}

void Overlay::leave(std::uint32_t peer) {
  CF_EXPECTS(peer < adj_.size());
  CF_EXPECTS_MSG(active_[peer], "slot not active");
  for (auto nbr : adj_[peer]) remove_directed(nbr, peer);
  adj_[peer].clear();
  active_[peer] = false;
  --active_count_;
}

bool Overlay::add_edge(std::uint32_t a, std::uint32_t b) {
  CF_EXPECTS(a < adj_.size() && b < adj_.size());
  CF_EXPECTS_MSG(active_[a] && active_[b], "both endpoints must be active");
  if (a == b) return false;
  if (std::find(adj_[a].begin(), adj_[a].end(), b) != adj_[a].end()) {
    return false;
  }
  adj_[a].push_back(b);
  adj_[b].push_back(a);
  return true;
}

void Overlay::remove_directed(std::uint32_t from, std::uint32_t to) {
  auto& row = adj_[from];
  const auto it = std::find(row.begin(), row.end(), to);
  if (it != row.end()) {
    *it = row.back();
    row.pop_back();
  }
}

double Overlay::mean_degree() const {
  if (active_count_ == 0) return 0.0;
  std::size_t total = 0;
  for (std::uint32_t p = 0; p < adj_.size(); ++p) {
    if (active_[p]) total += adj_[p].size();
  }
  return static_cast<double>(total) / static_cast<double>(active_count_);
}

}  // namespace creditflow::p2p
