#include "p2p/overlay.hpp"

#include <algorithm>
#include <bit>

#include "util/assert.hpp"

namespace creditflow::p2p {

Overlay::Overlay(std::size_t max_peers)
    : adj_(max_peers), active_words_((max_peers + 63) / 64, 0) {
  CF_EXPECTS(max_peers > 0);
  active_list_.reserve(max_peers);
}

void Overlay::init_from_graph(const graph::Graph& g) {
  CF_EXPECTS(g.num_nodes() <= adj_.size());
  for (auto& row : adj_) row.clear();
  std::fill(active_words_.begin(), active_words_.end(), 0);
  active_list_.clear();
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    set_active_bit(u, true);
    active_list_.push_back(u);
    const auto nbrs = g.neighbors(u);
    adj_[u].assign(nbrs.begin(), nbrs.end());
  }
}

bool Overlay::is_active(std::uint32_t peer) const {
  CF_EXPECTS(peer < adj_.size());
  return (active_words_[peer / 64] >> (peer % 64)) & 1;
}

void Overlay::set_active_bit(std::uint32_t peer, bool value) {
  const std::uint64_t mask = std::uint64_t{1} << (peer % 64);
  if (value) {
    active_words_[peer / 64] |= mask;
  } else {
    active_words_[peer / 64] &= ~mask;
  }
}

void Overlay::list_insert(std::uint32_t peer) {
  const auto it =
      std::lower_bound(active_list_.begin(), active_list_.end(), peer);
  active_list_.insert(it, peer);
}

void Overlay::list_erase(std::uint32_t peer) {
  const auto it =
      std::lower_bound(active_list_.begin(), active_list_.end(), peer);
  CF_ENSURES(it != active_list_.end() && *it == peer);
  active_list_.erase(it);
}

std::span<const std::uint32_t> Overlay::neighbors(std::uint32_t peer) const {
  CF_EXPECTS(peer < adj_.size());
  return adj_[peer];
}

std::size_t Overlay::degree(std::uint32_t peer) const {
  CF_EXPECTS(peer < adj_.size());
  return adj_[peer].size();
}

std::optional<std::uint32_t> Overlay::lowest_inactive_slot() const {
  for (std::size_t w = 0; w < active_words_.size(); ++w) {
    const std::uint64_t free = ~active_words_[w];
    if (free == 0) continue;
    const auto slot = static_cast<std::uint32_t>(
        w * 64 + static_cast<std::size_t>(std::countr_zero(free)));
    if (slot >= adj_.size()) break;  // padding bits of the last word
    return slot;
  }
  return std::nullopt;
}

void Overlay::join(std::uint32_t peer, std::size_t target_links,
                   util::Rng& rng) {
  CF_EXPECTS(peer < adj_.size());
  CF_EXPECTS_MSG(!is_active(peer), "slot already active");
  set_active_bit(peer, true);
  list_insert(peer);
  if (active_list_.size() == 1) return;  // first peer has nobody to link to

  // Preferential attachment: sample candidates with weight degree+1.
  const std::span<const std::uint32_t> candidates = active_list_;
  join_weights_.clear();
  for (auto c : candidates) {
    join_weights_.push_back(
        c == peer ? 0.0 : static_cast<double>(adj_[c].size()) + 1.0);
  }
  const std::size_t want =
      std::min(target_links, active_list_.size() - 1);
  std::size_t added = 0;
  std::size_t attempts = 0;
  while (added < want && attempts < 20 * want + 40) {
    ++attempts;
    const std::size_t idx = rng.discrete(join_weights_);
    if (add_edge(peer, candidates[idx])) {
      ++added;
      join_weights_[idx] = 0.0;  // at most one edge per target
    }
  }
}

void Overlay::leave(std::uint32_t peer) {
  CF_EXPECTS(peer < adj_.size());
  CF_EXPECTS_MSG(is_active(peer), "slot not active");
  for (auto nbr : adj_[peer]) remove_directed(nbr, peer);
  adj_[peer].clear();
  set_active_bit(peer, false);
  list_erase(peer);
}

bool Overlay::add_edge(std::uint32_t a, std::uint32_t b) {
  CF_EXPECTS(a < adj_.size() && b < adj_.size());
  CF_EXPECTS_MSG(is_active(a) && is_active(b),
                 "both endpoints must be active");
  if (a == b) return false;
  if (std::find(adj_[a].begin(), adj_[a].end(), b) != adj_[a].end()) {
    return false;
  }
  adj_[a].push_back(b);
  adj_[b].push_back(a);
  return true;
}

void Overlay::remove_directed(std::uint32_t from, std::uint32_t to) {
  auto& row = adj_[from];
  const auto it = std::find(row.begin(), row.end(), to);
  if (it != row.end()) {
    *it = row.back();
    row.pop_back();
  }
}

double Overlay::mean_degree() const {
  if (active_list_.empty()) return 0.0;
  std::size_t total = 0;
  for (std::uint32_t p : active_list_) total += adj_[p].size();
  return static_cast<double>(total) /
         static_cast<double>(active_list_.size());
}

}  // namespace creditflow::p2p
