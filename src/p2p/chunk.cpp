#include "p2p/chunk.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "util/assert.hpp"

namespace creditflow::p2p {

BufferMap::BufferMap(std::size_t capacity)
    : own_(words_for(capacity), 0), words_(own_.data()), capacity_(capacity) {
  CF_EXPECTS(capacity > 0);
}

BufferMap::BufferMap(std::size_t capacity, std::uint64_t* words)
    : words_(words), capacity_(capacity) {
  CF_EXPECTS(capacity > 0);
  CF_EXPECTS(words != nullptr);
  std::fill(words_, words_ + words_for(capacity_), std::uint64_t{0});
}

BufferMap::BufferMap(const BufferMap& other)
    : own_(other.words_, other.words_ + words_for(other.capacity_)),
      words_(own_.data()),
      capacity_(other.capacity_),
      base_(other.base_),
      count_(other.count_) {}

BufferMap& BufferMap::operator=(const BufferMap& other) {
  if (this == &other) return *this;
  own_.assign(other.words_, other.words_ + words_for(other.capacity_));
  words_ = own_.data();
  capacity_ = other.capacity_;
  base_ = other.base_;
  count_ = other.count_;
  return *this;
}

BufferMap::BufferMap(BufferMap&& other) noexcept
    : own_(std::move(other.own_)),
      words_(own_.empty() ? other.words_ : own_.data()),
      capacity_(other.capacity_),
      base_(other.base_),
      count_(other.count_) {
  other.words_ = nullptr;
}

BufferMap& BufferMap::operator=(BufferMap&& other) noexcept {
  if (this == &other) return *this;
  own_ = std::move(other.own_);
  words_ = own_.empty() ? other.words_ : own_.data();
  capacity_ = other.capacity_;
  base_ = other.base_;
  count_ = other.count_;
  other.words_ = nullptr;
  return *this;
}

double BufferMap::fill() const {
  return static_cast<double>(count_) / static_cast<double>(capacity_);
}

std::size_t BufferMap::advance(ChunkId new_base) {
  CF_EXPECTS_MSG(new_base >= base_, "window cannot move backwards");
  std::size_t evicted = 0;
  // Evict slots that leave the window; if the jump exceeds the capacity the
  // whole buffer is cleared.
  if (new_base >= base_ + capacity_) {
    evicted = count_;
    std::fill(words_, words_ + words_for(capacity_), std::uint64_t{0});
    count_ = 0;
  } else {
    std::size_t s = slot(base_);
    for (ChunkId c = base_; c < new_base; ++c) {
      if (bit(s)) {
        clear_bit(s);
        --count_;
        ++evicted;
      }
      if (++s == capacity_) s = 0;
    }
  }
  base_ = new_base;
  return evicted;
}

bool BufferMap::missing_in_slot_range(std::size_t s_lo, std::size_t s_hi,
                                      ChunkId chunk_at_lo,
                                      std::vector<ChunkId>& out,
                                      std::size_t cap) const {
  for (std::size_t w = s_lo / 64; w * 64 < s_hi; ++w) {
    std::uint64_t gaps = ~words_[w];
    // Mask bits outside [s_lo, s_hi) within this word.
    if (w * 64 < s_lo) gaps &= ~std::uint64_t{0} << (s_lo % 64);
    if (s_hi < (w + 1) * 64) gaps &= ~(~std::uint64_t{0} << (s_hi % 64));
    while (gaps != 0) {
      const std::size_t s =
          w * 64 + static_cast<std::size_t>(std::countr_zero(gaps));
      gaps &= gaps - 1;
      out.push_back(chunk_at_lo + (s - s_lo));
      if (out.size() >= cap) return false;
    }
  }
  return true;
}

std::vector<ChunkId> BufferMap::missing(std::size_t max_results) const {
  std::vector<ChunkId> out;
  out.reserve(std::min(max_results == 0 ? capacity_ : max_results,
                       capacity_ - count_));
  missing_into(out, max_results);
  return out;
}

void BufferMap::missing_into(std::vector<ChunkId>& out,
                             std::size_t max_results) const {
  out.clear();
  const std::size_t cap = max_results == 0 ? capacity_ : max_results;
  // The ring holds exactly the current window, starting at slot(base_):
  // walk [slot(base_), capacity) then the wrapped [0, slot(base_)) range,
  // which visits chunks in ascending id order.
  const std::size_t s0 = slot(base_);
  if (!missing_in_slot_range(s0, capacity_, base_, out, cap)) return;
  if (s0 > 0) {
    missing_in_slot_range(0, s0, base_ + (capacity_ - s0), out, cap);
  }
}

void BufferMap::reset(ChunkId new_base) {
  std::fill(words_, words_ + words_for(capacity_), std::uint64_t{0});
  base_ = new_base;
  count_ = 0;
}

}  // namespace creditflow::p2p
