#include "p2p/chunk.hpp"

#include "util/assert.hpp"

namespace creditflow::p2p {

BufferMap::BufferMap(std::size_t capacity) : have_(capacity, false) {
  CF_EXPECTS(capacity > 0);
}

double BufferMap::fill() const {
  return static_cast<double>(count_) / static_cast<double>(have_.size());
}

bool BufferMap::in_window(ChunkId c) const {
  return c >= base_ && c < base_ + have_.size();
}

bool BufferMap::has(ChunkId c) const {
  if (!in_window(c)) return false;
  return have_[slot(c)];
}

bool BufferMap::set(ChunkId c) {
  if (!in_window(c)) return false;
  const std::size_t s = slot(c);
  if (have_[s]) return false;
  have_[s] = true;
  ++count_;
  return true;
}

std::size_t BufferMap::advance(ChunkId new_base) {
  CF_EXPECTS_MSG(new_base >= base_, "window cannot move backwards");
  std::size_t evicted = 0;
  const ChunkId old_end = base_ + have_.size();
  // Evict slots that leave the window; if the jump exceeds the capacity the
  // whole buffer is cleared.
  if (new_base >= old_end) {
    for (std::size_t s = 0; s < have_.size(); ++s) {
      if (have_[s]) {
        have_[s] = false;
        ++evicted;
      }
    }
    count_ = 0;
  } else {
    for (ChunkId c = base_; c < new_base; ++c) {
      const std::size_t s = slot(c);
      if (have_[s]) {
        have_[s] = false;
        --count_;
        ++evicted;
      }
    }
  }
  base_ = new_base;
  return evicted;
}

std::vector<ChunkId> BufferMap::missing(std::size_t max_results) const {
  std::vector<ChunkId> out;
  const std::size_t cap =
      max_results == 0 ? have_.size() : max_results;
  out.reserve(std::min(cap, have_.size() - count_));
  for (ChunkId c = base_; c < base_ + have_.size(); ++c) {
    if (!have_[slot(c)]) {
      out.push_back(c);
      if (out.size() >= cap) break;
    }
  }
  return out;
}

void BufferMap::reset(ChunkId new_base) {
  std::fill(have_.begin(), have_.end(), false);
  base_ = new_base;
  count_ = 0;
}

}  // namespace creditflow::p2p
