#include "p2p/trace.hpp"

namespace creditflow::p2p {

void TransactionTrace::set_keep_records(bool keep) {
  keep_records_ = keep;
  if (keep) enabled_ = true;
}

void TransactionTrace::record_full(double time, PeerId buyer, PeerId seller,
                                   std::uint64_t chunk, Credits price) {
  pair_flows_[pair_key(buyer, seller)] += price;
  if (keep_records_) {
    records_.push_back(TransactionRecord{time, buyer, seller, chunk, price});
  }
}

void TransactionTrace::clear() {
  records_.clear();
  pair_flows_.clear();
  count_ = 0;
  volume_ = 0;
}

}  // namespace creditflow::p2p
