#include "p2p/ledger.hpp"

#include "util/assert.hpp"

namespace creditflow::p2p {

CreditLedger::CreditLedger(std::size_t max_peers)
    : balance_(max_peers, 0), staked_(max_peers, 0) {
  CF_EXPECTS(max_peers > 0);
}

void CreditLedger::mint(PeerId peer, Credits amount) {
  CF_EXPECTS(peer < balance_.size());
  balance_[peer] += amount;
  minted_ += amount;
}

Credits CreditLedger::burn_all(PeerId peer) {
  CF_EXPECTS(peer < balance_.size());
  const Credits amount = balance_[peer];
  balance_[peer] = 0;
  burned_ += amount;
  return amount;
}

Credits CreditLedger::collect_tax(PeerId peer, Credits amount) {
  CF_EXPECTS(peer < balance_.size());
  const Credits take = amount < balance_[peer] ? amount : balance_[peer];
  balance_[peer] -= take;
  treasury_ += take;
  return take;
}

Credits CreditLedger::lock_stake(PeerId peer, Credits target) {
  CF_EXPECTS(peer < balance_.size());
  if (staked_[peer] >= target) return 0;
  const Credits wanted = target - staked_[peer];
  const Credits take = wanted < balance_[peer] ? wanted : balance_[peer];
  balance_[peer] -= take;
  staked_[peer] += take;
  staked_total_ += take;
  return take;
}

Credits CreditLedger::release_stake(PeerId peer) {
  CF_EXPECTS(peer < balance_.size());
  const Credits amount = staked_[peer];
  staked_[peer] = 0;
  staked_total_ -= amount;
  balance_[peer] += amount;
  return amount;
}

Credits CreditLedger::slash_stake(PeerId peer, double fraction) {
  CF_EXPECTS(peer < balance_.size());
  CF_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
  const Credits stake = staked_[peer];
  if (stake == 0) return 0;
  auto slashed = static_cast<Credits>(
      static_cast<double>(stake) * fraction + 0.5);
  if (slashed > stake) slashed = stake;
  staked_[peer] = 0;
  staked_total_ -= stake;
  treasury_ += slashed;
  balance_[peer] += stake - slashed;
  return slashed;
}

void CreditLedger::redistribute(std::span<const PeerId> recipients) {
  CF_EXPECTS_MSG(treasury_ >= recipients.size(),
                 "treasury cannot cover redistribution");
  for (PeerId peer : recipients) {
    CF_EXPECTS(peer < balance_.size());
    balance_[peer] += 1;
  }
  treasury_ -= recipients.size();
}

Credits CreditLedger::circulating() const {
  Credits total = 0;
  for (Credits b : balance_) total += b;
  return total;
}

bool CreditLedger::audit() const {
  return circulating() + staked_total_ + treasury_ == minted_ - burned_;
}

std::vector<double> CreditLedger::snapshot(
    std::span<const PeerId> alive) const {
  std::vector<double> out;
  snapshot(alive, out);
  return out;
}

void CreditLedger::snapshot(std::span<const PeerId> alive,
                            std::vector<double>& out) const {
  out.clear();
  out.reserve(alive.size());
  for (PeerId peer : alive) {
    CF_EXPECTS(peer < balance_.size());
    out.push_back(static_cast<double>(balance_[peer]));
  }
}

}  // namespace creditflow::p2p
