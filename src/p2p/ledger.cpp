#include "p2p/ledger.hpp"

#include "util/assert.hpp"

namespace creditflow::p2p {

CreditLedger::CreditLedger(std::size_t max_peers) : balance_(max_peers, 0) {
  CF_EXPECTS(max_peers > 0);
}

void CreditLedger::mint(PeerId peer, Credits amount) {
  CF_EXPECTS(peer < balance_.size());
  balance_[peer] += amount;
  minted_ += amount;
}

Credits CreditLedger::burn_all(PeerId peer) {
  CF_EXPECTS(peer < balance_.size());
  const Credits amount = balance_[peer];
  balance_[peer] = 0;
  burned_ += amount;
  return amount;
}

Credits CreditLedger::collect_tax(PeerId peer, Credits amount) {
  CF_EXPECTS(peer < balance_.size());
  const Credits take = amount < balance_[peer] ? amount : balance_[peer];
  balance_[peer] -= take;
  treasury_ += take;
  return take;
}

void CreditLedger::redistribute(std::span<const PeerId> recipients) {
  CF_EXPECTS_MSG(treasury_ >= recipients.size(),
                 "treasury cannot cover redistribution");
  for (PeerId peer : recipients) {
    CF_EXPECTS(peer < balance_.size());
    balance_[peer] += 1;
  }
  treasury_ -= recipients.size();
}

Credits CreditLedger::circulating() const {
  Credits total = 0;
  for (Credits b : balance_) total += b;
  return total;
}

bool CreditLedger::audit() const {
  return circulating() + treasury_ == minted_ - burned_;
}

std::vector<double> CreditLedger::snapshot(
    std::span<const PeerId> alive) const {
  std::vector<double> out;
  snapshot(alive, out);
  return out;
}

void CreditLedger::snapshot(std::span<const PeerId> alive,
                            std::vector<double>& out) const {
  out.clear();
  out.reserve(alive.size());
  for (PeerId peer : alive) {
    CF_EXPECTS(peer < balance_.size());
    out.push_back(static_cast<double>(balance_[peer]));
  }
}

}  // namespace creditflow::p2p
