#include "p2p/peer.hpp"

namespace creditflow::p2p {

PeerTable::PeerTable(std::size_t max_peers, std::size_t window_chunks)
    : alive_(max_peers, 0),
      upload_capacity_(max_peers, 0.0),
      base_spend_rate_(max_peers, 0.0),
      join_time_(max_peers, 0.0),
      depart_time_(max_peers,
                   std::numeric_limits<double>::infinity()),
      buffer_words_(max_peers * BufferMap::words_for(window_chunks), 0),
      credits_earned_(max_peers, 0),
      credits_spent_(max_peers, 0),
      chunks_downloaded_(max_peers, 0),
      chunks_uploaded_(max_peers, 0),
      chunks_seeded_(max_peers, 0),
      failed_affordability_(max_peers, 0),
      failed_availability_(max_peers, 0),
      strategy_(max_peers, 0),
      activations_(max_peers, 0) {
  CF_EXPECTS(max_peers > 0);
  CF_EXPECTS(window_chunks > 0);
  const std::size_t words = BufferMap::words_for(window_chunks);
  buffers_.reserve(max_peers);
  for (std::size_t i = 0; i < max_peers; ++i) {
    buffers_.emplace_back(window_chunks, buffer_words_.data() + i * words);
  }
}

void PeerTable::reset_slot(PeerId i, double now) {
  CF_EXPECTS(i < size());
  join_time_[i] = now;
  depart_time_[i] = std::numeric_limits<double>::infinity();
  credits_earned_[i] = 0;
  credits_spent_[i] = 0;
  chunks_downloaded_[i] = 0;
  chunks_uploaded_[i] = 0;
  chunks_seeded_[i] = 0;
  failed_affordability_[i] = 0;
  failed_availability_[i] = 0;
}

PeerState PeerTable::snapshot(PeerId i) const {
  CF_EXPECTS(i < size());
  PeerState s;
  s.id = i;
  s.alive = alive(i);
  s.upload_capacity = upload_capacity_[i];
  s.base_spend_rate = base_spend_rate_[i];
  s.join_time = join_time_[i];
  s.depart_time = depart_time_[i];
  s.buffer = buffers_[i];  // deep copy: snapshots never alias the arena
  s.credits_earned = credits_earned_[i];
  s.credits_spent = credits_spent_[i];
  s.chunks_downloaded = chunks_downloaded_[i];
  s.chunks_uploaded = chunks_uploaded_[i];
  s.chunks_seeded = chunks_seeded_[i];
  s.failed_affordability = failed_affordability_[i];
  s.failed_availability = failed_availability_[i];
  return s;
}

}  // namespace creditflow::p2p
