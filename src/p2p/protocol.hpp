// CreditFlow: the mesh-pull (UUSee-like) P2P live-streaming protocol with
// credit-incentivized chunk exchange — the simulation substrate of Sec. VI
// of the paper, rebuilt in C++.
//
// The protocol is round-based on top of the discrete-event simulator:
// every round the source emits new chunks and seeds a few peers for free;
// every peer then advances its playback window and tries to *buy* its
// missing chunks from neighbors that have them, paying the seller's price
// per chunk from its credit balance. Sellers are bandwidth-limited
// (upload_capacity chunks/sec) and buyers are budget-limited (their
// spending policy caps credits/round, and purchases require liquidity).
// Seller choice is weighted by chunk availability at the neighbors, exactly
// as the paper configures its transfer probabilities.
//
// Optional mechanisms, matching the paper's experiment sections:
//  * taxation with threshold + redistribution (Sec. VI-C),
//  * dynamic spending-rate adjustment (Sec. VI-D),
//  * peer churn — Poisson arrivals, exponential lifespans; arriving peers
//    mint fresh credits, departing peers take their balance away
//    (Sec. VI-E, the open-network market).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "econ/pricing.hpp"
#include "econ/taxation.hpp"
#include "market/order_book.hpp"
#include "p2p/ledger.hpp"
#include "p2p/overlay.hpp"
#include "p2p/owner_index.hpp"
#include "p2p/peer.hpp"
#include "p2p/spending.hpp"
#include "p2p/trace.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "strategy/strategy.hpp"
#include "util/rng.hpp"

namespace creditflow::p2p {

/// Churn (open-market) parameters.
struct ChurnConfig {
  bool enabled = false;
  double arrival_rate = 1.0;    ///< peers per second (Poisson)
  double mean_lifespan = 500.0; ///< seconds (exponential)
  std::size_t join_links = 10;  ///< preferential-attachment links per join

  /// Mint-on-(re)arrival policy. Historically every arrival minted the
  /// full `initial_credits` endowment while every departure burned the
  /// balance — which makes leave/rejoin a free debt reset (the whitewash
  /// loophole). The policy is now explicit, keyed on the *slot's*
  /// activation count (the only identity the open market has):
  ///  * kFull    — every activation mints initial_credits (the historical
  ///    behavior; byte-identical default).
  ///  * kNone    — only a slot's first activation mints; recycled slots
  ///    arrive broke.
  ///  * kDecayed — activation k mints
  ///    round(initial_credits * rejoin_mint_decay^(k-1)).
  enum class RejoinMint { kFull = 0, kNone = 1, kDecayed = 2 };
  RejoinMint rejoin_mint = RejoinMint::kFull;
  double rejoin_mint_decay = 0.5;  ///< per-reactivation decay for kDecayed
};

/// Heterogeneity of peer capabilities — the lever that makes the utilization
/// profile asymmetric (Fig. 8) or symmetric (Fig. 7).
struct HeterogeneityConfig {
  double upload_capacity_cv = 0.0;  ///< lognormal CV of upload capacity
  double spend_rate_cv = 0.0;       ///< lognormal CV of base spending rate
};

/// Full protocol configuration.
struct ProtocolConfig {
  std::size_t max_peers = 1536;    ///< slot capacity (churn headroom)
  std::size_t initial_peers = 1000;
  Credits initial_credits = 100;   ///< c — each peer's endowment

  double round_seconds = 1.0;
  double stream_rate = 2.0;        ///< chunks emitted per second
  std::size_t window_chunks = 48;  ///< playback window size
  std::size_t seed_fanout = 6;     ///< free copies of each fresh chunk

  /// Target mean degree of the bootstrap scale-free overlay (and the knob
  /// that sizes the purchase phase's per-chunk seller scans).
  double overlay_mean_degree = 20.0;

  /// Resolve purchase candidates through the incrementally-maintained
  /// chunk→owner bitmap index (word-wide AND walks) instead of rescanning
  /// every neighbor per chunk. Both paths produce bit-identical markets —
  /// the flag exists so tests and perf benches can compare them.
  bool use_owner_index = true;

  /// Mean chunks/sec a peer can serve. The ratio to stream_rate is the
  /// system's capacity headroom: at ~1.25x the swarm is supply-limited and
  /// every peer's income saturates near the stream rate (the paper's
  /// symmetric-utilization streaming case, Sec. V-C); large headroom lets
  /// high-degree hubs capture unbounded demand and wealth condenses onto
  /// the "connection-affluent" peers the introduction warns about.
  double upload_capacity = 2.5;
  double base_spend_rate = 6.0;    ///< mean μ^s in credits/sec
  std::size_t max_purchase_attempts = 48;  ///< per peer per round

  /// Fraction of the window each peer starts holding (warm start — the
  /// market begins in a healthy streaming state instead of a cold-start
  /// scramble that immediately bankrupts the unlucky).
  double warm_start_fill = 0.85;

  /// Liquidity management ("a user should strike to maintain its credit
  /// pool at a healthy level", Sec. III-A): when the balance is at or below
  /// `reserve_credits`, a peer stops catching up on backlog and only buys
  /// enough fresh chunks to keep pace with the stream rate. The reserve is
  /// an absolute amount (a few seconds of playback at mean price), NOT
  /// proportional to the endowment c — so it stabilizes poor markets while
  /// leaving rich markets free to drift, which is exactly the
  /// Gini-grows-with-c behaviour the paper reports.
  double reserve_credits = 8.0;

  /// Deficit-based seeding: the source pushes fresh chunks toward the
  /// emptiest buffers (server-assisted swarm). Disabling it reverts to
  /// uniform-random seeding, removing the income floor that lets bankrupt
  /// peers recover — one of the "careful design" ingredients whose absence
  /// the paper's condensed configuration illustrates.
  bool deficit_seeding = true;

  /// How a buyer picks among the neighbors that own a wanted chunk (and
  /// still have upload budget):
  ///  * kAvailabilityUniform — uniform among owners; the paper's
  ///    availability-driven transfer probabilities (default).
  ///  * kFillWeighted — weight by the seller's buffer fill; concentrates
  ///    demand on chunk-rich (typically wealthy) peers — the
  ///    rich-get-richer ablation behind the paper's Fig. 1 condensed case.
  ///  * kCheapestAsk — solicit asks and buy from the cheapest owner
  ///    (first-price procurement auction); the auction-based pricing the
  ///    paper defers to future work.
  enum class SellerChoice { kAvailabilityUniform, kFillWeighted, kCheapestAsk };
  SellerChoice seller_choice = SellerChoice::kAvailabilityUniform;

  /// Back-compat convenience used by older configs/tests: true selects
  /// kFillWeighted at construction time.
  bool weight_sellers_by_fill = false;

  /// How purchases clear:
  ///  * kDirect — the paper's market: the buyer picks a seller per
  ///    seller_choice and pays the pricing scheme's posted price (default;
  ///    byte-identical to every pre-order-book build).
  ///  * kOrderBook — the price-mediated regime (Ramaswamy et al.): sellers
  ///    post asks into a price-time-priority book each round and buyers
  ///    cross it; the transacted price is the resting ask's, not the
  ///    pricing scheme's.
  enum class MarketMode { kDirect, kOrderBook };
  MarketMode market_mode = MarketMode::kDirect;

  /// Order-book market knobs (only read when market_mode == kOrderBook).
  struct OrderBookConfig {
    /// How sellers price their asks.
    ///  * kFixedMarkup — every ask at round(base_price * (1 + ask_markup)).
    ///  * kAdaptive — per-seller tâtonnement: every reprice_rounds rounds a
    ///    seller raises its price one credit when its posted quantity
    ///    mostly sold (fill ratio >= fill_hi) and cuts one credit when
    ///    almost nothing sold (<= fill_lo). Supply and demand then walk
    ///    each market toward its clearing price.
    enum class AskPricing { kFixedMarkup, kAdaptive };
    AskPricing ask_pricing = AskPricing::kFixedMarkup;
    double ask_markup = 0.0;        ///< fixed-markup premium over base_price
    Credits base_price = 1;         ///< fixed-markup base / adaptive start
    Credits min_price = 1;          ///< adaptive floor
    Credits max_price = 16;         ///< book price-level capacity + cap
    std::size_t reprice_rounds = 8; ///< adaptive repricing cadence

    /// How buyers cross the book (per wanted chunk, over the neighbor
    /// sellers whose asks cover it):
    ///  * kBestAsk — price-time priority: cheapest ask, earliest post wins
    ///    ties.
    ///  * kFillWeighted — spread demand across price levels, weighting
    ///    each candidate ask by its remaining quantity (deep asks absorb
    ///    proportionally more of the flow).
    ///  * kLimit — best ask if it is at or under limit_price; otherwise
    ///    the buyer posts a resting limit bid and waits for the market to
    ///    come down to it.
    enum class CrossStrategy { kBestAsk, kFillWeighted, kLimit };
    CrossStrategy cross = CrossStrategy::kBestAsk;
    Credits limit_price = 2;        ///< kLimit threshold

    /// Fraction of peers that participate as ask-posting sellers (chosen
    /// by a deterministic per-id hash, so the set is stable under churn).
    /// Everyone still buys; supply scales with this — the clearing-price
    /// vs. seeder-fraction axis.
    double seller_fraction = 1.0;
  };
  OrderBookConfig book;

  /// Credit injection (the "inflation" counter-action the paper's
  /// introduction warns about): every `interval_seconds`, the system mints
  /// `credits_per_peer` fresh credits to every alive peer. Keeps poor peers
  /// liquid at the cost of growing the money supply — the ext02 bench
  /// quantifies the trade-off.
  struct InjectionPolicy {
    bool enabled = false;
    double interval_seconds = 100.0;
    Credits credits_per_peer = 1;
  };
  InjectionPolicy injection;

  econ::PricingParams pricing;
  SpendingParams spending;
  econ::TaxPolicy tax;
  ChurnConfig churn;
  HeterogeneityConfig heterogeneity;
  /// Strategic-agent populations (all zero ⇒ the honest-only market,
  /// byte-identical to every pre-strategy build).
  strategy::StrategyConfig strat;

  std::uint64_t seed = 42;
};

/// The protocol engine. Construct, call start(), then drive the Simulator.
class StreamingProtocol {
 public:
  StreamingProtocol(ProtocolConfig config, sim::Simulator& simulator);

  /// Cancels every callback the protocol scheduled: the simulator may
  /// outlive the protocol and keep running without touching freed state.
  ~StreamingProtocol();

  StreamingProtocol(const StreamingProtocol&) = delete;
  StreamingProtocol& operator=(const StreamingProtocol&) = delete;

  /// Build the overlay, endow peers, and schedule rounds (and churn).
  void start();

  // ---- Introspection -----------------------------------------------------
  [[nodiscard]] const ProtocolConfig& config() const { return cfg_; }
  [[nodiscard]] const CreditLedger& ledger() const { return ledger_; }
  [[nodiscard]] const Overlay& overlay() const { return overlay_; }
  /// Deep-copied point-in-time view of one peer slot. By value: the live
  /// state is structure-of-arrays (PeerTable), so there is no PeerState
  /// object to reference — the snapshot is assembled on demand.
  [[nodiscard]] PeerState peer(PeerId id) const;
  [[nodiscard]] std::vector<PeerId> alive_peers() const;
  /// Alive peer ids in ascending order, O(1), no copy.
  ///
  /// LIFETIME: aliases the overlay's dense active array; invalidated by any
  /// churn event (join/leave) and by protocol destruction. Safe to hold for
  /// the duration of one callback at a fixed simulation time — churn never
  /// interleaves with an executing event — but never across events.
  [[nodiscard]] std::span<const PeerId> alive_span() const {
    return overlay_.active_peers();
  }
  [[nodiscard]] std::size_t num_alive() const { return overlay_.num_active(); }
  [[nodiscard]] const econ::TaxationEngine& taxation() const { return tax_; }
  [[nodiscard]] const OwnerIndex& owner_index() const { return owner_index_; }
  [[nodiscard]] TransactionTrace& trace() { return trace_; }
  [[nodiscard]] const TransactionTrace& trace() const { return trace_; }
  /// The live order book; nullptr unless market_mode == kOrderBook.
  [[nodiscard]] const market::OrderBook* order_book() const {
    return book_.get();
  }
  /// Readouts of the most recent round's book state (depth/spread at round
  /// end; clearing price and fill ratio over that round's fills). All zero
  /// outside kOrderBook mode or before the first round.
  struct BookRoundStats {
    double depth = 0.0;           ///< resting asks at round end
    double spread = 0.0;          ///< max_ask - min_ask at round end
    double clearing_price = 0.0;  ///< volume/fills of the round (0: no fill)
    double fill_ratio = 0.0;      ///< round fills / round posted quantity
  };
  [[nodiscard]] const BookRoundStats& book_round_stats() const {
    return book_stats_;
  }
  /// Mutable for gauge/series writers. Safe to clear() while the protocol
  /// is live: the registry zeroes counter cells in place, so the hot
  /// loop's cached cell pointers stay valid (counters restart from zero).
  [[nodiscard]] sim::MetricsRegistry& metrics() { return metrics_; }

  /// The slot's behavioral strategy (kHonest everywhere when strat is off).
  [[nodiscard]] strategy::Strategy strategy_of(PeerId id) const {
    return peers_.strategy(id);
  }
  /// Per-strategy population/credit/availability readout over the alive
  /// set, plus total bonded stake. Pure readout, allocation-free.
  [[nodiscard]] strategy::Breakdown strategy_breakdown() const;

  /// Balances of alive peers (order matches alive_peers()).
  [[nodiscard]] std::vector<double> balance_snapshot() const;
  /// Lifetime spending rate (credits/sec) of alive peers.
  [[nodiscard]] std::vector<double> spend_rate_snapshot() const;
  /// Start a trailing measurement window for windowed_spend_rates().
  void begin_rate_window();
  /// Spending rates (credits/sec) of alive peers since begin_rate_window();
  /// the paper's Fig. 1 "credit spending rate" readout. Requires a window
  /// opened at a strictly earlier simulation time.
  [[nodiscard]] std::vector<double> windowed_spend_rates() const;
  /// Lifetime download rate (chunks/sec) of alive peers.
  [[nodiscard]] std::vector<double> download_rate_snapshot() const;

  // Scratch-buffer flavors of the snapshots above: fill a caller-owned
  // vector (cleared first) instead of returning a fresh one, so periodic
  // sampling allocates nothing once the buffer has warmed up. Values and
  // order are identical to the returning flavors.
  void balance_snapshot(std::vector<double>& out) const;
  void spend_rate_snapshot(std::vector<double>& out) const;
  void windowed_spend_rates(std::vector<double>& out) const;
  void download_rate_snapshot(std::vector<double>& out) const;
  /// Current chunk at the head of the stream.
  [[nodiscard]] ChunkId stream_head() const;
  /// Fraction of the window held, averaged over alive peers (playback
  /// continuity proxy).
  [[nodiscard]] double mean_buffer_fill() const;

  /// Rounds executed so far.
  [[nodiscard]] std::uint64_t rounds_run() const { return rounds_; }

  /// Cumulative wall-clock seconds spent inside the purchase phase (all
  /// peers, all rounds) — the hot-path telemetry the perf benches report.
  [[nodiscard]] double purchase_phase_seconds() const {
    return purchase_phase_seconds_;
  }
  /// Cumulative wall-clock seconds spent seeding fresh chunks.
  [[nodiscard]] double seed_phase_seconds() const {
    return seed_phase_seconds_;
  }
  /// Cumulative wall-clock seconds spent in taxation redistribution.
  [[nodiscard]] double tax_phase_seconds() const {
    return tax_phase_seconds_;
  }

  /// Observer invoked at the end of every round — after that round's
  /// purchases and taxation settled — with the 1-based round index and the
  /// round's simulation time. Must be read-only: the hook sees the live
  /// protocol and must not mutate it or consume RNG (the series sampler is
  /// the intended client). One hook; setting replaces the previous one.
  void set_round_hook(std::function<void(std::uint64_t, double)> hook) {
    round_hook_ = std::move(hook);
  }

 private:
  /// Wrap a callback so it no-ops once this protocol is destroyed. Every
  /// lambda handed to the simulator goes through this: the simulator owns
  /// its queue entries by value, so a raw `this` capture would dangle.
  [[nodiscard]] sim::EventQueue::Callback guard(
      std::function<void(double)> cb) const;

  void run_round(double now);
  void seed_new_chunks(double now, ChunkId head);
  void peer_purchase_phase(PeerId buyer_id, double now);
  /// Fill the per-slot candidate bitmasks for this buyer: bit j of slot s
  /// set ⟺ eligible_[j] owns the wanted chunk at slot s. eligible_ holds
  /// the buyer's alive, upload-budgeted neighbors in neighbor-list order
  /// (the tie-break order the seller choice depends on), so ascending bit
  /// position IS neighbor order.
  void build_purchase_candidates(std::span<const PeerId> neighbors,
                                 std::span<const ChunkId> wanted,
                                 ChunkId window_base);
  /// OwnerIndex::slot without the per-chunk hardware divide: all chunks a
  /// phase touches sit in [phase_base_, phase_base_ + window), so one
  /// wrapping add from the base slot (computed once per phase) suffices.
  [[nodiscard]] std::size_t phase_slot(ChunkId c) const {
    std::size_t s =
        phase_base_slot_ + static_cast<std::size_t>(c - phase_base_);
    if (s >= cfg_.window_chunks) s -= cfg_.window_chunks;
    return s;
  }
  /// A seller's upload budget dropped below 1 mid-phase: clear its bit
  /// from every wanted slot so later chunks in this phase skip it (the
  /// indexed equivalent of the naive scan's per-chunk budget check).
  void remove_drained_seller(PeerId seller, std::span<const ChunkId> wanted);
  /// Order-book round opening: every participating seller posts (or
  /// replaces) its ask — quantity from this round's upload budget, price
  /// from the ask-pricing policy (adaptive repricing on its cadence).
  void book_post_asks();
  /// Whether `id` participates as an ask-posting seller (deterministic
  /// per-id hash against book.seller_fraction — stable under churn).
  [[nodiscard]] bool is_book_seller(PeerId id) const;
  /// Cross the book for one wanted chunk: among `neighbors` whose resting
  /// asks cover `chunk` (owner + upload budget + live ask), pick per the
  /// crossing strategy. Returns false when no ask is crossable (for kLimit
  /// that includes best-ask-above-limit, which posts a resting bid).
  bool book_cross(PeerId buyer, ChunkId chunk,
                  std::span<const PeerId> neighbors, PeerId& seller_out,
                  econ::Credits& price_out);
  /// Availability-uniform choice over `num_candidates` in closed form.
  /// Rng::discrete over k all-ones weights draws one uniform() and returns
  /// the first i with u*k - (i+1) <= 0, i.e. ceil(u*k) - 1 (0 when
  /// u*k <= 1) — computed here with the identical RNG draw and identical
  /// pick, so both purchase paths stay bit-for-bit equal to the discrete()
  /// formulation without materializing weights or walking the cumsum.
  [[nodiscard]] std::size_t uniform_pick(std::size_t num_candidates);
  void schedule_next_arrival();
  void handle_arrival(double now);
  void handle_departure(PeerId id, double now);
  /// (Re)activate a slot; returns the credits minted into it (the
  /// rejoin-mint policy decides how much a recycled slot still gets).
  Credits activate_peer(PeerId id, double now, bool initial);
  /// Credits the rejoin-mint policy grants a slot's `activation`-th
  /// activation (1-based; activation 1 always gets the full endowment).
  [[nodiscard]] Credits rejoin_grant(std::uint32_t activation) const;
  // Strategy-layer round phases (each a no-op unless the corresponding
  // population is configured; none consumes RNG when off).
  void strategy_zero_free_rider_budgets();
  void strategy_collusion_round();
  void strategy_whitewash_round(double now);
  void strategy_revalidate_stakes();

  ProtocolConfig cfg_;
  sim::Simulator& sim_;
  util::Rng rng_;
  CreditLedger ledger_;
  Overlay overlay_;
  OwnerIndex owner_index_;  ///< mirrors every peer buffer, always live
  PeerTable peers_;         ///< SoA per-peer state, arena-backed buffers
  std::unique_ptr<econ::PricingScheme> pricing_;
  std::unique_ptr<SpendingPolicy> spending_;
  econ::TaxationEngine tax_;
  TransactionTrace trace_;
  sim::MetricsRegistry metrics_;

  // Order-book market state (allocated only in kOrderBook mode, so kDirect
  // markets carry zero book overhead).
  std::unique_ptr<market::OrderBook> book_;
  std::vector<econ::Credits> book_price_;   ///< per-seller adaptive price
  std::vector<std::uint32_t> book_posted_;  ///< qty posted since reprice
  std::vector<std::uint32_t> book_sold_;    ///< qty sold since reprice
  BookRoundStats book_stats_;
  // Round-start counter snapshots for the per-round stats deltas.
  std::uint64_t book_round_fills_base_ = 0;
  std::uint64_t book_round_volume_base_ = 0;
  std::uint64_t book_round_posted_base_ = 0;

  // Per-round scratch (kept across rounds to avoid reallocation).
  std::vector<double> upload_budget_;   ///< chunks a peer may still serve
  std::vector<PeerId> round_order_;
  std::vector<double> seller_weights_;
  std::vector<PeerId> seller_ids_;
  // Per-buyer-phase scratch for the indexed path: the wanted-chunk mask,
  // the buyer's eligible neighbors (alive + upload budget, in
  // neighbor-list order), and one bitmask over those neighbors per window
  // slot (row-major, eligible_words_ words per slot).
  std::vector<std::uint64_t> missing_mask_;
  std::vector<PeerId> eligible_;
  std::vector<std::uint64_t> slot_masks_;
  std::size_t eligible_words_ = 0;
  std::vector<ChunkId> missing_scratch_;
  /// Buyer's neighbor list, materialized once per purchase phase from the
  /// overlay's edge-pool chain (allocation-free at high-water capacity).
  std::vector<PeerId> neighbor_scratch_;
  /// Strategy-phase scratch (reserved to max_peers at construction when the
  /// corresponding population is configured, so the round loop stays
  /// allocation-free with strategies live).
  std::vector<PeerId> colluder_scratch_;
  std::vector<PeerId> staked_scratch_;
  /// Cached cfg_.strat.enabled(): the single branch every strategy hook
  /// sits behind in the default (all-honest) path.
  bool strat_enabled_ = false;
  ChunkId phase_base_ = 0;          ///< current phase's window base
  std::size_t phase_base_slot_ = 0; ///< its ring slot (one divide per phase)
  /// Current phase fits the single-word fast path: the window is ≤ 64
  /// chunks AND the buyer has 1..64 budgeted neighbors, so every candidate
  /// mask is exactly one word (set by build_purchase_candidates).
  bool phase_single_word_ = false;
  /// Current phase fits the two-word fast path: 65..128 budgeted neighbors
  /// (eligible_words_ == 2), the hub-buyer regime. Each slot's candidate
  /// mask is exactly two words, so count/pick run unrolled instead of
  /// through the generic per-word loops. Mutually exclusive with
  /// phase_single_word_ (also set by build_purchase_candidates).
  bool phase_two_word_ = false;

  // Hot-loop counter cells cached once (stable for the registry lifetime)
  // so per-event accounting skips the by-name map lookup — and the
  // std::string construction that goes with it, which heap-allocates for
  // names beyond the small-string buffer.
  std::uint64_t* tx_count_ = nullptr;
  std::uint64_t* tx_volume_ = nullptr;
  std::uint64_t* liquidity_failures_ = nullptr;
  std::uint64_t* tax_collected_ = nullptr;
  std::uint64_t* tax_redistributions_ = nullptr;
  std::uint64_t* injection_rounds_ = nullptr;
  std::uint64_t* injection_minted_ = nullptr;
  std::uint64_t* churn_arrivals_ = nullptr;
  std::uint64_t* churn_arrivals_dropped_ = nullptr;
  std::uint64_t* churn_departures_ = nullptr;
  std::uint64_t* churn_credits_taken_ = nullptr;
  // Purchase-path dispatch counters: how many buyer phases resolved
  // through each candidate-mask width (the fast-path hit/miss readout).
  std::uint64_t* phase_one_word_ct_ = nullptr;
  std::uint64_t* phase_two_word_ct_ = nullptr;
  std::uint64_t* phase_generic_ct_ = nullptr;
  // Pool-exhaustion readout: the overlay's edge-drop count mirrored into
  // the registry each round, so capacity pressure lands in run telemetry
  // instead of only a warn-once stderr line.
  std::uint64_t* overlay_edges_dropped_ = nullptr;
  // Strategy-layer accounting (incremented only when strat is enabled).
  std::uint64_t* whitewash_resets_ = nullptr;
  std::uint64_t* whitewash_minted_ = nullptr;
  std::uint64_t* whitewash_burned_ = nullptr;
  std::uint64_t* collusion_transfers_ = nullptr;
  std::uint64_t* collusion_volume_ = nullptr;
  std::uint64_t* stake_locked_ = nullptr;
  std::uint64_t* stake_slashed_ = nullptr;
  std::uint64_t* stake_topups_ = nullptr;
  // Order-book accounting (incremented only in kOrderBook mode).
  std::uint64_t* book_asks_posted_ = nullptr;
  std::uint64_t* book_posted_qty_ = nullptr;
  std::uint64_t* book_fills_ = nullptr;
  std::uint64_t* book_volume_ = nullptr;
  std::uint64_t* book_asks_expired_ = nullptr;
  std::uint64_t* book_bids_posted_ = nullptr;
  std::uint64_t* book_bids_matched_ = nullptr;
  std::uint64_t* book_bids_expired_ = nullptr;

  // Histogram cells (stable for the registry lifetime, allocation-free
  // add): budgeted-candidate-set sizes per buyer phase, event-queue depth
  // sampled each round, and — only while the tracer is enabled, to keep
  // the steady-state hot path free of per-buyer clock reads — per-buyer
  // purchase-phase latency in microseconds.
  util::Log2Histogram* candidates_hist_ = nullptr;
  util::Log2Histogram* queue_depth_hist_ = nullptr;
  util::Log2Histogram* buyer_latency_hist_ = nullptr;

  // Trailing spend-rate window (begin_rate_window / windowed_spend_rates).
  std::vector<std::uint64_t> spent_marker_;
  double marker_time_ = -1.0;

  // Teardown safety: callbacks hold a weak_ptr to this token and no-op once
  // it expires; periodic tasks are additionally cancelled so they stop
  // rescheduling themselves into a simulator that outlives the protocol.
  std::shared_ptr<bool> alive_token_ = std::make_shared<bool>(true);
  std::vector<sim::Simulator::PeriodicHandle> periodic_handles_;

  std::uint64_t rounds_ = 0;
  double purchase_phase_seconds_ = 0.0;
  double seed_phase_seconds_ = 0.0;
  double tax_phase_seconds_ = 0.0;
  std::function<void(std::uint64_t, double)> round_hook_;
  bool started_ = false;
};

}  // namespace creditflow::p2p
