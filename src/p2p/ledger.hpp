// CreditFlow: the credit ledger — every virtual-currency movement in the
// market flows through here, so conservation is checkable in one place.
//
// Closed markets (no churn) mint each peer's initial endowment once and then
// only transfer; the invariant Σ balances + Σ stakes + treasury ==
// minted − burned holds at every instant and is asserted by tests and by
// audit() calls sprinkled through the protocol. Stake accounts (the bonded
// credit behind stake-backed seeding) are part of the money supply: locking
// moves balance → stake, releasing moves it back, slashing forfeits a
// fraction to the treasury — none of the three mints or burns.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace creditflow::p2p {

using PeerId = std::uint32_t;
using Credits = std::uint64_t;

/// Balances for a slot-addressed peer population plus a system treasury.
class CreditLedger {
 public:
  explicit CreditLedger(std::size_t max_peers);

  [[nodiscard]] std::size_t capacity() const { return balance_.size(); }

  /// Create `amount` new credits in `peer`'s account (join endowment).
  void mint(PeerId peer, Credits amount);
  /// Destroy the peer's entire balance (peer departure takes credits along);
  /// returns the amount removed.
  Credits burn_all(PeerId peer);

  /// Move credits between peers; returns false (and does nothing) when the
  /// payer's balance is insufficient. Transfers of 0 succeed trivially.
  /// Inline: one call per purchase attempt, millions per simulated run.
  [[nodiscard]] bool transfer(PeerId from, PeerId to, Credits amount) {
    CF_EXPECTS(from < balance_.size() && to < balance_.size());
    if (balance_[from] < amount) return false;
    balance_[from] -= amount;
    balance_[to] += amount;
    ++transfers_;
    volume_ += amount;
    return true;
  }

  /// Move credits from a peer into the treasury (taxation); clamps to the
  /// available balance and returns the amount actually collected.
  Credits collect_tax(PeerId peer, Credits amount);

  // ---- Stake accounts (bonded credit, stake-backed seeding) --------------
  /// Top the peer's stake up toward `target` from its balance (clamped to
  /// what the balance covers); returns the amount actually locked.
  Credits lock_stake(PeerId peer, Credits target);
  /// Return the peer's whole stake to its balance; returns the amount.
  Credits release_stake(PeerId peer);
  /// Forfeit `fraction` (rounded) of the peer's stake to the treasury and
  /// release the remainder to its balance; returns the slashed amount.
  Credits slash_stake(PeerId peer, double fraction);
  [[nodiscard]] Credits staked(PeerId peer) const {
    CF_EXPECTS(peer < balance_.size());
    return staked_[peer];
  }
  [[nodiscard]] Credits total_staked() const { return staked_total_; }

  /// Move one credit from the treasury to each peer in `recipients`;
  /// requires treasury >= recipients.size().
  void redistribute(std::span<const PeerId> recipients);

  [[nodiscard]] Credits balance(PeerId peer) const {
    CF_EXPECTS(peer < balance_.size());
    return balance_[peer];
  }
  [[nodiscard]] Credits treasury() const { return treasury_; }
  [[nodiscard]] Credits total_minted() const { return minted_; }
  [[nodiscard]] Credits total_burned() const { return burned_; }
  /// Lifetime transfer count / volume (for rate accounting).
  [[nodiscard]] std::uint64_t transfer_count() const { return transfers_; }
  [[nodiscard]] Credits transfer_volume() const { return volume_; }

  /// Sum of all balances (O(n)); excludes bonded stake.
  [[nodiscard]] Credits circulating() const;
  /// Conservation invariant:
  /// circulating + total_staked + treasury == minted − burned.
  [[nodiscard]] bool audit() const;

  /// Balances as doubles for the econ metrics, restricted to `alive` slots.
  [[nodiscard]] std::vector<double> snapshot(
      std::span<const PeerId> alive) const;
  /// snapshot() into a caller-owned buffer (cleared first) — the
  /// allocation-free flavor for periodic sampling.
  void snapshot(std::span<const PeerId> alive, std::vector<double>& out) const;

 private:
  std::vector<Credits> balance_;
  std::vector<Credits> staked_;
  Credits staked_total_ = 0;
  Credits treasury_ = 0;
  Credits minted_ = 0;
  Credits burned_ = 0;
  std::uint64_t transfers_ = 0;
  Credits volume_ = 0;
};

}  // namespace creditflow::p2p
