#include "p2p/protocol.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/generators.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace creditflow::p2p {

StreamingProtocol::StreamingProtocol(ProtocolConfig config,
                                     sim::Simulator& simulator)
    : cfg_(std::move(config)),
      sim_(simulator),
      rng_(cfg_.seed),
      ledger_(cfg_.max_peers),
      overlay_(cfg_.max_peers),
      peers_(cfg_.max_peers),
      pricing_(econ::make_pricing(cfg_.pricing)),
      spending_(make_spending_policy(cfg_.spending)),
      tax_(cfg_.tax) {
  CF_EXPECTS(cfg_.initial_peers >= 2);
  CF_EXPECTS(cfg_.initial_peers <= cfg_.max_peers);
  CF_EXPECTS(cfg_.round_seconds > 0.0);
  CF_EXPECTS(cfg_.stream_rate > 0.0);
  CF_EXPECTS(cfg_.window_chunks >= 4);
  CF_EXPECTS(cfg_.seed_fanout >= 1);
  CF_EXPECTS(cfg_.upload_capacity > 0.0);
  CF_EXPECTS(cfg_.base_spend_rate > 0.0);
  CF_EXPECTS(cfg_.max_purchase_attempts >= 1);
  if (cfg_.churn.enabled) {
    CF_EXPECTS(cfg_.churn.arrival_rate > 0.0);
    CF_EXPECTS(cfg_.churn.mean_lifespan > 0.0);
    CF_EXPECTS(cfg_.churn.join_links >= 1);
  }
  if (cfg_.weight_sellers_by_fill) {
    cfg_.seller_choice = ProtocolConfig::SellerChoice::kFillWeighted;
  }
  if (cfg_.injection.enabled) {
    CF_EXPECTS(cfg_.injection.interval_seconds > 0.0);
    CF_EXPECTS(cfg_.injection.credits_per_peer > 0);
  }
  upload_budget_.assign(cfg_.max_peers, 0.0);
  for (PeerId id = 0; id < cfg_.max_peers; ++id) {
    peers_[id].id = id;
    peers_[id].buffer = BufferMap(cfg_.window_chunks);
  }
}

StreamingProtocol::~StreamingProtocol() {
  *alive_token_ = false;
  // PeriodicHandle::cancel only flips a shared flag, so this is safe even
  // when the simulator was destroyed before the protocol.
  for (auto& handle : periodic_handles_) handle.cancel();
}

sim::EventQueue::Callback StreamingProtocol::guard(
    std::function<void(double)> cb) const {
  return [token = std::weak_ptr<bool>(alive_token_),
          cb = std::move(cb)](double t) {
    const auto alive = token.lock();
    if (!alive || !*alive) return;
    cb(t);
  };
}

const PeerState& StreamingProtocol::peer(PeerId id) const {
  CF_EXPECTS(id < peers_.size());
  return peers_[id];
}

std::vector<PeerId> StreamingProtocol::alive_peers() const {
  return overlay_.active_peers();
}

ChunkId StreamingProtocol::stream_head() const {
  // The stream is defined to have been live for one full window before the
  // market opens, so warm-started buffers have real chunks to hold.
  return static_cast<ChunkId>(sim_.now() * cfg_.stream_rate) +
         cfg_.window_chunks;
}

void StreamingProtocol::activate_peer(PeerId id, double now, bool initial) {
  PeerState& p = peers_[id];
  p.alive = true;
  p.join_time = now;
  p.depart_time = std::numeric_limits<double>::infinity();
  p.upload_capacity = cfg_.heterogeneity.upload_capacity_cv > 0.0
                          ? rng_.lognormal_mean_cv(
                                cfg_.upload_capacity,
                                cfg_.heterogeneity.upload_capacity_cv)
                          : cfg_.upload_capacity;
  p.base_spend_rate =
      cfg_.heterogeneity.spend_rate_cv > 0.0
          ? rng_.lognormal_mean_cv(cfg_.base_spend_rate,
                                   cfg_.heterogeneity.spend_rate_cv)
          : cfg_.base_spend_rate;
  p.credits_earned = 0;
  p.credits_spent = 0;
  p.chunks_downloaded = 0;
  p.chunks_uploaded = 0;
  p.chunks_seeded = 0;
  p.failed_affordability = 0;
  p.failed_availability = 0;
  const ChunkId head =
      static_cast<ChunkId>(now * cfg_.stream_rate) + cfg_.window_chunks;
  const ChunkId base = head - cfg_.window_chunks;
  p.buffer.reset(base);
  // Warm start: join holding most of the current window, as a peer that has
  // been streaming for a while (or bootstrapped quickly) would.
  if (cfg_.warm_start_fill > 0.0) {
    for (ChunkId c = base; c < head; ++c) {
      if (rng_.bernoulli(cfg_.warm_start_fill)) p.buffer.set(c);
    }
  }
  ledger_.mint(id, cfg_.initial_credits);
  (void)initial;
}

void StreamingProtocol::start() {
  CF_EXPECTS_MSG(!started_, "protocol already started");
  started_ = true;

  // Static bootstrap overlay: scale-free with the paper's parameters.
  graph::ScaleFreeParams sf;
  sf.exponent = 2.5;
  sf.target_mean_degree = 20.0;
  auto bootstrap = graph::scale_free(cfg_.initial_peers, sf, rng_);
  overlay_.init_from_graph(bootstrap);
  for (PeerId id = 0; id < cfg_.initial_peers; ++id) {
    activate_peer(id, sim_.now(), /*initial=*/true);
    // Under churn the bootstrap cohort is mortal too, so the population
    // settles at arrival_rate × mean_lifespan rather than stacking the
    // immortal initial peers on top of the churning ones.
    if (cfg_.churn.enabled) {
      const double lifespan =
          rng_.exponential(1.0 / cfg_.churn.mean_lifespan);
      peers_[id].depart_time = sim_.now() + lifespan;
      sim_.schedule_after(lifespan, guard([this, id](double t) {
                            if (peers_[id].alive) handle_departure(id, t);
                          }));
    }
  }

  periodic_handles_.push_back(sim_.schedule_periodic(
      sim_.now() + cfg_.round_seconds, cfg_.round_seconds,
      guard([this](double t) { run_round(t); })));
  if (cfg_.churn.enabled) schedule_next_arrival();
  if (cfg_.injection.enabled) {
    periodic_handles_.push_back(sim_.schedule_periodic(
        sim_.now() + cfg_.injection.interval_seconds,
        cfg_.injection.interval_seconds, guard([this](double) {
          for (PeerId id : overlay_.active_peers()) {
            ledger_.mint(id, cfg_.injection.credits_per_peer);
          }
          metrics_.increment("injection.rounds");
          metrics_.increment("injection.minted",
                             cfg_.injection.credits_per_peer *
                                 overlay_.num_active());
        })));
  }
}

void StreamingProtocol::schedule_next_arrival() {
  const double dt = rng_.exponential(cfg_.churn.arrival_rate);
  sim_.schedule_after(dt, guard([this](double t) {
                        handle_arrival(t);
                        schedule_next_arrival();
                      }));
}

std::optional<PeerId> StreamingProtocol::find_free_slot() const {
  for (PeerId id = 0; id < peers_.size(); ++id) {
    if (!peers_[id].alive) return id;
  }
  return std::nullopt;
}

void StreamingProtocol::handle_arrival(double now) {
  const auto slot = find_free_slot();
  if (!slot) {
    // Log once; the counter tracks the rest (repeat warnings would flood
    // long runs that are intentionally driven at capacity).
    if (metrics_.counter("churn.arrivals_dropped") == 0) {
      CF_LOG_WARN("arrival dropped: no free peer slot (capacity "
                  << peers_.size() << "); further drops counted silently");
    }
    metrics_.increment("churn.arrivals_dropped");
    return;
  }
  const PeerId id = *slot;
  activate_peer(id, now, /*initial=*/false);
  overlay_.join(id, cfg_.churn.join_links, rng_);
  metrics_.increment("churn.arrivals");

  const double lifespan = rng_.exponential(1.0 / cfg_.churn.mean_lifespan);
  peers_[id].depart_time = now + lifespan;
  sim_.schedule_after(lifespan, guard([this, id](double t) {
                        if (peers_[id].alive) handle_departure(id, t);
                      }));
}

void StreamingProtocol::handle_departure(PeerId id, double now) {
  CF_EXPECTS(peers_[id].alive);
  (void)now;
  // The departing peer takes its credits out of the market.
  const Credits taken = ledger_.burn_all(id);
  metrics_.increment("churn.departures");
  metrics_.increment("churn.credits_taken", taken);
  tax_.forget_peer(id);
  overlay_.leave(id);
  peers_[id].alive = false;
}

void StreamingProtocol::seed_new_chunks(double now, ChunkId head) {
  // Chunks created since the previous round get pushed to seed_fanout
  // random alive peers each, free of charge (the source is the provider).
  const double prev_time = now - cfg_.round_seconds;
  const ChunkId prev_head =
      prev_time <= 0.0
          ? cfg_.window_chunks
          : static_cast<ChunkId>(prev_time * cfg_.stream_rate) +
                cfg_.window_chunks;
  const auto alive = overlay_.active_peers();
  if (alive.empty()) return;
  for (ChunkId c = prev_head; c < head; ++c) {
    for (std::size_t k = 0; k < cfg_.seed_fanout; ++k) {
      // Deficit-based seeding: the source prefers starving peers — sample a
      // few candidates and push to the emptiest buffer, the way a
      // server-assisted swarm directs its own upload where the swarm is
      // thinnest. This also keeps bankrupt peers holding something sellable,
      // so bankruptcy stays an economic state, not an absorbing one.
      PeerId target = alive[rng_.uniform_index(alive.size())];
      if (cfg_.deficit_seeding) {
        for (std::size_t probe = 0; probe < 3; ++probe) {
          const PeerId other = alive[rng_.uniform_index(alive.size())];
          if (peers_[other].buffer.count() <
              peers_[target].buffer.count()) {
            target = other;
          }
        }
      }
      if (peers_[target].buffer.set(c)) {
        ++peers_[target].chunks_seeded;
      }
    }
  }
}

void StreamingProtocol::run_round(double now) {
  ++rounds_;
  const ChunkId head =
      static_cast<ChunkId>(now * cfg_.stream_rate) + cfg_.window_chunks;
  const ChunkId window_base = head - cfg_.window_chunks;

  // 1. Advance playback windows and refresh upload budgets.
  round_order_ = overlay_.active_peers();
  for (PeerId id : round_order_) {
    peers_[id].buffer.advance(window_base);
    upload_budget_[id] = peers_[id].upload_capacity * cfg_.round_seconds;
  }

  // 2. Source emits and seeds fresh chunks.
  seed_new_chunks(now, head);

  // 3. Purchase phase in random peer order (fairness).
  rng_.shuffle(round_order_);
  for (PeerId id : round_order_) {
    peer_purchase_phase(id, now);
  }

  // 4. Taxation redistribution when the treasury is full enough.
  if (cfg_.tax.enabled && overlay_.num_active() > 0) {
    while (tax_.try_redistribute(overlay_.num_active())) {
      const auto alive = overlay_.active_peers();
      ledger_.redistribute(alive);
      metrics_.increment("tax.redistributions");
    }
  }
}

void StreamingProtocol::peer_purchase_phase(PeerId buyer_id, double now) {
  PeerState& buyer = peers_[buyer_id];
  if (!buyer.alive) return;  // departed mid-round

  double budget = spending_->round_budget(
      buyer.base_spend_rate, ledger_.balance(buyer_id), cfg_.round_seconds);
  if (budget <= 0.0) return;

  auto missing = buyer.buffer.missing();
  if (missing.empty()) return;
  const auto neighbors = overlay_.neighbors(buyer_id);
  if (neighbors.empty()) return;

  // Freshest-first: a fresh chunk stays sellable for the whole window while
  // a chunk at the eviction edge is nearly worthless, so purchase order is
  // newest to oldest (the standard mesh-pull priority once playback urgency
  // is folded into the window itself).
  std::reverse(missing.begin(), missing.end());
  if (missing.size() > cfg_.max_purchase_attempts) {
    missing.resize(cfg_.max_purchase_attempts);
  }

  // Liquidity management: at or below the reserve, only keep pace with the
  // stream instead of catching up on backlog. The cap bounds successful
  // purchases (spending), not scan attempts — availability misses must not
  // eat the allowance or low-liquidity peers could never refill.
  std::size_t purchase_cap = missing.size();
  if (static_cast<double>(ledger_.balance(buyer_id)) <=
      cfg_.reserve_credits) {
    const auto keep_pace = static_cast<std::size_t>(
        std::ceil(cfg_.stream_rate * cfg_.round_seconds));
    purchase_cap = std::max<std::size_t>(1, keep_pace);
  }

  std::size_t purchased = 0;
  for (ChunkId chunk : missing) {
    if (purchased >= purchase_cap) break;
    if (budget < 1.0 && budget <= 0.0) break;
    // Collect neighbor sellers that hold the chunk and still have upload
    // budget this round; weight by their availability (buffer fill).
    seller_ids_.clear();
    seller_weights_.clear();
    for (PeerId nbr : neighbors) {
      const PeerState& s = peers_[nbr];
      if (!s.alive || upload_budget_[nbr] < 1.0) continue;
      if (!s.buffer.has(chunk)) continue;
      seller_ids_.push_back(nbr);
      // Availability-driven routing (the paper's transfer probabilities):
      // uniform among the neighbors that own the chunk and still have
      // upload budget. Capacity shapes income only through saturation (the
      // budget filter above), so λ_i is wealth-independent — the Jackson
      // structure. The fill-weighted variant instead concentrates demand on
      // chunk-rich (typically wealthy) peers: the rich-get-richer ablation.
      seller_weights_.push_back(
          cfg_.seller_choice == ProtocolConfig::SellerChoice::kFillWeighted
              ? static_cast<double>(s.buffer.count()) + 1.0
              : 1.0);
    }
    if (seller_ids_.empty()) {
      ++buyer.failed_availability;
      continue;
    }
    PeerId seller_id = 0;
    if (cfg_.seller_choice == ProtocolConfig::SellerChoice::kCheapestAsk) {
      // Procurement auction: every owner quotes its ask; the cheapest wins
      // (ties broken by scan order, which is neighbor-list order).
      econ::Credits best = std::numeric_limits<econ::Credits>::max();
      for (const PeerId candidate : seller_ids_) {
        const econ::Credits ask = pricing_->price(candidate, chunk);
        if (ask < best) {
          best = ask;
          seller_id = candidate;
        }
      }
    } else {
      seller_id = seller_ids_[rng_.discrete(seller_weights_)];
    }
    const econ::Credits price = pricing_->price(seller_id, chunk);

    if (static_cast<double>(price) > budget) {
      ++buyer.failed_affordability;
      continue;  // cheaper chunks later in the window may still fit
    }
    if (price > 0 && !ledger_.transfer(buyer_id, seller_id, price)) {
      ++buyer.failed_affordability;
      metrics_.increment("market.liquidity_failures");
      continue;
    }

    // Delivery.
    const bool fresh = buyer.buffer.set(chunk);
    CF_ENSURES_MSG(fresh, "purchased a chunk already held");
    upload_budget_[seller_id] -= 1.0;
    budget -= static_cast<double>(price);
    ++purchased;

    PeerState& seller = peers_[seller_id];
    buyer.credits_spent += price;
    seller.credits_earned += price;
    ++buyer.chunks_downloaded;
    ++seller.chunks_uploaded;
    trace_.record(now, buyer_id, seller_id, chunk, price);
    metrics_.increment("market.transactions");
    metrics_.increment("market.volume", price);

    // Income taxation above the wealth threshold (Sec. VI-C).
    if (cfg_.tax.enabled && price > 0) {
      const auto due =
          tax_.on_income(seller_id, price, ledger_.balance(seller_id));
      if (due > 0) {
        const auto collected = ledger_.collect_tax(seller_id, due);
        CF_ENSURES_MSG(collected == due,
                       "tax engine asked for more than the balance");
        metrics_.increment("tax.collected", collected);
      }
    }
  }
}

std::vector<double> StreamingProtocol::balance_snapshot() const {
  const auto alive = overlay_.active_peers();
  return ledger_.snapshot(alive);
}

std::vector<double> StreamingProtocol::spend_rate_snapshot() const {
  const auto alive = overlay_.active_peers();
  std::vector<double> rates;
  rates.reserve(alive.size());
  const double now = sim_.now();
  for (PeerId id : alive) {
    rates.push_back(peers_[id].lifetime_spend_rate(now));
  }
  return rates;
}

void StreamingProtocol::begin_rate_window() {
  spent_marker_.resize(peers_.size());
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    spent_marker_[i] = peers_[i].credits_spent;
  }
  marker_time_ = sim_.now();
}

std::vector<double> StreamingProtocol::windowed_spend_rates() const {
  CF_EXPECTS_MSG(marker_time_ >= 0.0, "begin_rate_window was never called");
  const double dt = sim_.now() - marker_time_;
  CF_EXPECTS_MSG(dt > 0.0, "rate window has zero length");
  const auto alive = overlay_.active_peers();
  std::vector<double> rates;
  rates.reserve(alive.size());
  for (PeerId id : alive) {
    const auto spent_before =
        id < spent_marker_.size() ? spent_marker_[id] : 0;
    const auto spent =
        peers_[id].credits_spent >= spent_before
            ? peers_[id].credits_spent - spent_before
            : peers_[id].credits_spent;  // peer slot recycled mid-window
    rates.push_back(static_cast<double>(spent) / dt);
  }
  return rates;
}

std::vector<double> StreamingProtocol::download_rate_snapshot() const {
  const auto alive = overlay_.active_peers();
  std::vector<double> rates;
  rates.reserve(alive.size());
  const double now = sim_.now();
  for (PeerId id : alive) {
    rates.push_back(peers_[id].lifetime_download_rate(now));
  }
  return rates;
}

double StreamingProtocol::mean_buffer_fill() const {
  const auto alive = overlay_.active_peers();
  if (alive.empty()) return 0.0;
  double total = 0.0;
  for (PeerId id : alive) total += peers_[id].buffer.fill();
  return total / static_cast<double>(alive.size());
}

}  // namespace creditflow::p2p
