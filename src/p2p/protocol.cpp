#include "p2p/protocol.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <limits>

#include "graph/generators.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"
#include "util/trace.hpp"

namespace creditflow::p2p {

namespace {

/// Edge-pool sizing for the protocol's overlay: steady state holds
/// ~mean_degree directed cells per peer (2E = N·d̄), churn joins burst
/// 2·join_links more; a 2x headroom factor covers both with room for
/// degree-distribution skew. 8 bytes per cell — the dominant per-peer cost
/// at paper-default degree 20 is ~320 bytes/peer.
std::size_t protocol_edge_cells(std::size_t max_peers, double mean_degree,
                                std::size_t join_links) {
  const double per_peer =
      std::max(mean_degree, 2.0 * static_cast<double>(join_links));
  return max_peers *
         static_cast<std::size_t>(std::ceil(per_peer)) * 2;
}

/// Index of the `n`-th (0-based) set bit across `words`; requires that many
/// set bits to exist.
std::size_t nth_set_bit(const std::uint64_t* words, std::size_t num_words,
                        std::size_t n) {
  for (std::size_t w = 0; w < num_words; ++w) {
    const auto c = static_cast<std::size_t>(std::popcount(words[w]));
    if (n < c) {
      std::uint64_t m = words[w];
      for (; n > 0; --n) m &= m - 1;
      return w * 64 + static_cast<std::size_t>(std::countr_zero(m));
    }
    n -= c;
  }
  CF_ENSURES_MSG(false, "nth_set_bit: fewer set bits than requested");
  return 0;  // unreachable
}

/// Samples scope duration (µs) into a histogram, but only while the tracer
/// is enabled: per-buyer clock reads are observability-run cost, never
/// steady-state hot-path cost.
class ScopedLatencySample {
 public:
  explicit ScopedLatencySample(util::Log2Histogram* hist)
      : hist_(util::Tracer::enabled() ? hist : nullptr) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedLatencySample() {
    if (hist_ != nullptr) {
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      hist_->add(static_cast<std::uint64_t>(us));
    }
  }
  ScopedLatencySample(const ScopedLatencySample&) = delete;
  ScopedLatencySample& operator=(const ScopedLatencySample&) = delete;

 private:
  util::Log2Histogram* hist_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace

StreamingProtocol::StreamingProtocol(ProtocolConfig config,
                                     sim::Simulator& simulator)
    : cfg_(std::move(config)),
      sim_(simulator),
      rng_(cfg_.seed),
      ledger_(cfg_.max_peers),
      overlay_(cfg_.max_peers,
               protocol_edge_cells(cfg_.max_peers, cfg_.overlay_mean_degree,
                                   cfg_.churn.join_links)),
      owner_index_(cfg_.max_peers, std::max<std::size_t>(cfg_.window_chunks, 1)),
      peers_(cfg_.max_peers, std::max<std::size_t>(cfg_.window_chunks, 1)),
      pricing_(econ::make_pricing(cfg_.pricing)),
      spending_(make_spending_policy(cfg_.spending)),
      tax_(cfg_.tax) {
  CF_EXPECTS(cfg_.initial_peers >= 2);
  CF_EXPECTS(cfg_.initial_peers <= cfg_.max_peers);
  CF_EXPECTS(cfg_.round_seconds > 0.0);
  CF_EXPECTS(cfg_.stream_rate > 0.0);
  CF_EXPECTS(cfg_.window_chunks >= 4);
  CF_EXPECTS(cfg_.seed_fanout >= 1);
  CF_EXPECTS(cfg_.upload_capacity > 0.0);
  CF_EXPECTS(cfg_.base_spend_rate > 0.0);
  CF_EXPECTS(cfg_.max_purchase_attempts >= 1);
  CF_EXPECTS(cfg_.overlay_mean_degree > 0.0);
  if (cfg_.churn.enabled) {
    CF_EXPECTS(cfg_.churn.arrival_rate > 0.0);
    CF_EXPECTS(cfg_.churn.mean_lifespan > 0.0);
    CF_EXPECTS(cfg_.churn.join_links >= 1);
  }
  CF_EXPECTS(cfg_.churn.rejoin_mint_decay >= 0.0);
  CF_EXPECTS(cfg_.churn.rejoin_mint_decay <= 1.0);
  if (cfg_.strat.enabled()) {
    const auto& st = cfg_.strat;
    CF_EXPECTS(st.free_rider_fraction >= 0.0 && st.free_rider_fraction <= 1.0);
    CF_EXPECTS(st.whitewash_fraction >= 0.0 && st.whitewash_fraction <= 1.0);
    CF_EXPECTS(st.collude_fraction >= 0.0 && st.collude_fraction <= 1.0);
    CF_EXPECTS(st.staked_fraction >= 0.0 && st.staked_fraction <= 1.0);
    CF_EXPECTS_MSG(st.free_rider_fraction + st.whitewash_fraction +
                           st.collude_fraction + st.staked_fraction <=
                       1.0 + 1e-9,
                   "strategy fractions exceed the population");
    CF_EXPECTS(st.whitewash_threshold >= 0.0);
    CF_EXPECTS(st.collude_clique >= 2);
    CF_EXPECTS(st.stake_slash >= 0.0 && st.stake_slash <= 1.0);
    CF_EXPECTS(st.revalidate_rounds >= 1);
    strat_enabled_ = true;
    if (st.collude_fraction > 0.0) colluder_scratch_.reserve(cfg_.max_peers);
    if (st.staked_fraction > 0.0) staked_scratch_.reserve(cfg_.max_peers);
  }
  if (cfg_.weight_sellers_by_fill) {
    cfg_.seller_choice = ProtocolConfig::SellerChoice::kFillWeighted;
  }
  if (cfg_.injection.enabled) {
    CF_EXPECTS(cfg_.injection.interval_seconds > 0.0);
    CF_EXPECTS(cfg_.injection.credits_per_peer > 0);
  }
  if (cfg_.market_mode == ProtocolConfig::MarketMode::kOrderBook) {
    CF_EXPECTS(cfg_.book.min_price >= 1);
    CF_EXPECTS(cfg_.book.min_price <= cfg_.book.max_price);
    CF_EXPECTS(cfg_.book.base_price >= cfg_.book.min_price);
    CF_EXPECTS(cfg_.book.base_price <= cfg_.book.max_price);
    CF_EXPECTS(cfg_.book.reprice_rounds >= 1);
    CF_EXPECTS(cfg_.book.seller_fraction >= 0.0);
    CF_EXPECTS(cfg_.book.seller_fraction <= 1.0);
    CF_EXPECTS(cfg_.book.ask_markup >= 0.0);
    book_ = std::make_unique<market::OrderBook>(cfg_.max_peers,
                                                cfg_.book.max_price);
    book_price_.assign(cfg_.max_peers, cfg_.book.base_price);
    book_posted_.assign(cfg_.max_peers, 0);
    book_sold_.assign(cfg_.max_peers, 0);
  }
  upload_budget_.assign(cfg_.max_peers, 0.0);
  tx_count_ = metrics_.counter_cell("market.transactions");
  tx_volume_ = metrics_.counter_cell("market.volume");
  liquidity_failures_ = metrics_.counter_cell("market.liquidity_failures");
  tax_collected_ = metrics_.counter_cell("tax.collected");
  tax_redistributions_ = metrics_.counter_cell("tax.redistributions");
  injection_rounds_ = metrics_.counter_cell("injection.rounds");
  injection_minted_ = metrics_.counter_cell("injection.minted");
  churn_arrivals_ = metrics_.counter_cell("churn.arrivals");
  churn_arrivals_dropped_ = metrics_.counter_cell("churn.arrivals_dropped");
  churn_departures_ = metrics_.counter_cell("churn.departures");
  churn_credits_taken_ = metrics_.counter_cell("churn.credits_taken");
  phase_one_word_ct_ = metrics_.counter_cell("purchase.phase_one_word");
  phase_two_word_ct_ = metrics_.counter_cell("purchase.phase_two_word");
  phase_generic_ct_ = metrics_.counter_cell("purchase.phase_generic");
  overlay_edges_dropped_ = metrics_.counter_cell("overlay.edges_dropped");
  whitewash_resets_ = metrics_.counter_cell("strat.whitewash_resets");
  whitewash_minted_ = metrics_.counter_cell("strat.whitewash_minted");
  whitewash_burned_ = metrics_.counter_cell("strat.whitewash_burned");
  collusion_transfers_ = metrics_.counter_cell("strat.collusion_transfers");
  collusion_volume_ = metrics_.counter_cell("strat.collusion_volume");
  stake_locked_ = metrics_.counter_cell("strat.stake_locked");
  stake_slashed_ = metrics_.counter_cell("strat.stake_slashed");
  stake_topups_ = metrics_.counter_cell("strat.stake_topups");
  book_asks_posted_ = metrics_.counter_cell("book.asks_posted");
  book_posted_qty_ = metrics_.counter_cell("book.posted_qty");
  book_fills_ = metrics_.counter_cell("book.fills");
  book_volume_ = metrics_.counter_cell("book.volume");
  book_asks_expired_ = metrics_.counter_cell("book.asks_expired");
  book_bids_posted_ = metrics_.counter_cell("book.bids_posted");
  book_bids_matched_ = metrics_.counter_cell("book.bids_matched");
  book_bids_expired_ = metrics_.counter_cell("book.bids_expired");
  candidates_hist_ = metrics_.histogram_cell("purchase.candidates");
  queue_depth_hist_ = metrics_.histogram_cell("sim.queue_depth");
  buyer_latency_hist_ = metrics_.histogram_cell("purchase.buyer_us");
}

StreamingProtocol::~StreamingProtocol() {
  *alive_token_ = false;
  // PeriodicHandle::cancel only flips a shared flag, so this is safe even
  // when the simulator was destroyed before the protocol.
  for (auto& handle : periodic_handles_) handle.cancel();
}

sim::EventQueue::Callback StreamingProtocol::guard(
    std::function<void(double)> cb) const {
  return [token = std::weak_ptr<bool>(alive_token_),
          cb = std::move(cb)](double t) {
    const auto alive = token.lock();
    if (!alive || !*alive) return;
    cb(t);
  };
}

PeerState StreamingProtocol::peer(PeerId id) const {
  CF_EXPECTS(id < peers_.size());
  return peers_.snapshot(id);
}

std::vector<PeerId> StreamingProtocol::alive_peers() const {
  const auto alive = overlay_.active_peers();
  return std::vector<PeerId>(alive.begin(), alive.end());
}

ChunkId StreamingProtocol::stream_head() const {
  // The stream is defined to have been live for one full window before the
  // market opens, so warm-started buffers have real chunks to hold.
  return static_cast<ChunkId>(sim_.now() * cfg_.stream_rate) +
         cfg_.window_chunks;
}

Credits StreamingProtocol::rejoin_grant(std::uint32_t activation) const {
  // First occupancy of a slot always receives the full endowment; only a
  // re-activation of a previously used slot is subject to the rejoin-mint
  // policy (the whitewash loophole made an explicit knob).
  if (activation <= 1) return cfg_.initial_credits;
  switch (cfg_.churn.rejoin_mint) {
    case ChurnConfig::RejoinMint::kFull:
      return cfg_.initial_credits;
    case ChurnConfig::RejoinMint::kNone:
      return 0;
    case ChurnConfig::RejoinMint::kDecayed: {
      const double decayed =
          static_cast<double>(cfg_.initial_credits) *
          std::pow(cfg_.churn.rejoin_mint_decay,
                   static_cast<double>(activation - 1));
      return static_cast<Credits>(std::llround(decayed));
    }
  }
  return cfg_.initial_credits;
}

Credits StreamingProtocol::activate_peer(PeerId id, double now, bool initial) {
  peers_.set_alive(id, true);
  const std::uint32_t activation = peers_.bump_activations(id);
  peers_.set_strategy(id, strat_enabled_ ? strategy::assign(id, cfg_.strat)
                                         : strategy::Strategy::kHonest);
  peers_.reset_slot(id, now);
  peers_.set_upload_capacity(
      id, cfg_.heterogeneity.upload_capacity_cv > 0.0
              ? rng_.lognormal_mean_cv(cfg_.upload_capacity,
                                       cfg_.heterogeneity.upload_capacity_cv)
              : cfg_.upload_capacity);
  peers_.set_base_spend_rate(
      id, cfg_.heterogeneity.spend_rate_cv > 0.0
              ? rng_.lognormal_mean_cv(cfg_.base_spend_rate,
                                       cfg_.heterogeneity.spend_rate_cv)
              : cfg_.base_spend_rate);
  const ChunkId head =
      static_cast<ChunkId>(now * cfg_.stream_rate) + cfg_.window_chunks;
  const ChunkId base = head - cfg_.window_chunks;
  BufferMap& buffer = peers_.buffer(id);
  buffer.reset(base);
  owner_index_.on_clear(id);
  // Warm start: join holding most of the current window, as a peer that has
  // been streaming for a while (or bootstrapped quickly) would.
  if (cfg_.warm_start_fill > 0.0) {
    for (ChunkId c = base; c < head; ++c) {
      if (rng_.bernoulli(cfg_.warm_start_fill)) {
        buffer.set(c);
        owner_index_.on_gain(id, c);
      }
    }
  }
  const Credits grant = rejoin_grant(activation);
  ledger_.mint(id, grant);
  if (strat_enabled_ &&
      peers_.strategy(id) == strategy::Strategy::kStakedSeeder &&
      cfg_.strat.stake_amount > 0) {
    // Stake-bonded seeders lock part of their endowment on arrival; the
    // bond gates ask posting and is slashed on departure.
    *stake_locked_ += ledger_.lock_stake(id, cfg_.strat.stake_amount);
  }
  if (book_ != nullptr) {
    // Recycled-slot hygiene: the previous occupant's market state (resting
    // orders, learned price) must not leak into the arrival.
    (void)book_->cancel_ask(id);
    (void)book_->cancel_bid(id);
    book_price_[id] = cfg_.book.base_price;
    book_posted_[id] = 0;
    book_sold_[id] = 0;
  }
  (void)initial;
  return grant;
}

void StreamingProtocol::start() {
  CF_EXPECTS_MSG(!started_, "protocol already started");
  started_ = true;

  // Static bootstrap overlay: scale-free with the paper's exponent; the
  // mean degree is configurable (the paper's default is 20).
  graph::ScaleFreeParams sf;
  sf.exponent = 2.5;
  sf.target_mean_degree = cfg_.overlay_mean_degree;
  auto bootstrap = graph::scale_free(cfg_.initial_peers, sf, rng_);
  overlay_.init_from_graph(bootstrap);
  for (PeerId id = 0; id < cfg_.initial_peers; ++id) {
    activate_peer(id, sim_.now(), /*initial=*/true);
    // Under churn the bootstrap cohort is mortal too, so the population
    // settles at arrival_rate × mean_lifespan rather than stacking the
    // immortal initial peers on top of the churning ones.
    if (cfg_.churn.enabled) {
      const double lifespan =
          rng_.exponential(1.0 / cfg_.churn.mean_lifespan);
      peers_.set_depart_time(id, sim_.now() + lifespan);
      sim_.schedule_after(lifespan, guard([this, id](double t) {
                            if (peers_.alive(id)) handle_departure(id, t);
                          }));
    }
  }

  periodic_handles_.push_back(sim_.schedule_periodic(
      sim_.now() + cfg_.round_seconds, cfg_.round_seconds,
      guard([this](double t) { run_round(t); })));
  if (cfg_.churn.enabled) schedule_next_arrival();
  if (cfg_.injection.enabled) {
    periodic_handles_.push_back(sim_.schedule_periodic(
        sim_.now() + cfg_.injection.interval_seconds,
        cfg_.injection.interval_seconds, guard([this](double) {
          const util::TraceSpan span("inject", "phase");
          for (PeerId id : overlay_.active_peers()) {
            ledger_.mint(id, cfg_.injection.credits_per_peer);
          }
          ++*injection_rounds_;
          *injection_minted_ +=
              cfg_.injection.credits_per_peer * overlay_.num_active();
        })));
  }
}

void StreamingProtocol::schedule_next_arrival() {
  const double dt = rng_.exponential(cfg_.churn.arrival_rate);
  sim_.schedule_after(dt, guard([this](double t) {
                        handle_arrival(t);
                        schedule_next_arrival();
                      }));
}

void StreamingProtocol::handle_arrival(double now) {
  const util::TraceSpan span("churn.arrival", "churn");
  // Alive peers and active overlay slots are the same set (join/leave and
  // activate/departure always move together), so the overlay's activity
  // bitmap answers "lowest free slot" in a word scan.
  const auto slot = overlay_.lowest_inactive_slot();
  if (!slot) {
    // Log once; the counter tracks the rest (repeat warnings would flood
    // long runs that are intentionally driven at capacity).
    if (*churn_arrivals_dropped_ == 0) {
      CF_LOG_WARN("arrival dropped: no free peer slot (capacity "
                  << peers_.size() << "); further drops counted silently");
    }
    ++*churn_arrivals_dropped_;
    return;
  }
  const PeerId id = *slot;
  activate_peer(id, now, /*initial=*/false);
  overlay_.join(id, cfg_.churn.join_links, rng_);
  ++*churn_arrivals_;

  const double lifespan = rng_.exponential(1.0 / cfg_.churn.mean_lifespan);
  peers_.set_depart_time(id, now + lifespan);
  sim_.schedule_after(lifespan, guard([this, id](double t) {
                        if (peers_.alive(id)) handle_departure(id, t);
                      }));
}

void StreamingProtocol::handle_departure(PeerId id, double now) {
  const util::TraceSpan span("churn.departure", "churn", "peer", id);
  CF_EXPECTS(peers_.alive(id));
  (void)now;
  if (strat_enabled_ && ledger_.staked(id) > 0) {
    // Bond resolution precedes the exit burn: the slashed share moves to
    // the treasury, the remainder is released to the balance and leaves
    // with the peer below. Supply stays conserved either way.
    *stake_slashed_ += ledger_.slash_stake(id, cfg_.strat.stake_slash);
  }
  // The departing peer takes its credits out of the market.
  const Credits taken = ledger_.burn_all(id);
  ++*churn_departures_;
  *churn_credits_taken_ += taken;
  tax_.forget_peer(id);
  overlay_.leave(id);
  owner_index_.on_clear(id);
  peers_.set_alive(id, false);
  if (book_ != nullptr) {
    // Seller churn expires its resting ask immediately — no ghost supply.
    if (book_->cancel_ask(id)) ++*book_asks_expired_;
    if (book_->cancel_bid(id)) ++*book_bids_expired_;
  }
}

void StreamingProtocol::seed_new_chunks(double now, ChunkId head) {
  // Chunks created since the previous round get pushed to seed_fanout
  // random alive peers each, free of charge (the source is the provider).
  const double prev_time = now - cfg_.round_seconds;
  const ChunkId prev_head =
      prev_time <= 0.0
          ? cfg_.window_chunks
          : static_cast<ChunkId>(prev_time * cfg_.stream_rate) +
                cfg_.window_chunks;
  const std::span<const PeerId> alive = overlay_.active_peers();
  if (alive.empty()) return;
  // Stake-bonded seeders advertise themselves to the source: peers whose
  // bond is fully posted form a priority pool that receives the first copy
  // of every fresh chunk, which is what the stake buys.
  const bool staked_priority =
      strat_enabled_ && cfg_.strat.staked_fraction > 0.0;
  if (staked_priority) {
    staked_scratch_.clear();
    for (const PeerId id : alive) {
      if (peers_.strategy(id) == strategy::Strategy::kStakedSeeder &&
          (cfg_.strat.stake_amount == 0 ||
           ledger_.staked(id) >= cfg_.strat.stake_amount)) {
        staked_scratch_.push_back(id);
      }
    }
  }
  for (ChunkId c = prev_head; c < head; ++c) {
    for (std::size_t k = 0; k < cfg_.seed_fanout; ++k) {
      if (k == 0 && staked_priority && !staked_scratch_.empty()) {
        const PeerId bonded =
            staked_scratch_[rng_.uniform_index(staked_scratch_.size())];
        if (peers_.buffer(bonded).set(c)) {
          owner_index_.on_gain(bonded, c);
          ++peers_.chunks_seeded(bonded);
        }
        continue;
      }
      // Deficit-based seeding: the source prefers starving peers — sample a
      // few candidates and push to the emptiest buffer, the way a
      // server-assisted swarm directs its own upload where the swarm is
      // thinnest. This also keeps bankrupt peers holding something sellable,
      // so bankruptcy stays an economic state, not an absorbing one.
      PeerId target = alive[rng_.uniform_index(alive.size())];
      if (cfg_.deficit_seeding) {
        for (std::size_t probe = 0; probe < 3; ++probe) {
          const PeerId other = alive[rng_.uniform_index(alive.size())];
          if (peers_.buffer(other).count() <
              peers_.buffer(target).count()) {
            target = other;
          }
        }
      }
      if (peers_.buffer(target).set(c)) {
        owner_index_.on_gain(target, c);
        ++peers_.chunks_seeded(target);
      }
    }
  }
}

void StreamingProtocol::run_round(double now) {
  const util::TraceSpan round_span("round", "phase", "round", rounds_ + 1);
  ++rounds_;
  queue_depth_hist_->add(sim_.pending_events());
  const ChunkId head =
      static_cast<ChunkId>(now * cfg_.stream_rate) + cfg_.window_chunks;
  const ChunkId window_base = head - cfg_.window_chunks;

  // 1. Advance playback windows and refresh upload budgets.
  const auto active = overlay_.active_peers();
  round_order_.assign(active.begin(), active.end());
  for (PeerId id : round_order_) {
    BufferMap& buffer = peers_.buffer(id);
    const ChunkId old_base = buffer.base();
    buffer.advance(window_base);
    owner_index_.on_advance(id, old_base, window_base);
    upload_budget_[id] = peers_.upload_capacity(id) * cfg_.round_seconds;
  }
  // Mirror the overlay's edge-drop count into the registry (pure readout;
  // one store per round) so pool exhaustion shows up in telemetry.
  *overlay_edges_dropped_ = overlay_.edges_dropped();

  // 1a. Strategy layer: free-riders contribute nothing (budget zeroed
  // before asks are posted or purchases served), and staked seeders get a
  // periodic chance to top a partially funded bond back up to target.
  if (strat_enabled_ && cfg_.strat.free_rider_fraction > 0.0) {
    strategy_zero_free_rider_budgets();
  }
  if (strat_enabled_ && cfg_.strat.staked_fraction > 0.0 &&
      cfg_.strat.stake_amount > 0 &&
      rounds_ % cfg_.strat.revalidate_rounds == 0) {
    strategy_revalidate_stakes();
  }

  // 1b. Order-book market: sellers post this round's asks before anyone
  // buys (quantity = fresh upload budget, price per the ask policy).
  if (book_ != nullptr) {
    book_round_fills_base_ = *book_fills_;
    book_round_volume_base_ = *book_volume_;
    book_round_posted_base_ = *book_posted_qty_;
    book_post_asks();
  }

  // 2. Source emits and seeds fresh chunks.
  {
    const util::TraceSpan span("seed", "phase");
    const auto seed_start = std::chrono::steady_clock::now();
    seed_new_chunks(now, head);
    seed_phase_seconds_ += std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - seed_start)
                               .count();
  }

  // 3. Purchase phase in random peer order (fairness).
  rng_.shuffle(round_order_);
  {
    const util::TraceSpan span("purchase", "phase");
    const auto phase_start = std::chrono::steady_clock::now();
    for (PeerId id : round_order_) {
      peer_purchase_phase(id, now);
    }
    purchase_phase_seconds_ += std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() -
                                   phase_start)
                                   .count();
  }

  // 3b. Collusive cliques wash credits among themselves after the honest
  // trading phase (the laundering rides on top of real trade state).
  if (strat_enabled_ && cfg_.strat.collude_fraction > 0.0) {
    strategy_collusion_round();
  }

  // 4. Taxation redistribution when the treasury is full enough.
  if (cfg_.tax.enabled && overlay_.num_active() > 0) {
    const util::TraceSpan span("tax", "phase");
    const auto tax_start = std::chrono::steady_clock::now();
    while (tax_.try_redistribute(overlay_.num_active())) {
      ledger_.redistribute(overlay_.active_peers());
      ++*tax_redistributions_;
    }
    tax_phase_seconds_ += std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - tax_start)
                              .count();
  }

  // 4b. Whitewashers check their balance after taxes settle and cycle
  // their identity when broke — a real departure plus a real re-arrival,
  // exploiting whatever the rejoin-mint policy grants.
  if (strat_enabled_ && cfg_.strat.whitewash_fraction > 0.0) {
    strategy_whitewash_round(now);
  }

  // Book readouts for the series sampler: state at round end, flow over
  // this round (clearing price = volume-weighted mean transacted price).
  if (book_ != nullptr) {
    const std::uint64_t fills = *book_fills_ - book_round_fills_base_;
    const std::uint64_t volume = *book_volume_ - book_round_volume_base_;
    const std::uint64_t posted = *book_posted_qty_ - book_round_posted_base_;
    book_stats_.depth = static_cast<double>(book_->depth());
    book_stats_.spread = static_cast<double>(book_->spread());
    book_stats_.clearing_price =
        fills > 0 ? static_cast<double>(volume) / static_cast<double>(fills)
                  : 0.0;
    book_stats_.fill_ratio =
        posted > 0 ? static_cast<double>(fills) / static_cast<double>(posted)
                   : 0.0;
  }

  if (round_hook_) round_hook_(rounds_, now);
}

void StreamingProtocol::strategy_zero_free_rider_budgets() {
  for (const PeerId id : round_order_) {
    if (peers_.strategy(id) == strategy::Strategy::kFreeRider) {
      upload_budget_[id] = 0.0;
    }
  }
}

void StreamingProtocol::strategy_revalidate_stakes() {
  for (const PeerId id : overlay_.active_peers()) {
    if (peers_.strategy(id) != strategy::Strategy::kStakedSeeder) continue;
    const Credits moved = ledger_.lock_stake(id, cfg_.strat.stake_amount);
    if (moved > 0) {
      *stake_locked_ += moved;
      ++*stake_topups_;
    }
  }
}

void StreamingProtocol::strategy_collusion_round() {
  // Deterministic ring transfers inside fixed cliques: colluders (in slot
  // order) are chopped into groups of collude_clique, and each member
  // passes collude_amount to the next around the ring. The wash trades
  // bypass the trade path entirely — no tax is collected and no trace is
  // emitted, which is exactly the evasion being modeled. Each member's
  // earned/spent counters inflate symmetrically, faking contribution.
  colluder_scratch_.clear();
  for (const PeerId id : overlay_.active_peers()) {
    if (peers_.strategy(id) == strategy::Strategy::kColluder) {
      colluder_scratch_.push_back(id);
    }
  }
  const std::size_t k = cfg_.strat.collude_clique;
  const Credits amt = cfg_.strat.collude_amount;
  for (std::size_t base = 0; base + k <= colluder_scratch_.size();
       base += k) {
    for (std::size_t i = 0; i < k; ++i) {
      const PeerId from = colluder_scratch_[base + i];
      const PeerId to = colluder_scratch_[base + (i + 1) % k];
      if (!ledger_.transfer(from, to, amt)) continue;
      peers_.credits_spent(from) += amt;
      peers_.credits_earned(to) += amt;
      ++*collusion_transfers_;
      *collusion_volume_ += amt;
    }
  }
}

void StreamingProtocol::strategy_whitewash_round(double now) {
  // round_order_ is a stable copy of the round's alive set, so departing
  // and re-activating peers mid-iteration is safe. A reset is a genuine
  // departure (burn, overlay leave, churn counters) followed by a genuine
  // re-arrival into the same slot — the activation count survives, so the
  // rejoin-mint policy sees through the identity cycling. Under churn the
  // rejoined peer inherits the slot's pending lifespan timer; the earlier
  // of its own exit and that timer removes it, which only shortens the
  // attacker's tenure.
  for (const PeerId id : round_order_) {
    if (!peers_.alive(id)) continue;
    if (peers_.strategy(id) != strategy::Strategy::kWhitewasher) continue;
    const Credits bal = ledger_.balance(id);
    if (static_cast<double>(bal) >= cfg_.strat.whitewash_threshold) continue;
    // Rational attacker: cycling is only worth it when the regrant beats
    // the balance forfeited at departure.
    if (rejoin_grant(peers_.activations(id) + 1) <= bal) continue;
    *whitewash_burned_ += bal;
    handle_departure(id, now);
    const Credits granted = activate_peer(id, now, /*initial=*/false);
    overlay_.join(id, cfg_.churn.join_links, rng_);
    *whitewash_minted_ += granted;
    ++*whitewash_resets_;
  }
}

strategy::Breakdown StreamingProtocol::strategy_breakdown() const {
  strategy::Breakdown b;
  for (const PeerId id : overlay_.active_peers()) {
    const auto s = static_cast<std::size_t>(peers_.strategy(id));
    ++b.population[s];
    b.credits[s] += static_cast<double>(ledger_.balance(id));
    b.buffer_fill[s] += peers_.buffer(id).fill();
  }
  b.staked_total = static_cast<double>(ledger_.total_staked());
  return b;
}

void StreamingProtocol::book_post_asks() {
  const util::TraceSpan span("book.post", "phase");
  const auto& bc = cfg_.book;
  const bool adaptive =
      bc.ask_pricing == ProtocolConfig::OrderBookConfig::AskPricing::kAdaptive;
  // Adaptive tâtonnement thresholds: an ask that mostly sold was priced
  // under the market (raise), one that barely sold was priced over it
  // (cut). The band between them is the dead zone that lets prices settle.
  constexpr double kFillHi = 0.6;
  constexpr double kFillLo = 0.1;
  const bool reprice_now =
      adaptive && rounds_ % bc.reprice_rounds == 0;
  econ::Credits fixed_price = bc.base_price;
  if (!adaptive) {
    const auto marked = static_cast<econ::Credits>(std::llround(
        static_cast<double>(bc.base_price) * (1.0 + bc.ask_markup)));
    fixed_price = std::clamp(marked, bc.min_price, bc.max_price);
  }
  for (const PeerId id : overlay_.active_peers()) {
    if (!is_book_seller(id)) continue;
    if (strat_enabled_) {
      const auto s = peers_.strategy(id);
      if (s == strategy::Strategy::kFreeRider) continue;
      if (s == strategy::Strategy::kStakedSeeder &&
          cfg_.strat.stake_amount > 0 &&
          ledger_.staked(id) < cfg_.strat.stake_amount) {
        // Advertising is gated on a fully posted bond; an underfunded
        // seeder's resting ask expires rather than standing as supply it
        // has not bonded for.
        if (book_->cancel_ask(id)) ++*book_asks_expired_;
        continue;
      }
    }
    const auto qty = static_cast<std::uint32_t>(upload_budget_[id]);
    if (qty == 0) {
      // No capacity to offer this round: an ask left resting would be
      // ghost supply, so it expires (drain expiry).
      if (book_->cancel_ask(id)) ++*book_asks_expired_;
      continue;
    }
    econ::Credits price = fixed_price;
    if (adaptive) {
      if (reprice_now && book_posted_[id] > 0) {
        const double fill = static_cast<double>(book_sold_[id]) /
                            static_cast<double>(book_posted_[id]);
        if (fill >= kFillHi && book_price_[id] < bc.max_price) {
          ++book_price_[id];
        } else if (fill <= kFillLo && book_price_[id] > bc.min_price) {
          --book_price_[id];
        }
        book_posted_[id] = 0;
        book_sold_[id] = 0;
      }
      price = book_price_[id];
      book_posted_[id] += qty;
    }
    book_->post_ask(id, price, qty);
    ++*book_asks_posted_;
    *book_posted_qty_ += qty;
  }
}

bool StreamingProtocol::is_book_seller(PeerId id) const {
  if (cfg_.book.seller_fraction >= 1.0) return true;
  if (cfg_.book.seller_fraction <= 0.0) return false;
  // SplitMix64-style finalizer over the id — no RNG draw, so the seller
  // set is a pure function of the slot id and stays fixed under churn.
  std::uint64_t h =
      (static_cast<std::uint64_t>(id) + 1) * 0x9E3779B97F4A7C15ULL;
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 32;
  return static_cast<double>(h & 0xFFFFFF) <
         cfg_.book.seller_fraction * 16777216.0;
}

bool StreamingProtocol::book_cross(PeerId buyer, ChunkId chunk,
                                   std::span<const PeerId> neighbors,
                                   PeerId& seller_out,
                                   econ::Credits& price_out) {
  const auto strategy = cfg_.book.cross;
  using Cross = ProtocolConfig::OrderBookConfig::CrossStrategy;
  if (strategy == Cross::kFillWeighted) {
    // Demand spread across the book's depth: candidate asks weighted by
    // their remaining quantity, so deep levels absorb proportionally more
    // flow than a best-ask stampede would send them.
    seller_ids_.clear();
    seller_weights_.clear();
    for (const PeerId nbr : neighbors) {
      if (!peers_.alive(nbr) || upload_budget_[nbr] < 1.0) continue;
      if (!book_->has_ask(nbr) || !peers_.buffer(nbr).has(chunk)) continue;
      seller_ids_.push_back(nbr);
      seller_weights_.push_back(
          static_cast<double>(book_->ask_quantity(nbr)));
    }
    if (seller_ids_.empty()) return false;
    const PeerId pick = seller_ids_[rng_.discrete(seller_weights_)];
    seller_out = pick;
    price_out = book_->ask_price(pick);
    return true;
  }
  // kBestAsk / kLimit: price-time priority over the candidate set — the
  // naive min-scan on (price, seq) selects exactly the ask a walk of the
  // book in level order (filtered to candidates) would reach first; the
  // order-book tests pin that equivalence.
  PeerId best = 0;
  econ::Credits best_price = 0;
  std::uint64_t best_seq = 0;
  bool have = false;
  for (const PeerId nbr : neighbors) {
    if (!peers_.alive(nbr) || upload_budget_[nbr] < 1.0) continue;
    if (!book_->has_ask(nbr) || !peers_.buffer(nbr).has(chunk)) continue;
    const econ::Credits p = book_->ask_price(nbr);
    const std::uint64_t s = book_->ask_seq(nbr);
    if (!have || p < best_price || (p == best_price && s < best_seq)) {
      have = true;
      best = nbr;
      best_price = p;
      best_seq = s;
    }
  }
  if (!have) return false;
  if (strategy == Cross::kLimit && best_price > cfg_.book.limit_price) {
    // The market is above the buyer's limit: rest a bid (standing intent,
    // re-posting refreshes it) and wait for asks to come down.
    if (!book_->has_bid(buyer)) ++*book_bids_posted_;
    book_->post_bid(buyer, cfg_.book.limit_price);
    return false;
  }
  seller_out = best;
  price_out = best_price;
  return true;
}

void StreamingProtocol::peer_purchase_phase(PeerId buyer_id, double now) {
  const ScopedLatencySample latency(buyer_latency_hist_);
  if (!peers_.alive(buyer_id)) return;  // departed mid-round
  BufferMap& buyer_buffer = peers_.buffer(buyer_id);

  double budget = spending_->round_budget(peers_.base_spend_rate(buyer_id),
                                          ledger_.balance(buyer_id),
                                          cfg_.round_seconds);
  if (budget <= 0.0) return;

  buyer_buffer.missing_into(missing_scratch_);
  auto& missing = missing_scratch_;
  if (missing.empty()) return;
  overlay_.neighbors_into(buyer_id, neighbor_scratch_);
  const std::span<const PeerId> neighbors = neighbor_scratch_;
  if (neighbors.empty()) return;

  // Freshest-first: a fresh chunk stays sellable for the whole window while
  // a chunk at the eviction edge is nearly worthless, so purchase order is
  // newest to oldest (the standard mesh-pull priority once playback urgency
  // is folded into the window itself).
  std::reverse(missing.begin(), missing.end());
  if (missing.size() > cfg_.max_purchase_attempts) {
    missing.resize(cfg_.max_purchase_attempts);
  }

  // Liquidity management: at or below the reserve, only keep pace with the
  // stream instead of catching up on backlog. The cap bounds successful
  // purchases (spending), not scan attempts — availability misses must not
  // eat the allowance or low-liquidity peers could never refill.
  std::size_t purchase_cap = missing.size();
  if (static_cast<double>(ledger_.balance(buyer_id)) <=
      cfg_.reserve_credits) {
    const auto keep_pace = static_cast<std::size_t>(
        std::ceil(cfg_.stream_rate * cfg_.round_seconds));
    purchase_cap = std::max<std::size_t>(1, keep_pace);
  }

  // Resolve each wanted chunk's sellers up front through the owner index
  // (word-wide AND walks over the neighbors' ownership bitmaps) instead of
  // rescanning every neighbor per chunk. Sound within one buyer phase:
  // sellers' ownership and aliveness cannot change until the phase ends
  // (only this buyer gains chunks, and churn events never interleave with a
  // round), and upload budgets only *decrease*, which the re-check in the
  // loop below mirrors exactly.
  const bool book_mode = book_ != nullptr;
  if (cfg_.use_owner_index && !book_mode) {
    build_purchase_candidates(neighbors, missing, buyer_buffer.base());
  }

  std::size_t purchased = 0;
  for (ChunkId chunk : missing) {
    if (purchased >= purchase_cap) break;
    if (budget < 1.0 && budget <= 0.0) break;
    // Collect neighbor sellers that hold the chunk and still have upload
    // budget this round; weight by their availability (buffer fill).
    // Availability-driven routing (the paper's transfer probabilities):
    // uniform among the neighbors that own the chunk and still have
    // upload budget. Capacity shapes income only through saturation (the
    // budget filter), so λ_i is wealth-independent — the Jackson
    // structure. The fill-weighted variant instead concentrates demand on
    // chunk-rich (typically wealthy) peers: the rich-get-richer ablation.
    const bool fill_weighted =
        cfg_.seller_choice == ProtocolConfig::SellerChoice::kFillWeighted;
    PeerId seller_id = 0;
    bool have_seller = false;
    econ::Credits book_price = 0;
    if (book_mode) {
      // Order-book market: cross the resting asks instead of picking a
      // seller directly; the transacted price is the ask's, resolved here.
      have_seller = book_cross(buyer_id, chunk, neighbors, seller_id,
                               book_price);
    } else if (cfg_.use_owner_index && phase_single_word_) {
      // Single-word phase (the dominant configuration): the whole
      // candidate set is one word, so count/pick/walk need no word loop.
      // Identical candidate sets and picks as the generic path below.
      const std::uint64_t mask = slot_masks_[phase_slot(chunk)];
      if (mask != 0) {
        have_seller = true;
        if (cfg_.seller_choice ==
            ProtocolConfig::SellerChoice::kCheapestAsk) {
          econ::Credits best = std::numeric_limits<econ::Credits>::max();
          std::uint64_t m = mask;
          while (m != 0) {
            const PeerId candidate =
                eligible_[static_cast<std::size_t>(std::countr_zero(m))];
            m &= m - 1;
            const econ::Credits ask = pricing_->price(candidate, chunk);
            if (ask < best) {
              best = ask;
              seller_id = candidate;
            }
          }
        } else if (fill_weighted) {
          seller_ids_.clear();
          seller_weights_.clear();
          std::uint64_t m = mask;
          while (m != 0) {
            const PeerId candidate =
                eligible_[static_cast<std::size_t>(std::countr_zero(m))];
            m &= m - 1;
            seller_ids_.push_back(candidate);
            seller_weights_.push_back(
                static_cast<double>(peers_.buffer(candidate).count()) + 1.0);
          }
          seller_id = seller_ids_[rng_.discrete(seller_weights_)];
        } else {
          const auto num_sellers =
              static_cast<std::size_t>(std::popcount(mask));
          std::uint64_t m = mask;
          for (std::size_t skip = uniform_pick(num_sellers); skip > 0;
               --skip) {
            m &= m - 1;
          }
          seller_id =
              eligible_[static_cast<std::size_t>(std::countr_zero(m))];
        }
      }
    } else if (cfg_.use_owner_index && phase_two_word_) {
      // Two-word phase (hub buyers: 65..128 budgeted neighbors): the
      // candidate mask is exactly two words, so count and pick run
      // unrolled — no per-word loop, no nth_set_bit call. Candidate sets,
      // RNG draws and picks are identical to the generic path below.
      const std::uint64_t* mask = slot_masks_.data() + phase_slot(chunk) * 2;
      const std::uint64_t m0 = mask[0];
      const std::uint64_t m1 = mask[1];
      const auto c0 = static_cast<std::size_t>(std::popcount(m0));
      const std::size_t num_sellers =
          c0 + static_cast<std::size_t>(std::popcount(m1));
      if (num_sellers > 0) {
        have_seller = true;
        if (cfg_.seller_choice ==
            ProtocolConfig::SellerChoice::kCheapestAsk) {
          econ::Credits best = std::numeric_limits<econ::Credits>::max();
          for (std::size_t w = 0; w < 2; ++w) {
            std::uint64_t m = mask[w];
            while (m != 0) {
              const PeerId candidate = eligible_[
                  w * 64 + static_cast<std::size_t>(std::countr_zero(m))];
              m &= m - 1;
              const econ::Credits ask = pricing_->price(candidate, chunk);
              if (ask < best) {
                best = ask;
                seller_id = candidate;
              }
            }
          }
        } else if (fill_weighted) {
          seller_ids_.clear();
          seller_weights_.clear();
          for (std::size_t w = 0; w < 2; ++w) {
            std::uint64_t m = mask[w];
            while (m != 0) {
              const PeerId candidate = eligible_[
                  w * 64 + static_cast<std::size_t>(std::countr_zero(m))];
              m &= m - 1;
              seller_ids_.push_back(candidate);
              seller_weights_.push_back(
                  static_cast<double>(peers_.buffer(candidate).count()) +
                  1.0);
            }
          }
          seller_id = seller_ids_[rng_.discrete(seller_weights_)];
        } else {
          // The nth set bit across (m0, m1), in ascending (neighbor-list)
          // order — the same select nth_set_bit performs, without the
          // word scan.
          std::size_t n = uniform_pick(num_sellers);
          std::uint64_t m = m0;
          std::size_t word_base = 0;
          if (n >= c0) {
            n -= c0;
            m = m1;
            word_base = 64;
          }
          for (; n > 0; --n) m &= m - 1;
          seller_id = eligible_[
              word_base + static_cast<std::size_t>(std::countr_zero(m))];
        }
      }
    } else if (cfg_.use_owner_index) {
      // The slot's candidate mask is already budget-correct (drained
      // sellers were cleared the moment they drained), so the candidate
      // count is a popcount and the uniform pick an nth-set-bit select.
      const std::uint64_t* mask =
          slot_masks_.data() + phase_slot(chunk) * eligible_words_;
      std::size_t num_sellers = 0;
      for (std::size_t w = 0; w < eligible_words_; ++w) {
        num_sellers += static_cast<std::size_t>(std::popcount(mask[w]));
      }
      if (num_sellers > 0) {
        have_seller = true;
        if (cfg_.seller_choice ==
            ProtocolConfig::SellerChoice::kCheapestAsk) {
          // Procurement auction: cheapest ask wins, ties broken by scan
          // order — ascending bit position is neighbor-list order.
          econ::Credits best = std::numeric_limits<econ::Credits>::max();
          for (std::size_t w = 0; w < eligible_words_; ++w) {
            std::uint64_t m = mask[w];
            while (m != 0) {
              const PeerId candidate = eligible_[
                  w * 64 + static_cast<std::size_t>(std::countr_zero(m))];
              m &= m - 1;
              const econ::Credits ask = pricing_->price(candidate, chunk);
              if (ask < best) {
                best = ask;
                seller_id = candidate;
              }
            }
          }
        } else if (fill_weighted) {
          seller_ids_.clear();
          seller_weights_.clear();
          for (std::size_t w = 0; w < eligible_words_; ++w) {
            std::uint64_t m = mask[w];
            while (m != 0) {
              const PeerId candidate = eligible_[
                  w * 64 + static_cast<std::size_t>(std::countr_zero(m))];
              m &= m - 1;
              seller_ids_.push_back(candidate);
              seller_weights_.push_back(
                  static_cast<double>(peers_.buffer(candidate).count()) +
                  1.0);
            }
          }
          seller_id = seller_ids_[rng_.discrete(seller_weights_)];
        } else {
          seller_id = eligible_[nth_set_bit(mask, eligible_words_,
                                            uniform_pick(num_sellers))];
        }
      }
    } else {
      // Reference path: the original O(degree) per-chunk neighbor scan.
      // Kept for the equivalence tests and the perf benches; must stay
      // trace-identical to the indexed path.
      seller_ids_.clear();
      seller_weights_.clear();
      for (PeerId nbr : neighbors) {
        if (!peers_.alive(nbr) || upload_budget_[nbr] < 1.0) continue;
        const BufferMap& nbr_buffer = peers_.buffer(nbr);
        if (!nbr_buffer.has(chunk)) continue;
        seller_ids_.push_back(nbr);
        if (fill_weighted) {
          seller_weights_.push_back(
              static_cast<double>(nbr_buffer.count()) + 1.0);
        }
      }
      if (!seller_ids_.empty()) {
        have_seller = true;
        if (cfg_.seller_choice ==
            ProtocolConfig::SellerChoice::kCheapestAsk) {
          econ::Credits best = std::numeric_limits<econ::Credits>::max();
          for (const PeerId candidate : seller_ids_) {
            const econ::Credits ask = pricing_->price(candidate, chunk);
            if (ask < best) {
              best = ask;
              seller_id = candidate;
            }
          }
        } else if (fill_weighted) {
          seller_id = seller_ids_[rng_.discrete(seller_weights_)];
        } else {
          seller_id = seller_ids_[uniform_pick(seller_ids_.size())];
        }
      }
    }
    if (!have_seller) {
      ++peers_.failed_availability(buyer_id);
      continue;
    }
    const econ::Credits price =
        book_mode ? book_price : pricing_->price(seller_id, chunk);

    if (static_cast<double>(price) > budget) {
      ++peers_.failed_affordability(buyer_id);
      continue;  // cheaper chunks later in the window may still fit
    }
    if (price > 0 && !ledger_.transfer(buyer_id, seller_id, price)) {
      ++peers_.failed_affordability(buyer_id);
      ++*liquidity_failures_;
      continue;
    }

    // Delivery.
    const bool fresh = buyer_buffer.set(chunk);
    CF_ENSURES_MSG(fresh, "purchased a chunk already held");
    owner_index_.on_gain(buyer_id, chunk);
    upload_budget_[seller_id] -= 1.0;
    if (book_mode) {
      // Partial fill: one unit off the resting ask (it expires in place
      // when it drains). A seller whose upload budget ran out mid-round
      // loses its whole ask — no capacity left to back it.
      ++*book_fills_;
      *book_volume_ += price;
      ++book_sold_[seller_id];
      (void)book_->fill_one(seller_id);
      if (upload_budget_[seller_id] < 1.0 && book_->cancel_ask(seller_id)) {
        ++*book_asks_expired_;
      }
      if (book_->has_bid(buyer_id) && price <= book_->bid_limit(buyer_id)) {
        book_->on_bid_matched(buyer_id);
        ++*book_bids_matched_;
      }
    } else if (cfg_.use_owner_index && upload_budget_[seller_id] < 1.0) {
      remove_drained_seller(seller_id, missing);
    }
    budget -= static_cast<double>(price);
    ++purchased;

    peers_.credits_spent(buyer_id) += price;
    peers_.credits_earned(seller_id) += price;
    ++peers_.chunks_downloaded(buyer_id);
    ++peers_.chunks_uploaded(seller_id);
    trace_.record(now, buyer_id, seller_id, chunk, price);
    ++*tx_count_;
    *tx_volume_ += price;

    // Income taxation above the wealth threshold (Sec. VI-C).
    if (cfg_.tax.enabled && price > 0) {
      const auto due =
          tax_.on_income(seller_id, price, ledger_.balance(seller_id));
      if (due > 0) {
        const auto collected = ledger_.collect_tax(seller_id, due);
        CF_ENSURES_MSG(collected == due,
                       "tax engine asked for more than the balance");
        *tax_collected_ += collected;
      }
    }
  }
}

void StreamingProtocol::build_purchase_candidates(
    std::span<const PeerId> neighbors, std::span<const ChunkId> wanted,
    ChunkId window_base) {
  phase_base_ = window_base;
  phase_base_slot_ = owner_index_.slot(window_base);
  // Hoisted per-seller filter: a seller that entered the phase without
  // upload budget can never regain it mid-phase (budgets only drain;
  // mid-phase drains are handled by remove_drained_seller). No aliveness
  // check: a departed peer holds no overlay edges — it cannot appear in a
  // neighbor list — and its ownership bitmap is cleared on departure, so
  // even a stale entry could never contribute a candidate bit. The filter
  // therefore touches only the dense budget array, never the scattered
  // per-peer state.
  eligible_.clear();
  for (const PeerId nbr : neighbors) {
    if (upload_budget_[nbr] >= 1.0) {
      eligible_.push_back(nbr);
    }
  }
  eligible_words_ = (eligible_.size() + 63) / 64;
  const std::size_t needed = cfg_.window_chunks * eligible_words_;
  if (slot_masks_.size() < needed) slot_masks_.resize(needed);

  candidates_hist_->add(eligible_.size());
  phase_single_word_ =
      owner_index_.words_per_peer() == 1 && eligible_words_ == 1;
  phase_two_word_ = !phase_single_word_ && eligible_words_ == 2;
  if (phase_single_word_) {
    ++*phase_one_word_ct_;
  } else if (phase_two_word_) {
    ++*phase_two_word_ct_;
  } else {
    ++*phase_generic_ct_;
  }
  if (phase_single_word_) {
    // Dominant configuration (window ≤ 64 chunks, ≤ 64 budgeted
    // neighbors): every mask is one word, so the scatter loop runs without
    // the generic path's per-word indexing. Same candidate sets, same
    // neighbor-order bit layout — outcomes are bit-identical.
    std::uint64_t miss = 0;
    for (const ChunkId c : wanted) {
      const std::size_t s = phase_slot(c);
      miss |= std::uint64_t{1} << s;
      slot_masks_[s] = 0;
    }
    for (std::size_t j = 0; j < eligible_.size(); ++j) {
      std::uint64_t m = owner_index_.owned(eligible_[j])[0] & miss;
      const std::uint64_t bit = std::uint64_t{1} << j;
      while (m != 0) {
        slot_masks_[static_cast<std::size_t>(std::countr_zero(m))] |= bit;
        m &= m - 1;
      }
    }
    return;
  }

  missing_mask_.assign(owner_index_.words_per_peer(), 0);
  for (const ChunkId c : wanted) {
    const std::size_t s = phase_slot(c);
    missing_mask_[s / 64] |= std::uint64_t{1} << (s % 64);
    std::uint64_t* row = slot_masks_.data() + s * eligible_words_;
    std::fill_n(row, eligible_words_, std::uint64_t{0});
  }
  for (std::size_t j = 0; j < eligible_.size(); ++j) {
    const auto words = owner_index_.owned(eligible_[j]);
    const std::uint64_t bit = std::uint64_t{1} << (j & 63);
    const std::size_t word_j = j >> 6;
    for (std::size_t w = 0; w < words.size(); ++w) {
      std::uint64_t m = words[w] & missing_mask_[w];
      while (m != 0) {
        const auto s = w * 64 + static_cast<std::size_t>(std::countr_zero(m));
        m &= m - 1;
        slot_masks_[s * eligible_words_ + word_j] |= bit;
      }
    }
  }
}

std::size_t StreamingProtocol::uniform_pick(std::size_t num_candidates) {
  const double u = rng_.uniform() * static_cast<double>(num_candidates);
  std::size_t pick =
      u <= 1.0 ? 0 : static_cast<std::size_t>(std::ceil(u)) - 1;
  if (pick >= num_candidates) pick = num_candidates - 1;
  return pick;
}

void StreamingProtocol::remove_drained_seller(
    PeerId seller, std::span<const ChunkId> wanted) {
  // Rare (a seller drains at most once per buyer phase), so a linear scan
  // for its bit position is fine.
  std::size_t j = 0;
  while (j < eligible_.size() && eligible_[j] != seller) ++j;
  if (j == eligible_.size()) return;
  const std::uint64_t clear = ~(std::uint64_t{1} << (j & 63));
  if (phase_single_word_) {
    for (const ChunkId c : wanted) slot_masks_[phase_slot(c)] &= clear;
    return;
  }
  const std::size_t word_j = j >> 6;
  for (const ChunkId c : wanted) {
    slot_masks_[phase_slot(c) * eligible_words_ + word_j] &= clear;
  }
}

std::vector<double> StreamingProtocol::balance_snapshot() const {
  std::vector<double> out;
  balance_snapshot(out);
  return out;
}

void StreamingProtocol::balance_snapshot(std::vector<double>& out) const {
  ledger_.snapshot(overlay_.active_peers(), out);
}

std::vector<double> StreamingProtocol::spend_rate_snapshot() const {
  std::vector<double> rates;
  spend_rate_snapshot(rates);
  return rates;
}

void StreamingProtocol::spend_rate_snapshot(std::vector<double>& out) const {
  const auto alive = overlay_.active_peers();
  out.clear();
  out.reserve(alive.size());
  const double now = sim_.now();
  for (PeerId id : alive) {
    out.push_back(peers_.lifetime_spend_rate(id, now));
  }
}

void StreamingProtocol::begin_rate_window() {
  spent_marker_.resize(peers_.size());
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    spent_marker_[i] = peers_.credits_spent(i);
  }
  marker_time_ = sim_.now();
}

std::vector<double> StreamingProtocol::windowed_spend_rates() const {
  std::vector<double> rates;
  windowed_spend_rates(rates);
  return rates;
}

void StreamingProtocol::windowed_spend_rates(
    std::vector<double>& out) const {
  CF_EXPECTS_MSG(marker_time_ >= 0.0, "begin_rate_window was never called");
  const double dt = sim_.now() - marker_time_;
  CF_EXPECTS_MSG(dt > 0.0, "rate window has zero length");
  const auto alive = overlay_.active_peers();
  out.clear();
  out.reserve(alive.size());
  for (PeerId id : alive) {
    const auto spent_before =
        id < spent_marker_.size() ? spent_marker_[id] : 0;
    const auto spent =
        peers_.credits_spent(id) >= spent_before
            ? peers_.credits_spent(id) - spent_before
            : peers_.credits_spent(id);  // peer slot recycled mid-window
    out.push_back(static_cast<double>(spent) / dt);
  }
}

std::vector<double> StreamingProtocol::download_rate_snapshot() const {
  std::vector<double> rates;
  download_rate_snapshot(rates);
  return rates;
}

void StreamingProtocol::download_rate_snapshot(
    std::vector<double>& out) const {
  const auto alive = overlay_.active_peers();
  out.clear();
  out.reserve(alive.size());
  const double now = sim_.now();
  for (PeerId id : alive) {
    out.push_back(peers_.lifetime_download_rate(id, now));
  }
}

double StreamingProtocol::mean_buffer_fill() const {
  const auto alive = overlay_.active_peers();
  if (alive.empty()) return 0.0;
  double total = 0.0;
  for (PeerId id : alive) total += peers_.buffer(id).fill();
  return total / static_cast<double>(alive.size());
}

}  // namespace creditflow::p2p
