#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace creditflow::graph {

Graph erdos_renyi(std::size_t n, double p, util::Rng& rng) {
  CF_EXPECTS(p >= 0.0 && p <= 1.0);
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) g.add_edge(u, v);
    }
  }
  return g;
}

Graph ring_lattice(std::size_t n, std::size_t half_k) {
  CF_EXPECTS(n >= 2);
  CF_EXPECTS(half_k >= 1 && half_k < n);
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t j = 1; j <= half_k; ++j) {
      const auto v = static_cast<NodeId>((u + j) % n);
      g.add_edge(u, v);
    }
  }
  return g;
}

Graph complete(std::size_t n) {
  Graph g(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  return g;
}

Graph star(std::size_t n) {
  CF_EXPECTS(n >= 2);
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

namespace {

/// Mean of the truncated discrete power law P(d) ∝ d^-alpha on [dmin, dmax].
double truncated_power_law_mean(double alpha, std::uint64_t dmin,
                                std::uint64_t dmax) {
  double norm = 0.0;
  double mean = 0.0;
  for (std::uint64_t d = dmin; d <= dmax; ++d) {
    const double w = std::pow(static_cast<double>(d), -alpha);
    norm += w;
    mean += static_cast<double>(d) * w;
  }
  return mean / norm;
}

}  // namespace

std::vector<std::uint64_t> power_law_degree_sequence(
    std::size_t n, const ScaleFreeParams& params, util::Rng& rng) {
  CF_EXPECTS(n >= 3);
  CF_EXPECTS(params.exponent > 1.0);
  CF_EXPECTS(params.target_mean_degree >= 1.0);
  std::uint64_t dmax = params.max_degree;
  if (dmax == 0) {
    dmax = std::min<std::uint64_t>(
        n - 1,
        static_cast<std::uint64_t>(4.0 * std::sqrt(static_cast<double>(n))) +
            8);
  }
  dmax = std::min<std::uint64_t>(dmax, n - 1);
  CF_EXPECTS_MSG(params.target_mean_degree < static_cast<double>(dmax),
                 "target mean degree unreachable under max degree cap");

  // Find the dmin whose truncated power-law mean brackets the target, then
  // mix dmin and dmin+1 to land on the target mean exactly (in expectation).
  std::uint64_t dmin = 1;
  while (dmin < dmax &&
         truncated_power_law_mean(params.exponent, dmin + 1, dmax) <=
             params.target_mean_degree) {
    ++dmin;
  }
  const double mean_lo = truncated_power_law_mean(params.exponent, dmin, dmax);
  double mix = 0.0;  // probability of using dmin+1 as the lower cutoff
  if (dmin < dmax) {
    const double mean_hi =
        truncated_power_law_mean(params.exponent, dmin + 1, dmax);
    if (mean_hi > mean_lo) {
      mix = std::clamp((params.target_mean_degree - mean_lo) /
                           (mean_hi - mean_lo),
                       0.0, 1.0);
    }
  }

  std::vector<std::uint64_t> degrees(n);
  for (auto& d : degrees) {
    const std::uint64_t lo = rng.bernoulli(mix) ? dmin + 1 : dmin;
    d = rng.power_law_int(params.exponent, lo, dmax);
  }
  // The configuration model needs an even stub count.
  const std::uint64_t sum = std::accumulate(degrees.begin(), degrees.end(),
                                            std::uint64_t{0});
  if (sum % 2 == 1) {
    auto& d = degrees[rng.uniform_index(degrees.size())];
    d = (d < dmax) ? d + 1 : d - 1;
  }
  return degrees;
}

Graph scale_free(std::size_t n, const ScaleFreeParams& params,
                 util::Rng& rng) {
  const auto degrees = power_law_degree_sequence(n, params, rng);

  // Configuration model: lay out stubs, shuffle, pair. Reject self-loops and
  // parallel edges; a few rejected stubs only shave the degree tails.
  std::vector<NodeId> stubs;
  stubs.reserve(std::accumulate(degrees.begin(), degrees.end(),
                                std::uint64_t{0}));
  for (NodeId u = 0; u < n; ++u) {
    for (std::uint64_t j = 0; j < degrees[u]; ++j) stubs.push_back(u);
  }
  rng.shuffle(stubs);

  Graph g(n);
  std::vector<NodeId> retry;
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    const NodeId u = stubs[i];
    const NodeId v = stubs[i + 1];
    if (!g.add_edge(u, v)) {
      retry.push_back(u);
      retry.push_back(v);
    }
  }
  // One rewiring pass over the rejected stubs.
  rng.shuffle(retry);
  for (std::size_t i = 0; i + 1 < retry.size(); i += 2) {
    g.add_edge(retry[i], retry[i + 1]);
  }

  make_connected(g, rng);
  return g;
}

Graph barabasi_albert(std::size_t n, std::size_t m, util::Rng& rng) {
  CF_EXPECTS(m >= 1);
  CF_EXPECTS(n > m);
  Graph g(n);
  // Seed clique of m+1 nodes.
  for (NodeId u = 0; u <= m; ++u)
    for (NodeId v = u + 1; v <= m; ++v) g.add_edge(u, v);

  // Repeated-endpoint list gives degree-proportional sampling in O(1).
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * n * m);
  for (NodeId u = 0; u <= m; ++u)
    for (NodeId v : g.neighbors(u)) {
      (void)v;
      endpoints.push_back(u);
    }

  for (NodeId u = static_cast<NodeId>(m + 1); u < n; ++u) {
    std::size_t added = 0;
    std::size_t attempts = 0;
    while (added < m && attempts < 50 * m) {
      const NodeId target = endpoints[rng.uniform_index(endpoints.size())];
      ++attempts;
      if (g.add_edge(u, target)) {
        endpoints.push_back(u);
        endpoints.push_back(target);
        ++added;
      }
    }
    // Degenerate fallback: connect to sequential nodes.
    for (NodeId v = 0; added < m && v < u; ++v) {
      if (g.add_edge(u, v)) {
        endpoints.push_back(u);
        endpoints.push_back(v);
        ++added;
      }
    }
  }
  return g;
}

void make_connected(Graph& g, util::Rng& rng) {
  if (g.num_nodes() <= 1) return;
  auto labels = connected_components(g);
  const std::uint32_t num_components =
      labels.empty() ? 0
                     : *std::max_element(labels.begin(), labels.end()) + 1;
  if (num_components <= 1) return;

  // Pick one representative per component; chain them together with random
  // partner nodes from the largest component where possible.
  std::vector<std::vector<NodeId>> members(num_components);
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    members[labels[u]].push_back(u);
  std::size_t giant = 0;
  for (std::size_t c = 1; c < members.size(); ++c) {
    if (members[c].size() > members[giant].size()) giant = c;
  }
  for (std::size_t c = 0; c < members.size(); ++c) {
    if (c == giant) continue;
    const NodeId u = members[c][rng.uniform_index(members[c].size())];
    const NodeId v =
        members[giant][rng.uniform_index(members[giant].size())];
    g.add_edge(u, v);
  }
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats out;
  if (g.num_nodes() == 0) return out;
  util::RunningStats rs;
  std::size_t max_deg = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    rs.add(static_cast<double>(g.degree(u)));
    max_deg = std::max(max_deg, g.degree(u));
  }
  out.mean = rs.mean();
  out.min = rs.min();
  out.max = rs.max();
  out.cv = rs.cv();

  // Least-squares slope of log(count) vs log(degree), over non-empty degrees.
  std::vector<std::size_t> counts(max_deg + 1, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) ++counts[g.degree(u)];
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t m = 0;
  for (std::size_t d = 1; d <= max_deg; ++d) {
    if (counts[d] == 0) continue;
    const double x = std::log(static_cast<double>(d));
    const double y = std::log(static_cast<double>(counts[d]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++m;
  }
  if (m >= 2) {
    const double denom = static_cast<double>(m) * sxx - sx * sx;
    if (std::abs(denom) > 1e-12) {
      out.loglog_slope = (static_cast<double>(m) * sxy - sx * sy) / denom;
    }
  }
  return out;
}

}  // namespace creditflow::graph
