// CreditFlow: compact undirected graph used for P2P overlay topologies.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace creditflow::graph {

using NodeId = std::uint32_t;

/// Undirected simple graph over nodes 0..n-1 with adjacency lists.
///
/// Build with add_edge(); neighbor queries are valid at any time, has_edge()
/// is O(degree). The graph rejects self-loops and duplicate edges.
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t num_nodes);

  [[nodiscard]] std::size_t num_nodes() const { return adj_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  /// Add an undirected edge; returns false (and does nothing) if the edge
  /// already exists or u == v. Requires valid node ids.
  bool add_edge(NodeId u, NodeId v);
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const;
  [[nodiscard]] std::size_t degree(NodeId u) const;

  /// Mean degree 2|E|/|V| (0 for an empty graph).
  [[nodiscard]] double mean_degree() const;

 private:
  std::vector<std::vector<NodeId>> adj_;
  std::size_t num_edges_ = 0;
};

/// Connectivity via BFS from node 0; an empty graph counts as connected.
[[nodiscard]] bool is_connected(const Graph& g);

/// Component label per node (labels are 0-based, dense).
[[nodiscard]] std::vector<std::uint32_t> connected_components(const Graph& g);

/// Number of nodes in the largest connected component.
[[nodiscard]] std::size_t giant_component_size(const Graph& g);

}  // namespace creditflow::graph
