#include "graph/graph.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace creditflow::graph {

Graph::Graph(std::size_t num_nodes) : adj_(num_nodes) {}

bool Graph::add_edge(NodeId u, NodeId v) {
  CF_EXPECTS(u < adj_.size() && v < adj_.size());
  if (u == v) return false;
  if (has_edge(u, v)) return false;
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  ++num_edges_;
  return true;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  CF_EXPECTS(u < adj_.size() && v < adj_.size());
  const auto& smaller = adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
  const NodeId target = adj_[u].size() <= adj_[v].size() ? v : u;
  return std::find(smaller.begin(), smaller.end(), target) != smaller.end();
}

std::span<const NodeId> Graph::neighbors(NodeId u) const {
  CF_EXPECTS(u < adj_.size());
  return adj_[u];
}

std::size_t Graph::degree(NodeId u) const {
  CF_EXPECTS(u < adj_.size());
  return adj_[u].size();
}

double Graph::mean_degree() const {
  if (adj_.empty()) return 0.0;
  return 2.0 * static_cast<double>(num_edges_) /
         static_cast<double>(adj_.size());
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  return giant_component_size(g) == g.num_nodes();
}

std::vector<std::uint32_t> connected_components(const Graph& g) {
  const std::size_t n = g.num_nodes();
  constexpr std::uint32_t kUnvisited = ~std::uint32_t{0};
  std::vector<std::uint32_t> label(n, kUnvisited);
  std::uint32_t next_label = 0;
  std::queue<NodeId> frontier;
  for (NodeId start = 0; start < n; ++start) {
    if (label[start] != kUnvisited) continue;
    label[start] = next_label;
    frontier.push(start);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (NodeId v : g.neighbors(u)) {
        if (label[v] == kUnvisited) {
          label[v] = next_label;
          frontier.push(v);
        }
      }
    }
    ++next_label;
  }
  return label;
}

std::size_t giant_component_size(const Graph& g) {
  if (g.num_nodes() == 0) return 0;
  const auto labels = connected_components(g);
  std::vector<std::size_t> sizes;
  for (auto l : labels) {
    if (l >= sizes.size()) sizes.resize(l + 1, 0);
    ++sizes[l];
  }
  return *std::max_element(sizes.begin(), sizes.end());
}

}  // namespace creditflow::graph
