// CreditFlow: overlay topology generators.
//
// The paper's simulations use scale-free overlays with degree distribution
// P(D) ∝ D^-k, k = 2.5, and mean degree 20 (Sec. VI). We provide that
// generator plus the standard reference topologies used in tests and
// ablations.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace creditflow::graph {

/// Erdős–Rényi G(n, p).
[[nodiscard]] Graph erdos_renyi(std::size_t n, double p, util::Rng& rng);

/// Ring lattice where each node links to `half_k` neighbors on each side.
[[nodiscard]] Graph ring_lattice(std::size_t n, std::size_t half_k);

/// Complete graph K_n.
[[nodiscard]] Graph complete(std::size_t n);

/// Star: node 0 is the hub.
[[nodiscard]] Graph star(std::size_t n);

/// Parameters for the scale-free overlay generator.
struct ScaleFreeParams {
  double exponent = 2.5;        ///< shape parameter k in P(D) ∝ D^-k
  double target_mean_degree = 20.0;
  std::uint64_t max_degree = 0;  ///< 0 = auto (~sqrt(n) * 4, capped at n-1)
};

/// Sample a power-law degree sequence whose mean is close to the target.
/// The minimum degree is tuned so the truncated power-law mean matches
/// `target_mean_degree`; the sum is adjusted to be even.
[[nodiscard]] std::vector<std::uint64_t> power_law_degree_sequence(
    std::size_t n, const ScaleFreeParams& params, util::Rng& rng);

/// Scale-free overlay via the configuration model on a power-law degree
/// sequence, with self-loop/multi-edge rejection and a connectivity repair
/// pass (small components are linked into the giant component).
[[nodiscard]] Graph scale_free(std::size_t n, const ScaleFreeParams& params,
                               util::Rng& rng);

/// Barabási–Albert preferential attachment with m links per new node;
/// used for ablations and for the churn join rule.
[[nodiscard]] Graph barabasi_albert(std::size_t n, std::size_t m,
                                    util::Rng& rng);

/// Link all components into one (adds the minimum number of edges, choosing
/// random endpoints). No-op on a connected graph.
void make_connected(Graph& g, util::Rng& rng);

/// Degree-distribution summary used by tests and the topology report.
struct DegreeStats {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double cv = 0.0;             ///< coefficient of variation
  double loglog_slope = 0.0;   ///< slope of log-count vs log-degree fit
};

[[nodiscard]] DegreeStats degree_stats(const Graph& g);

}  // namespace creditflow::graph
