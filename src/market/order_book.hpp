// CreditFlow market layer: OrderBook — a per-market quality-ordered credit
// order book for chunk capacity.
//
// Seeders post asks (price, quantity, scoped to the chunks they own in the
// current window) and buyers cross the book with pluggable strategies; the
// paper's availability-uniform market picks sellers at a fixed unit price,
// while this book is the price-mediated regime of Ramaswamy et al. ("If You
// Can't Beat 'Em, Join 'Em"): supply and demand meet at a clearing price
// that emerges from seller repricing, not from a configured constant.
//
// Layout follows the PR-7 arena style: every resting order lives in a
// fixed-capacity pooled cell — asks are indexed by seller (one ask per
// seller, the protocol's natural shape: a seller's ask is its current
// upload capacity at its current price), bids by buyer — and each integer
// price level is an intrusive FIFO doubly-linked list through those cells.
// Insert, cancel, reprice and fill are all O(1) and allocation-free after
// construction; best-ask discovery walks price levels ascending from a
// maintained floor. Price-time priority is structural: levels ascend by
// price, and within a level the list order IS arrival order, with a
// monotone sequence number stamped on every post for tie-breaking when a
// crossing strategy must compare asks across an arbitrary candidate set.
#pragma once

#include <cstdint>
#include <vector>

#include "p2p/ledger.hpp"

namespace creditflow::market {

using p2p::Credits;
using p2p::PeerId;

/// A view of one resting ask (snapshot; the live cell stays pooled).
struct AskView {
  PeerId seller = 0;
  Credits price = 0;
  std::uint32_t quantity = 0;  ///< units still offered
  std::uint64_t seq = 0;       ///< post order (price-time tie-break)
};

/// A view of one resting limit bid.
struct BidView {
  PeerId buyer = 0;
  Credits limit = 0;    ///< highest price the buyer will pay
  std::uint64_t seq = 0;
};

/// Fixed-capacity, allocation-free order book over integer credit prices.
///
/// Capacity is one ask per seller slot and one bid per buyer slot
/// (`max_peers` each), with price levels 1..max_price. Posting an ask for
/// a seller that already has one is a reprice: the old cell is unlinked
/// and the new ask takes a fresh sequence number (it joins the back of its
/// level's queue — repricing forfeits time priority, as on any exchange).
class OrderBook {
 public:
  OrderBook(std::size_t max_peers, Credits max_price);

  OrderBook(const OrderBook&) = delete;
  OrderBook& operator=(const OrderBook&) = delete;

  // ---- Ask side ----------------------------------------------------------

  /// Post (or replace) `seller`'s ask: `quantity` units at `price` each.
  /// price is clamped to [1, max_price]; quantity 0 cancels instead.
  void post_ask(PeerId seller, Credits price, std::uint32_t quantity);

  /// Remove `seller`'s resting ask if any (churn/drain expiry). Returns
  /// true when an ask was actually resting.
  bool cancel_ask(PeerId seller);

  [[nodiscard]] bool has_ask(PeerId seller) const {
    return asks_[seller].quantity > 0;
  }
  /// Price of `seller`'s resting ask; requires has_ask(seller).
  [[nodiscard]] Credits ask_price(PeerId seller) const {
    return asks_[seller].price;
  }
  [[nodiscard]] std::uint32_t ask_quantity(PeerId seller) const {
    return asks_[seller].quantity;
  }
  [[nodiscard]] std::uint64_t ask_seq(PeerId seller) const {
    return asks_[seller].seq;
  }

  /// Fill one unit of `seller`'s ask; requires has_ask(seller). The ask
  /// expires automatically when its quantity drains to zero. Returns the
  /// remaining quantity.
  std::uint32_t fill_one(PeerId seller);

  /// The best resting ask by price-time priority (lowest price, then
  /// earliest arrival at that level); quantity 0 when the book is empty.
  [[nodiscard]] AskView best_ask() const;

  /// Walk every resting ask in strict price-time priority order (ascending
  /// price levels, FIFO within each level), invoking fn(AskView). The
  /// reference order every crossing strategy's candidate filter must agree
  /// with — the book-vs-naive-scan oracle tests pin exactly this.
  template <typename Fn>
  void for_each_ask(Fn&& fn) const {
    for (Credits p = 1; p <= max_level_used_; ++p) {
      for (std::int32_t i = level_head_[p]; i >= 0; i = asks_[i].next) {
        const auto& cell = asks_[static_cast<std::size_t>(i)];
        fn(AskView{static_cast<PeerId>(i), cell.price, cell.quantity,
                   cell.seq});
      }
    }
  }

  // ---- Bid side (limit orders that rest until matched) -------------------

  /// Post (or replace) `buyer`'s resting limit bid. A resting bid is
  /// standing intent: the buyer found no ask at or under `limit` and will
  /// retry; it rests until matched (cleared by on_bid_matched) or expired
  /// (buyer churn / the wanted window moved on).
  void post_bid(PeerId buyer, Credits limit);
  /// Remove `buyer`'s resting bid (expiry). Returns true if one rested.
  bool cancel_bid(PeerId buyer);
  /// A purchase at or under the resting limit matched the bid.
  void on_bid_matched(PeerId buyer);
  [[nodiscard]] bool has_bid(PeerId buyer) const {
    return bids_[buyer].resting;
  }
  [[nodiscard]] Credits bid_limit(PeerId buyer) const {
    return bids_[buyer].limit;
  }

  // ---- Book-level readouts ----------------------------------------------

  /// Resting asks (distinct sellers with open quantity).
  [[nodiscard]] std::size_t depth() const { return depth_; }
  /// Total unfilled units across all resting asks.
  [[nodiscard]] std::uint64_t open_quantity() const { return open_qty_; }
  /// Resting limit bids.
  [[nodiscard]] std::size_t bid_depth() const { return bid_depth_; }
  /// Lowest / highest resting ask price; 0 when the book is empty.
  [[nodiscard]] Credits min_ask() const;
  [[nodiscard]] Credits max_ask() const;
  /// max_ask - min_ask; 0 when fewer than two price levels rest.
  [[nodiscard]] Credits spread() const;

  [[nodiscard]] Credits max_price() const { return max_price_; }
  [[nodiscard]] std::size_t capacity() const { return asks_.size(); }

 private:
  /// One pooled ask cell, indexed by seller id. quantity == 0 means the
  /// cell is free (no heap round trip: the pool IS the seller-slot array).
  struct AskCell {
    Credits price = 0;
    std::uint32_t quantity = 0;
    std::uint64_t seq = 0;
    std::int32_t prev = -1;  ///< intrusive level-list links (seller ids)
    std::int32_t next = -1;
  };
  struct BidCell {
    Credits limit = 0;
    std::uint64_t seq = 0;
    bool resting = false;
  };

  void unlink(PeerId seller);
  void link_tail(PeerId seller, Credits price);

  std::vector<AskCell> asks_;           ///< indexed by seller id
  std::vector<BidCell> bids_;           ///< indexed by buyer id
  std::vector<std::int32_t> level_head_;  ///< per price level, -1 empty
  std::vector<std::int32_t> level_tail_;
  Credits max_price_;
  // Walk bound: levels above this were never occupied. Price levels are
  // few (max_price is small by construction), so best-ask/spread scans are
  // a handful of array reads — no floor bookkeeping to keep consistent.
  Credits max_level_used_ = 0;
  std::size_t depth_ = 0;
  std::size_t bid_depth_ = 0;
  std::uint64_t open_qty_ = 0;
  std::uint64_t next_seq_ = 1;
};

}  // namespace creditflow::market
