#include "market/order_book.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace creditflow::market {

OrderBook::OrderBook(std::size_t max_peers, Credits max_price)
    : asks_(max_peers),
      bids_(max_peers),
      level_head_(static_cast<std::size_t>(max_price) + 1, -1),
      level_tail_(static_cast<std::size_t>(max_price) + 1, -1),
      max_price_(max_price) {
  CF_EXPECTS(max_peers > 0);
  CF_EXPECTS(max_price >= 1);
  CF_EXPECTS_MSG(max_peers <= static_cast<std::size_t>(
                                  std::numeric_limits<std::int32_t>::max()),
                 "order book: peer capacity exceeds intrusive link range");
}

void OrderBook::link_tail(PeerId seller, Credits price) {
  AskCell& cell = asks_[seller];
  const auto p = static_cast<std::size_t>(price);
  const auto id = static_cast<std::int32_t>(seller);
  cell.prev = level_tail_[p];
  cell.next = -1;
  if (level_tail_[p] >= 0) {
    asks_[static_cast<std::size_t>(level_tail_[p])].next = id;
  } else {
    level_head_[p] = id;
  }
  level_tail_[p] = id;
  max_level_used_ = std::max(max_level_used_, price);
}

void OrderBook::unlink(PeerId seller) {
  AskCell& cell = asks_[seller];
  const auto p = static_cast<std::size_t>(cell.price);
  if (cell.prev >= 0) {
    asks_[static_cast<std::size_t>(cell.prev)].next = cell.next;
  } else {
    level_head_[p] = cell.next;
  }
  if (cell.next >= 0) {
    asks_[static_cast<std::size_t>(cell.next)].prev = cell.prev;
  } else {
    level_tail_[p] = cell.prev;
  }
  cell.prev = -1;
  cell.next = -1;
}

void OrderBook::post_ask(PeerId seller, Credits price,
                         std::uint32_t quantity) {
  CF_EXPECTS(seller < asks_.size());
  if (quantity == 0) {
    (void)cancel_ask(seller);
    return;
  }
  const Credits clamped = std::clamp<Credits>(price, 1, max_price_);
  AskCell& cell = asks_[seller];
  if (cell.quantity > 0) {
    // Reprice/requantity: unlink from the old level; the repost joins the
    // back of its (possibly new) level — repricing forfeits time priority.
    open_qty_ -= cell.quantity;
    unlink(seller);
  } else {
    ++depth_;
  }
  cell.price = clamped;
  cell.quantity = quantity;
  cell.seq = next_seq_++;
  open_qty_ += quantity;
  link_tail(seller, clamped);
}

bool OrderBook::cancel_ask(PeerId seller) {
  CF_EXPECTS(seller < asks_.size());
  AskCell& cell = asks_[seller];
  if (cell.quantity == 0) return false;
  open_qty_ -= cell.quantity;
  unlink(seller);
  cell.quantity = 0;
  --depth_;
  return true;
}

std::uint32_t OrderBook::fill_one(PeerId seller) {
  AskCell& cell = asks_[seller];
  CF_EXPECTS_MSG(cell.quantity > 0, "fill_one on a seller with no ask");
  --cell.quantity;
  --open_qty_;
  if (cell.quantity == 0) {
    // Drained: the ask expires in place (keeps fill O(1); depth and the
    // level lists stay exact).
    unlink(seller);
    --depth_;
    return 0;
  }
  return cell.quantity;
}

AskView OrderBook::best_ask() const {
  for (Credits p = 1; p <= max_level_used_; ++p) {
    const std::int32_t head = level_head_[static_cast<std::size_t>(p)];
    if (head < 0) continue;
    const auto& cell = asks_[static_cast<std::size_t>(head)];
    return AskView{static_cast<PeerId>(head), cell.price, cell.quantity,
                   cell.seq};
  }
  return AskView{};
}

void OrderBook::post_bid(PeerId buyer, Credits limit) {
  CF_EXPECTS(buyer < bids_.size());
  BidCell& cell = bids_[buyer];
  if (!cell.resting) ++bid_depth_;
  cell.limit = limit;
  cell.seq = next_seq_++;
  cell.resting = true;
}

bool OrderBook::cancel_bid(PeerId buyer) {
  CF_EXPECTS(buyer < bids_.size());
  BidCell& cell = bids_[buyer];
  if (!cell.resting) return false;
  cell.resting = false;
  --bid_depth_;
  return true;
}

void OrderBook::on_bid_matched(PeerId buyer) { (void)cancel_bid(buyer); }

Credits OrderBook::min_ask() const {
  for (Credits p = 1; p <= max_level_used_; ++p) {
    if (level_head_[static_cast<std::size_t>(p)] >= 0) return p;
  }
  return 0;
}

Credits OrderBook::max_ask() const {
  for (Credits p = max_level_used_; p >= 1; --p) {
    if (level_head_[static_cast<std::size_t>(p)] >= 0) return p;
  }
  return 0;
}

Credits OrderBook::spread() const {
  const Credits lo = min_ask();
  if (lo == 0) return 0;
  return max_ask() - lo;
}

}  // namespace creditflow::market
