#include "queueing/equilibrium.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace creditflow::queueing {

EquilibriumResult solve_equilibrium_power(const TransferMatrix& p,
                                          const EquilibriumOptions& opts) {
  const std::size_t n = p.size();
  CF_EXPECTS(n > 0);
  CF_EXPECTS_MSG(p.is_substochastic(1e-6), "transfer matrix rows exceed 1");
  CF_EXPECTS(opts.damping >= 0.0 && opts.damping < 1.0);

  EquilibriumResult result;
  std::vector<double> lambda(n, 1.0 / static_cast<double>(n));
  for (std::size_t it = 1; it <= opts.max_iterations; ++it) {
    auto next = p.left_multiply(lambda);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      next[i] = (1.0 - opts.damping) * next[i] + opts.damping * lambda[i];
      sum += next[i];
    }
    CF_ENSURES_MSG(sum > 0.0, "flow vector collapsed to zero");
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      next[i] /= sum;
      delta += std::abs(next[i] - lambda[i]);
    }
    lambda.swap(next);
    result.iterations = it;
    if (delta < opts.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.residual = equilibrium_residual(p, lambda);
  result.lambda = std::move(lambda);
  return result;
}

EquilibriumResult solve_equilibrium_direct(const TransferMatrix& p) {
  CF_EXPECTS(p.size() > 0);
  CF_EXPECTS_MSG(p.is_stochastic(1e-6),
                 "direct solver requires a closed (stochastic) matrix");
  EquilibriumResult result;
  result.lambda = util::stationary_from_stochastic(p.to_dense());
  result.residual = equilibrium_residual(p, result.lambda);
  result.converged = result.residual < 1e-8;
  return result;
}

EquilibriumResult solve_equilibrium(const TransferMatrix& p,
                                    const EquilibriumOptions& opts) {
  if (p.size() <= 512 && p.is_stochastic(1e-6)) {
    return solve_equilibrium_direct(p);
  }
  return solve_equilibrium_power(p, opts);
}

double equilibrium_residual(const TransferMatrix& p,
                            std::span<const double> lambda) {
  CF_EXPECTS(lambda.size() == p.size());
  const auto mapped = p.left_multiply(lambda);
  double worst = 0.0;
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    worst = std::max(worst, std::abs(mapped[i] - lambda[i]));
  }
  return worst;
}

std::vector<double> normalized_utilization(std::span<const double> lambda,
                                           std::span<const double> mu) {
  CF_EXPECTS(lambda.size() == mu.size());
  CF_EXPECTS(!lambda.empty());
  double max_ratio = 0.0;
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    CF_EXPECTS_MSG(mu[i] > 0.0, "service rate must be positive");
    CF_EXPECTS_MSG(lambda[i] >= 0.0, "arrival rate must be non-negative");
    max_ratio = std::max(max_ratio, lambda[i] / mu[i]);
  }
  CF_EXPECTS_MSG(max_ratio > 0.0, "all arrival rates are zero");
  std::vector<double> u(lambda.size());
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    u[i] = (lambda[i] / mu[i]) / max_ratio;
  }
  return u;
}

double critical_scaling(std::span<const double> lambda,
                        std::span<const double> mu) {
  CF_EXPECTS(lambda.size() == mu.size());
  CF_EXPECTS(!lambda.empty());
  double max_ratio = 0.0;
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    CF_EXPECTS(mu[i] > 0.0);
    max_ratio = std::max(max_ratio, lambda[i] / mu[i]);
  }
  CF_EXPECTS_MSG(max_ratio > 0.0, "all arrival rates are zero");
  return 1.0 / max_ratio;
}

}  // namespace creditflow::queueing
