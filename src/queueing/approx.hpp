// CreditFlow: the paper's closed-form approximations of the credit
// distribution (Sec. V-B of the paper).
//
// Starting from the product-form law (Eq. 3), the paper applies the
// multinomial theorem (Eq. 5) and reads off a *multinomial-allocation*
// approximation of the marginal wealth distribution:
//
//   Eq. (6):  Q{B_i = b} = u_i^b C(M,b) (S - u_i)^{M-b} / S^M,  S = Σ_j u_j
//   Eq. (8):  symmetric case u_i = 1 ∀i — a Binomial(M, 1/N) marginal
//   Eq. (9):  effective spending rate  μ_i (1 - Q{B_i=0}) ≈ μ_i (1 - e^{-c})
//
// These differ from the exact marginals of ClosedNetwork (the approximation
// weights states by multinomial coefficients; the exact law weights each
// composition by ∏ u_i^{b_i} alone). Both are exposed so benches can show
// the approximation error — see DESIGN.md §2.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace creditflow::queueing {

/// Eq. (6): approximate marginal PMF of peer i's wealth (length M+1).
/// Requires u_i >= 0 with Σu > u_i > 0 unless N == 1.
[[nodiscard]] std::vector<double> approx_marginal_eq6(
    std::span<const double> utilization, std::size_t i,
    std::uint64_t total_credits);

/// Eq. (8): symmetric-utilization marginal, Binomial(M, 1/N) (length M+1).
[[nodiscard]] std::vector<double> approx_marginal_eq8(std::size_t num_peers,
                                                      std::uint64_t
                                                          total_credits);

/// Eq. (8) evaluated at a single point.
[[nodiscard]] double approx_pmf_eq8(std::size_t num_peers,
                                    std::uint64_t total_credits,
                                    std::uint64_t b);

/// Eq. (9): large-N content-exchange efficiency 1 - e^{-c} as a function of
/// the average wealth c = M/N.
[[nodiscard]] double efficiency_eq9(double average_wealth);

/// Exact finite-N counterpart of Eq. (9) under the Eq. (8) approximation:
/// 1 - ((N-1)/N)^M.
[[nodiscard]] double efficiency_finite(std::size_t num_peers,
                                       std::uint64_t total_credits);

}  // namespace creditflow::queueing
