#include "queueing/ctmc.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace creditflow::queueing {

namespace {

/// Build per-row alias tables and target lists from a transfer matrix.
/// When `exit_probability` is non-null, row deficits (1 - Σp_ij) are
/// appended as an extra "exit" slot whose index equals targets.size().
void build_routing(const TransferMatrix& p,
                   std::vector<util::AliasTable>& tables,
                   std::vector<std::vector<std::uint32_t>>& targets,
                   std::vector<double>* exit_probability) {
  const std::size_t n = p.size();
  tables.clear();
  targets.clear();
  tables.reserve(n);
  targets.reserve(n);
  if (exit_probability) exit_probability->assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> weights;
    std::vector<std::uint32_t> tos;
    for (const auto& e : p.row(i)) {
      weights.push_back(e.probability);
      tos.push_back(e.to);
    }
    const double deficit = std::max(0.0, 1.0 - p.row_sum(i));
    if (exit_probability && deficit > 1e-12) {
      (*exit_probability)[i] = deficit;
      weights.push_back(deficit);
      // exit encoded as index == tos.size() at sample time
    }
    CF_EXPECTS_MSG(!weights.empty(), "row with no routing and no exit");
    tables.emplace_back(std::span<const double>(weights));
    targets.push_back(std::move(tos));
  }
}

}  // namespace

ClosedCtmcSimulator::ClosedCtmcSimulator(TransferMatrix routing,
                                         ClosedCtmcConfig config)
    : p_(std::move(routing)), cfg_(std::move(config)), rng_(cfg_.seed) {
  const std::size_t n = p_.size();
  CF_EXPECTS(n > 0);
  CF_EXPECTS(cfg_.service_rates.size() == n);
  CF_EXPECTS(cfg_.initial_credits.size() == n);
  CF_EXPECTS_MSG(p_.is_stochastic(1e-9),
                 "closed CTMC requires a stochastic matrix");
  CF_EXPECTS(cfg_.horizon > 0.0 && cfg_.snapshot_interval > 0.0);
  for (double mu : cfg_.service_rates) CF_EXPECTS(mu > 0.0);

  build_routing(p_, routing_tables_, routing_targets_, nullptr);
  credits_ = cfg_.initial_credits;
  departures_.assign(n, 0);
  total_ = 0;
  for (auto b : credits_) total_ += b;
  CF_EXPECTS_MSG(total_ > 0, "closed network needs at least one credit");

  active_.resize(n);
  for (std::size_t i = 0; i < n; ++i) set_queue_rate(i);
}

void ClosedCtmcSimulator::set_queue_rate(std::size_t i) {
  active_.set(i, credits_[i] > 0 ? cfg_.service_rates[i] : 0.0);
}

std::uint64_t ClosedCtmcSimulator::run(
    const std::function<void(const CtmcSnapshot&)>& observer) {
  std::uint64_t jumps = 0;
  double next_snapshot = cfg_.snapshot_interval;
  std::vector<std::uint64_t> departures_at_last_snap(credits_.size(), 0);

  auto emit_snapshot = [&](double at) {
    if (!observer) return;
    std::vector<double> rates(credits_.size(), 0.0);
    const double dt = at - (next_snapshot - cfg_.snapshot_interval);
    for (std::size_t i = 0; i < credits_.size(); ++i) {
      const auto delta = departures_[i] - departures_at_last_snap[i];
      rates[i] = dt > 0.0 ? static_cast<double>(delta) / dt : 0.0;
      departures_at_last_snap[i] = departures_[i];
    }
    CtmcSnapshot snap;
    snap.time = at;
    snap.credits = credits_;
    snap.spend_rate = rates;
    observer(snap);
  };

  while (time_ < cfg_.horizon) {
    const double total_rate = active_.total();
    if (total_rate <= 0.0) break;  // absorbing (cannot happen when M > 0)
    const double dt = rng_.exponential(total_rate);
    double event_time = time_ + dt;

    while (event_time >= next_snapshot && next_snapshot <= cfg_.horizon) {
      emit_snapshot(next_snapshot);
      next_snapshot += cfg_.snapshot_interval;
    }
    if (event_time > cfg_.horizon) {
      time_ = cfg_.horizon;
      break;
    }
    time_ = event_time;

    const std::size_t i = active_.sample(rng_);
    const std::size_t pick = routing_tables_[i].sample(rng_);
    const std::size_t j = routing_targets_[i][pick];
    CF_ENSURES(credits_[i] > 0);
    --credits_[i];
    ++credits_[j];
    ++departures_[i];
    ++jumps;
    if (credits_[i] == 0) set_queue_rate(i);
    if (credits_[j] == 1) set_queue_rate(j);
  }
  // Final snapshot at the horizon.
  if (next_snapshot <= cfg_.horizon + 1e-9) emit_snapshot(cfg_.horizon);
  return jumps;
}

std::vector<double> ClosedCtmcSimulator::average_spend_rates() const {
  std::vector<double> rates(credits_.size(), 0.0);
  if (time_ <= 0.0) return rates;
  for (std::size_t i = 0; i < credits_.size(); ++i) {
    rates[i] = static_cast<double>(departures_[i]) / time_;
  }
  return rates;
}

OpenCtmcSimulator::OpenCtmcSimulator(TransferMatrix routing,
                                     OpenCtmcConfig config)
    : p_(std::move(routing)), cfg_(std::move(config)), rng_(cfg_.seed) {
  const std::size_t n = p_.size();
  CF_EXPECTS(n > 0);
  CF_EXPECTS(cfg_.service_rates.size() == n);
  CF_EXPECTS(cfg_.external_arrival_rates.size() == n);
  CF_EXPECTS(cfg_.initial_credits.size() == n);
  CF_EXPECTS_MSG(p_.is_substochastic(1e-9), "routing rows exceed 1");
  CF_EXPECTS(cfg_.horizon > 0.0 && cfg_.snapshot_interval > 0.0);
  for (double mu : cfg_.service_rates) CF_EXPECTS(mu > 0.0);
  for (double g : cfg_.external_arrival_rates) CF_EXPECTS(g >= 0.0);

  build_routing(p_, routing_tables_, routing_targets_, &exit_probability_);
  credits_ = cfg_.initial_credits;
  departures_.assign(n, 0);

  // Event index space: [0, n) service completions, [n, 2n) external arrivals.
  active_.resize(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    set_queue_rate(i);
    active_.set(n + i, cfg_.external_arrival_rates[i]);
  }
}

void OpenCtmcSimulator::set_queue_rate(std::size_t i) {
  active_.set(i, credits_[i] > 0 ? cfg_.service_rates[i] : 0.0);
}

std::uint64_t OpenCtmcSimulator::run(
    const std::function<void(const CtmcSnapshot&)>& observer) {
  const std::size_t n = credits_.size();
  std::uint64_t jumps = 0;
  double next_snapshot = cfg_.snapshot_interval;
  std::vector<std::uint64_t> departures_at_last_snap(n, 0);

  auto emit_snapshot = [&](double at) {
    if (!observer) return;
    std::vector<double> rates(n, 0.0);
    const double dt = at - (next_snapshot - cfg_.snapshot_interval);
    for (std::size_t i = 0; i < n; ++i) {
      const auto delta = departures_[i] - departures_at_last_snap[i];
      rates[i] = dt > 0.0 ? static_cast<double>(delta) / dt : 0.0;
      departures_at_last_snap[i] = departures_[i];
    }
    CtmcSnapshot snap;
    snap.time = at;
    snap.credits = credits_;
    snap.spend_rate = rates;
    observer(snap);
  };

  while (time_ < cfg_.horizon) {
    const double total_rate = active_.total();
    if (total_rate <= 0.0) break;
    const double dt = rng_.exponential(total_rate);
    const double event_time = time_ + dt;
    while (event_time >= next_snapshot && next_snapshot <= cfg_.horizon) {
      emit_snapshot(next_snapshot);
      next_snapshot += cfg_.snapshot_interval;
    }
    if (event_time > cfg_.horizon) {
      time_ = cfg_.horizon;
      break;
    }
    time_ = event_time;

    const std::size_t idx = active_.sample(rng_);
    if (idx >= n) {
      // External arrival into queue idx - n.
      const std::size_t j = idx - n;
      ++credits_[j];
      if (credits_[j] == 1) set_queue_rate(j);
    } else {
      const std::size_t i = idx;
      const std::size_t pick = routing_tables_[i].sample(rng_);
      CF_ENSURES(credits_[i] > 0);
      --credits_[i];
      ++departures_[i];
      if (credits_[i] == 0) set_queue_rate(i);
      if (pick < routing_targets_[i].size()) {
        const std::size_t j = routing_targets_[i][pick];
        ++credits_[j];
        if (credits_[j] == 1) set_queue_rate(j);
      }
      // else: job exits the system
    }
    ++jumps;
  }
  if (next_snapshot <= cfg_.horizon + 1e-9) emit_snapshot(cfg_.horizon);
  return jumps;
}

}  // namespace creditflow::queueing
