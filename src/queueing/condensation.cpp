#include "queueing/condensation.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace creditflow::queueing {

namespace {

/// Integrate f over [0,1] in fixed panels so that narrow spikes (e.g. a
/// histogram density concentrated in one bin) are never missed by the
/// adaptive refinement's initial sampling.
double integrate_unit_interval(const std::function<double(double)>& f) {
  constexpr int kPanels = 64;
  double total = 0.0;
  for (int k = 0; k < kPanels; ++k) {
    const double a = static_cast<double>(k) / kPanels;
    const double b = static_cast<double>(k + 1) / kPanels;
    total += util::integrate(f, a, b, 1e-11);
  }
  return total;
}

double normalization_of(const std::function<double(double)>& density) {
  const double mass = integrate_unit_interval(density);
  CF_EXPECTS_MSG(mass > 0.0, "density has no mass on [0,1]");
  return mass;
}

}  // namespace

double threshold_integrand_at(const std::function<double(double)>& density,
                              double z) {
  CF_EXPECTS(z >= 0.0 && z < 1.0);
  const double mass = normalization_of(density);
  const auto f = [&](double w) {
    return w / (1.0 - z * w) * density(w) / mass;
  };
  return integrate_unit_interval(f);
}

CondensationAnalysis analyze_condensation_density(
    const std::function<double(double)>& density, double average_wealth) {
  CF_EXPECTS(average_wealth >= 0.0);
  const double mass = normalization_of(density);
  const auto g = [&](double z) {
    const auto f = [&](double w) {
      return w / (1.0 - z * w) * density(w) / mass;
    };
    return integrate_unit_interval(f);
  };
  const auto limit = util::limit_from_below(g);

  CondensationAnalysis out;
  out.threshold = limit.value;
  out.threshold_finite = !limit.diverges;
  out.average_wealth = average_wealth;
  out.condensation_predicted =
      out.threshold_finite && average_wealth > out.threshold;
  return out;
}

CondensationAnalysis analyze_condensation_empirical(
    std::span<const double> utilization, double average_wealth,
    const EmpiricalOptions& opts) {
  CF_EXPECTS(!utilization.empty());
  CF_EXPECTS(opts.bins >= 4);
  CF_EXPECTS(opts.top_exclude_fraction >= 0.0 &&
             opts.top_exclude_fraction < 0.5);
  for (double u : utilization) {
    CF_EXPECTS_MSG(u >= 0.0 && u <= 1.0 + 1e-12,
                   "utilizations must be normalized into [0,1]");
  }

  std::vector<double> us(utilization.begin(), utilization.end());
  std::sort(us.begin(), us.end());
  std::size_t keep = us.size();
  if (opts.exclude_top_atom && us.size() > 2) {
    const auto drop = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(
               opts.top_exclude_fraction * static_cast<double>(us.size()))));
    keep = us.size() - drop;
  }

  util::Histogram hist(0.0, 1.0 + 1e-9, opts.bins);
  for (std::size_t i = 0; i < keep; ++i) hist.add(us[i]);
  const auto dens = hist.density();
  const double width = hist.bin_width();

  // Piecewise-constant density over bin centers; evaluated as a step
  // function so quadrature sees the histogram exactly.
  const auto density = [dens, width](double w) -> double {
    if (w < 0.0 || w >= width * static_cast<double>(dens.size())) return 0.0;
    const auto bin = static_cast<std::size_t>(w / width);
    return dens[std::min(bin, dens.size() - 1)];
  };
  return analyze_condensation_density(density, average_wealth);
}

}  // namespace creditflow::queueing
