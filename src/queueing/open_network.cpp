#include "queueing/open_network.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace creditflow::queueing {

OpenNetwork::OpenNetwork(TransferMatrix routing,
                         std::vector<double> external_arrivals,
                         std::vector<double> service_rates)
    : p_(std::move(routing)),
      gamma_(std::move(external_arrivals)),
      mu_(std::move(service_rates)) {
  const std::size_t n = p_.size();
  CF_EXPECTS(n > 0);
  CF_EXPECTS(gamma_.size() == n && mu_.size() == n);
  CF_EXPECTS_MSG(p_.is_substochastic(1e-9),
                 "open network routing rows must not exceed 1");
  double total_gamma = 0.0;
  for (double g : gamma_) {
    CF_EXPECTS(g >= 0.0);
    total_gamma += g;
  }
  CF_EXPECTS_MSG(total_gamma > 0.0, "no external arrivals");
  for (double m : mu_) CF_EXPECTS_MSG(m > 0.0, "service rates must be > 0");

  // Traffic equations: λ (I - P) = γ  ⇔  (I - P)^T λ^T = γ^T.
  util::Matrix a(n, n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    a.at(r, r) = 1.0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& e : p_.row(i)) {
      a.at(e.to, i) -= e.probability;  // transpose of (I - P)
    }
  }
  sol_.lambda = util::solve_linear(std::move(a), gamma_);
  sol_.rho.resize(n);
  sol_.stable = true;
  for (std::size_t i = 0; i < n; ++i) {
    // Tiny negative noise from the solve is clamped.
    if (sol_.lambda[i] < 0.0) sol_.lambda[i] = 0.0;
    sol_.rho[i] = sol_.lambda[i] / mu_[i];
    if (sol_.rho[i] >= 1.0) sol_.stable = false;
  }
}

double OpenNetwork::marginal_pmf(std::size_t i, std::uint64_t b) const {
  CF_EXPECTS(i < gamma_.size());
  const double rho = sol_.rho[i];
  CF_EXPECTS_MSG(rho < 1.0, "queue is unstable; no stationary marginal");
  return (1.0 - rho) * std::pow(rho, static_cast<double>(b));
}

double OpenNetwork::expected_wealth(std::size_t i) const {
  CF_EXPECTS(i < gamma_.size());
  const double rho = sol_.rho[i];
  CF_EXPECTS_MSG(rho < 1.0, "queue is unstable; expected wealth diverges");
  return rho / (1.0 - rho);
}

double OpenNetwork::empty_probability(std::size_t i) const {
  CF_EXPECTS(i < gamma_.size());
  const double rho = sol_.rho[i];
  CF_EXPECTS_MSG(rho < 1.0, "queue is unstable");
  return 1.0 - rho;
}

}  // namespace creditflow::queueing
