#include "queueing/mva.hpp"

#include "util/assert.hpp"

namespace creditflow::queueing {

MvaResult exact_mva(std::span<const double> service_demand,
                    std::uint64_t total_credits) {
  CF_EXPECTS(!service_demand.empty());
  double max_d = 0.0;
  for (double d : service_demand) {
    CF_EXPECTS_MSG(d >= 0.0, "service demand must be non-negative");
    max_d = d > max_d ? d : max_d;
  }
  CF_EXPECTS_MSG(max_d > 0.0, "at least one positive service demand");

  const std::size_t n = service_demand.size();
  MvaResult result;
  result.expected_wealth.assign(n, 0.0);
  result.mean_wait.assign(n, 0.0);

  // Classic exact MVA recursion on population m = 1..M:
  //   W_i(m) = d_i (1 + L_i(m-1))
  //   X(m)   = m / Σ_i W_i(m)
  //   L_i(m) = X(m) W_i(m)
  std::vector<double>& l = result.expected_wealth;
  std::vector<double>& w = result.mean_wait;
  for (std::uint64_t m = 1; m <= total_credits; ++m) {
    double total_wait = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      w[i] = service_demand[i] * (1.0 + l[i]);
      total_wait += w[i];
    }
    CF_ENSURES(total_wait > 0.0);
    const double x = static_cast<double>(m) / total_wait;
    for (std::size_t i = 0; i < n; ++i) l[i] = x * w[i];
    result.throughput_scale = x;
  }
  return result;
}

}  // namespace creditflow::queueing
