#include "queueing/approx.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace creditflow::queueing {

std::vector<double> approx_marginal_eq6(std::span<const double> utilization,
                                        std::size_t i,
                                        std::uint64_t total_credits) {
  CF_EXPECTS(i < utilization.size());
  const std::size_t n = utilization.size();
  double s = 0.0;
  for (double u : utilization) {
    CF_EXPECTS(u >= 0.0);
    s += u;
  }
  CF_EXPECTS_MSG(s > 0.0, "all utilizations are zero");
  const double ui = utilization[i];
  std::vector<double> pmf(total_credits + 1, 0.0);
  if (n == 1 || ui >= s) {
    pmf[total_credits] = 1.0;  // a single (or dominating) peer holds all
    return pmf;
  }
  if (ui == 0.0) {
    pmf[0] = 1.0;
    return pmf;
  }
  // Binomial(M, ui/S) in log-space.
  const double p = ui / s;
  for (std::uint64_t b = 0; b <= total_credits; ++b) {
    pmf[b] = std::exp(util::log_binomial_pmf(total_credits, b, p));
  }
  return pmf;
}

std::vector<double> approx_marginal_eq8(std::size_t num_peers,
                                        std::uint64_t total_credits) {
  CF_EXPECTS(num_peers >= 2);
  std::vector<double> pmf(total_credits + 1, 0.0);
  const double p = 1.0 / static_cast<double>(num_peers);
  for (std::uint64_t b = 0; b <= total_credits; ++b) {
    pmf[b] = std::exp(util::log_binomial_pmf(total_credits, b, p));
  }
  return pmf;
}

double approx_pmf_eq8(std::size_t num_peers, std::uint64_t total_credits,
                      std::uint64_t b) {
  CF_EXPECTS(num_peers >= 2);
  if (b > total_credits) return 0.0;
  const double p = 1.0 / static_cast<double>(num_peers);
  return std::exp(util::log_binomial_pmf(total_credits, b, p));
}

double efficiency_eq9(double average_wealth) {
  CF_EXPECTS(average_wealth >= 0.0);
  return 1.0 - std::exp(-average_wealth);
}

double efficiency_finite(std::size_t num_peers, std::uint64_t total_credits) {
  CF_EXPECTS(num_peers >= 2);
  const double log_q0 =
      static_cast<double>(total_credits) *
      std::log1p(-1.0 / static_cast<double>(num_peers));
  return 1.0 - std::exp(log_q0);
}

}  // namespace creditflow::queueing
