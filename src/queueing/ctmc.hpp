// CreditFlow: Gillespie (exact-jump) simulator of the Jackson network CTMC.
//
// This simulates the paper's *model* directly — credits hop queue-to-queue
// with exponential service times and routing matrix P — independently of the
// full P2P protocol simulator. It serves two roles: (a) validating the
// Buzen/MVA analytics against a stochastic run, and (b) producing the
// model-level counterparts of the paper's Figs. 5–8.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "queueing/transfer_matrix.hpp"
#include "util/rng.hpp"

namespace creditflow::queueing {

/// Snapshot handed to observers during a run.
struct CtmcSnapshot {
  double time = 0.0;
  std::span<const std::uint64_t> credits;   ///< per-queue job counts
  std::span<const double> spend_rate;       ///< departures/sec since last snap
};

/// Configuration of a closed-network CTMC run.
struct ClosedCtmcConfig {
  std::vector<double> service_rates;          ///< μ_i > 0
  std::vector<std::uint64_t> initial_credits; ///< B_i(0)
  double horizon = 1000.0;                    ///< simulated seconds
  double snapshot_interval = 10.0;            ///< observer cadence
  std::uint64_t seed = 1;
};

/// Closed Jackson network simulator (credits conserved).
class ClosedCtmcSimulator {
 public:
  ClosedCtmcSimulator(TransferMatrix routing, ClosedCtmcConfig config);

  /// Run to the horizon, invoking `observer` at every snapshot interval
  /// (and once at the horizon). Returns total simulated jumps.
  std::uint64_t run(const std::function<void(const CtmcSnapshot&)>& observer);

  [[nodiscard]] std::span<const std::uint64_t> credits() const {
    return credits_;
  }
  [[nodiscard]] std::uint64_t total_credits() const { return total_; }
  /// Long-run average departure (spending) rate per queue over the full run.
  [[nodiscard]] std::vector<double> average_spend_rates() const;

 private:
  void set_queue_rate(std::size_t i);

  TransferMatrix p_;
  ClosedCtmcConfig cfg_;
  std::vector<util::AliasTable> routing_tables_;
  std::vector<std::vector<std::uint32_t>> routing_targets_;
  util::FenwickSampler active_;
  std::vector<std::uint64_t> credits_;
  std::vector<std::uint64_t> departures_;
  std::uint64_t total_ = 0;
  double time_ = 0.0;
  util::Rng rng_;
};

/// Configuration of an open-network CTMC run (jobs enter and leave).
struct OpenCtmcConfig {
  std::vector<double> service_rates;           ///< μ_i > 0
  std::vector<double> external_arrival_rates;  ///< γ_i >= 0
  std::vector<std::uint64_t> initial_credits;
  double horizon = 1000.0;
  double snapshot_interval = 10.0;
  std::uint64_t seed = 1;
};

/// Open Jackson network simulator. Routing rows may sum to < 1; the deficit
/// is the probability that a departing job leaves the system.
class OpenCtmcSimulator {
 public:
  OpenCtmcSimulator(TransferMatrix routing, OpenCtmcConfig config);

  std::uint64_t run(const std::function<void(const CtmcSnapshot&)>& observer);

  [[nodiscard]] std::span<const std::uint64_t> credits() const {
    return credits_;
  }

 private:
  void set_queue_rate(std::size_t i);

  TransferMatrix p_;
  OpenCtmcConfig cfg_;
  std::vector<util::AliasTable> routing_tables_;   // includes "exit" slot
  std::vector<std::vector<std::uint32_t>> routing_targets_;
  std::vector<double> exit_probability_;
  util::FenwickSampler active_;  // n service events + n arrival events
  std::vector<std::uint64_t> credits_;
  std::vector<std::uint64_t> departures_;
  double time_ = 0.0;
  util::Rng rng_;
};

}  // namespace creditflow::queueing
