#include "queueing/transfer_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/assert.hpp"

namespace creditflow::queueing {

TransferMatrix::TransferMatrix(std::size_t n) : rows_(n) {}

void TransferMatrix::set_row(std::size_t i, std::vector<RoutingEntry> entries) {
  CF_EXPECTS(i < rows_.size());
  std::map<std::uint32_t, double> merged;
  for (const auto& e : entries) {
    CF_EXPECTS(e.to < rows_.size());
    CF_EXPECTS_MSG(e.probability >= 0.0, "negative routing probability");
    merged[e.to] += e.probability;
  }
  std::vector<RoutingEntry> row;
  row.reserve(merged.size());
  for (const auto& [to, p] : merged) {
    if (p > 0.0) row.push_back({to, p});
  }
  rows_[i] = std::move(row);
}

std::span<const RoutingEntry> TransferMatrix::row(std::size_t i) const {
  CF_EXPECTS(i < rows_.size());
  return rows_[i];
}

double TransferMatrix::row_sum(std::size_t i) const {
  CF_EXPECTS(i < rows_.size());
  double s = 0.0;
  for (const auto& e : rows_[i]) s += e.probability;
  return s;
}

double TransferMatrix::at(std::size_t i, std::size_t j) const {
  CF_EXPECTS(i < rows_.size() && j < rows_.size());
  for (const auto& e : rows_[i]) {
    if (e.to == j) return e.probability;
  }
  return 0.0;
}

bool TransferMatrix::is_stochastic(double tol) const {
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (std::abs(row_sum(i) - 1.0) > tol) return false;
  }
  return !rows_.empty();
}

bool TransferMatrix::is_substochastic(double tol) const {
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (row_sum(i) > 1.0 + tol) return false;
  }
  return !rows_.empty();
}

bool TransferMatrix::is_irreducible() const {
  // Kosaraju-style double DFS (iterative) over positive entries.
  const std::size_t n = rows_.size();
  if (n == 0) return false;

  std::vector<std::vector<std::uint32_t>> fwd(n), rev(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& e : rows_[i]) {
      if (e.probability > 0.0) {
        fwd[i].push_back(e.to);
        rev[e.to].push_back(static_cast<std::uint32_t>(i));
      }
    }
  }
  auto reaches_all = [n](const std::vector<std::vector<std::uint32_t>>& adj) {
    std::vector<char> seen(n, 0);
    std::vector<std::uint32_t> stack{0};
    seen[0] = 1;
    std::size_t count = 1;
    while (!stack.empty()) {
      const auto u = stack.back();
      stack.pop_back();
      for (auto v : adj[u]) {
        if (!seen[v]) {
          seen[v] = 1;
          ++count;
          stack.push_back(v);
        }
      }
    }
    return count == n;
  };
  return reaches_all(fwd) && reaches_all(rev);
}

std::vector<double> TransferMatrix::left_multiply(
    std::span<const double> x) const {
  CF_EXPECTS(x.size() == rows_.size());
  std::vector<double> y(rows_.size(), 0.0);
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (const auto& e : rows_[i]) y[e.to] += xi * e.probability;
  }
  return y;
}

util::Matrix TransferMatrix::to_dense() const {
  util::Matrix m(rows_.size(), rows_.size(), 0.0);
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    for (const auto& e : rows_[i]) m.at(i, e.to) = e.probability;
  }
  return m;
}

TransferMatrix TransferMatrix::uniform_from_graph(const graph::Graph& g,
                                                  double self_prob) {
  CF_EXPECTS(self_prob >= 0.0 && self_prob < 1.0);
  TransferMatrix p(g.num_nodes());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    std::vector<RoutingEntry> row;
    const auto nbrs = g.neighbors(u);
    if (nbrs.empty()) {
      row.push_back({u, 1.0});
    } else {
      if (self_prob > 0.0) row.push_back({u, self_prob});
      const double share =
          (1.0 - self_prob) / static_cast<double>(nbrs.size());
      for (auto v : nbrs) row.push_back({v, share});
    }
    p.set_row(u, std::move(row));
  }
  return p;
}

TransferMatrix TransferMatrix::weighted_from_graph(
    const graph::Graph& g, std::span<const double> weight, double self_prob) {
  CF_EXPECTS(weight.size() == g.num_nodes());
  CF_EXPECTS(self_prob >= 0.0 && self_prob < 1.0);
  TransferMatrix p(g.num_nodes());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    std::vector<RoutingEntry> row;
    const auto nbrs = g.neighbors(u);
    double total = 0.0;
    for (auto v : nbrs) {
      CF_EXPECTS_MSG(weight[v] >= 0.0, "negative routing weight");
      total += weight[v];
    }
    if (nbrs.empty() || total <= 0.0) {
      row.push_back({u, 1.0});
    } else {
      if (self_prob > 0.0) row.push_back({u, self_prob});
      for (auto v : nbrs) {
        const double share = (1.0 - self_prob) * weight[v] / total;
        if (share > 0.0) row.push_back({v, share});
      }
    }
    p.set_row(u, std::move(row));
  }
  return p;
}

TransferMatrix TransferMatrix::random_from_graph(const graph::Graph& g,
                                                 util::Rng& rng,
                                                 double self_prob) {
  CF_EXPECTS(self_prob >= 0.0 && self_prob < 1.0);
  TransferMatrix p(g.num_nodes());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    std::vector<RoutingEntry> row;
    const auto nbrs = g.neighbors(u);
    if (nbrs.empty()) {
      row.push_back({u, 1.0});
    } else {
      std::vector<double> w(nbrs.size());
      double total = 0.0;
      for (auto& wi : w) {
        wi = rng.exponential(1.0);
        total += wi;
      }
      if (self_prob > 0.0) row.push_back({u, self_prob});
      for (std::size_t j = 0; j < nbrs.size(); ++j) {
        row.push_back({nbrs[j], (1.0 - self_prob) * w[j] / total});
      }
    }
    p.set_row(u, std::move(row));
  }
  return p;
}

TransferMatrix TransferMatrix::from_dense(const util::Matrix& m,
                                          double drop_below) {
  CF_EXPECTS(m.rows() == m.cols());
  CF_EXPECTS(drop_below >= 0.0);
  TransferMatrix p(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    std::vector<RoutingEntry> row;
    for (std::size_t j = 0; j < m.cols(); ++j) {
      const double v = m.at(i, j);
      CF_EXPECTS_MSG(v >= 0.0, "negative matrix entry");
      if (v > drop_below) {
        row.push_back({static_cast<std::uint32_t>(j), v});
      }
    }
    p.set_row(i, std::move(row));
  }
  return p;
}

}  // namespace creditflow::queueing
