// CreditFlow: the credit transfer probability matrix P of the paper
// (Sec. III-B) — entry p_ij is the fraction of peer i's credit spending that
// flows to neighbor j. Rows are probability distributions (closed network:
// row sums are exactly 1; open network: row sums may be < 1, the deficit
// being the probability that a job leaves the system).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace creditflow::queueing {

/// One sparse row entry: probability of routing to `to`.
struct RoutingEntry {
  std::uint32_t to = 0;
  double probability = 0.0;
};

/// Row-stochastic routing matrix stored sparsely, with dense conversion for
/// the direct linear-algebra paths.
class TransferMatrix {
 public:
  TransferMatrix() = default;
  /// Create an n-by-n matrix with all-zero rows (invalid until filled).
  explicit TransferMatrix(std::size_t n);

  [[nodiscard]] std::size_t size() const { return rows_.size(); }

  /// Replace row i; entries must reference valid columns. Probabilities must
  /// be non-negative; duplicates are merged.
  void set_row(std::size_t i, std::vector<RoutingEntry> entries);
  [[nodiscard]] std::span<const RoutingEntry> row(std::size_t i) const;
  /// Sum of row i's probabilities.
  [[nodiscard]] double row_sum(std::size_t i) const;
  /// p_ij by linear scan of the sparse row.
  [[nodiscard]] double at(std::size_t i, std::size_t j) const;

  /// True when every row sums to 1 within `tol` (closed network).
  [[nodiscard]] bool is_stochastic(double tol = 1e-9) const;
  /// True when every row sums to <= 1 + tol (open network allowed).
  [[nodiscard]] bool is_substochastic(double tol = 1e-9) const;
  /// True when the directed graph of positive entries is strongly connected
  /// (single SCC), i.e., the chain is irreducible.
  [[nodiscard]] bool is_irreducible() const;

  /// y = x * P.
  [[nodiscard]] std::vector<double> left_multiply(
      std::span<const double> x) const;

  [[nodiscard]] util::Matrix to_dense() const;

  // ---- Builders ----------------------------------------------------------

  /// Uniform routing over graph neighbors with optional self-retention:
  /// p_ii = self_prob, p_ij = (1 - self_prob)/deg(i) for each neighbor.
  /// Isolated nodes get p_ii = 1.
  [[nodiscard]] static TransferMatrix uniform_from_graph(const graph::Graph& g,
                                                         double self_prob = 0.0);

  /// Routing proportional to per-node weights over neighbors (e.g., chunk
  /// availability or attractiveness): p_ij ∝ weight[j] for j ∈ N(i).
  [[nodiscard]] static TransferMatrix weighted_from_graph(
      const graph::Graph& g, std::span<const double> weight,
      double self_prob = 0.0);

  /// Random row-stochastic matrix over graph edges (Dirichlet-like via
  /// exponential weights); used for randomized property tests.
  [[nodiscard]] static TransferMatrix random_from_graph(const graph::Graph& g,
                                                        util::Rng& rng,
                                                        double self_prob = 0.0);

  /// Dense constructor from a row-major matrix (validates shape).
  [[nodiscard]] static TransferMatrix from_dense(const util::Matrix& m,
                                                 double drop_below = 0.0);

 private:
  std::vector<std::vector<RoutingEntry>> rows_;
};

}  // namespace creditflow::queueing
