// CreditFlow: open Jackson network — the model of a P2P market with peer
// churn (Sec. VI-E of the paper): arriving peers inject credits, departing
// peers remove them, so jobs enter and leave the queueing network.
#pragma once

#include <span>
#include <vector>

#include "queueing/transfer_matrix.hpp"

namespace creditflow::queueing {

/// Solution of the open-network traffic equations λ = γ + λP.
struct OpenNetworkSolution {
  std::vector<double> lambda;  ///< total arrival rate per queue
  std::vector<double> rho;     ///< utilization λ_i/μ_i
  bool stable = false;         ///< all ρ_i < 1
};

/// Open single-server Jackson network.
class OpenNetwork {
 public:
  /// `routing` may be substochastic (row deficit = departure probability);
  /// `external_arrivals` γ_i >= 0 with at least one positive entry;
  /// `service_rates` μ_i > 0.
  OpenNetwork(TransferMatrix routing, std::vector<double> external_arrivals,
              std::vector<double> service_rates);

  [[nodiscard]] std::size_t num_queues() const { return gamma_.size(); }

  /// Solve λ = γ + λP (direct dense solve).
  [[nodiscard]] const OpenNetworkSolution& solution() const { return sol_; }

  /// Stationary marginal of queue i: geometric P(B_i=b) = (1-ρ)ρ^b.
  /// Requires stability of queue i.
  [[nodiscard]] double marginal_pmf(std::size_t i, std::uint64_t b) const;
  /// E[B_i] = ρ/(1-ρ); requires stability of queue i.
  [[nodiscard]] double expected_wealth(std::size_t i) const;
  /// P(B_i = 0) = 1 - ρ_i.
  [[nodiscard]] double empty_probability(std::size_t i) const;

 private:
  TransferMatrix p_;
  std::vector<double> gamma_;
  std::vector<double> mu_;
  OpenNetworkSolution sol_;
};

}  // namespace creditflow::queueing
