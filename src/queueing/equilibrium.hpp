// CreditFlow: stationary credit-flow solver — Lemma 1 of the paper.
//
// The equilibrium earning-rate vector λ satisfies λP = λ for the credit
// transfer matrix P (Eq. 1). By Perron-Frobenius a positive solution exists
// for any irreducible stochastic P; we compute it by damped power iteration
// (scales to sparse, large N) or a direct LU solve (small N, exact).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "queueing/transfer_matrix.hpp"

namespace creditflow::queueing {

/// Options for the iterative solver.
struct EquilibriumOptions {
  std::size_t max_iterations = 100000;
  double tolerance = 1e-12;   ///< L1 change per iteration to declare converged
  double damping = 0.5;       ///< λ ← (1-d)·λP + d·λ kills periodic cycling
};

/// Result of solving λP = λ.
struct EquilibriumResult {
  std::vector<double> lambda;   ///< stationary flow, normalized to sum 1
  std::size_t iterations = 0;   ///< 0 for the direct method
  double residual = 0.0;        ///< ||λP − λ||∞ at the returned solution
  bool converged = false;
};

/// Damped power iteration from the uniform vector.
[[nodiscard]] EquilibriumResult solve_equilibrium_power(
    const TransferMatrix& p, const EquilibriumOptions& opts = {});

/// Direct dense solve of the stationary equations (O(N^3)); exact up to
/// rounding. Requires irreducible P for a strictly positive result.
[[nodiscard]] EquilibriumResult solve_equilibrium_direct(
    const TransferMatrix& p);

/// Dispatch: direct for small networks, power iteration otherwise.
[[nodiscard]] EquilibriumResult solve_equilibrium(
    const TransferMatrix& p, const EquilibriumOptions& opts = {});

/// ||λP − λ||∞ — residual of a candidate solution.
[[nodiscard]] double equilibrium_residual(const TransferMatrix& p,
                                          std::span<const double> lambda);

/// Normalized utilization (Eq. 2): u_i = (λ_i/μ_i) / max_j(λ_j/μ_j).
/// Requires all μ_i > 0 and at least one λ_i > 0. Every u_i ∈ [0, 1] and at
/// least one equals 1.
[[nodiscard]] std::vector<double> normalized_utilization(
    std::span<const double> lambda, std::span<const double> mu);

/// The paper's long-run feasibility assumption μ_i ≥ λ_i for all i, checked
/// after scaling λ so that the most loaded queue is exactly critical. Returns
/// the scaling factor α such that α·λ_i ≤ μ_i with equality at the argmax.
[[nodiscard]] double critical_scaling(std::span<const double> lambda,
                                      std::span<const double> mu);

}  // namespace creditflow::queueing
