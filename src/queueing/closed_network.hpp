// CreditFlow: exact equilibrium analysis of the closed Jackson network —
// the product-form credit distribution of Eq. (3) in the paper.
//
// The joint law is Q{B_1=b_1,…,B_N=b_N} = (1/Z_M) ∏ u_i^{b_i} over the
// simplex Σb_i = M. We compute the normalization constant with Buzen's
// convolution algorithm in log-space (stable for M up to 1e5+), from which
// exact per-peer marginals, expected wealth, empty-queue probabilities and
// effective throughputs follow.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace creditflow::queueing {

/// Closed single-server Jackson network with M circulating credits and
/// relative utilizations u (any positive scale; the paper normalizes
/// max u_i = 1, which is also the numerically best scaling).
class ClosedNetwork {
 public:
  /// Build and run Buzen's convolution. Requires at least one u_i > 0,
  /// all u_i >= 0, and M >= 0.
  ClosedNetwork(std::vector<double> utilization, std::uint64_t total_credits);

  [[nodiscard]] std::size_t num_queues() const { return u_.size(); }
  [[nodiscard]] std::uint64_t total_credits() const { return m_; }
  [[nodiscard]] std::span<const double> utilization() const { return u_; }

  /// log G(m) for m = 0..M (normalization constants of sub-populations).
  [[nodiscard]] double log_normalization(std::uint64_t m) const;

  /// P(B_i >= b) = u_i^b G(M-b)/G(M)  (0 for b > M).
  [[nodiscard]] double tail_probability(std::size_t i, std::uint64_t b) const;
  /// P(B_i = b), exact marginal of peer i's credit holding.
  [[nodiscard]] double marginal_pmf(std::size_t i, std::uint64_t b) const;
  /// Full marginal PMF vector for peer i (length M+1; sums to 1).
  [[nodiscard]] std::vector<double> marginal(std::size_t i) const;
  /// Expected credits at peer i; Σ_i expected_wealth(i) = M.
  [[nodiscard]] double expected_wealth(std::size_t i) const;
  /// Probability that peer i is bankrupt (B_i = 0).
  [[nodiscard]] double empty_probability(std::size_t i) const;
  /// Fraction of peer i's nominal spending rate that is actually realized:
  /// 1 − P(B_i = 0). Multiplying by μ_i gives the paper's Eq. (9) left side.
  [[nodiscard]] double busy_probability(std::size_t i) const;

  /// Exact sample from the joint product-form law, by sequential conditional
  /// sampling on suffix normalization constants. Memory is O(N·M); guarded by
  /// a precondition (N+1)·(M+1) <= 64e6 to avoid accidental huge allocations.
  [[nodiscard]] std::vector<std::uint64_t> sample_joint(util::Rng& rng) const;

 private:
  void ensure_suffix_table() const;

  std::vector<double> u_;
  std::vector<double> log_u_;
  std::uint64_t m_ = 0;
  std::vector<double> log_g_;  // log G(0..M) over all queues
  // Lazy suffix table for joint sampling: log g_k(m) over queues k..N-1.
  mutable std::vector<std::vector<double>> log_g_suffix_;
};

}  // namespace creditflow::queueing
