// CreditFlow: the paper's asymptotic condensation criterion (Sec. V-A).
//
// In a network growing without bound at constant average wealth c = M/N, the
// paper defines the threshold constant (Eq. 4)
//
//     T = lim_{z→1⁻} ∫₀¹ w/(1 − z·w) f(w) dw,
//
// where f is the limiting density of the normalized utilizations u_i.
// Theorem 2: c ≤ T  ⇒ expected per-peer wealth stays bounded (no
// condensation). Theorem 3: c > T ⇒ wealth condenses onto at least one peer.
// Corollary: symmetric utilization (u ≡ 1, f degenerate at 1) gives T = +∞,
// so condensation never occurs.
//
// Mechanically, T is finite iff f decays toward w = 1 fast enough that
// ∫ w f(w)/(1−w) dw converges — i.e., iff the maximally-utilized peers are a
// vanishing, thin tail. Mass accumulating at w = 1 (including the symmetric
// case) pushes T to +∞.
#pragma once

#include <functional>
#include <span>

#include "util/math.hpp"

namespace creditflow::queueing {

/// Outcome of evaluating the threshold and the Theorem 2/3 predicate.
struct CondensationAnalysis {
  double threshold = 0.0;        ///< T; +inf when the limit diverges
  bool threshold_finite = false;
  double average_wealth = 0.0;   ///< c supplied by the caller
  bool condensation_predicted = false;  ///< Theorem 3: c > T
};

/// Evaluate T for an analytic utilization density f over [0,1].
/// f need not be normalized; it is rescaled to integrate to 1 first.
[[nodiscard]] CondensationAnalysis analyze_condensation_density(
    const std::function<double(double)>& density, double average_wealth);

/// Options for the empirical (finite-sample) analysis.
struct EmpiricalOptions {
  std::size_t bins = 64;  ///< histogram resolution for the density estimate
  /// The finite-N utilization vector always contains at least one u_i = 1
  /// (the normalization anchor). For the asymptotic criterion that atom is a
  /// vanishing fraction; when true (default) the top `top_exclude_fraction`
  /// of peers is excluded from the density estimate, matching the N→∞ view.
  bool exclude_top_atom = true;
  double top_exclude_fraction = 0.02;
};

/// Evaluate T from an empirical utilization vector (each u_i in [0,1]).
[[nodiscard]] CondensationAnalysis analyze_condensation_empirical(
    std::span<const double> utilization, double average_wealth,
    const EmpiricalOptions& opts = {});

/// The threshold integral at a fixed z (used by tests and benches to show
/// the divergence behaviour explicitly).
[[nodiscard]] double threshold_integrand_at(
    const std::function<double(double)>& density, double z);

}  // namespace creditflow::queueing
