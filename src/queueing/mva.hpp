// CreditFlow: exact Mean Value Analysis for closed single-server Jackson
// networks. MVA computes expected queue lengths without normalization
// constants, so it cross-validates the Buzen path (tests assert both agree).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace creditflow::queueing {

/// Result of exact MVA at population M.
struct MvaResult {
  std::vector<double> expected_wealth;  ///< E[B_i] per queue
  std::vector<double> mean_wait;        ///< W_i at the final population
  double throughput_scale = 0.0;        ///< X with respect to demand units
};

/// Exact MVA over `service_demand` d_i = v_i / μ_i (the same relative
/// utilization scale used by ClosedNetwork). Requires at least one positive
/// demand. Runs in O(N · M).
[[nodiscard]] MvaResult exact_mva(std::span<const double> service_demand,
                                  std::uint64_t total_credits);

}  // namespace creditflow::queueing
