#include "queueing/closed_network.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace creditflow::queueing {

using util::kNegInf;
using util::log_add_exp;

ClosedNetwork::ClosedNetwork(std::vector<double> utilization,
                             std::uint64_t total_credits)
    : u_(std::move(utilization)), m_(total_credits) {
  CF_EXPECTS(!u_.empty());
  double max_u = 0.0;
  for (double u : u_) {
    CF_EXPECTS_MSG(u >= 0.0, "utilization must be non-negative");
    max_u = std::max(max_u, u);
  }
  CF_EXPECTS_MSG(max_u > 0.0, "at least one utilization must be positive");

  log_u_.resize(u_.size());
  for (std::size_t i = 0; i < u_.size(); ++i) {
    log_u_[i] = u_[i] > 0.0 ? std::log(u_[i]) : kNegInf;
  }

  // Buzen's convolution in log-space:
  //   g_0(0) = 1, g_0(m>0) = 0
  //   g_n(m) = g_{n-1}(m) + u_n * g_n(m-1)
  log_g_.assign(m_ + 1, kNegInf);
  log_g_[0] = 0.0;
  for (std::size_t n = 0; n < u_.size(); ++n) {
    if (u_[n] == 0.0) continue;  // zero-utilization queue adds nothing
    const double lu = log_u_[n];
    for (std::uint64_t m = 1; m <= m_; ++m) {
      log_g_[m] = log_add_exp(log_g_[m], lu + log_g_[m - 1]);
    }
  }
}

double ClosedNetwork::log_normalization(std::uint64_t m) const {
  CF_EXPECTS(m <= m_);
  return log_g_[m];
}

double ClosedNetwork::tail_probability(std::size_t i, std::uint64_t b) const {
  CF_EXPECTS(i < u_.size());
  if (b == 0) return 1.0;
  if (b > m_) return 0.0;
  if (u_[i] == 0.0) return 0.0;
  const double log_tail = static_cast<double>(b) * log_u_[i] +
                          log_g_[m_ - b] - log_g_[m_];
  return std::exp(log_tail);
}

double ClosedNetwork::marginal_pmf(std::size_t i, std::uint64_t b) const {
  CF_EXPECTS(i < u_.size());
  if (b > m_) return 0.0;
  const double p = tail_probability(i, b) - tail_probability(i, b + 1);
  return std::max(p, 0.0);
}

std::vector<double> ClosedNetwork::marginal(std::size_t i) const {
  CF_EXPECTS(i < u_.size());
  std::vector<double> pmf(m_ + 1, 0.0);
  double prev_tail = 1.0;
  for (std::uint64_t b = 0; b <= m_; ++b) {
    const double next_tail = tail_probability(i, b + 1);
    pmf[b] = std::max(prev_tail - next_tail, 0.0);
    prev_tail = next_tail;
  }
  return pmf;
}

double ClosedNetwork::expected_wealth(std::size_t i) const {
  CF_EXPECTS(i < u_.size());
  if (u_[i] == 0.0) return 0.0;
  // E[B_i] = Σ_{b=1..M} P(B_i >= b), accumulated in the linear domain (each
  // term is a probability in [0,1], so no overflow concern).
  double total = 0.0;
  const double lu = log_u_[i];
  for (std::uint64_t b = 1; b <= m_; ++b) {
    const double log_tail =
        static_cast<double>(b) * lu + log_g_[m_ - b] - log_g_[m_];
    total += std::exp(log_tail);
  }
  return total;
}

double ClosedNetwork::empty_probability(std::size_t i) const {
  return 1.0 - tail_probability(i, 1);
}

double ClosedNetwork::busy_probability(std::size_t i) const {
  return tail_probability(i, 1);
}

void ClosedNetwork::ensure_suffix_table() const {
  if (!log_g_suffix_.empty()) return;
  const std::size_t n = u_.size();
  CF_EXPECTS_MSG((n + 1) * (m_ + 1) <= 64'000'000ULL,
                 "joint sampling table would exceed the memory guard");
  // log_g_suffix_[k][m] = log of the normalization constant over queues
  // k..n-1 with population m; row n is the empty set (only m = 0 possible).
  log_g_suffix_.assign(n + 1, std::vector<double>(m_ + 1, kNegInf));
  log_g_suffix_[n][0] = 0.0;
  for (std::size_t k = n; k-- > 0;) {
    auto& row = log_g_suffix_[k];
    const auto& below = log_g_suffix_[k + 1];
    row = below;
    if (u_[k] == 0.0) continue;
    const double lu = log_u_[k];
    for (std::uint64_t m = 1; m <= m_; ++m) {
      row[m] = log_add_exp(row[m], lu + row[m - 1]);
    }
  }
}

std::vector<std::uint64_t> ClosedNetwork::sample_joint(util::Rng& rng) const {
  ensure_suffix_table();
  const std::size_t n = u_.size();
  std::vector<std::uint64_t> b(n, 0);
  std::uint64_t remaining = m_;
  for (std::size_t k = 0; k + 1 < n && remaining > 0; ++k) {
    // P(B_k = x | remaining) = u_k^x g_{k+1}(remaining-x) / g_k(remaining).
    const double log_norm = log_g_suffix_[k][remaining];
    const double target = rng.uniform();
    double cdf = 0.0;
    std::uint64_t chosen = remaining;
    for (std::uint64_t x = 0; x <= remaining; ++x) {
      double log_p = log_g_suffix_[k + 1][remaining - x] - log_norm;
      if (x > 0) {
        if (u_[k] == 0.0) {
          // No mass beyond x = 0; numeric rounding kept the CDF below the
          // target, so settle on the only feasible value.
          chosen = 0;
          break;
        }
        log_p += static_cast<double>(x) * log_u_[k];
      }
      cdf += std::exp(log_p);
      if (cdf >= target) {
        chosen = x;
        break;
      }
    }
    b[k] = chosen;
    remaining -= chosen;
  }
  if (n > 0) b[n - 1] += remaining;
  return b;
}

}  // namespace creditflow::queueing
