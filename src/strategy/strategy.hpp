// CreditFlow: the per-peer strategy layer — the paper's sustainability
// question made testable. Every peer carries a compact strategy tag
// (SoA byte array in PeerTable) assigned by a deterministic per-slot hash,
// so the attacker population is a pure function of configuration: zero RNG
// draws, stable under churn and slot reuse, and byte-identical to the
// honest-only market when every attacker fraction is zero.
//
// Strategies (the attack/defense matrix from Goyal et al. and Park & van
// der Schaar, see PAPERS.md):
//  * honest        — the paper's price-taking agent (default).
//  * free-rider    — consume-only: zero upload budget, never posts asks.
//  * whitewasher   — departs when its balance drops under a threshold and
//    rejoins immediately to re-mint the join endowment (the real
//    rejoin-mint loophole in the churn path, exercised deliberately).
//  * colluder      — credit-loop cliques: colluders wash credits around a
//    ring each round to inflate their apparent contribution counters.
//  * staked seeder — the defense: locks credit as a bond to advertise;
//    the stake is slashed on departure and revalidated periodically.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace creditflow::strategy {

enum class Strategy : std::uint8_t {
  kHonest = 0,
  kFreeRider = 1,
  kWhitewasher = 2,
  kColluder = 3,
  kStakedSeeder = 4,
};

inline constexpr std::size_t kNumStrategies = 5;

/// Stable lowercase name for metrics/series column labels.
[[nodiscard]] std::string_view name(Strategy s);

/// Strategy-population configuration. Fractions partition the peer-slot id
/// space (free-rider, whitewasher, colluder, staked, remainder honest);
/// they must sum to at most 1.
struct StrategyConfig {
  double free_rider_fraction = 0.0;
  double whitewash_fraction = 0.0;
  /// Whitewashers reset when balance < threshold AND the rejoin mint would
  /// exceed the balance they abandon (rational attackers don't reset into
  /// a loss under rejoin_mint = none/decayed).
  double whitewash_threshold = 10.0;
  double collude_fraction = 0.0;
  std::size_t collude_clique = 4;     ///< ring size of each credit loop
  std::uint64_t collude_amount = 1;   ///< credits passed per hop per round
  double staked_fraction = 0.0;
  std::uint64_t stake_amount = 0;     ///< bond locked to advertise
  double stake_slash = 0.5;           ///< fraction forfeited on departure
  std::size_t revalidate_rounds = 16; ///< stake top-up cadence

  /// Any non-honest population configured. Gates every strategy hook in
  /// the protocol: when false the round loop takes the exact pre-strategy
  /// path (no extra RNG draws, no extra branches inside hot loops).
  [[nodiscard]] bool enabled() const {
    return free_rider_fraction > 0.0 || whitewash_fraction > 0.0 ||
           collude_fraction > 0.0 || staked_fraction > 0.0;
  }
};

/// Deterministic strategy assignment for a peer slot: a SplitMix64-style
/// finalizer over the id (murmur3 constants — decorrelated from the
/// order-book's seller hash, which uses the splitmix constants) maps the
/// slot into [0,1), partitioned [free-rider | whitewasher | colluder |
/// staked | honest]. No RNG: the population is fixed across churn, slot
/// recycling, and run restarts.
[[nodiscard]] Strategy assign(std::uint32_t id, const StrategyConfig& cfg);

/// Per-strategy readout of a live market: population, credit held, and
/// summed buffer fill (availability numerator) per strategy, plus the
/// total bonded stake. Assembled on demand, allocation-free.
struct Breakdown {
  std::array<std::size_t, kNumStrategies> population{};
  std::array<double, kNumStrategies> credits{};
  std::array<double, kNumStrategies> buffer_fill{};  ///< sums, not means
  double staked_total = 0.0;

  [[nodiscard]] std::size_t attackers() const {
    return population[1] + population[2] + population[3];
  }
  [[nodiscard]] double attacker_credits() const {
    return credits[1] + credits[2] + credits[3];
  }
  [[nodiscard]] double total_credits() const {
    double t = 0.0;
    for (const double c : credits) t += c;
    return t;
  }
};

}  // namespace creditflow::strategy
