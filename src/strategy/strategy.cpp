#include "strategy/strategy.hpp"

namespace creditflow::strategy {

std::string_view name(Strategy s) {
  switch (s) {
    case Strategy::kHonest: return "honest";
    case Strategy::kFreeRider: return "freeride";
    case Strategy::kWhitewasher: return "whitewash";
    case Strategy::kColluder: return "collude";
    case Strategy::kStakedSeeder: return "staked";
  }
  return "unknown";
}

Strategy assign(std::uint32_t id, const StrategyConfig& cfg) {
  // Murmur3 fmix64 over the slot id. Same shape as the order-book's
  // is_book_seller hash but different multipliers, so the attacker set and
  // the seller set are statistically independent partitions of the slots.
  std::uint64_t h = (static_cast<std::uint64_t>(id) + 1) * 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ULL;
  h ^= h >> 33;
  const double u = static_cast<double>(h & 0xFFFFFF) / 16777216.0;
  double edge = cfg.free_rider_fraction;
  if (u < edge) return Strategy::kFreeRider;
  edge += cfg.whitewash_fraction;
  if (u < edge) return Strategy::kWhitewasher;
  edge += cfg.collude_fraction;
  if (u < edge) return Strategy::kColluder;
  edge += cfg.staked_fraction;
  if (u < edge) return Strategy::kStakedSeeder;
  return Strategy::kHonest;
}

}  // namespace creditflow::strategy
