// CreditFlow scenario engine — umbrella header.
//
// Declarative experiment specs (spec.hpp) over a uniform parameter
// namespace (params.hpp), named presets per paper figure (registry.hpp),
// parameter-grid expansion with multi-seed replication (sweep.hpp), the
// sweep execution API — content-addressed run plans (plan.hpp), executors
// (executor.hpp), the on-disk run cache (store.hpp), and the SweepRunner
// facade over all three (runner.hpp) — mean ± CI aggregation with
// CSV/JSON emission (result.hpp), and the distributed work-stealing
// layer: the socket coordinator (coordinator.hpp) and its workers
// (worker.hpp).
#pragma once

#include "scenario/coordinator.hpp"  // IWYU pragma: export
#include "scenario/executor.hpp"     // IWYU pragma: export
#include "scenario/params.hpp"       // IWYU pragma: export
#include "scenario/plan.hpp"         // IWYU pragma: export
#include "scenario/registry.hpp"     // IWYU pragma: export
#include "scenario/result.hpp"       // IWYU pragma: export
#include "scenario/runner.hpp"       // IWYU pragma: export
#include "scenario/spec.hpp"         // IWYU pragma: export
#include "scenario/store.hpp"        // IWYU pragma: export
#include "scenario/sweep.hpp"        // IWYU pragma: export
#include "scenario/worker.hpp"       // IWYU pragma: export
