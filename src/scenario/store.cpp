#include "scenario/store.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/assert.hpp"
#include "util/logging.hpp"
#include "util/math.hpp"

namespace creditflow::scenario {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Minimal cursor parser for the record grammar this file emits: objects
/// of string keys mapping to numbers, strings, or nested objects. Not a
/// general JSON parser — exactly the subset serialize_run_record writes.
class RecordParser {
 public:
  explicit RecordParser(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    CF_EXPECTS_MSG(pos_ < text_.size() && text_[pos_] == c,
                   "run record: expected '" + std::string(1, c) +
                       "' at offset " + std::to_string(pos_));
    ++pos_;
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      CF_EXPECTS_MSG(pos_ < text_.size(), "run record: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      CF_EXPECTS_MSG(pos_ < text_.size(), "run record: dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          CF_EXPECTS_MSG(pos_ + 4 <= text_.size(),
                         "run record: short \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          CF_EXPECTS_MSG(hex.find_first_not_of("0123456789abcdefABCDEF") ==
                             std::string::npos,
                         "run record: non-hex \\u escape");
          pos_ += 4;
          out += static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
          break;
        }
        default:
          CF_EXPECTS_MSG(false, "run record: unknown escape");
      }
    }
  }

  [[nodiscard]] double parse_number() {
    skip_ws();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    CF_EXPECTS_MSG(end != begin, "run record: expected a number at offset " +
                                     std::to_string(pos_));
    pos_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  [[nodiscard]] std::uint64_t parse_u64() {
    skip_ws();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(begin, &end, 10);
    CF_EXPECTS_MSG(end != begin, "run record: expected an integer at offset " +
                                     std::to_string(pos_));
    pos_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  /// {"k": number, ...} in emission order.
  [[nodiscard]] std::vector<std::pair<std::string, double>>
  parse_number_object() {
    std::vector<std::pair<std::string, double>> out;
    expect('{');
    if (consume('}')) return out;
    do {
      std::string key = parse_string();
      expect(':');
      out.emplace_back(std::move(key), parse_number());
    } while (consume(','));
    expect('}');
    return out;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

void append_number_object(
    std::ostringstream& out,
    const std::vector<std::pair<std::string, double>>& entries) {
  out << '{';
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out << ',';
    out << '"' << json_escape(entries[i].first)
        << "\":" << util::format_double(entries[i].second);
  }
  out << '}';
}

}  // namespace

std::string serialize_run_record(const RunKey& key, const RunResult& r) {
  std::ostringstream out;
  out << "{\"key\":\"" << key.hex() << "\",\"run_index\":" << r.run_index
      << ",\"point_index\":" << r.point_index
      << ",\"seed_index\":" << r.seed_index << ",\"seed\":" << r.seed
      << ",\"params\":";
  append_number_object(out, r.params);
  out << ",\"metrics\":";
  append_number_object(out, r.metrics);
  out << ",\"telemetry\":{\"wall_seconds\":"
      << util::format_double(r.telemetry.wall_seconds)
      << ",\"purchase_phase_seconds\":"
      << util::format_double(r.telemetry.purchase_phase_seconds)
      << ",\"seed_phase_seconds\":"
      << util::format_double(r.telemetry.seed_phase_seconds)
      << ",\"tax_phase_seconds\":"
      << util::format_double(r.telemetry.tax_phase_seconds)
      << ",\"rounds\":" << r.telemetry.rounds
      << ",\"peak_rss_bytes\":" << r.telemetry.peak_rss_bytes
      << ",\"overlay_edges_dropped\":" << r.telemetry.overlay_edges_dropped
      << ",\"churn_arrivals_dropped\":" << r.telemetry.churn_arrivals_dropped
      << "},\"error\":\"" << json_escape(r.error) << "\"}";
  return out.str();
}

RunRecord parse_run_record(const std::string& line) {
  RecordParser p(line);
  RunRecord record;
  p.expect('{');
  bool first = true;
  while (true) {
    if (first ? p.consume('}') : !p.consume(',')) break;
    first = false;
    const std::string field = p.parse_string();
    p.expect(':');
    if (field == "key") {
      const auto key = RunKey::from_hex(p.parse_string());
      CF_EXPECTS_MSG(key.has_value(), "run record: malformed key");
      record.key = *key;
    } else if (field == "run_index") {
      record.result.run_index = static_cast<std::size_t>(p.parse_u64());
    } else if (field == "point_index") {
      record.result.point_index = static_cast<std::size_t>(p.parse_u64());
    } else if (field == "seed_index") {
      record.result.seed_index = static_cast<std::size_t>(p.parse_u64());
    } else if (field == "seed") {
      record.result.seed = p.parse_u64();
    } else if (field == "params") {
      record.result.params = p.parse_number_object();
    } else if (field == "metrics") {
      record.result.metrics = p.parse_number_object();
    } else if (field == "telemetry") {
      p.expect('{');
      bool t_first = true;
      while (true) {
        if (t_first ? p.consume('}') : !p.consume(',')) break;
        t_first = false;
        const std::string t_field = p.parse_string();
        p.expect(':');
        if (t_field == "wall_seconds") {
          record.result.telemetry.wall_seconds = p.parse_number();
        } else if (t_field == "purchase_phase_seconds") {
          record.result.telemetry.purchase_phase_seconds = p.parse_number();
        } else if (t_field == "seed_phase_seconds") {
          // The per-phase breakdown fields are absent from records written
          // before it existed; such runs read back with the zero default.
          record.result.telemetry.seed_phase_seconds = p.parse_number();
        } else if (t_field == "tax_phase_seconds") {
          record.result.telemetry.tax_phase_seconds = p.parse_number();
        } else if (t_field == "rounds") {
          record.result.telemetry.rounds = p.parse_u64();
        } else if (t_field == "peak_rss_bytes") {
          // Absent from records written before peak-RSS telemetry existed;
          // such runs read back with the field's zero default.
          record.result.telemetry.peak_rss_bytes = p.parse_u64();
        } else if (t_field == "overlay_edges_dropped") {
          // Pool-exhaustion counters (absent pre-PR-8, read back as 0).
          record.result.telemetry.overlay_edges_dropped = p.parse_u64();
        } else if (t_field == "churn_arrivals_dropped") {
          record.result.telemetry.churn_arrivals_dropped = p.parse_u64();
        } else {
          CF_EXPECTS_MSG(false, "run record: unknown telemetry field " +
                                    t_field);
        }
      }
      if (!t_first) p.expect('}');
    } else if (field == "error") {
      record.result.error = p.parse_string();
    } else {
      CF_EXPECTS_MSG(false, "run record: unknown field " + field);
    }
  }
  if (!first) p.expect('}');
  return record;
}

std::vector<RunRecord> read_run_records(const std::string& path) {
  std::ifstream in(path);
  CF_EXPECTS_MSG(in.good(), "cannot read run records from " + path);
  std::vector<RunRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    records.push_back(parse_run_record(line));
  }
  return records;
}

RunStore::RunStore(std::string dir) : RunStore(std::move(dir), Options{}) {}

RunStore::RunStore(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options) {
  CF_EXPECTS_MSG(!dir_.empty(), "run store directory must be non-empty");
  std::filesystem::create_directories(dir_);
  path_ = (std::filesystem::path(dir_) / "runs.jsonl").string();
  if (!std::filesystem::exists(path_)) return;

  // Lenient load, unlike the strict read_run_records used by --merge: a
  // cache can carry a truncated or corrupted trailing line (a writer
  // killed mid-append, a torn concurrent write), and that must cost one
  // warning and one recomputed run — never the whole store, and never a
  // crash. The key map dedups, so a torn duplicate can't double-count.
  std::ifstream in(path_);
  CF_EXPECTS_MSG(in.good(), "cannot read run store " + path_);
  std::string line;
  std::size_t line_number = 0;
  std::size_t skipped = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    try {
      RunRecord record = parse_run_record(line);
      // First write wins: concurrent executors may append the same key;
      // every copy of a key carries identical bytes, so either choice
      // agrees.
      entries_.emplace(record.key, std::move(record.result));
    } catch (const std::exception& e) {
      ++skipped;
      CF_LOG_WARN("run store " << path_ << ": skipping malformed line "
                               << line_number << " (" << e.what() << ")");
    }
  }
  if (skipped > 0) {
    CF_LOG_WARN("run store " << path_ << ": " << skipped
                             << " malformed line(s) ignored; those runs "
                                "will be recomputed");
  }
}

const RunResult* RunStore::find(const RunKey& key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void RunStore::put(const RunKey& key, const RunResult& result) {
  if (!result.error.empty()) return;
  if (entries_.find(key) != entries_.end()) return;

  // One single-write record per append (O_APPEND semantics), so concurrent
  // executors appending to a shared store interleave at record boundaries,
  // not mid-line; AppendFile repairs a torn tail left by a killed writer
  // before the first fresh record, and fsyncs per record when the store was
  // opened durable.
  if (!append_.is_open()) append_.open(path_, options_.fsync);
  append_.append_record(serialize_run_record(key, result));

  RunResult stored = result;
  stored.report = core::MarketReport{};  // the store never holds reports
  entries_.emplace(key, std::move(stored));
}

}  // namespace creditflow::scenario
