// CreditFlow scenario engine: the fault-tolerant work-stealing sweep
// coordinator.
//
// A Coordinator owns a SweepPlan and hands out its run indices dynamically
// to any number of remote workers over a minimal line-based TCP protocol,
// replacing static `--shard I/N` partitioning: a slow or dead worker's
// outstanding leases flow back into the queue (heartbeat + lease timeout),
// so fast machines steal the stragglers' work and the sweep finishes at
// the speed of the aggregate fleet, not its slowest member.
//
// Determinism contract — identical to shard-and-merge: a run is a pure
// function of the plan entry, results are merged by run_index, and
// completed runs travel as the PR-3 run-record interchange (shortest
// round-trip doubles), so the coordinator's aggregate CSV/JSON and per-run
// records are byte-identical to a single-process ThreadPoolExecutor run of
// the same spec — regardless of worker count, scheduling, disconnects,
// lease reassignment, duplicate deliveries, or coordinator restarts. The
// first completion of a RunKey wins; every later delivery of that key is
// acknowledged and discarded.
//
// Fault tolerance (protocol v2):
//
//   * Crash-safe journal — with Options::journal_path set, every grant,
//     completion, and requeue is written ahead to an append-only JSONL
//     journal (journal.hpp) next to the RunStore. A coordinator killed
//     mid-sweep and restarted with Options::resume replays journal +
//     store, recalls every completed run, re-creates orphaned leases
//     under their original session tokens, and executes only the missing
//     runs — output byte-identical to an uninterrupted sweep.
//   * RESUME handshake — each session is issued a token in PLAN; a worker
//     whose TCP connection drops reconnects and sends RESUME <token> to
//     reclaim its outstanding leases (and deliver results computed while
//     disconnected) instead of forfeiting them. A disconnected session's
//     leases are therefore held for Options::resume_grace_seconds before
//     being requeued.
//   * Batched adaptive leases — NEXT grants up to Options::lease_batch_max
//     run indices at once, sized per worker from the throughput the
//     serving loop already tracks for /status: fast workers amortize
//     round-trips over bigger batches, stragglers shrink toward one run
//     so their failure forfeits little.
//
// Wire protocol v2 (newline-delimited ASCII; payloads length-prefixed):
//
//   worker → HELLO creditflow-sweep-2
//   coord  → PLAN <lease_timeout_ms> <spec_bytes> <sweep_bytes>
//                 <series_every> <session_token>
//            followed by exactly spec_bytes + sweep_bytes of raw text
//            (ScenarioSpec::serialize ‖ SweepSpec::serialize); the worker
//            rebuilds the identical SweepPlan from it. series_every > 0
//            asks workers to collect per-run series at that cadence.
//   worker → RESUME <session_token>   reclaim a previous session's leases
//   coord  → RESUMED <n> [<idx>...]   the reclaimed run indices (0 → the
//            token is unknown/expired; the worker simply starts fresh)
//   worker → NEXT                     request leases
//   coord  → RUN <idx> [<idx>...]     lease batch granted (any traffic
//          |                          from the session refreshes it)
//          | WAIT                     nothing grantable now — back off
//          | DONE                     sweep complete — disconnect
//   worker → PING                     heartbeat (keeps leases alive)
//   coord  → PONG
//   worker → RESULT <nbytes> <series_bytes>
//            followed by nbytes of run-record JSONL, then series_bytes of
//            per-run series CSV (0 when none was collected)
//   coord  → OK                       first completion — recorded
//          | DUP                      already have it — discarded
//   coord  → ERR <message>            protocol violation; connection closed
//
// The coordinator validates every delivered record's RunKey against its
// own plan.key(run_index), so a worker built from a different binary or
// handed a different spec cannot corrupt the result set — its delivery is
// rejected and the connection dropped.
//
// The shared content-addressed RunStore (store.hpp) plugs in underneath:
// keys already stored never get leased (they are recalled as cache hits,
// exactly like SweepRunner), and every fresh record is appended as it
// streams in, so a killed *coordinator* restarted on the same cache
// directory re-executes only what the store has not yet seen — and with
// the journal, resumes exact lease/session state too.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/executor.hpp"
#include "scenario/plan.hpp"
#include "scenario/spec.hpp"
#include "scenario/sweep.hpp"

namespace creditflow::scenario {

/// The protocol version token exchanged in HELLO; bumped whenever the wire
/// format changes incompatibly. v2: RESUME, batched RUN, series payloads.
inline constexpr const char* kSweepProtocolVersion = "creditflow-sweep-2";

/// Thrown out of Coordinator::run() when Options::abort_after_executed
/// fires — the deterministic stand-in for a SIGKILL in crash-recovery
/// tests (the coordinator stops serving with leases outstanding and
/// results unmerged, exactly like a killed process).
class CoordinatorAborted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serves a SweepPlan to socket workers and merges their results.
class Coordinator {
 public:
  struct Options {
    /// Bind address. The loopback default keeps a laptop sweep private;
    /// bind "0.0.0.0" to accept workers from other machines.
    std::string host = "127.0.0.1";
    /// Bind port; 0 picks a free one (read it back via port()).
    std::uint16_t port = 0;

    /// A lease not refreshed by any traffic from its worker within this
    /// window is revoked and re-queued for the next NEXT request. Workers
    /// heartbeat at a fraction of this (announced in PLAN), so only a
    /// dead, wedged, or partitioned worker ever times out.
    double lease_timeout_seconds = 30.0;

    /// After the last run completes, keep answering stragglers (NEXT →
    /// DONE, RESULT → DUP) for at most this long before closing up.
    double drain_seconds = 1.0;

    /// How long a disconnected session's leases wait for a RESUME before
    /// being requeued (capped by the remaining lease timeout). Long
    /// enough for a reconnect with backoff, short enough that a genuinely
    /// dead worker delays the fleet by at most this much.
    double resume_grace_seconds = 2.0;

    /// Ceiling on run indices granted per NEXT. The actual batch is sized
    /// per worker from its measured throughput (fresh and slow workers
    /// get 1); 1 disables batching entirely.
    std::size_t lease_batch_max = 4;

    /// Shared content-addressed run cache; empty disables it. Stored keys
    /// are never leased; fresh records are appended as they arrive.
    std::string cache_dir;

    /// Write-ahead journal path; empty disables journalling. Requires
    /// cache_dir (results must be as durable as the scheduling state).
    /// With an existing non-empty journal, construction throws unless
    /// `resume` is set.
    std::string journal_path;
    /// Resume an interrupted sweep from journal_path: recall completed
    /// runs, re-create orphaned leases, execute only what is missing.
    bool resume = false;
    /// fsync store and journal appends (power-cut durability).
    bool fsync = false;

    /// Per-run series collection cadence announced to workers; 0 off.
    /// When > 0 and series_out_prefix is set, delivered series blobs are
    /// written to "<series_out_prefix>.run<idx>.csv" — byte-identical to
    /// the files a local ThreadPoolExecutor sweep would write.
    std::size_t series_every = 0;
    std::string series_out_prefix;

    /// Called for each completed run — cache hits first (telemetry
    /// .from_cache set), then fresh completions in arrival order. Runs on
    /// the coordinator's serving thread; progress reporting only.
    std::function<void(const RunResult&)> on_result;

    /// Live status endpoint: when >= 0, bind a second listener on the same
    /// host (0 picks a free port — read it back via status_port()) that
    /// answers `GET /status` with a JSON progress snapshot from the serving
    /// loop itself — no extra thread, no locks. -1 disables. With the
    /// endpoint enabled the coordinator always drains the full
    /// drain_seconds window (no early exit when the last worker leaves), so
    /// a final scrape can still observe completed == plan_runs.
    int status_port = -1;

    /// Crash injection for recovery tests: throw CoordinatorAborted out of
    /// run() once this many fresh completions have been recorded (state on
    /// disk, connections dropped on destruction — a process kill without
    /// the process). 0 disables.
    std::size_t abort_after_executed = 0;
  };

  /// Binds and listens immediately (so workers can connect before run()),
  /// but serves nothing until run() is called. Throws util::SocketError
  /// when the address cannot be bound, util::PreconditionError on option
  /// conflicts (journal without cache, stale journal without resume, or a
  /// journal written by a different plan).
  Coordinator(ScenarioSpec base, SweepSpec sweep, Options options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// The bound port.
  [[nodiscard]] std::uint16_t port() const;
  /// The bound status-endpoint port; 0 when the endpoint is disabled.
  [[nodiscard]] std::uint16_t status_port() const;

  /// Serve until every run of the plan has exactly one result, then drain
  /// and return the results ordered by run_index — the same vector a
  /// ThreadPoolExecutor run of the plan would produce. Callable once.
  [[nodiscard]] std::vector<RunResult> run();

  /// Runs answered by the cache / completed by workers in run().
  [[nodiscard]] std::size_t cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::size_t executed() const { return executed_; }
  /// Leases revoked (timeout, or disconnect past the resume grace) and
  /// re-queued.
  [[nodiscard]] std::size_t requeued() const { return requeued_; }
  /// Deliveries discarded because the run was already complete.
  [[nodiscard]] std::size_t duplicates() const { return duplicates_; }
  /// Distinct connections that completed the HELLO handshake.
  [[nodiscard]] std::size_t workers_seen() const { return workers_seen_; }
  /// Leases reclaimed by workers through the RESUME handshake.
  [[nodiscard]] std::size_t leases_resumed() const { return leases_resumed_; }
  /// Orphaned leases re-created from a resumed journal.
  [[nodiscard]] std::size_t journal_orphans() const {
    return journal_orphans_;
  }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;

  std::size_t cache_hits_ = 0;
  std::size_t executed_ = 0;
  std::size_t requeued_ = 0;
  std::size_t duplicates_ = 0;
  std::size_t workers_seen_ = 0;
  std::size_t leases_resumed_ = 0;
  std::size_t journal_orphans_ = 0;
};

}  // namespace creditflow::scenario
