// CreditFlow scenario engine: the work-stealing sweep coordinator.
//
// A Coordinator owns a SweepPlan and hands out its run indices dynamically
// to any number of remote workers over a minimal line-based TCP protocol,
// replacing static `--shard I/N` partitioning: a slow or dead worker's
// outstanding leases flow back into the queue (heartbeat + lease timeout,
// immediate on disconnect), so fast machines steal the stragglers' work
// and the sweep finishes at the speed of the aggregate fleet, not its
// slowest member.
//
// Determinism contract — identical to shard-and-merge: a run is a pure
// function of the plan entry, results are merged by run_index, and
// completed runs travel as the PR-3 run-record interchange (shortest
// round-trip doubles), so the coordinator's aggregate CSV/JSON and per-run
// records are byte-identical to a single-process ThreadPoolExecutor run of
// the same spec — regardless of worker count, scheduling, disconnects,
// lease reassignment, or duplicate deliveries. The first completion of a
// RunKey wins; every later delivery of that key is acknowledged and
// discarded, so a killed worker never loses a run (its lease is re-queued)
// and never duplicates one (its late result is a no-op).
//
// Wire protocol (newline-delimited ASCII; payloads length-prefixed):
//
//   worker → HELLO creditflow-sweep-1
//   coord  → PLAN <lease_timeout_ms> <spec_bytes> <sweep_bytes>
//            followed by exactly spec_bytes + sweep_bytes of raw text
//            (ScenarioSpec::serialize ‖ SweepSpec::serialize); the worker
//            rebuilds the identical SweepPlan from it
//   worker → NEXT                 request a lease
//   coord  → RUN <run_index>      lease granted (refreshed by any traffic)
//          | WAIT                 nothing grantable now — retry shortly
//          | DONE                 sweep complete — disconnect
//   worker → PING                 heartbeat (keeps leases alive mid-run)
//   coord  → PONG
//   worker → RESULT <nbytes>      followed by nbytes of run-record JSONL
//   coord  → OK                   first completion of this run — recorded
//          | DUP                  already have it — discarded
//   coord  → ERR <message>        protocol violation; connection closed
//
// The coordinator validates every delivered record's RunKey against its
// own plan.key(run_index), so a worker built from a different binary or
// handed a different spec cannot corrupt the result set — its delivery is
// rejected and the connection dropped.
//
// The shared content-addressed RunStore (store.hpp) plugs in underneath:
// keys already stored never get leased (they are recalled as cache hits,
// exactly like SweepRunner), and every fresh record is appended as it
// streams in, so a killed *coordinator* restarted on the same cache
// directory re-executes only what the store has not yet seen.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "scenario/executor.hpp"
#include "scenario/plan.hpp"
#include "scenario/spec.hpp"
#include "scenario/sweep.hpp"

namespace creditflow::scenario {

/// The protocol version token exchanged in HELLO; bumped whenever the wire
/// format changes incompatibly.
inline constexpr const char* kSweepProtocolVersion = "creditflow-sweep-1";

/// Serves a SweepPlan to socket workers and merges their results.
class Coordinator {
 public:
  struct Options {
    /// Bind address. The loopback default keeps a laptop sweep private;
    /// bind "0.0.0.0" to accept workers from other machines.
    std::string host = "127.0.0.1";
    /// Bind port; 0 picks a free one (read it back via port()).
    std::uint16_t port = 0;

    /// A lease not refreshed by any traffic from its worker within this
    /// window is revoked and re-queued for the next NEXT request. Workers
    /// heartbeat at a fraction of this (announced in PLAN), so only a
    /// dead, wedged, or partitioned worker ever times out.
    double lease_timeout_seconds = 30.0;

    /// After the last run completes, keep answering stragglers (NEXT →
    /// DONE, RESULT → DUP) for at most this long before closing up.
    double drain_seconds = 1.0;

    /// Shared content-addressed run cache; empty disables it. Stored keys
    /// are never leased; fresh records are appended as they arrive.
    std::string cache_dir;

    /// Called for each completed run — cache hits first (telemetry
    /// .from_cache set), then fresh completions in arrival order. Runs on
    /// the coordinator's serving thread; progress reporting only.
    std::function<void(const RunResult&)> on_result;

    /// Live status endpoint: when >= 0, bind a second listener on the same
    /// host (0 picks a free port — read it back via status_port()) that
    /// answers `GET /status` with a JSON progress snapshot from the serving
    /// loop itself — no extra thread, no locks. -1 disables. With the
    /// endpoint enabled the coordinator always drains the full
    /// drain_seconds window (no early exit when the last worker leaves), so
    /// a final scrape can still observe completed == plan_runs.
    int status_port = -1;
  };

  /// Binds and listens immediately (so workers can connect before run()),
  /// but serves nothing until run() is called. Throws util::SocketError
  /// when the address cannot be bound.
  Coordinator(ScenarioSpec base, SweepSpec sweep, Options options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// The bound port.
  [[nodiscard]] std::uint16_t port() const;
  /// The bound status-endpoint port; 0 when the endpoint is disabled.
  [[nodiscard]] std::uint16_t status_port() const;

  /// Serve until every run of the plan has exactly one result, then drain
  /// and return the results ordered by run_index — the same vector a
  /// ThreadPoolExecutor run of the plan would produce. Callable once.
  [[nodiscard]] std::vector<RunResult> run();

  /// Runs answered by the cache / completed by workers in run().
  [[nodiscard]] std::size_t cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::size_t executed() const { return executed_; }
  /// Leases revoked (disconnect or timeout) and re-queued.
  [[nodiscard]] std::size_t requeued() const { return requeued_; }
  /// Deliveries discarded because the run was already complete.
  [[nodiscard]] std::size_t duplicates() const { return duplicates_; }
  /// Distinct connections that completed the HELLO handshake.
  [[nodiscard]] std::size_t workers_seen() const { return workers_seen_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;

  std::size_t cache_hits_ = 0;
  std::size_t executed_ = 0;
  std::size_t requeued_ = 0;
  std::size_t duplicates_ = 0;
  std::size_t workers_seen_ = 0;
};

}  // namespace creditflow::scenario
