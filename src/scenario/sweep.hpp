// CreditFlow scenario engine: parameter grids and their expansion.
//
// A SweepSpec is a list of axes over the scenario parameter namespace plus
// a replication count. Axes expand as a cartesian product (first axis
// slowest), and each grid point is replicated `seeds` times with
// independent derived RNG streams; run k of a sweep is a pure function of
// (base spec, sweep spec, k), never of thread scheduling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace creditflow::scenario {

/// One sweep dimension: a parameter key and its values.
struct SweepAxis {
  std::string param;
  std::vector<double> values;

  /// Parse "key=lo:hi:step" (inclusive arithmetic range), "key=a,b,c"
  /// (explicit list), or "key=v" (one value). Throws on malformed text,
  /// unknown keys, or empty ranges.
  [[nodiscard]] static SweepAxis parse(const std::string& text);
};

/// A full sweep: the cartesian grid of the axes × `seeds` replications.
struct SweepSpec {
  std::vector<SweepAxis> axes;  ///< empty → the single base point
  std::size_t seeds = 1;        ///< replications per grid point

  [[nodiscard]] std::size_t num_points() const;
  [[nodiscard]] std::size_t num_runs() const { return num_points() * seeds; }

  /// Line-oriented text form ("seeds N" + one "axis key=v1,v2,…" line per
  /// axis, values in shortest round-trip form). parse(serialize())
  /// reproduces the sweep bit-exactly — the distributed-sweep wire format,
  /// with the same cross-process stability contract as
  /// ScenarioSpec::serialize.
  [[nodiscard]] std::string serialize() const;
  /// Inverse of serialize(); throws util::PreconditionError on malformed
  /// input or unknown axis parameters.
  [[nodiscard]] static SweepSpec parse(const std::string& text);

  /// Axis values at grid point `point` (size == axes.size(); first axis
  /// varies slowest). point < num_points().
  [[nodiscard]] std::vector<double> point(std::size_t point_index) const;

  /// The spec for one run: base with the grid point's axis values applied
  /// and the protocol seed derived from (base seed, run_index). run_index
  /// = point_index * seeds + seed_index.
  [[nodiscard]] ScenarioSpec instantiate(const ScenarioSpec& base,
                                         std::size_t run_index) const;
};

}  // namespace creditflow::scenario
