// CreditFlow scenario engine: the registry of named experiment presets.
//
// Each preset reproduces the configuration behind one figure/extension of
// the paper's evaluation, expressed as a ScenarioSpec instead of a
// hand-rolled bench binary. The figure benches, the market CLI, and user
// sweeps all resolve scenarios here, so a configuration exists in exactly
// one place.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "scenario/spec.hpp"

namespace creditflow::scenario {

/// Name → ScenarioSpec map with ordered listing.
class ScenarioRegistry {
 public:
  /// Register a spec under spec.name; replaces an existing entry with the
  /// same name (user overrides of builtins are legitimate).
  void add(ScenarioSpec spec);

  /// Lookup; nullptr when absent.
  [[nodiscard]] const ScenarioSpec* find(std::string_view name) const;
  /// Lookup a copy; throws util::PreconditionError when absent.
  [[nodiscard]] ScenarioSpec get(std::string_view name) const;
  [[nodiscard]] bool contains(std::string_view name) const;

  /// Names in registration order.
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const { return specs_.size(); }

  /// The built-in presets: one per reproduced paper figure plus the
  /// extension studies.
  [[nodiscard]] static const ScenarioRegistry& builtin();

 private:
  std::vector<ScenarioSpec> specs_;
};

}  // namespace creditflow::scenario
