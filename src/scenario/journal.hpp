// CreditFlow scenario engine: the coordinator's crash-safe write-ahead
// journal.
//
// The RunStore already makes completed *results* durable; the journal
// makes the coordinator's *scheduling state* durable too. Every lease
// grant, completion, and requeue is appended as one JSONL line before the
// coordinator acts on it, so a SIGKILLed-and-restarted coordinator (same
// --journal, same --cache-dir, --resume) reconstructs the exact
// pending/leased/done partition of the plan: completed runs are recalled,
// orphaned leases are re-created under their original session tokens
// (reclaimable via the RESUME handshake by workers that outlive the
// coordinator), and only genuinely missing runs are executed again.
//
// Journal grammar — one event object per line, append-only:
//
//   {"ev":"plan","fingerprint":"<32 hex>","runs":N}
//       written once at open; the fingerprint binds the journal to one
//       exact plan (spec ‖ sweep text), so resuming against a different
//       sweep is an error, never silent corruption
//   {"ev":"grant","run":I,"session":"<16 hex>"}
//   {"ev":"done","run":I,"key":"<32 hex>"}
//   {"ev":"requeue","run":I}
//
// Replay is lenient the way the RunStore load is lenient: a torn tail or
// malformed line is skipped with a warning (it costs at most one
// re-executed run), duplicate grants overwrite (last session wins), and
// events that contradict the plan (unknown run index) are dropped.
// Conflicting plan fingerprints, by contrast, are a hard error.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "scenario/plan.hpp"
#include "util/fsio.hpp"

namespace creditflow::scenario {

/// The scheduling state reconstructed from a journal file.
struct JournalReplay {
  bool has_plan = false;
  std::string fingerprint;      ///< from the plan event
  std::uint64_t plan_runs = 0;  ///< plan size recorded at journalling time

  /// Grants never closed by a done/requeue: run index → session token.
  /// These become reclaimable orphan leases in the restarted coordinator.
  std::map<std::size_t, std::string> open_leases;
  /// Runs journalled complete: run index → the delivered record's RunKey.
  std::map<std::size_t, RunKey> completed;

  std::size_t events = 0;            ///< well-formed events applied
  std::size_t skipped = 0;           ///< malformed/torn lines dropped
  std::size_t duplicate_grants = 0;  ///< re-grants observed (last wins)
};

/// Parse and fold a journal file; missing file → empty replay. Throws
/// util::PreconditionError only on conflicting plan fingerprints within
/// one file — everything else is lenient.
[[nodiscard]] JournalReplay replay_journal(const std::string& path);

/// The append half: one Journal instance is the single writer for a
/// coordinator's lifetime. Opening replays whatever the file already holds
/// (see replayed()) and then appends new events after it.
class Journal {
 public:
  struct Options {
    bool fsync = false;  ///< fsync every event (power-cut durability)
  };

  /// Opens (creating) `path` and replays existing events. The caller
  /// decides what replayed state means — a fresh coordinator rejects a
  /// non-empty journal unless resuming.
  explicit Journal(std::string path);
  Journal(std::string path, Options options);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const JournalReplay& replayed() const { return replay_; }

  void record_plan(std::string_view fingerprint, std::uint64_t runs);
  void record_grant(std::size_t run, std::string_view session);
  void record_done(std::size_t run, const RunKey& key);
  void record_requeue(std::size_t run);

 private:
  std::string path_;
  JournalReplay replay_;
  util::AppendFile file_;
};

}  // namespace creditflow::scenario
