#include "scenario/result.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "scenario/store.hpp"  // json_escape
#include "util/assert.hpp"
#include "util/math.hpp"

namespace creditflow::scenario {

namespace {

using util::format_double;

std::string csv_quote(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void ResultSink::add(RunResult result) {
  fold_add(result);
  if (store_runs_) {
    // Run-index order is restored lazily (ensure_sorted) so runs_csv and
    // the batch reference never depend on completion order, while adds
    // stay O(1) even for interleaved shard merges.
    if (!runs_.empty() && result.run_index < runs_.back().run_index) {
      sorted_ = false;
    }
    runs_.push_back(std::move(result));
  }
  ++added_;
}

void ResultSink::add_all(std::vector<RunResult> results) {
  for (auto& r : results) add(std::move(r));
}

void ResultSink::set_expected_replications(std::size_t runs_per_point) {
  expected_replications_ = runs_per_point;
  // Points that were already complete when the expectation arrived
  // finalize now; late expectation-setting is otherwise equivalent.
  if (expected_replications_ > 0) {
    for (PointFold& fold : fold_) {
      if (fold.seen && !fold.finalized &&
          fold.pending.size() >= expected_replications_) {
        finalize_point(fold);
      }
    }
  }
}

void ResultSink::set_store_runs(bool enabled) {
  CF_EXPECTS_MSG(added_ == 0,
                 "set_store_runs must be chosen before the first add()");
  store_runs_ = enabled;
}

const std::vector<RunResult>& ResultSink::runs() const {
  CF_EXPECTS_MSG(store_runs_, "runs() requires run retention (store_runs)");
  ensure_sorted();
  return runs_;
}

void ResultSink::ensure_sorted() const {
  if (sorted_) return;
  std::stable_sort(runs_.begin(), runs_.end(),
                   [](const RunResult& a, const RunResult& b) {
                     return a.run_index < b.run_index;
                   });
  sorted_ = true;
}

void ResultSink::fold_add(const RunResult& result) {
  if (fold_.size() <= result.point_index) {
    fold_.resize(result.point_index + 1);
  }
  PointFold& fold = fold_[result.point_index];
  CF_EXPECTS_MSG(!fold.finalized,
                 "run arrived for a grid point that already received its "
                 "declared replication count");
  if (!fold.seen) {
    fold.seen = true;
    fold.params = result.params;  // identical across a point's runs
  }
  PendingRun pending;
  pending.run_index = result.run_index;
  pending.metrics = result.metrics;
  pending.error = result.error;
  fold.pending.push_back(std::move(pending));
  if (expected_replications_ > 0 &&
      fold.pending.size() == expected_replications_) {
    finalize_point(fold);
  }
}

ResultSink::FoldedStats ResultSink::fold_pending(
    const std::vector<PendingRun>& pending) {
  // Replications fold in run-index order, walked through a sorted pointer
  // view so the per-run data is never copied (stable for duplicates,
  // matching the batch scan's stable sort of the full run list —
  // `pending` is in insertion order, as runs_ is).
  std::vector<const PendingRun*> ordered;
  ordered.reserve(pending.size());
  for (const PendingRun& run : pending) ordered.push_back(&run);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const PendingRun* a, const PendingRun* b) {
                     return a->run_index < b->run_index;
                   });
  FoldedStats stats;
  for (const PendingRun* run : ordered) {
    if (!run->error.empty()) {
      ++stats.failures;
      stats.errors.push_back(run->error);
      continue;
    }
    ++stats.seeds;
    if (stats.metrics.empty()) {
      for (const auto& [name, value] : run->metrics) {
        MetricStat stat;
        stat.mean = value;  // temporarily the running sum
        stat.n = 1;
        stats.metrics.emplace_back(name, stat);
      }
      continue;
    }
    CF_EXPECTS_MSG(stats.metrics.size() == run->metrics.size(),
                   "runs of one grid point disagree on their metric set");
    for (std::size_t k = 0; k < run->metrics.size(); ++k) {
      stats.metrics[k].second.mean += run->metrics[k].second;
      ++stats.metrics[k].second.n;
    }
  }
  for (auto& [name, stat] : stats.metrics) {
    stat.mean /= static_cast<double>(stat.n);
  }
  if (stats.seeds >= 2) {
    for (std::size_t k = 0; k < stats.metrics.size(); ++k) {
      double sq = 0.0;
      for (const PendingRun* run : ordered) {
        if (!run->error.empty()) continue;
        const double d =
            run->metrics[k].second - stats.metrics[k].second.mean;
        sq += d * d;
      }
      MetricStat& stat = stats.metrics[k].second;
      stat.stddev = std::sqrt(sq / static_cast<double>(stat.n - 1));
      stat.ci95 = 1.96 * stat.stddev / std::sqrt(static_cast<double>(stat.n));
    }
  }
  return stats;
}

void ResultSink::finalize_point(PointFold& point) {
  point.stats = fold_pending(point.pending);
  point.finalized = true;
  point.pending.clear();
  point.pending.shrink_to_fit();
}

std::vector<AggregateRow> ResultSink::aggregate() const {
  std::vector<AggregateRow> rows;
  for (std::size_t p = 0; p < fold_.size(); ++p) {
    const PointFold& fold = fold_[p];
    if (!fold.seen) continue;
    // Open points fold on demand (no mutation, so later adds stay
    // possible); complete points render their stored stats.
    FoldedStats on_demand;
    if (!fold.finalized) on_demand = fold_pending(fold.pending);
    const FoldedStats& stats = fold.finalized ? fold.stats : on_demand;
    AggregateRow row;
    row.point_index = p;
    row.params = fold.params;
    row.seeds = stats.seeds;
    row.failures = stats.failures;
    row.metrics = stats.metrics;
    row.errors = stats.errors;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<AggregateRow> ResultSink::aggregate_from_runs() const {
  CF_EXPECTS_MSG(store_runs_,
                 "aggregate_from_runs() requires run retention (store_runs)");
  ensure_sorted();
  std::vector<AggregateRow> rows;
  for (const RunResult& run : runs_) {
    if (rows.empty() || rows.back().point_index != run.point_index) {
      AggregateRow row;
      row.point_index = run.point_index;
      row.params = run.params;
      rows.push_back(std::move(row));
    }
    AggregateRow& row = rows.back();
    if (!run.error.empty()) {
      ++row.failures;
      row.errors.push_back(run.error);
      continue;
    }
    ++row.seeds;
    if (row.metrics.empty()) {
      for (const auto& [name, value] : run.metrics) {
        MetricStat stat;
        stat.mean = value;  // temporarily the running sum
        stat.n = 1;
        row.metrics.emplace_back(name, stat);
      }
      continue;
    }
    CF_EXPECTS_MSG(row.metrics.size() == run.metrics.size(),
                   "runs of one grid point disagree on their metric set");
    for (std::size_t k = 0; k < run.metrics.size(); ++k) {
      row.metrics[k].second.mean += run.metrics[k].second;
      ++row.metrics[k].second.n;
    }
  }

  // Finalize: sums → means, then a second pass for the spread. Runs are
  // kept sorted by run_index, so each row's runs occupy one contiguous
  // slice of runs_ — the spread pass walks runs_ exactly once overall.
  for (AggregateRow& row : rows) {
    for (auto& [name, stat] : row.metrics) {
      stat.mean /= static_cast<double>(stat.n);
    }
  }
  std::size_t cursor = 0;
  for (AggregateRow& row : rows) {
    const std::size_t begin = cursor;
    while (cursor < runs_.size() &&
           runs_[cursor].point_index == row.point_index) {
      ++cursor;
    }
    if (row.seeds < 2) continue;
    for (std::size_t k = 0; k < row.metrics.size(); ++k) {
      double sq = 0.0;
      for (std::size_t i = begin; i < cursor; ++i) {
        if (!runs_[i].error.empty()) continue;
        const double d =
            runs_[i].metrics[k].second - row.metrics[k].second.mean;
        sq += d * d;
      }
      MetricStat& stat = row.metrics[k].second;
      stat.stddev = std::sqrt(sq / static_cast<double>(stat.n - 1));
      stat.ci95 = 1.96 * stat.stddev / std::sqrt(static_cast<double>(stat.n));
    }
  }
  return rows;
}

std::string ResultSink::runs_csv() const {
  CF_EXPECTS_MSG(store_runs_,
                 "runs_csv() requires run retention (store_runs)");
  ensure_sorted();
  // Metric columns come from the first successful run (errored runs carry
  // no metrics and are padded to the same width).
  const RunResult* proto = nullptr;
  for (const RunResult& run : runs_) {
    if (run.error.empty()) {
      proto = &run;
      break;
    }
  }
  const std::size_t metric_cols = proto ? proto->metrics.size() : 0;

  std::ostringstream out;
  out << "run_index,point_index,seed_index,seed";
  if (!runs_.empty()) {
    for (const auto& [name, value] : runs_.front().params) {
      out << ',' << csv_quote(name);
    }
    if (proto) {
      for (const auto& [name, value] : proto->metrics) {
        out << ',' << csv_quote(name);
      }
    }
    out << ",error,rounds";
    if (timing_columns_) {
      out << ",wall_seconds,purchase_phase_seconds,seed_phase_seconds"
             ",tax_phase_seconds,peak_rss_bytes";
    }
  }
  out << '\n';
  for (const RunResult& run : runs_) {
    out << run.run_index << ',' << run.point_index << ',' << run.seed_index
        << ',' << run.seed;
    for (const auto& [name, value] : run.params) {
      out << ',' << format_double(value);
    }
    if (run.error.empty()) {
      for (const auto& [name, value] : run.metrics) {
        out << ',' << format_double(value);
      }
      out << ',';
    } else {
      for (std::size_t k = 0; k < metric_cols; ++k) out << ',';
      out << ',' << csv_quote(run.error);
    }
    out << ',' << run.telemetry.rounds;
    if (timing_columns_) {
      out << ',' << format_double(run.telemetry.wall_seconds) << ','
          << format_double(run.telemetry.purchase_phase_seconds) << ','
          << format_double(run.telemetry.seed_phase_seconds) << ','
          << format_double(run.telemetry.tax_phase_seconds) << ','
          << run.telemetry.peak_rss_bytes;
    }
    out << '\n';
  }
  return out.str();
}

std::string ResultSink::aggregate_csv() const {
  const auto rows = aggregate();
  // Metric columns come from the first row that has any successful runs
  // (an all-failed grid point carries no metrics and is padded instead).
  const AggregateRow* proto = nullptr;
  for (const AggregateRow& row : rows) {
    if (!row.metrics.empty()) {
      proto = &row;
      break;
    }
  }

  std::ostringstream out;
  out << "point_index";
  if (!rows.empty()) {
    for (const auto& [name, value] : rows.front().params) {
      out << ',' << csv_quote(name);
    }
    out << ",seeds,failures";
    if (proto) {
      for (const auto& [name, stat] : proto->metrics) {
        out << ',' << csv_quote(name) << "_mean," << csv_quote(name)
            << "_sd," << csv_quote(name) << "_ci95";
      }
    }
  }
  out << '\n';
  for (const AggregateRow& row : rows) {
    out << row.point_index;
    for (const auto& [name, value] : row.params) {
      out << ',' << format_double(value);
    }
    out << ',' << row.seeds << ',' << row.failures;
    if (row.metrics.empty()) {
      const std::size_t cols = proto ? proto->metrics.size() * 3 : 0;
      for (std::size_t k = 0; k < cols; ++k) out << ',';
    } else {
      for (const auto& [name, stat] : row.metrics) {
        out << ',' << format_double(stat.mean) << ','
            << format_double(stat.stddev) << ',' << format_double(stat.ci95);
      }
    }
    out << '\n';
  }
  return out.str();
}

std::string ResultSink::aggregate_json() const {
  const auto rows = aggregate();
  std::ostringstream out;
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const AggregateRow& row = rows[i];
    out << "  {\"point_index\": " << row.point_index << ", \"params\": {";
    for (std::size_t k = 0; k < row.params.size(); ++k) {
      if (k > 0) out << ", ";
      out << '"' << row.params[k].first
          << "\": " << format_double(row.params[k].second);
    }
    out << "}, \"seeds\": " << row.seeds
        << ", \"failures\": " << row.failures << ", \"errors\": [";
    for (std::size_t k = 0; k < row.errors.size(); ++k) {
      if (k > 0) out << ", ";
      out << '"' << json_escape(row.errors[k]) << '"';
    }
    out << "], \"metrics\": {";
    for (std::size_t k = 0; k < row.metrics.size(); ++k) {
      const auto& [name, stat] = row.metrics[k];
      if (k > 0) out << ", ";
      // NaN (e.g. a windowed metric with no rate window) → JSON null.
      const auto number = [](double v) {
        const std::string s = format_double(v);
        return s == "nan" ? std::string("null") : s;
      };
      out << '"' << name << "\": {\"mean\": " << number(stat.mean)
          << ", \"sd\": " << number(stat.stddev)
          << ", \"ci95\": " << number(stat.ci95) << '}';
    }
    out << "}}" << (i + 1 < rows.size() ? "," : "") << '\n';
  }
  out << "]\n";
  return out.str();
}

util::ConsoleTable ResultSink::aggregate_table(
    const std::string& title,
    std::span<const std::string> metric_names) const {
  const auto rows = aggregate();
  util::ConsoleTable table(title);
  std::vector<std::string> header;
  if (!rows.empty()) {
    for (const auto& [name, value] : rows.front().params) {
      header.push_back(name);
    }
  }
  header.emplace_back("seeds");
  for (const auto& name : metric_names) header.push_back(name);
  table.set_header(std::move(header));

  for (const AggregateRow& row : rows) {
    std::vector<util::Cell> cells;
    for (const auto& [name, value] : row.params) cells.emplace_back(value);
    cells.emplace_back(static_cast<std::int64_t>(row.seeds));
    for (const auto& wanted : metric_names) {
      // A grid point whose runs all failed has no metrics at all — render
      // it as "failed" rather than rejecting the whole table.
      if (row.metrics.empty()) {
        cells.emplace_back(std::string("failed"));
        continue;
      }
      const auto it = std::find_if(
          row.metrics.begin(), row.metrics.end(),
          [&](const auto& entry) { return entry.first == wanted; });
      CF_EXPECTS_MSG(it != row.metrics.end(),
                     "unknown metric in aggregate_table: " + wanted);
      if (row.seeds > 1) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.4f ±%.4f", it->second.mean,
                      it->second.ci95);
        cells.emplace_back(std::string(buf));
      } else {
        cells.emplace_back(it->second.mean);
      }
    }
    table.add_row(std::move(cells));
  }
  return table;
}

}  // namespace creditflow::scenario
