#include "scenario/executor.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <limits>
#include <mutex>
#include <numeric>
#include <thread>

#if __has_include(<sys/resource.h>)
#include <sys/resource.h>
#define CREDITFLOW_HAS_GETRUSAGE 1
#endif

#include "core/market.hpp"
#include "econ/gini.hpp"
#include "util/assert.hpp"
#include "util/fsio.hpp"
#include "util/logging.hpp"
#include "util/trace.hpp"

namespace creditflow::scenario {

namespace {

double mean_of(std::span<const double> v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

/// Process peak RSS (high-water mark) in bytes; 0 where unsupported.
std::uint64_t peak_rss_now() {
#ifdef CREDITFLOW_HAS_GETRUSAGE
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is KiB on Linux (bytes on macOS; the delta semantics hold
  // either way, only the unit scale differs — Linux is what CI measures).
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
#else
  return 0;
#endif
}

}  // namespace

double RunResult::metric(std::string_view name) const {
  for (const auto& [key, value] : metrics) {
    if (key == name) return value;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

std::vector<std::pair<std::string, double>> standard_metrics(
    const core::MarketConfig& cfg, const core::MarketReport& report) {
  std::vector<std::pair<std::string, double>> m;
  m.reserve(16);
  m.emplace_back("converged_gini", report.converged_gini());
  m.emplace_back("final_gini", report.final_wealth.gini);
  m.emplace_back("gini_spend",
                 report.gini_spend_rates.empty()
                     ? 0.0
                     : report.gini_spend_rates.tail_mean(0.25));
  // Windowed (post-warmup) spending-rate inequality — the Fig. 1 readout;
  // NaN when the run had no rate window.
  m.emplace_back("gini_windowed_spend",
                 report.final_windowed_spend_rates.empty()
                     ? std::numeric_limits<double>::quiet_NaN()
                     : econ::gini(report.final_windowed_spend_rates));
  m.emplace_back("mean_buffer_fill",
                 report.mean_buffer_fill.empty()
                     ? 0.0
                     : report.mean_buffer_fill.tail_mean(0.25));
  m.emplace_back("mean_balance", report.final_wealth.mean);
  m.emplace_back("bankrupt_fraction", report.final_wealth.bankrupt_fraction);
  m.emplace_back("top10_share", report.final_wealth.top10_share);
  m.emplace_back("mean_spend_rate", mean_of(report.final_spend_rates));
  m.emplace_back("mean_download_rate", mean_of(report.final_download_rates));

  // Exchange efficiency: chunk deliveries per peer-second, relative to the
  // stream rate — the fraction of the stream the average peer obtained
  // through the market (seeded chunks and stalls account for the rest).
  const double mean_alive = report.alive_peers.empty()
                                ? static_cast<double>(
                                      cfg.protocol.initial_peers)
                                : mean_of(report.alive_peers.values());
  const double demand =
      mean_alive * report.horizon * cfg.protocol.stream_rate;
  m.emplace_back("exchange_efficiency",
                 demand > 0.0
                     ? static_cast<double>(report.transactions) / demand
                     : 0.0);

  m.emplace_back("transactions", static_cast<double>(report.transactions));
  m.emplace_back("volume", static_cast<double>(report.volume));
  m.emplace_back("tax_collected", static_cast<double>(report.tax_collected));
  m.emplace_back("tax_redistributed",
                 static_cast<double>(report.tax_redistributed));
  m.emplace_back("churn_arrivals",
                 static_cast<double>(report.churn_arrivals));
  m.emplace_back("churn_departures",
                 static_cast<double>(report.churn_departures));
  m.emplace_back("alive_final",
                 report.alive_peers.empty()
                     ? static_cast<double>(cfg.protocol.initial_peers)
                     : report.alive_peers.last_value());
  m.emplace_back("ledger_conserved", report.ledger_conserved ? 1.0 : 0.0);

  // Order-book readouts — emitted only in book mode so the default-mode
  // metric vector (and every golden aggregate derived from it) is
  // byte-identical with the book compiled in.
  if (cfg.protocol.market_mode ==
      p2p::ProtocolConfig::MarketMode::kOrderBook) {
    m.emplace_back("book_fills", static_cast<double>(report.book_fills));
    // Run-level clearing price: credits crossed per unit filled.
    m.emplace_back("clearing_price",
                   report.book_fills > 0
                       ? static_cast<double>(report.book_volume) /
                             static_cast<double>(report.book_fills)
                       : 0.0);
    // Fill ratio: fraction of offered units that found a buyer.
    m.emplace_back("fill_ratio",
                   report.book_posted_qty > 0
                       ? static_cast<double>(report.book_fills) /
                             static_cast<double>(report.book_posted_qty)
                       : 0.0);
    m.emplace_back("book_asks_expired",
                   static_cast<double>(report.book_asks_expired));
    m.emplace_back("book_bids_posted",
                   static_cast<double>(report.book_bids_posted));
    m.emplace_back("book_bids_matched",
                   static_cast<double>(report.book_bids_matched));
  }

  // Strategy-layer readouts — same gating discipline as the book block:
  // with strat.* at defaults the metric vector stays byte-identical.
  if (cfg.protocol.strat.enabled()) {
    const auto& fs = report.final_strategy;
    const auto honest =
        static_cast<std::size_t>(strategy::Strategy::kHonest);
    const double total_credits = fs.total_credits();
    m.emplace_back("whitewash_resets",
                   static_cast<double>(report.whitewash_resets));
    // Net credit the cycling attack extracted from the mint.
    m.emplace_back("whitewash_extracted",
                   static_cast<double>(report.whitewash_minted) -
                       static_cast<double>(report.whitewash_burned));
    m.emplace_back("collusion_volume",
                   static_cast<double>(report.collusion_volume));
    m.emplace_back("stake_locked",
                   static_cast<double>(report.stake_locked));
    m.emplace_back("stake_slashed",
                   static_cast<double>(report.stake_slashed));
    m.emplace_back("honest_peers",
                   static_cast<double>(fs.population[honest]));
    m.emplace_back("attacker_peers", static_cast<double>(fs.attackers()));
    m.emplace_back("honest_credit_share",
                   total_credits > 0.0 ? fs.credits[honest] / total_credits
                                       : 0.0);
    m.emplace_back("attacker_credit_share",
                   total_credits > 0.0
                       ? fs.attacker_credits() / total_credits
                       : 0.0);
    m.emplace_back("honest_fill",
                   fs.population[honest] > 0
                       ? fs.buffer_fill[honest] /
                             static_cast<double>(fs.population[honest])
                       : 0.0);
  }
  return m;
}

void execute_spec_into(const ScenarioSpec& spec, RunResult& result,
                       bool keep_report, std::size_t series_every,
                       std::string* series_csv) {
  const util::TraceSpan span("run", "executor", "run_index",
                             result.run_index);
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t rss_before = peak_rss_now();
  try {
    result.seed = spec.config.protocol.seed;
    core::MarketConfig market_cfg = spec.materialize();
    if (series_every > 0) market_cfg.series_every_rounds = series_every;
    core::CreditMarket market(std::move(market_cfg));
    result.report = market.run();
    if (series_csv != nullptr && market.series() != nullptr) {
      *series_csv = market.series()->csv();
    }
    result.metrics = standard_metrics(spec.config, result.report);
    result.telemetry.purchase_phase_seconds =
        market.protocol().purchase_phase_seconds();
    result.telemetry.seed_phase_seconds =
        market.protocol().seed_phase_seconds();
    result.telemetry.tax_phase_seconds =
        market.protocol().tax_phase_seconds();
    result.telemetry.rounds = result.report.rounds;
    result.telemetry.overlay_edges_dropped =
        result.report.overlay_edges_dropped;
    result.telemetry.churn_arrivals_dropped =
        result.report.churn_arrivals_dropped;
    if (!keep_report) result.report = core::MarketReport{};
  } catch (const std::exception& e) {
    result.error = e.what();
  }
  result.telemetry.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const std::uint64_t rss_after = peak_rss_now();
  result.telemetry.peak_rss_bytes =
      rss_after > rss_before ? rss_after - rss_before : 0;
}

std::vector<RunResult> ThreadPoolExecutor::execute(
    const SweepPlan& plan, std::span<const std::size_t> run_indices,
    const ExecuteOptions& options) {
  const std::size_t total = run_indices.size();
  std::vector<RunResult> results(total);
  if (total == 0) return results;

  std::size_t jobs = options.jobs != 0
                         ? options.jobs
                         : std::max(1u, std::thread::hardware_concurrency());
  jobs = std::min(jobs, total);

  std::atomic<std::size_t> next{0};
  std::mutex progress_mutex;
  auto worker = [&] {
    while (true) {
      const std::size_t slot = next.fetch_add(1);
      if (slot >= total) return;
      const std::size_t run_index = run_indices[slot];
      RunResult& result = results[slot];
      result = plan.labelled_result(run_index);
      const bool want_series =
          options.series_every > 0 &&
          (!options.series_out_prefix.empty() || options.series_sink);
      std::string series_csv;
      try {
        execute_spec_into(plan.spec(run_index), result, options.keep_reports,
                          want_series ? options.series_every : 0,
                          want_series ? &series_csv : nullptr);
      } catch (const std::exception& e) {
        result.error = e.what();  // instantiate() itself rejected the point
      }
      if (want_series && !series_csv.empty()) {
        if (!options.series_out_prefix.empty()) {
          // Atomic replace: a reader (or a crash) never sees a torn
          // series file.
          const std::string path = options.series_out_prefix + ".run" +
                                   std::to_string(run_index) + ".csv";
          if (!util::atomic_write_file(path, series_csv)) {
            CF_LOG_WARN("failed writing series CSV " << path);
          }
        }
        if (options.series_sink) {
          const std::lock_guard<std::mutex> lock(progress_mutex);
          options.series_sink(run_index, series_csv);
        }
      }
      if (options.on_result) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        options.on_result(result);
      }
    }
  };

  if (jobs == 1) {
    worker();  // in-place: no thread overhead for serial sweeps
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t i = 0; i < jobs; ++i) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  return results;
}

}  // namespace creditflow::scenario
