// CreditFlow scenario engine: ScenarioSpec — one declarative description of
// a market experiment.
//
// A spec is a named MarketConfig plus run-shape extras (warmup for windowed
// rate measurements). It serializes to a line-oriented text form
//
//   scenario fig09_taxation
//   # Fig. 9: the taxation counter-measure, asymmetric utilization.
//   peers = 400
//   tax.rate = 0.1
//   ...
//
// that parses back bit-exactly (round-trip safe), so experiment
// configurations can live in files, diffs, and sweep logs instead of C++.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "core/market.hpp"

namespace creditflow::scenario {

/// Declarative description of one experiment.
struct ScenarioSpec {
  std::string name = "unnamed";
  std::string description;
  core::MarketConfig config;

  /// Fraction of the horizon to treat as warmup: at warmup * horizon the
  /// protocol opens its trailing rate window, so windowed spend rates (the
  /// paper's Fig. 1 readout) cover only the evolved market. 0 disables.
  double warmup_fraction = 0.0;

  /// The runnable configuration: `config` with the warmup fraction resolved
  /// to an absolute rate-window start time.
  [[nodiscard]] core::MarketConfig materialize() const;

  /// Set one parameter by key; `warmup` addresses warmup_fraction, all
  /// other keys resolve through the scenario parameter table. Returns
  /// false for unknown keys.
  bool set(std::string_view key, double value);
  /// Validate-then-set flavor: returns a one-line diagnostic for unknown
  /// keys or malformed values (spec untouched), nullopt on success.
  [[nodiscard]] std::optional<std::string> set_checked(std::string_view key,
                                                       double value);
  /// Read one parameter by key (same namespace as set()).
  [[nodiscard]] std::optional<double> get(std::string_view key) const;

  /// Full text form; parse(serialize()) reproduces the spec exactly.
  [[nodiscard]] std::string serialize() const;
  /// Parse the text form; throws util::PreconditionError on malformed
  /// input or unknown keys.
  [[nodiscard]] static ScenarioSpec parse(const std::string& text);
};

}  // namespace creditflow::scenario
