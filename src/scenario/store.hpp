// CreditFlow scenario engine: RunStore — the on-disk, content-addressed
// run cache, and the line-oriented run-record format it shares with
// shard-and-merge.
//
// Each completed run serializes to one self-contained JSONL line carrying
// its RunKey, plan metadata, scalar metrics, and telemetry (full
// MarketReports are deliberately not stored — the cache is for
// metrics-only sweeps). Doubles are rendered in the engine's shortest
// round-trip form, so a metric read back from disk is bit-identical to the
// one computed — the warm-cache and shard-merge byte-identical-output
// guarantees rest on that.
//
// The same record format is the interchange for distributed sweeps: a
// shard writes its partial result set as records, and a later merge
// invocation parses any number of record files back into RunResults.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "scenario/executor.hpp"
#include "scenario/plan.hpp"
#include "util/fsio.hpp"

namespace creditflow::scenario {

/// Escape a string for embedding in a JSON double-quoted literal. Shared
/// by the run-record format and ResultSink::aggregate_json, so error
/// messages render with identical bytes in both.
[[nodiscard]] std::string json_escape(const std::string& s);

/// One persisted run: its content address plus the (report-free) result.
struct RunRecord {
  RunKey key;
  RunResult result;
};

/// One record as a single JSONL line (no trailing newline).
[[nodiscard]] std::string serialize_run_record(const RunKey& key,
                                               const RunResult& result);
/// Inverse of serialize_run_record; throws util::PreconditionError on
/// malformed input.
[[nodiscard]] RunRecord parse_run_record(const std::string& line);

/// Parse every record in a file (one per line, blank lines skipped).
/// Throws util::PreconditionError if the file is unreadable or any line is
/// malformed.
[[nodiscard]] std::vector<RunRecord> read_run_records(
    const std::string& path);

/// Append-only run cache rooted at a directory. Construction creates the
/// directory (if needed) and loads `runs.jsonl`; put() appends one line per
/// new key, so a store can be grown by any number of sequential sweep
/// invocations and survives process restarts. Only successful runs are
/// stored: errors are cheap to recompute and must not outlive the code
/// that produced them.
///
/// Robustness: loading skips (and warns about) malformed lines — a
/// truncated tail from a killed writer costs one recomputed run, never the
/// store; the next append repairs the missing terminator first. Records are
/// appended in a single write each, so concurrent executors sharing a store
/// directory interleave at record boundaries; duplicate keys from that race
/// carry identical bytes and dedup on load (first wins).
class RunStore {
 public:
  struct Options {
    /// fsync(2) after every appended record. Off by default — a flushed
    /// O_APPEND write already survives any process kill; fsync upgrades
    /// that to surviving a machine crash, at per-record fsync cost.
    /// Sweep-farm deployments that rely on the cache + journal for
    /// crash recovery turn this on via --fsync.
    bool fsync = false;
  };

  explicit RunStore(std::string dir);
  RunStore(std::string dir, Options options);

  /// The backing JSONL file.
  [[nodiscard]] const std::string& path() const { return path_; }
  /// Cached runs currently known.
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// The stored result for `key`, or nullptr. The result carries the
  /// metadata of the run that first computed it; callers re-label it with
  /// the current plan's metadata (indices can legitimately differ once a
  /// grid has been widened).
  [[nodiscard]] const RunResult* find(const RunKey& key) const;

  /// Persist a successful run under `key`; no-op if the key is already
  /// present or the result carries an error.
  void put(const RunKey& key, const RunResult& result);

 private:
  std::string dir_;
  std::string path_;
  Options options_;
  std::map<RunKey, RunResult> entries_;
  /// Lazily-opened append log, kept open across put()s (each record is a
  /// single write, so a crash loses at most the in-flight line; torn-tail
  /// repair lives in AppendFile).
  util::AppendFile append_;
};

}  // namespace creditflow::scenario
