// CreditFlow scenario engine: Executor — how a SweepPlan's runs get
// computed.
//
// An Executor turns plan entries into RunResults. The in-process
// ThreadPoolExecutor preserves the engine's determinism contract: results
// land in slots keyed by position, so the output — and everything
// aggregated from it — is identical whether a run list executes on 1
// thread or N, in one process or as shards merged later. Alternative
// executors (remote workers, a work-stealing coordinator) implement the
// same interface without the plan or store knowing.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/report.hpp"
#include "scenario/plan.hpp"

namespace creditflow::scenario {

/// Per-run wall-clock telemetry, measured around the simulation by the
/// executor (or restored from the cache for skipped runs).
struct RunTelemetry {
  double wall_seconds = 0.0;            ///< end-to-end run wall time
  double purchase_phase_seconds = 0.0;  ///< protocol hot-path share of it
  /// Remaining per-phase breakdown of the round loop: chunk seeding and
  /// taxation redistribution. Absent from records written before the
  /// breakdown existed; such runs read back as 0.
  double seed_phase_seconds = 0.0;
  double tax_phase_seconds = 0.0;
  std::uint64_t rounds = 0;             ///< protocol rounds simulated
  /// Growth of the process peak-RSS high-water mark across this run
  /// (getrusage delta, bytes). 0 when the run fit entirely in memory the
  /// process had already touched — which is the expected steady state of an
  /// allocation-free simulation core; a nonzero value on a warmed-up worker
  /// flags a run that grew the footprint. The high-water mark is
  /// process-global, so with parallel workers (jobs > 1) growth caused by
  /// one run can land in a concurrent run's window — attribute per-run
  /// values only from --jobs 1 sweeps (the perf-measurement mode); under
  /// parallelism read it as "the sweep grew while this run was in flight".
  /// 0 on platforms without getrusage.
  std::uint64_t peak_rss_bytes = 0;
  /// PR-7 fixed-pool exhaustion events, surfaced from the warn-once
  /// stderr lines into the run record: preferential-attachment edges the
  /// overlay dropped and arrivals refused for lack of a peer slot. Always
  /// 0 on healthy runs; nonzero flags an under-provisioned capacity.
  /// Absent from records written before these existed (read back as 0).
  std::uint64_t overlay_edges_dropped = 0;
  std::uint64_t churn_arrivals_dropped = 0;
  bool from_cache = false;  ///< true when the run store answered instead
};

/// Outcome of one run of a sweep.
struct RunResult {
  std::size_t run_index = 0;
  std::size_t point_index = 0;
  std::size_t seed_index = 0;
  std::uint64_t seed = 0;  ///< the derived per-run protocol seed

  /// Axis values of this run's grid point, in axis order.
  std::vector<std::pair<std::string, double>> params;
  /// Scalar readouts (standard_metrics order): gini, buffer fill, spend
  /// rates, exchange efficiency, ...
  std::vector<std::pair<std::string, double>> metrics;
  /// Wall-time/rounds telemetry of this run.
  RunTelemetry telemetry;
  /// Full report (time series, final snapshots); cleared when the executor
  /// runs with keep_reports = false (and never present on cache hits).
  core::MarketReport report;
  /// Non-empty when the run threw; metrics are then empty.
  std::string error;

  /// Metric by name; NaN when absent.
  [[nodiscard]] double metric(std::string_view name) const;
};

/// The scalar readouts extracted from every run, in emission order.
[[nodiscard]] std::vector<std::pair<std::string, double>> standard_metrics(
    const core::MarketConfig& cfg, const core::MarketReport& report);

/// Execution knobs shared by every executor.
struct ExecuteOptions {
  /// Worker threads; 0 → hardware concurrency. Ignored by executors with
  /// no local pool.
  std::size_t jobs = 0;
  /// Keep each run's full MarketReport (time series + final vectors).
  /// Disable for huge grids where only the scalar metrics matter.
  bool keep_reports = true;
  /// Called after each run completes (from worker threads, serialized —
  /// safe to print from). Progress reporting only; results are final.
  std::function<void(const RunResult&)> on_result;

  /// Per-round time-series collection (observability — deliberately off
  /// the RunKey, so it never invalidates caches). When series_every > 0
  /// and series_out_prefix is non-empty, every freshly-executed run
  /// samples its market every N rounds and the executor writes one CSV
  /// per run to "<series_out_prefix>.run<run_index>.csv". Cache hits
  /// produce no series — they never simulate.
  std::size_t series_every = 0;
  std::string series_out_prefix;
  /// When set (and series_every > 0), the rendered per-run series CSV is
  /// handed to this callback instead of / in addition to the file path
  /// above — how sweep workers ship series bytes to the coordinator over
  /// the wire instead of writing local files. Called with the run index
  /// and the exact bytes a local run would have written (empty series
  /// produce no call, matching the no-file behaviour). Serialized with
  /// on_result.
  std::function<void(std::size_t run_index, const std::string& series_csv)>
      series_sink;
};

/// Computes plan entries. Implementations must be safe to reuse across
/// execute() calls and must return results positionally aligned with the
/// requested indices.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Execute `run_indices` (entries of `plan`); result k is the outcome of
  /// run_indices[k]. A run that throws yields a RunResult with `error` set
  /// rather than propagating.
  [[nodiscard]] virtual std::vector<RunResult> execute(
      const SweepPlan& plan, std::span<const std::size_t> run_indices,
      const ExecuteOptions& options) = 0;
};

/// The default in-process executor: a worker pool over an atomic cursor.
/// Deterministic by construction — each run is a pure function of the plan
/// entry, and completion order never influences placement.
class ThreadPoolExecutor final : public Executor {
 public:
  [[nodiscard]] std::vector<RunResult> execute(
      const SweepPlan& plan, std::span<const std::size_t> run_indices,
      const ExecuteOptions& options) override;
};

/// Execute one fully-instantiated spec into a pre-labelled result slot,
/// capturing errors and telemetry. The shared primitive under every
/// executor and run_scenario(). When series_every > 0 and series_csv is
/// non-null, the run also collects a per-round time series and stores its
/// CSV rendering into *series_csv (untouched when the run throws).
void execute_spec_into(const ScenarioSpec& spec, RunResult& result,
                       bool keep_report, std::size_t series_every = 0,
                       std::string* series_csv = nullptr);

}  // namespace creditflow::scenario
