#include "scenario/plan.hpp"

#include <cstdio>

#include "scenario/executor.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace creditflow::scenario {

std::string RunKey::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

std::optional<RunKey> RunKey::from_hex(std::string_view text) {
  if (text.size() != 32) return std::nullopt;
  std::uint64_t words[2] = {0, 0};
  for (std::size_t w = 0; w < 2; ++w) {
    for (std::size_t i = 0; i < 16; ++i) {
      const char c = text[w * 16 + i];
      std::uint64_t digit = 0;
      if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f') digit = 10u + (c - 'a');
      else if (c >= 'A' && c <= 'F') digit = 10u + (c - 'A');
      else return std::nullopt;
      words[w] = (words[w] << 4) | digit;
    }
  }
  return RunKey{words[0], words[1]};
}

RunKey RunKey::of(std::string_view spec_text, std::size_t run_index) {
  // Two independent FNV-1a streams over the spec text (standard basis and a
  // decorrelated one), each folded with the run index through the same
  // SplitMix64 finalization the seed derivation uses. Both halves depend on
  // every byte of the spec and on the index.
  const std::uint64_t h1 = util::fnv1a64(spec_text);
  const std::uint64_t h2 =
      util::fnv1a64(spec_text, 0x9d2c5680cafe4321ULL);
  return RunKey{util::derive_seed(h1, run_index),
                util::derive_seed(h2 ^ 0x6a09e667f3bcc909ULL, run_index)};
}

SweepPlan::SweepPlan(ScenarioSpec base, SweepSpec sweep)
    : base_(std::move(base)), sweep_(std::move(sweep)) {
  CF_EXPECTS(sweep_.seeds >= 1);
}

ScenarioSpec SweepPlan::spec(std::size_t run_index) const {
  return sweep_.instantiate(base_, run_index);
}

RunKey SweepPlan::key(std::size_t run_index) const {
  // Keyed off the serialized *instantiated* spec: any change that alters
  // what the run would actually simulate — an axis value, a base parameter,
  // the derived per-run seed — changes the key, and nothing else does.
  return RunKey::of(spec(run_index).serialize(), run_index);
}

RunResult SweepPlan::labelled_result(std::size_t run_index) const {
  CF_EXPECTS(run_index < size());
  RunResult result;
  result.run_index = run_index;
  result.point_index = run_index / sweep_.seeds;
  result.seed_index = run_index % sweep_.seeds;

  const auto values = sweep_.point(result.point_index);
  for (std::size_t k = 0; k < sweep_.axes.size(); ++k) {
    result.params.emplace_back(sweep_.axes[k].param, values[k]);
  }
  return result;
}

std::vector<std::size_t> SweepPlan::all_runs() const {
  std::vector<std::size_t> indices(size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  return indices;
}

std::vector<std::size_t> SweepPlan::shard(std::size_t shard_index,
                                          std::size_t shard_count) const {
  CF_EXPECTS(shard_count >= 1);
  CF_EXPECTS_MSG(shard_index < shard_count,
                 "shard index must be < shard count");
  std::vector<std::size_t> indices;
  indices.reserve(size() / shard_count + 1);
  for (std::size_t i = shard_index; i < size(); i += shard_count) {
    indices.push_back(i);
  }
  return indices;
}

}  // namespace creditflow::scenario
