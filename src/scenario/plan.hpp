// CreditFlow scenario engine: SweepPlan — the pure, enumerable run list of
// a sweep.
//
// A plan is (base spec × sweep grid × seeds) viewed as an indexed sequence
// of fully-instantiated runs. It performs no execution: executors
// (executor.hpp) run its entries, the run store (store.hpp) caches them by
// key, and SweepRunner (runner.hpp) composes all three. Every entry carries
// a stable content-addressed RunKey — a 128-bit hash of the instantiated
// spec's bit-exact text serialization combined with the run index — so a
// run computed today is recognizably "the same run" in any later process,
// on any machine, which is what makes cross-restart caching and
// shard-and-merge partitioning sound.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "scenario/spec.hpp"
#include "scenario/sweep.hpp"

namespace creditflow::scenario {

struct RunResult;  // executor.hpp

/// Content address of one run: 128 bits of FNV-1a/SplitMix64 over
/// (ScenarioSpec::serialize() of the instantiated spec ‖ run_index).
/// Identical across processes and platforms; two runs collide only if
/// their instantiated specs serialize identically AND they share a run
/// index — i.e. they are the same run.
struct RunKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  [[nodiscard]] bool operator==(const RunKey&) const = default;
  [[nodiscard]] bool operator<(const RunKey& o) const {
    return hi != o.hi ? hi < o.hi : lo < o.lo;
  }

  /// 32 lowercase hex characters; the on-disk cache address.
  [[nodiscard]] std::string hex() const;
  /// Inverse of hex(); nullopt unless exactly 32 hex characters.
  [[nodiscard]] static std::optional<RunKey> from_hex(std::string_view text);

  /// Key of `run_index` within a sweep whose instantiated spec serializes
  /// to `spec_text`.
  [[nodiscard]] static RunKey of(std::string_view spec_text,
                                 std::size_t run_index);
};

/// The enumerable run list of one sweep. Immutable after construction;
/// every accessor is a pure function of (base, sweep, run_index), so plans
/// built in different processes from the same inputs agree on every entry.
class SweepPlan {
 public:
  SweepPlan(ScenarioSpec base, SweepSpec sweep);

  [[nodiscard]] const ScenarioSpec& base() const { return base_; }
  [[nodiscard]] const SweepSpec& sweep() const { return sweep_; }

  /// Total runs (= sweep().num_runs()).
  [[nodiscard]] std::size_t size() const { return sweep_.num_runs(); }

  /// The fully-instantiated spec of run `run_index` (axes applied, per-run
  /// seed derived). run_index < size().
  [[nodiscard]] ScenarioSpec spec(std::size_t run_index) const;

  /// Content address of run `run_index`.
  [[nodiscard]] RunKey key(std::size_t run_index) const;

  /// A RunResult shell with all plan-derived metadata filled in —
  /// run/point/seed indices, axis params, derived seed — and no outcome.
  /// Executors execute into it; cache hits merge stored outcomes into it.
  [[nodiscard]] RunResult labelled_result(std::size_t run_index) const;

  /// Every run index, in order.
  [[nodiscard]] std::vector<std::size_t> all_runs() const;

  /// Strided partition for distributed execution: shard i of N owns run
  /// indices {j : j mod N == i}, so every shard receives a similar mix of
  /// grid points regardless of axis ordering. The union over i of
  /// shard(i, N) is exactly all_runs(); partial result sets merged by
  /// run_index reproduce the single-process output byte for byte.
  /// Requires shard_index < shard_count.
  [[nodiscard]] std::vector<std::size_t> shard(std::size_t shard_index,
                                               std::size_t shard_count) const;

 private:
  ScenarioSpec base_;
  SweepSpec sweep_;
};

}  // namespace creditflow::scenario
