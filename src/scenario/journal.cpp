#include "scenario/journal.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace creditflow::scenario {

namespace {

/// Extract the value of `"field":` from one flat journal line. Returns
/// false when the field is absent. Values are either unsigned integers or
/// double-quoted strings with no escapes — exactly what Journal emits.
bool extract_string(const std::string& line, const std::string& field,
                    std::string& out) {
  const std::string needle = "\"" + field + "\":\"";
  const auto at = line.find(needle);
  if (at == std::string::npos) return false;
  const auto begin = at + needle.size();
  const auto end = line.find('"', begin);
  if (end == std::string::npos) return false;
  out = line.substr(begin, end - begin);
  return true;
}

bool extract_u64(const std::string& line, const std::string& field,
                 std::uint64_t& out) {
  const std::string needle = "\"" + field + "\":";
  const auto at = line.find(needle);
  if (at == std::string::npos) return false;
  const char* begin = line.c_str() + at + needle.size();
  char* end = nullptr;
  out = std::strtoull(begin, &end, 10);
  return end != begin;
}

}  // namespace

JournalReplay replay_journal(const std::string& path) {
  JournalReplay replay;
  if (!std::filesystem::exists(path)) return replay;
  std::ifstream in(path);
  CF_EXPECTS_MSG(in.good(), "cannot read journal " + path);

  std::string line;
  std::size_t line_number = 0;
  auto drop = [&](const char* why) {
    ++replay.skipped;
    CF_LOG_WARN("journal " << path << ": dropping line " << line_number
                           << " (" << why << ")");
  };
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::string ev;
    if (!extract_string(line, "ev", ev)) {
      drop("no event type — torn or malformed");
      continue;
    }
    if (ev == "plan") {
      std::string fingerprint;
      std::uint64_t runs = 0;
      if (!extract_string(line, "fingerprint", fingerprint) ||
          !extract_u64(line, "runs", runs)) {
        drop("incomplete plan event");
        continue;
      }
      if (replay.has_plan) {
        // Re-opened journals re-log the plan; identical fingerprints are
        // the expected idempotent case, a different one means someone
        // pointed two different sweeps at the same journal file.
        CF_EXPECTS_MSG(fingerprint == replay.fingerprint,
                       "journal " + path +
                           " holds events for a different plan "
                           "(fingerprint mismatch)");
      } else {
        replay.has_plan = true;
        replay.fingerprint = fingerprint;
        replay.plan_runs = runs;
      }
      ++replay.events;
      continue;
    }
    std::uint64_t run = 0;
    if (!extract_u64(line, "run", run)) {
      drop("event without a run index");
      continue;
    }
    if (replay.has_plan && run >= replay.plan_runs) {
      drop("run index outside the journalled plan");
      continue;
    }
    const auto idx = static_cast<std::size_t>(run);
    if (ev == "grant") {
      std::string session;
      if (!extract_string(line, "session", session)) {
        drop("grant without a session token");
        continue;
      }
      if (replay.open_leases.count(idx) != 0) ++replay.duplicate_grants;
      if (replay.completed.count(idx) == 0) {
        replay.open_leases[idx] = session;  // last grant wins
      }
      ++replay.events;
    } else if (ev == "done") {
      std::string key_hex;
      const auto key = extract_string(line, "key", key_hex)
                           ? RunKey::from_hex(key_hex)
                           : std::nullopt;
      if (!key.has_value()) {
        drop("done without a valid run key");
        continue;
      }
      replay.completed.emplace(idx, *key);  // first completion wins
      replay.open_leases.erase(idx);
      ++replay.events;
    } else if (ev == "requeue") {
      replay.open_leases.erase(idx);
      ++replay.events;
    } else {
      drop("unknown event type");
    }
  }
  if (replay.skipped > 0) {
    CF_LOG_WARN("journal " << path << ": " << replay.skipped
                           << " line(s) dropped during replay");
  }
  return replay;
}

Journal::Journal(std::string path) : Journal(std::move(path), Options{}) {}

Journal::Journal(std::string path, Options options)
    : path_(std::move(path)) {
  CF_EXPECTS_MSG(!path_.empty(), "journal path must be non-empty");
  const auto parent = std::filesystem::path(path_).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  replay_ = replay_journal(path_);
  file_.open(path_, options.fsync);
}

void Journal::record_plan(std::string_view fingerprint,
                          std::uint64_t runs) {
  file_.append_record("{\"ev\":\"plan\",\"fingerprint\":\"" +
                      std::string(fingerprint) + "\",\"runs\":" +
                      std::to_string(runs) + "}");
}

void Journal::record_grant(std::size_t run, std::string_view session) {
  file_.append_record("{\"ev\":\"grant\",\"run\":" + std::to_string(run) +
                      ",\"session\":\"" + std::string(session) + "\"}");
}

void Journal::record_done(std::size_t run, const RunKey& key) {
  file_.append_record("{\"ev\":\"done\",\"run\":" + std::to_string(run) +
                      ",\"key\":\"" + key.hex() + "\"}");
}

void Journal::record_requeue(std::size_t run) {
  file_.append_record("{\"ev\":\"requeue\",\"run\":" +
                      std::to_string(run) + "}");
}

}  // namespace creditflow::scenario
