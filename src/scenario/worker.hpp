// CreditFlow scenario engine: the sweep worker — the client half of the
// work-stealing coordinator protocol (coordinator.hpp documents the wire
// format).
//
// A worker process runs `sessions` parallel lease loops, each over its own
// TCP connection: HELLO → receive the plan (spec + sweep text, from which
// the worker rebuilds the coordinator's exact SweepPlan) → repeatedly NEXT
// for a lease, execute the granted run through a scenario::Executor, and
// stream the finished run record back. A background heartbeat per session
// keeps leases alive across long runs; if the worker dies instead, the
// coordinator's lease timeout (or the broken connection) re-queues its
// work for the surviving fleet.
//
// Workers carry no sweep-specific state of their own — any machine with
// the binary joins a sweep knowing only HOST:PORT, and the coordinator's
// RunKey validation guarantees a worker built from mismatched code cannot
// contribute corrupt results.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "scenario/executor.hpp"

namespace creditflow::scenario {

/// Knobs for one worker process.
struct WorkerOptions {
  /// Parallel lease loops (connections); 0 → hardware concurrency. Each
  /// session executes one run at a time, so this is the worker's degree of
  /// parallelism.
  std::size_t sessions = 1;

  /// How runs are computed; nullptr → a shared in-process
  /// ThreadPoolExecutor (each session executes its single leased run
  /// inline). Not owned; must outlive run_worker.
  Executor* executor = nullptr;

  /// Heartbeat period while executing; 0 → a quarter of the lease timeout
  /// the coordinator announces in PLAN. Tests inject large values to
  /// provoke lease-timeout stealing.
  double heartbeat_seconds = 0.0;

  /// Sleep between NEXT retries while the coordinator answers WAIT (all
  /// remaining runs leased elsewhere) — the window in which a revoked
  /// lease is stolen.
  double wait_sleep_seconds = 0.05;

  /// Deadline for any single protocol reply.
  double io_timeout_seconds = 60.0;

  /// Total window for the initial connect, retried until it succeeds —
  /// lets workers start before the coordinator finishes binding.
  double connect_timeout_seconds = 10.0;

  /// Called after each run this worker computed and the coordinator
  /// accepted (serialized across sessions; progress reporting only).
  std::function<void(const RunResult&)> on_result;
};

/// What a worker process did, aggregated over its sessions.
struct WorkerReport {
  std::size_t runs_executed = 0;   ///< completions the coordinator recorded
  std::size_t duplicates = 0;      ///< completions it already had (DUP)
  std::size_t sessions_completed = 0;  ///< sessions that read DONE
  /// True when the sweep finished while this worker was attached (at least
  /// one session read DONE). False means the coordinator vanished first.
  bool completed = false;
  /// First hard session error (handshake failure, protocol violation,
  /// dead coordinator mid-lease); empty when everything ended orderly.
  std::string error;
};

/// Run a worker against the coordinator at host:port until the sweep
/// completes (DONE) or the connection is lost. Blocks; spawns
/// options.sessions internal threads.
[[nodiscard]] WorkerReport run_worker(const std::string& host,
                                      std::uint16_t port,
                                      const WorkerOptions& options = {});

}  // namespace creditflow::scenario
