// CreditFlow scenario engine: the sweep worker — the client half of the
// work-stealing coordinator protocol (coordinator.hpp documents the wire
// format, v2).
//
// A worker process runs `sessions` parallel lease loops, each over its own
// TCP connection: HELLO → receive the plan (spec + sweep text, from which
// the worker rebuilds the coordinator's exact SweepPlan) → repeatedly NEXT
// for a lease batch, execute the granted runs through a
// scenario::Executor, and stream each finished run record (plus its series
// CSV when the coordinator asked for one) back. A background heartbeat per
// session keeps leases alive across long runs.
//
// Fault tolerance: a session that loses its connection does not abandon
// its work — it reconnects with capped exponential backoff (seeded
// jitter), replays the handshake, verifies it is still the same plan, and
// sends RESUME <token> to reclaim the leases (and redeliver any result
// computed while disconnected) that the coordinator held in its orphan
// grace window. Only when the coordinator stays gone past the reconnect
// window does the session report failure; the coordinator's lease timeout
// then requeues its runs for the surviving fleet.
//
// Workers carry no sweep-specific state of their own — any machine with
// the binary joins a sweep knowing only HOST:PORT, and the coordinator's
// RunKey validation guarantees a worker built from mismatched code cannot
// contribute corrupt results.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "scenario/executor.hpp"

namespace creditflow::scenario {

/// Knobs for one worker process.
struct WorkerOptions {
  /// Parallel lease loops (connections); 0 → hardware concurrency. Each
  /// session executes one run at a time, so this is the worker's degree of
  /// parallelism.
  std::size_t sessions = 1;

  /// How runs are computed; nullptr → a shared in-process
  /// ThreadPoolExecutor (each session executes its leased runs inline,
  /// one at a time). Not owned; must outlive run_worker.
  Executor* executor = nullptr;

  /// Heartbeat period while executing; 0 → a quarter of the lease timeout
  /// the coordinator announces in PLAN. Tests inject large values to
  /// provoke lease-timeout stealing.
  double heartbeat_seconds = 0.0;

  /// First delay of the WAIT/connect backoff schedule (doubles per retry,
  /// jittered, capped at backoff_max_seconds; resets on success).
  double wait_sleep_seconds = 0.05;
  /// Ceiling of the backoff schedule.
  double backoff_max_seconds = 1.0;
  /// Seed of the jitter stream (mixed with the session index, so sessions
  /// never retry in lockstep). 0 → a fixed default.
  std::uint64_t backoff_seed = 0;

  /// Deadline for any single protocol reply.
  double io_timeout_seconds = 60.0;

  /// Total window for the initial connect, retried with backoff until it
  /// succeeds — lets workers start before the coordinator finishes
  /// binding.
  double connect_timeout_seconds = 10.0;

  /// Reconnect-and-RESUME after a lost connection instead of failing the
  /// session. Disable to reproduce protocol-v1 forfeit behaviour (tests).
  bool reconnect = true;
  /// Total window for each reconnect (backoff-retried); past it the
  /// session gives up and the coordinator's lease timeout takes over.
  double reconnect_window_seconds = 30.0;

  /// Called after each run this worker computed and the coordinator
  /// accepted (serialized across sessions; progress reporting only).
  std::function<void(const RunResult&)> on_result;
};

/// What a worker process did, aggregated over its sessions.
struct WorkerReport {
  std::size_t runs_executed = 0;   ///< completions the coordinator recorded
  std::size_t duplicates = 0;      ///< completions it already had (DUP)
  std::size_t sessions_completed = 0;  ///< sessions that read DONE
  /// Retry/backoff telemetry, aggregated over sessions.
  std::size_t connect_retries = 0;  ///< failed connect attempts retried
  std::size_t wait_retries = 0;     ///< WAIT replies slept through
  std::size_t reconnects = 0;       ///< connections re-established mid-sweep
  std::size_t leases_resumed = 0;   ///< leases reclaimed via RESUME
  /// True when the sweep finished while this worker was attached (at least
  /// one session read DONE). False means the coordinator vanished first.
  bool completed = false;
  /// First hard session error (handshake failure, protocol violation,
  /// dead coordinator past the reconnect window); empty when everything
  /// ended orderly.
  std::string error;
};

/// Run a worker against the coordinator at host:port until the sweep
/// completes (DONE) or the coordinator stays unreachable past the
/// reconnect window. Blocks; spawns options.sessions internal threads.
[[nodiscard]] WorkerReport run_worker(const std::string& host,
                                      std::uint16_t port,
                                      const WorkerOptions& options = {});

}  // namespace creditflow::scenario
