#include "scenario/runner.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "scenario/store.hpp"
#include "util/assert.hpp"

namespace creditflow::scenario {

SweepRunner::SweepRunner(ScenarioSpec base, SweepSpec sweep)
    : SweepRunner(std::move(base), std::move(sweep), Options()) {}

SweepRunner::SweepRunner(ScenarioSpec base, SweepSpec sweep, Options options)
    : base_(std::move(base)),
      sweep_(std::move(sweep)),
      options_(std::move(options)) {
  CF_EXPECTS(sweep_.seeds >= 1);
  CF_EXPECTS(options_.shard_count >= 1);
  CF_EXPECTS_MSG(options_.shard_index < options_.shard_count,
                 "shard index must be < shard count");
  CF_EXPECTS_MSG(options_.cache_dir.empty() || !options_.keep_reports,
                 "the run cache stores metrics only; caching a sweep "
                 "requires keep_reports = false");
}

std::vector<RunResult> SweepRunner::run() {
  CF_EXPECTS_MSG(!ran_, "SweepRunner::run may only be called once");
  ran_ = true;

  const SweepPlan plan(base_, sweep_);
  const std::vector<std::size_t> indices =
      options_.shard_count > 1
          ? plan.shard(options_.shard_index, options_.shard_count)
          : plan.all_runs();

  std::optional<RunStore> store;
  if (!options_.cache_dir.empty()) store.emplace(options_.cache_dir);

  // Resolve cache hits first (they complete "instantly" — the progress
  // callback sees them before any fresh run), collecting the misses for
  // the executor.
  std::vector<RunResult> results;
  results.reserve(indices.size());
  std::vector<std::size_t> misses;
  std::vector<std::size_t> miss_slots;  // position of each miss in results
  std::vector<RunKey> miss_keys;        // their keys, for the post-run put
  for (const std::size_t run_index : indices) {
    RunKey key;
    const RunResult* cached = nullptr;
    if (store) {
      key = plan.key(run_index);
      cached = store->find(key);
    }
    if (cached != nullptr) {
      // Re-label with the *current* plan's metadata: after a grid widens,
      // the cached run's indices may no longer match, but its key — and
      // therefore its metrics, seed, and telemetry — still do.
      RunResult hit = plan.labelled_result(run_index);
      hit.seed = cached->seed;
      hit.metrics = cached->metrics;
      hit.telemetry = cached->telemetry;
      hit.telemetry.from_cache = true;
      hit.error = cached->error;
      ++cache_hits_;
      if (options_.on_result) options_.on_result(hit);
      results.push_back(std::move(hit));
    } else {
      misses.push_back(run_index);
      miss_slots.push_back(results.size());
      if (store) miss_keys.push_back(key);
      results.emplace_back();  // placeholder, filled below
    }
  }

  ExecuteOptions exec_options;
  exec_options.jobs = options_.jobs;
  exec_options.keep_reports = options_.keep_reports;
  exec_options.on_result = options_.on_result;
  exec_options.series_every = options_.series_every;
  exec_options.series_out_prefix = options_.series_out_prefix;

  ThreadPoolExecutor default_executor;
  Executor& executor =
      options_.executor != nullptr ? *options_.executor : default_executor;
  std::vector<RunResult> fresh = executor.execute(plan, misses, exec_options);
  CF_ENSURES_MSG(fresh.size() == misses.size(),
                 "executor returned a result count that does not match the "
                 "requested run list");
  executed_ = fresh.size();

  for (std::size_t k = 0; k < fresh.size(); ++k) {
    if (store) store->put(miss_keys[k], fresh[k]);
    results[miss_slots[k]] = std::move(fresh[k]);
  }
  return results;
}

RunResult run_scenario(const ScenarioSpec& spec) {
  // The spec runs exactly as written — no seed derivation — so a single
  // scenario produces the same stream here, in market_cli's single-run
  // mode, and in a direct CreditMarket construction. Only sweep
  // replications derive per-run seeds.
  RunResult result;
  execute_spec_into(spec, result, /*keep_report=*/true);
  return result;
}

}  // namespace creditflow::scenario
