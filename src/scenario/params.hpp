// CreditFlow scenario engine: the declarative parameter namespace.
//
// Every tunable of a market run is addressable by a stable string key
// ("credits", "tax.rate", "churn.arrival_rate", ...) with a uniform double
// value (booleans are 0/1, enums their small-integer code). Scenario specs,
// sweep axes, and the CLI all speak this one namespace, so a parameter
// added here is immediately sweepable, serializable, and scriptable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/market.hpp"

namespace creditflow::scenario {

/// One addressable parameter: name, doc line, typed accessors, and a value
/// kind that defines what inputs are well-formed. Setters historically did
/// raw static_casts, so a negative count silently wrapped to a huge
/// unsigned — the kind lets every entry reject malformed values with a
/// diagnostic instead.
struct ParamDesc {
  enum class Kind : std::uint8_t {
    kReal,      ///< any finite double
    kCount,     ///< finite integer-valued, >= 0 (unsigned field behind it)
    kFraction,  ///< finite, in [0, 1]
    kBool,      ///< exactly 0 or 1
    kEnum,      ///< integer-valued code in [0, enum_max]
  };

  std::string_view key;
  std::string_view doc;
  double (*get)(const core::MarketConfig&);
  void (*set)(core::MarketConfig&, double);
  Kind kind = Kind::kReal;
  double enum_max = 0.0;  ///< highest valid code (kEnum only)

  /// Empty string when `value` is well-formed for this parameter; a
  /// one-line diagnostic ("peers: count must be a non-negative integer,
  /// got -5") otherwise.
  [[nodiscard]] std::string check(double value) const;
};

/// The full parameter table in canonical (serialization) order. Order
/// matters when applying a whole spec: e.g. `peers` raises `max_peers` to
/// stay consistent, and a later explicit `max_peers` entry then overrides.
[[nodiscard]] const std::vector<ParamDesc>& param_table();

/// Resolve a key (or one of its aliases: `c` → credits, `n` → peers) to its
/// descriptor; nullptr for unknown keys.
[[nodiscard]] const ParamDesc* find_param(std::string_view key);

/// Set one named parameter. Returns false (config untouched) for unknown
/// keys. Performs no value validation — see set_param_checked.
bool apply_param(core::MarketConfig& cfg, std::string_view key, double value);

/// Validate-then-set: returns a one-line diagnostic for unknown keys or
/// malformed values (config untouched), nullopt on success.
[[nodiscard]] std::optional<std::string> set_param_checked(
    core::MarketConfig& cfg, std::string_view key, double value);

/// Read one named parameter; nullopt for unknown keys.
[[nodiscard]] std::optional<double> read_param(const core::MarketConfig& cfg,
                                               std::string_view key);

}  // namespace creditflow::scenario
