// CreditFlow scenario engine: the declarative parameter namespace.
//
// Every tunable of a market run is addressable by a stable string key
// ("credits", "tax.rate", "churn.arrival_rate", ...) with a uniform double
// value (booleans are 0/1, enums their small-integer code). Scenario specs,
// sweep axes, and the CLI all speak this one namespace, so a parameter
// added here is immediately sweepable, serializable, and scriptable.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/market.hpp"

namespace creditflow::scenario {

/// One addressable parameter: name, doc line, and typed accessors.
struct ParamDesc {
  std::string_view key;
  std::string_view doc;
  double (*get)(const core::MarketConfig&);
  void (*set)(core::MarketConfig&, double);
};

/// The full parameter table in canonical (serialization) order. Order
/// matters when applying a whole spec: e.g. `peers` raises `max_peers` to
/// stay consistent, and a later explicit `max_peers` entry then overrides.
[[nodiscard]] const std::vector<ParamDesc>& param_table();

/// Resolve a key (or one of its aliases: `c` → credits, `n` → peers) to its
/// descriptor; nullptr for unknown keys.
[[nodiscard]] const ParamDesc* find_param(std::string_view key);

/// Set one named parameter. Returns false (config untouched) for unknown
/// keys.
bool apply_param(core::MarketConfig& cfg, std::string_view key, double value);

/// Read one named parameter; nullopt for unknown keys.
[[nodiscard]] std::optional<double> read_param(const core::MarketConfig& cfg,
                                               std::string_view key);

}  // namespace creditflow::scenario
