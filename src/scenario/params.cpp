#include "scenario/params.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>

#include "util/math.hpp"

namespace creditflow::scenario {

namespace {

// Shorthand for table entries: most parameters are a plain field read/write
// with a numeric cast.
template <typename T>
double as_double(T v) {
  return static_cast<double>(v);
}

constexpr double kTrue = 1.0;

double bool_value(bool b) { return b ? kTrue : 0.0; }

using Kind = ParamDesc::Kind;

/// Counts route through std::size_t / uint64_t casts; anything above this
/// is a typo, not a population size, and the cast itself would be UB-ish
/// territory on a double this large anyway.
constexpr double kMaxCount = 1e15;

const std::vector<ParamDesc>& table() {
  using core::MarketConfig;
  static const std::vector<ParamDesc> kTable = {
      // Population. `peers` keeps max_peers consistent (raised, never
      // lowered) so that a bare "peers=800" is valid on its own; an explicit
      // `max_peers` later in the table order wins.
      {"peers", "initial population",
       [](const MarketConfig& c) { return as_double(c.protocol.initial_peers); },
       [](MarketConfig& c, double v) {
         c.protocol.initial_peers = static_cast<std::size_t>(v);
         c.protocol.max_peers =
             std::max(c.protocol.max_peers, c.protocol.initial_peers);
       },
       Kind::kCount},
      {"max_peers", "slot capacity (churn headroom)",
       [](const MarketConfig& c) { return as_double(c.protocol.max_peers); },
       [](MarketConfig& c, double v) {
         c.protocol.max_peers = static_cast<std::size_t>(v);
       },
       Kind::kCount},
      {"credits", "initial endowment c per peer",
       [](const MarketConfig& c) {
         return as_double(c.protocol.initial_credits);
       },
       [](MarketConfig& c, double v) {
         c.protocol.initial_credits = static_cast<p2p::Credits>(v);
       },
       Kind::kCount},
      {"seed", "base RNG seed",
       [](const MarketConfig& c) { return as_double(c.protocol.seed); },
       [](MarketConfig& c, double v) {
         c.protocol.seed = static_cast<std::uint64_t>(v);
       },
       Kind::kCount},

      // Run shape.
      {"horizon", "simulated seconds",
       [](const MarketConfig& c) { return c.horizon; },
       [](MarketConfig& c, double v) { c.horizon = v; }},
      {"snapshot_interval", "metrics cadence in seconds",
       [](const MarketConfig& c) { return c.snapshot_interval; },
       [](MarketConfig& c, double v) { c.snapshot_interval = v; }},
      {"trace", "record the pairwise transaction trace (0/1)",
       [](const MarketConfig& c) { return bool_value(c.enable_trace); },
       [](MarketConfig& c, double v) { c.enable_trace = v != 0.0; },
       Kind::kBool},
      {"audit", "assert ledger conservation every snapshot (0/1)",
       [](const MarketConfig& c) { return bool_value(c.audit_every_snapshot); },
       [](MarketConfig& c, double v) { c.audit_every_snapshot = v != 0.0; },
       Kind::kBool},

      // Streaming protocol.
      {"round_seconds", "scheduling round length",
       [](const MarketConfig& c) { return c.protocol.round_seconds; },
       [](MarketConfig& c, double v) { c.protocol.round_seconds = v; }},
      {"stream_rate", "chunks emitted per second",
       [](const MarketConfig& c) { return c.protocol.stream_rate; },
       [](MarketConfig& c, double v) { c.protocol.stream_rate = v; }},
      {"window_chunks", "playback window size",
       [](const MarketConfig& c) {
         return as_double(c.protocol.window_chunks);
       },
       [](MarketConfig& c, double v) {
         c.protocol.window_chunks = static_cast<std::size_t>(v);
       },
       Kind::kCount},
      {"seed_fanout", "free copies of each fresh chunk",
       [](const MarketConfig& c) { return as_double(c.protocol.seed_fanout); },
       [](MarketConfig& c, double v) {
         c.protocol.seed_fanout = static_cast<std::size_t>(v);
       },
       Kind::kCount},
      {"overlay_degree", "target mean degree of the bootstrap overlay",
       [](const MarketConfig& c) { return c.protocol.overlay_mean_degree; },
       [](MarketConfig& c, double v) { c.protocol.overlay_mean_degree = v; }},
      {"owner_index", "purchase via the chunk->owner index (0/1)",
       [](const MarketConfig& c) {
         return bool_value(c.protocol.use_owner_index);
       },
       [](MarketConfig& c, double v) {
         c.protocol.use_owner_index = v != 0.0;
       },
       Kind::kBool},
      {"upload_capacity", "mean chunks/sec a peer can serve",
       [](const MarketConfig& c) { return c.protocol.upload_capacity; },
       [](MarketConfig& c, double v) { c.protocol.upload_capacity = v; }},
      {"base_spend_rate", "mean spending rate mu^s in credits/sec",
       [](const MarketConfig& c) { return c.protocol.base_spend_rate; },
       [](MarketConfig& c, double v) { c.protocol.base_spend_rate = v; }},
      {"max_purchase_attempts", "per peer per round",
       [](const MarketConfig& c) {
         return as_double(c.protocol.max_purchase_attempts);
       },
       [](MarketConfig& c, double v) {
         c.protocol.max_purchase_attempts = static_cast<std::size_t>(v);
       },
       Kind::kCount},
      {"warm_start_fill", "initial window fill fraction",
       [](const MarketConfig& c) { return c.protocol.warm_start_fill; },
       [](MarketConfig& c, double v) { c.protocol.warm_start_fill = v; },
       Kind::kFraction},
      {"reserve_credits", "liquidity-management reserve",
       [](const MarketConfig& c) { return c.protocol.reserve_credits; },
       [](MarketConfig& c, double v) { c.protocol.reserve_credits = v; }},
      {"deficit_seeding", "source pushes to emptiest buffers (0/1)",
       [](const MarketConfig& c) {
         return bool_value(c.protocol.deficit_seeding);
       },
       [](MarketConfig& c, double v) {
         c.protocol.deficit_seeding = v != 0.0;
       },
       Kind::kBool},
      {"seller_choice",
       "0=availability-uniform, 1=fill-weighted, 2=cheapest-ask",
       [](const MarketConfig& c) {
         return as_double(static_cast<int>(c.protocol.seller_choice));
       },
       [](MarketConfig& c, double v) {
         c.protocol.seller_choice =
             static_cast<p2p::ProtocolConfig::SellerChoice>(
                 static_cast<int>(v));
       },
       Kind::kEnum, 2.0},

      // Heterogeneity (the symmetric/asymmetric utilization lever).
      {"spend_cv", "lognormal CV of base spending rates",
       [](const MarketConfig& c) {
         return c.protocol.heterogeneity.spend_rate_cv;
       },
       [](MarketConfig& c, double v) {
         c.protocol.heterogeneity.spend_rate_cv = v;
       }},
      {"upload_cv", "lognormal CV of upload capacities",
       [](const MarketConfig& c) {
         return c.protocol.heterogeneity.upload_capacity_cv;
       },
       [](MarketConfig& c, double v) {
         c.protocol.heterogeneity.upload_capacity_cv = v;
       }},

      // Pricing.
      {"pricing.kind", "0=uniform, 1=poisson, 2=per-seller, 3=linear",
       [](const MarketConfig& c) {
         return as_double(static_cast<int>(c.protocol.pricing.kind));
       },
       [](MarketConfig& c, double v) {
         c.protocol.pricing.kind =
             static_cast<econ::PricingKind>(static_cast<int>(v));
       },
       Kind::kEnum, 3.0},
      {"pricing.uniform_price", "flat credits per chunk",
       [](const MarketConfig& c) {
         return as_double(c.protocol.pricing.uniform_price);
       },
       [](MarketConfig& c, double v) {
         c.protocol.pricing.uniform_price = static_cast<econ::Credits>(v);
       },
       Kind::kCount},
      {"pricing.poisson_mean", "mean of poisson prices",
       [](const MarketConfig& c) { return c.protocol.pricing.poisson_mean; },
       [](MarketConfig& c, double v) {
         c.protocol.pricing.poisson_mean = v;
       }},
      {"pricing.poisson_min", "price floor for poisson draws",
       [](const MarketConfig& c) {
         return as_double(c.protocol.pricing.poisson_min);
       },
       [](MarketConfig& c, double v) {
         c.protocol.pricing.poisson_min = static_cast<econ::Credits>(v);
       },
       Kind::kCount},
      {"pricing.per_seller_lo", "per-seller price range low",
       [](const MarketConfig& c) {
         return as_double(c.protocol.pricing.per_seller_lo);
       },
       [](MarketConfig& c, double v) {
         c.protocol.pricing.per_seller_lo = static_cast<econ::Credits>(v);
       },
       Kind::kCount},
      {"pricing.per_seller_hi", "per-seller price range high",
       [](const MarketConfig& c) {
         return as_double(c.protocol.pricing.per_seller_hi);
       },
       [](MarketConfig& c, double v) {
         c.protocol.pricing.per_seller_hi = static_cast<econ::Credits>(v);
       },
       Kind::kCount},

      // Spending policy (Sec. VI-D).
      {"spending.dynamic", "dynamic spending adjustment (0/1)",
       [](const MarketConfig& c) {
         return bool_value(c.protocol.spending.dynamic);
       },
       [](MarketConfig& c, double v) {
         c.protocol.spending.dynamic = v != 0.0;
       },
       Kind::kBool},
      {"spending.threshold", "dynamic-spending wealth threshold m",
       [](const MarketConfig& c) {
         return c.protocol.spending.dynamic_threshold;
       },
       [](MarketConfig& c, double v) {
         c.protocol.spending.dynamic_threshold = v;
       }},

      // Taxation (Sec. VI-C).
      {"tax.enabled", "income taxation (0/1)",
       [](const MarketConfig& c) { return bool_value(c.protocol.tax.enabled); },
       [](MarketConfig& c, double v) { c.protocol.tax.enabled = v != 0.0; },
       Kind::kBool},
      {"tax.rate", "proportion of income collected",
       [](const MarketConfig& c) { return c.protocol.tax.rate; },
       [](MarketConfig& c, double v) { c.protocol.tax.rate = v; },
       Kind::kFraction},
      {"tax.threshold", "wealth level above which income is taxed",
       [](const MarketConfig& c) { return c.protocol.tax.threshold; },
       [](MarketConfig& c, double v) { c.protocol.tax.threshold = v; }},

      // Churn (Sec. VI-E, the open market).
      {"churn.enabled", "peer churn (0/1)",
       [](const MarketConfig& c) {
         return bool_value(c.protocol.churn.enabled);
       },
       [](MarketConfig& c, double v) { c.protocol.churn.enabled = v != 0.0; },
       Kind::kBool},
      {"churn.arrival_rate", "Poisson arrivals per second",
       [](const MarketConfig& c) { return c.protocol.churn.arrival_rate; },
       [](MarketConfig& c, double v) { c.protocol.churn.arrival_rate = v; }},
      {"churn.mean_lifespan", "mean exponential lifespan in seconds",
       [](const MarketConfig& c) { return c.protocol.churn.mean_lifespan; },
       [](MarketConfig& c, double v) { c.protocol.churn.mean_lifespan = v; }},
      {"churn.join_links", "preferential-attachment links per join",
       [](const MarketConfig& c) {
         return as_double(c.protocol.churn.join_links);
       },
       [](MarketConfig& c, double v) {
         c.protocol.churn.join_links = static_cast<std::size_t>(v);
       },
       Kind::kCount},
      {"churn.rejoin_mint",
       "endowment on slot re-activation: 0=full, 1=none, 2=decayed",
       [](const MarketConfig& c) {
         return as_double(static_cast<int>(c.protocol.churn.rejoin_mint));
       },
       [](MarketConfig& c, double v) {
         c.protocol.churn.rejoin_mint =
             static_cast<p2p::ChurnConfig::RejoinMint>(static_cast<int>(v));
       },
       Kind::kEnum, 2.0},
      {"churn.rejoin_mint_decay", "per-reactivation decay for rejoin_mint=2",
       [](const MarketConfig& c) {
         return c.protocol.churn.rejoin_mint_decay;
       },
       [](MarketConfig& c, double v) {
         c.protocol.churn.rejoin_mint_decay = v;
       },
       Kind::kFraction},

      // Credit injection (the inflation counter-action).
      {"inject.enabled", "periodic credit minting (0/1)",
       [](const MarketConfig& c) {
         return bool_value(c.protocol.injection.enabled);
       },
       [](MarketConfig& c, double v) {
         c.protocol.injection.enabled = v != 0.0;
       },
       Kind::kBool},
      {"inject.interval", "seconds between minting rounds",
       [](const MarketConfig& c) {
         return c.protocol.injection.interval_seconds;
       },
       [](MarketConfig& c, double v) {
         c.protocol.injection.interval_seconds = v;
       }},
      {"inject.amount", "credits minted per peer per round",
       [](const MarketConfig& c) {
         return as_double(c.protocol.injection.credits_per_peer);
       },
       [](MarketConfig& c, double v) {
         c.protocol.injection.credits_per_peer =
             static_cast<p2p::Credits>(v);
       },
       Kind::kCount},

      // Order-book market (PR 8). market_mode=1 routes purchases through
      // the src/market/ book; 0 keeps the paper's direct seller pick.
      {"market_mode", "0=direct seller pick, 1=order book",
       [](const MarketConfig& c) {
         return as_double(static_cast<int>(c.protocol.market_mode));
       },
       [](MarketConfig& c, double v) {
         c.protocol.market_mode =
             static_cast<p2p::ProtocolConfig::MarketMode>(
                 static_cast<int>(v));
       },
       Kind::kEnum, 1.0},
      {"book.pricing", "0=fixed markup, 1=adaptive (tatonnement)",
       [](const MarketConfig& c) {
         return as_double(static_cast<int>(c.protocol.book.ask_pricing));
       },
       [](MarketConfig& c, double v) {
         c.protocol.book.ask_pricing =
             static_cast<p2p::ProtocolConfig::OrderBookConfig::AskPricing>(
                 static_cast<int>(v));
       },
       Kind::kEnum, 1.0},
      {"book.markup", "fixed-markup fraction over base_price",
       [](const MarketConfig& c) { return c.protocol.book.ask_markup; },
       [](MarketConfig& c, double v) { c.protocol.book.ask_markup = v; }},
      {"book.base_price", "initial/reference ask price in credits",
       [](const MarketConfig& c) {
         return as_double(c.protocol.book.base_price);
       },
       [](MarketConfig& c, double v) {
         c.protocol.book.base_price = static_cast<p2p::Credits>(v);
       },
       Kind::kCount},
      {"book.min_price", "ask price floor",
       [](const MarketConfig& c) {
         return as_double(c.protocol.book.min_price);
       },
       [](MarketConfig& c, double v) {
         c.protocol.book.min_price = static_cast<p2p::Credits>(v);
       },
       Kind::kCount},
      {"book.max_price", "ask price ceiling (book level count)",
       [](const MarketConfig& c) {
         return as_double(c.protocol.book.max_price);
       },
       [](MarketConfig& c, double v) {
         c.protocol.book.max_price = static_cast<p2p::Credits>(v);
       },
       Kind::kCount},
      {"book.reprice_rounds", "adaptive repricing cadence in rounds",
       [](const MarketConfig& c) {
         return as_double(c.protocol.book.reprice_rounds);
       },
       [](MarketConfig& c, double v) {
         c.protocol.book.reprice_rounds = static_cast<std::size_t>(v);
       },
       Kind::kCount},
      {"book.cross", "0=best-ask, 1=fill-weighted, 2=limit",
       [](const MarketConfig& c) {
         return as_double(static_cast<int>(c.protocol.book.cross));
       },
       [](MarketConfig& c, double v) {
         c.protocol.book.cross =
             static_cast<p2p::ProtocolConfig::OrderBookConfig::CrossStrategy>(
                 static_cast<int>(v));
       },
       Kind::kEnum, 2.0},
      {"book.limit_price", "resting-bid limit for book.cross=2",
       [](const MarketConfig& c) {
         return as_double(c.protocol.book.limit_price);
       },
       [](MarketConfig& c, double v) {
         c.protocol.book.limit_price = static_cast<p2p::Credits>(v);
       },
       Kind::kCount},
      {"book.seller_fraction", "fraction of peers that post asks",
       [](const MarketConfig& c) { return c.protocol.book.seller_fraction; },
       [](MarketConfig& c, double v) {
         c.protocol.book.seller_fraction = v;
       },
       Kind::kFraction},

      // Strategy layer (adversarial peer populations). All fractions at 0
      // keeps the layer disabled and every run byte-identical to default.
      {"strat.free_riders", "fraction of peers that never upload or sell",
       [](const MarketConfig& c) {
         return c.protocol.strat.free_rider_fraction;
       },
       [](MarketConfig& c, double v) {
         c.protocol.strat.free_rider_fraction = v;
       },
       Kind::kFraction},
      {"strat.whitewashers",
       "fraction that cycles identity when balance drops below threshold",
       [](const MarketConfig& c) {
         return c.protocol.strat.whitewash_fraction;
       },
       [](MarketConfig& c, double v) {
         c.protocol.strat.whitewash_fraction = v;
       },
       Kind::kFraction},
      {"strat.whitewash_threshold", "balance below which a whitewasher cycles",
       [](const MarketConfig& c) {
         return c.protocol.strat.whitewash_threshold;
       },
       [](MarketConfig& c, double v) {
         c.protocol.strat.whitewash_threshold = v;
       }},
      {"strat.colluders", "fraction running credit-wash cliques",
       [](const MarketConfig& c) { return c.protocol.strat.collude_fraction; },
       [](MarketConfig& c, double v) {
         c.protocol.strat.collude_fraction = v;
       },
       Kind::kFraction},
      {"strat.collude_clique", "peers per collusion ring (>= 2)",
       [](const MarketConfig& c) {
         return as_double(c.protocol.strat.collude_clique);
       },
       [](MarketConfig& c, double v) {
         c.protocol.strat.collude_clique = static_cast<std::size_t>(v);
       },
       Kind::kCount},
      {"strat.collude_amount", "credits washed per ring edge per round",
       [](const MarketConfig& c) {
         return as_double(c.protocol.strat.collude_amount);
       },
       [](MarketConfig& c, double v) {
         c.protocol.strat.collude_amount = static_cast<std::uint64_t>(v);
       },
       Kind::kCount},
      {"strat.staked", "fraction of stake-bonded seeders",
       [](const MarketConfig& c) { return c.protocol.strat.staked_fraction; },
       [](MarketConfig& c, double v) {
         c.protocol.strat.staked_fraction = v;
       },
       Kind::kFraction},
      {"strat.stake_amount", "credits a seeder bonds to advertise",
       [](const MarketConfig& c) {
         return as_double(c.protocol.strat.stake_amount);
       },
       [](MarketConfig& c, double v) {
         c.protocol.strat.stake_amount = static_cast<std::uint64_t>(v);
       },
       Kind::kCount},
      {"strat.stake_slash", "stake fraction forfeited on departure",
       [](const MarketConfig& c) { return c.protocol.strat.stake_slash; },
       [](MarketConfig& c, double v) { c.protocol.strat.stake_slash = v; },
       Kind::kFraction},
      {"strat.revalidate_rounds", "stake top-up cadence in rounds (>= 1)",
       [](const MarketConfig& c) {
         return as_double(c.protocol.strat.revalidate_rounds);
       },
       [](MarketConfig& c, double v) {
         c.protocol.strat.revalidate_rounds = static_cast<std::size_t>(v);
       },
       Kind::kCount},
  };
  return kTable;
}

/// Aliases accepted on input (the paper's own symbols) but never emitted.
std::string_view resolve_alias(std::string_view key) {
  if (key == "c") return "credits";
  if (key == "n") return "peers";
  return key;
}

}  // namespace

std::string ParamDesc::check(double value) const {
  std::ostringstream err;
  err << key << ": ";
  if (!std::isfinite(value)) {
    err << "value must be finite, got " << util::format_double(value);
    return err.str();
  }
  switch (kind) {
    case Kind::kReal:
      return {};
    case Kind::kCount:
      if (value < 0.0 || value != std::floor(value) || value > kMaxCount) {
        err << "count must be a non-negative integer, got "
            << util::format_double(value);
        return err.str();
      }
      return {};
    case Kind::kFraction:
      if (value < 0.0 || value > 1.0) {
        err << "fraction must be in [0, 1], got "
            << util::format_double(value);
        return err.str();
      }
      return {};
    case Kind::kBool:
      if (value != 0.0 && value != 1.0) {
        err << "flag must be 0 or 1, got " << util::format_double(value);
        return err.str();
      }
      return {};
    case Kind::kEnum:
      if (value != std::floor(value) || value < 0.0 || value > enum_max) {
        err << "code must be an integer in [0, "
            << static_cast<int>(enum_max) << "], got "
            << util::format_double(value);
        return err.str();
      }
      return {};
  }
  return {};
}

const std::vector<ParamDesc>& param_table() { return table(); }

const ParamDesc* find_param(std::string_view key) {
  const auto resolved = resolve_alias(key);
  for (const auto& desc : table()) {
    if (desc.key == resolved) return &desc;
  }
  return nullptr;
}

bool apply_param(core::MarketConfig& cfg, std::string_view key, double value) {
  const ParamDesc* desc = find_param(key);
  if (desc == nullptr) return false;
  desc->set(cfg, value);
  return true;
}

std::optional<std::string> set_param_checked(core::MarketConfig& cfg,
                                             std::string_view key,
                                             double value) {
  const ParamDesc* desc = find_param(key);
  if (desc == nullptr) {
    return "unknown parameter: " + std::string(key);
  }
  std::string err = desc->check(value);
  if (!err.empty()) return err;
  desc->set(cfg, value);
  return std::nullopt;
}

std::optional<double> read_param(const core::MarketConfig& cfg,
                                 std::string_view key) {
  const ParamDesc* desc = find_param(key);
  if (desc == nullptr) return std::nullopt;
  return desc->get(cfg);
}

}  // namespace creditflow::scenario
