// CreditFlow scenario engine: the parallel multi-seed sweep runner.
//
// Expands (base spec × sweep grid × seeds) into a run list and executes it
// on a worker pool. Each run is an independent CreditMarket with its own
// derived RNG stream; results land in a pre-sized vector slot keyed by run
// index, so the output — and everything aggregated from it — is identical
// whether the sweep executes on 1 thread or N.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/report.hpp"
#include "scenario/spec.hpp"
#include "scenario/sweep.hpp"

namespace creditflow::scenario {

/// Outcome of one run of a sweep.
struct RunResult {
  std::size_t run_index = 0;
  std::size_t point_index = 0;
  std::size_t seed_index = 0;
  std::uint64_t seed = 0;  ///< the derived per-run protocol seed

  /// Axis values of this run's grid point, in axis order.
  std::vector<std::pair<std::string, double>> params;
  /// Scalar readouts (standard_metrics order): gini, buffer fill, spend
  /// rates, exchange efficiency, ...
  std::vector<std::pair<std::string, double>> metrics;
  /// Full report (time series, final snapshots); cleared when the runner
  /// is configured with keep_reports = false.
  core::MarketReport report;
  /// Non-empty when the run threw; metrics are then empty.
  std::string error;

  /// Metric by name; NaN when absent.
  [[nodiscard]] double metric(std::string_view name) const;
};

/// Executes a sweep over a thread pool.
class SweepRunner {
 public:
  struct Options {
    /// Worker threads; 0 → hardware concurrency.
    std::size_t jobs = 0;
    /// Keep each run's full MarketReport (time series + final vectors).
    /// Disable for huge grids where only the scalar metrics matter.
    bool keep_reports = true;
    /// Called after each run completes (from worker threads, serialized —
    /// safe to print from). Progress reporting only; results are final.
    std::function<void(const RunResult&)> on_result;
  };

  SweepRunner(ScenarioSpec base, SweepSpec sweep);
  SweepRunner(ScenarioSpec base, SweepSpec sweep, Options options);

  /// Execute every run; returns results indexed by run_index. Callable
  /// once per instance.
  [[nodiscard]] std::vector<RunResult> run();

  [[nodiscard]] const ScenarioSpec& base() const { return base_; }
  [[nodiscard]] const SweepSpec& sweep() const { return sweep_; }

  /// The scalar readouts extracted from every run, in emission order.
  [[nodiscard]] static std::vector<std::pair<std::string, double>>
  standard_metrics(const core::MarketConfig& cfg,
                   const core::MarketReport& report);

 private:
  RunResult execute_one(std::size_t run_index) const;

  ScenarioSpec base_;
  SweepSpec sweep_;
  Options options_;
  bool ran_ = false;
};

/// Convenience: run a single scenario synchronously, exactly as written —
/// the spec's own seed is used verbatim (unlike sweep runs, which derive a
/// per-run stream), so the result matches a direct CreditMarket run of
/// spec.materialize().
[[nodiscard]] RunResult run_scenario(const ScenarioSpec& spec);

}  // namespace creditflow::scenario
