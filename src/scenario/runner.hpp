// CreditFlow scenario engine: SweepRunner — the facade over the sweep
// execution API.
//
// The API splits into three composable pieces: SweepPlan (plan.hpp) — the
// pure enumerable run list with content-addressed RunKeys; Executor
// (executor.hpp) — how runs get computed (in-process thread pool by
// default); and RunStore (store.hpp) — the on-disk cache consulted before
// executing and appended to after. SweepRunner wires them together:
//
//   plan runs → partition (optional shard i/N) → cache lookup →
//   execute the misses → persist fresh results → merge by run_index
//
// so re-running a grid after adding axes or seeds only computes the keys
// the store has not seen, and a run list split across processes merges
// back into byte-identical output. Existing callers keep compiling: the
// (base, sweep[, options]) constructor and run() behave exactly as the
// pre-split monolithic runner did when no cache/shard option is set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/executor.hpp"
#include "scenario/plan.hpp"
#include "scenario/spec.hpp"
#include "scenario/sweep.hpp"

namespace creditflow::scenario {

/// Executes a sweep: plan + executor + store composition.
class SweepRunner {
 public:
  struct Options {
    /// Worker threads; 0 → hardware concurrency.
    std::size_t jobs = 0;
    /// Keep each run's full MarketReport (time series + final vectors).
    /// Disable for huge grids where only the scalar metrics matter.
    bool keep_reports = true;
    /// Called after each run completes (from worker threads, serialized —
    /// safe to print from) and for each cache hit (telemetry.from_cache).
    /// Progress reporting only; results are final.
    std::function<void(const RunResult&)> on_result;

    /// Content-addressed run cache directory; empty disables caching.
    /// Runs already in the store are not re-executed. Requires
    /// keep_reports == false: the store holds scalar metrics + telemetry,
    /// never full reports.
    std::string cache_dir;

    /// Execute only shard shard_index of shard_count (strided partition of
    /// the run list; see SweepPlan::shard). The returned results cover just
    /// that shard; partial sets from all shards merged by run_index
    /// reproduce the single-process output byte for byte.
    std::size_t shard_index = 0;
    std::size_t shard_count = 1;

    /// Executor override (not owned; must outlive the runner). nullptr →
    /// the built-in in-process ThreadPoolExecutor.
    Executor* executor = nullptr;

    /// Per-round time-series collection, forwarded to ExecuteOptions: each
    /// freshly-executed run writes "<series_out_prefix>.run<idx>.csv" when
    /// both are set. Off the RunKey — cache hits skip the simulation and
    /// therefore produce no series.
    std::size_t series_every = 0;
    std::string series_out_prefix;
  };

  SweepRunner(ScenarioSpec base, SweepSpec sweep);
  SweepRunner(ScenarioSpec base, SweepSpec sweep, Options options);

  /// Execute (or recall from cache) every run of this runner's shard;
  /// returns results ordered by run_index. Callable once per instance.
  [[nodiscard]] std::vector<RunResult> run();

  /// Runs answered by the cache / freshly executed in the last run().
  [[nodiscard]] std::size_t cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::size_t executed() const { return executed_; }

  [[nodiscard]] const ScenarioSpec& base() const { return base_; }
  [[nodiscard]] const SweepSpec& sweep() const { return sweep_; }

  /// Deprecated shim for the pre-split API; use the free
  /// scenario::standard_metrics (executor.hpp) instead.
  [[nodiscard]] static std::vector<std::pair<std::string, double>>
  standard_metrics(const core::MarketConfig& cfg,
                   const core::MarketReport& report) {
    return scenario::standard_metrics(cfg, report);
  }

 private:
  ScenarioSpec base_;
  SweepSpec sweep_;
  Options options_;
  std::size_t cache_hits_ = 0;
  std::size_t executed_ = 0;
  bool ran_ = false;
};

/// Convenience: run a single scenario synchronously, exactly as written —
/// the spec's own seed is used verbatim (unlike sweep runs, which derive a
/// per-run stream), so the result matches a direct CreditMarket run of
/// spec.materialize().
[[nodiscard]] RunResult run_scenario(const ScenarioSpec& spec);

}  // namespace creditflow::scenario
