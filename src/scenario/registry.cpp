#include "scenario/registry.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace creditflow::scenario {

namespace {

/// The paper's baseline market (Sec. VI): scale-free overlay, uniform
/// 1-credit pricing, symmetric capabilities — what bench_common's
/// paper_baseline builds, as a spec.
ScenarioSpec paper_baseline(std::string name, std::string description,
                            std::size_t peers, std::uint64_t credits,
                            double horizon) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  spec.config.protocol.initial_peers = peers;
  spec.config.protocol.max_peers = peers;
  spec.config.protocol.initial_credits = credits;
  spec.config.protocol.seed = 2012;
  spec.config.horizon = horizon;
  spec.config.snapshot_interval = std::max(50.0, horizon / 40.0);
  return spec;
}

/// Asymmetric-utilization variant: heterogeneous spending rates (lognormal,
/// CV 0.3) — frugal peers accumulate, the condensation pressure is real.
ScenarioSpec paper_asymmetric(std::string name, std::string description,
                              std::size_t peers, std::uint64_t credits,
                              double horizon) {
  auto spec = paper_baseline(std::move(name), std::move(description), peers,
                             credits, horizon);
  spec.config.protocol.heterogeneity.spend_rate_cv = 0.3;
  return spec;
}

ScenarioRegistry make_builtin() {
  ScenarioRegistry reg;

  reg.add(paper_baseline(
      "baseline", "Paper baseline: symmetric utilization, c = 100.", 500,
      100, 20000.0));
  reg.add(paper_asymmetric(
      "asymmetric",
      "Asymmetric utilization: heterogeneous spending rates, CV 0.3.", 500,
      100, 20000.0));

  {
    // Fig. 1, condensed: "without careful design" — capacity headroom
    // captured by chunk-rich peers, Poisson prices, no liquidity
    // management, no server help. Warmup 0.9: spending rates are read over
    // the trailing tenth of the (doubled) run.
    auto spec = paper_baseline(
        "fig01_condensed",
        "Fig. 1 condensed case: c = 200, Poisson prices, fill-weighted "
        "sellers, no safeguards.",
        500, 200, 12000.0);
    spec.config.protocol.upload_capacity = 8.0;
    spec.config.protocol.seller_choice =
        p2p::ProtocolConfig::SellerChoice::kFillWeighted;
    spec.config.protocol.pricing.kind = econ::PricingKind::kPoisson;
    spec.config.protocol.pricing.poisson_mean = 1.0;
    spec.config.protocol.reserve_credits = 0.0;
    spec.config.protocol.deficit_seeding = false;
    spec.warmup_fraction = 0.9;
    reg.add(std::move(spec));
  }
  {
    auto spec = paper_baseline(
        "fig01_balanced",
        "Fig. 1 balanced case: c = 12, uniform 1-credit pricing.", 500, 12,
        6000.0);
    spec.warmup_fraction = 0.9;
    reg.add(std::move(spec));
  }

  reg.add(paper_baseline(
      "fig04_efficiency",
      "Fig. 4 exchange-efficiency operating point: small market, short "
      "horizon.",
      300, 100, 3000.0));

  reg.add(paper_baseline(
      "fig07_symmetric",
      "Fig. 7: Gini(t) under symmetric utilization; sweep credits over "
      "{50, 100, 200}.",
      500, 100, 20000.0));

  reg.add(paper_asymmetric(
      "fig08_asymmetric",
      "Fig. 8: Gini(t) under asymmetric utilization; sweep credits over "
      "{50, 100, 200}.",
      500, 100, 20000.0));

  {
    auto spec = paper_asymmetric(
        "fig09_taxation",
        "Fig. 9: threshold income taxation in the asymmetric market; sweep "
        "tax.rate and tax.threshold.",
        400, 100, 15000.0);
    spec.config.snapshot_interval = spec.config.horizon / 30.0;
    spec.config.protocol.tax.enabled = true;
    spec.config.protocol.tax.rate = 0.1;
    spec.config.protocol.tax.threshold = 50.0;
    reg.add(std::move(spec));
  }
  {
    auto spec = paper_asymmetric(
        "fig10_dynamic_spending",
        "Fig. 10: dynamic spending-rate adjustment with wealth threshold "
        "m; sweep spending.threshold.",
        400, 100, 15000.0);
    spec.config.snapshot_interval = spec.config.horizon / 30.0;
    spec.config.protocol.spending.dynamic = true;
    spec.config.protocol.spending.dynamic_threshold = 100.0;
    reg.add(std::move(spec));
  }
  {
    auto spec = paper_asymmetric(
        "fig11_churn",
        "Fig. 11: the open market — Poisson arrivals, exponential "
        "lifespans; sweep churn.arrival_rate and churn.mean_lifespan.",
        500, 100, 8000.0);
    spec.config.snapshot_interval = spec.config.horizon / 20.0;
    spec.config.protocol.churn.enabled = true;
    spec.config.protocol.churn.arrival_rate = 1.0;
    spec.config.protocol.churn.mean_lifespan = 500.0;
    // Headroom for the churning population on top of the bootstrap cohort,
    // sized for the bench/CLI sweeps over the churn axes (up to 4 peers/s
    // × 250 s ≈ 1000 expected alive) — capacity drops would silently skew
    // the arrival process.
    spec.config.protocol.max_peers = 2048;
    reg.add(std::move(spec));
  }
  {
    // ext01: first-price procurement auction in the condensed-pressure
    // market (the pricing mechanism the paper defers to future work).
    auto spec = paper_baseline(
        "ext01_auction",
        "Extension: cheapest-ask procurement auction under condensation "
        "pressure.",
        400, 200, 8000.0);
    spec.config.protocol.upload_capacity = 8.0;
    spec.config.protocol.pricing.kind = econ::PricingKind::kPoisson;
    spec.config.protocol.pricing.poisson_mean = 1.0;
    spec.config.protocol.reserve_credits = 0.0;
    spec.config.protocol.deficit_seeding = false;
    spec.config.protocol.seller_choice =
        p2p::ProtocolConfig::SellerChoice::kCheapestAsk;
    reg.add(std::move(spec));
  }
  {
    auto spec = paper_asymmetric(
        "ext02_injection",
        "Extension: periodic credit injection (inflation trade-off); sweep "
        "inject.interval.",
        400, 100, 12000.0);
    spec.config.snapshot_interval = spec.config.horizon / 24.0;
    spec.config.protocol.injection.enabled = true;
    spec.config.protocol.injection.interval_seconds = 100.0;
    spec.config.protocol.injection.credits_per_peer = 1;
    reg.add(std::move(spec));
  }
  {
    // obk01: Ramaswamy et al.'s supply curve — adaptive (tatonnement)
    // repricing discovers a clearing price that falls as the seller pool
    // grows. Sweep book.seller_fraction over e.g. {0.2, 0.4, 0.6, 0.8,
    // 1.0} and read the clearing_price metric: scarce supply clears high,
    // abundant supply competes the price down to the floor.
    auto spec = paper_baseline(
        "obk01_clearing",
        "Order book: clearing price vs seeder fraction under adaptive ask "
        "repricing; sweep book.seller_fraction.",
        400, 200, 8000.0);
    spec.config.protocol.market_mode =
        p2p::ProtocolConfig::MarketMode::kOrderBook;
    // Demand light enough that a small seller pool can still serve the
    // room: the price signal (scarce supply clears high) then dominates
    // the availability signal (scarce supply starves replication, which
    // would drag per-seller fills — and thus adaptive prices — *down*).
    spec.config.protocol.stream_rate = 0.5;
    spec.config.protocol.book.ask_pricing =
        p2p::ProtocolConfig::OrderBookConfig::AskPricing::kAdaptive;
    spec.config.protocol.book.base_price = 2;
    spec.config.protocol.book.max_price = 16;
    spec.config.protocol.book.reprice_rounds = 8;
    spec.config.protocol.book.seller_fraction = 0.5;
    reg.add(std::move(spec));
  }
  {
    // obk02: sustainability vs ask markup — fixed-markup sellers price a
    // constant fraction over base; past the buyers' willingness the market
    // starves (fill_ratio and mean_buffer_fill collapse, bankrupt_fraction
    // climbs). Sweep book.markup over e.g. {0, 0.5, 1, 2, 4}.
    auto spec = paper_asymmetric(
        "obk02_markup",
        "Order book: sustainability vs fixed ask markup; sweep "
        "book.markup.",
        400, 100, 8000.0);
    spec.config.protocol.market_mode =
        p2p::ProtocolConfig::MarketMode::kOrderBook;
    spec.config.protocol.book.ask_pricing =
        p2p::ProtocolConfig::OrderBookConfig::AskPricing::kFixedMarkup;
    spec.config.protocol.book.ask_markup = 1.0;
    spec.config.protocol.book.base_price = 1;
    spec.config.protocol.book.max_price = 16;
    reg.add(std::move(spec));
  }

  {
    // adv01: free-riders in the closed asymmetric market — consume-only
    // peers never upload (and never post asks), so the honest majority
    // carries the full serving load. Sweep strat.free_riders over e.g.
    // {0, 0.1, 0.2, 0.3, 0.5} and read honest_fill / attacker_credit_share
    // against converged_gini.
    auto spec = paper_asymmetric(
        "adv01_freeride",
        "Adversarial: free-rider fraction vs availability and Gini; sweep "
        "strat.free_riders.",
        400, 100, 8000.0);
    spec.config.snapshot_interval = spec.config.horizon / 20.0;
    spec.config.protocol.strat.free_rider_fraction = 0.2;
    reg.add(std::move(spec));
  }
  {
    // adv02: whitewashers in the open (churn) market — the rejoin-mint
    // loophole under attack. Each attacker burns its residual balance,
    // departs, and re-arrives freshly endowed whenever it goes broke;
    // whitewash_extracted measures the net credit pulled from the mint.
    // Sweep strat.whitewashers (and churn.rejoin_mint 0..2 to watch the
    // policy close the loophole).
    auto spec = paper_asymmetric(
        "adv02_whitewash",
        "Adversarial: whitewasher identity cycling under churn; sweep "
        "strat.whitewashers and churn.rejoin_mint.",
        500, 100, 8000.0);
    spec.config.snapshot_interval = spec.config.horizon / 20.0;
    spec.config.protocol.churn.enabled = true;
    spec.config.protocol.churn.arrival_rate = 1.0;
    spec.config.protocol.churn.mean_lifespan = 500.0;
    spec.config.protocol.max_peers = 2048;
    spec.config.protocol.strat.whitewash_fraction = 0.2;
    spec.config.protocol.strat.whitewash_threshold = 10.0;
    reg.add(std::move(spec));
  }
  {
    // adv03: the stake defense in the order-book market under churn —
    // bonded seeders get seeding priority and exclusive asks, whitewashers
    // still cycle, and early departure slashes the bond to the treasury.
    // Sweep strat.staked (or strat.stake_amount) against honest_fill and
    // stake_slashed to price the bond.
    auto spec = paper_asymmetric(
        "adv03_stake",
        "Adversarial defense: stake-bonded seeders vs whitewashers in the "
        "order-book market; sweep strat.staked.",
        400, 100, 8000.0);
    spec.config.snapshot_interval = spec.config.horizon / 20.0;
    spec.config.protocol.market_mode =
        p2p::ProtocolConfig::MarketMode::kOrderBook;
    spec.config.protocol.book.ask_pricing =
        p2p::ProtocolConfig::OrderBookConfig::AskPricing::kFixedMarkup;
    spec.config.protocol.book.ask_markup = 1.0;
    spec.config.protocol.book.base_price = 1;
    spec.config.protocol.book.max_price = 16;
    spec.config.protocol.churn.enabled = true;
    spec.config.protocol.churn.arrival_rate = 0.5;
    spec.config.protocol.churn.mean_lifespan = 500.0;
    spec.config.protocol.max_peers = 1536;
    spec.config.protocol.strat.whitewash_fraction = 0.1;
    spec.config.protocol.strat.whitewash_threshold = 10.0;
    spec.config.protocol.strat.staked_fraction = 0.2;
    spec.config.protocol.strat.stake_amount = 25;
    spec.config.protocol.strat.stake_slash = 0.5;
    spec.config.protocol.strat.revalidate_rounds = 16;
    reg.add(std::move(spec));
  }

  return reg;
}

}  // namespace

void ScenarioRegistry::add(ScenarioSpec spec) {
  for (auto& existing : specs_) {
    if (existing.name == spec.name) {
      existing = std::move(spec);
      return;
    }
  }
  specs_.push_back(std::move(spec));
}

const ScenarioSpec* ScenarioRegistry::find(std::string_view name) const {
  for (const auto& spec : specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

ScenarioSpec ScenarioRegistry::get(std::string_view name) const {
  const ScenarioSpec* spec = find(name);
  CF_EXPECTS_MSG(spec != nullptr,
                 "unknown scenario: " + std::string(name));
  return *spec;
}

bool ScenarioRegistry::contains(std::string_view name) const {
  return find(name) != nullptr;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& spec : specs_) out.push_back(spec.name);
  return out;
}

const ScenarioRegistry& ScenarioRegistry::builtin() {
  static const ScenarioRegistry kRegistry = make_builtin();
  return kRegistry;
}

}  // namespace creditflow::scenario
