#include "scenario/sweep.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "scenario/params.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace creditflow::scenario {

namespace {

double parse_number(const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  CF_EXPECTS_MSG(end != text.c_str() && *end == '\0',
                 "bad number in sweep axis: " + text);
  return v;
}

}  // namespace

SweepAxis SweepAxis::parse(const std::string& text) {
  const auto eq = text.find('=');
  CF_EXPECTS_MSG(eq != std::string::npos,
                 "sweep axis must be key=values, got: " + text);
  SweepAxis axis;
  axis.param = text.substr(0, eq);
  CF_EXPECTS_MSG(find_param(axis.param) != nullptr || axis.param == "warmup",
                 "unknown sweep parameter: " + axis.param);
  const std::string values = text.substr(eq + 1);
  CF_EXPECTS_MSG(!values.empty(), "empty sweep axis: " + text);

  if (values.find(':') != std::string::npos) {
    // lo:hi:step inclusive range (step defaults to 1).
    const auto c1 = values.find(':');
    const auto c2 = values.find(':', c1 + 1);
    const double lo = parse_number(values.substr(0, c1));
    const double hi = parse_number(
        values.substr(c1 + 1, c2 == std::string::npos ? std::string::npos
                                                      : c2 - c1 - 1));
    const double step =
        c2 == std::string::npos ? 1.0 : parse_number(values.substr(c2 + 1));
    CF_EXPECTS_MSG(step > 0.0, "sweep step must be positive: " + text);
    CF_EXPECTS_MSG(hi >= lo, "sweep range is empty: " + text);
    // Index-based stepping avoids accumulating float error over long ranges;
    // the epsilon admits hi itself when (hi-lo) is a whole multiple of step.
    const auto count = static_cast<std::size_t>(
        std::floor((hi - lo) / step + 1e-9)) + 1;
    axis.values.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      axis.values.push_back(lo + static_cast<double>(i) * step);
    }
  } else {
    // Comma-separated list (or a single value).
    std::size_t pos = 0;
    while (pos <= values.size()) {
      const auto comma = values.find(',', pos);
      const auto end = comma == std::string::npos ? values.size() : comma;
      axis.values.push_back(parse_number(values.substr(pos, end - pos)));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  CF_ENSURES(!axis.values.empty());
  // Validate every instantiated value against the parameter's kind up
  // front, so a malformed axis dies with one diagnostic at parse time
  // instead of wrapping through a cast mid-sweep. `warmup` is a fraction
  // (see ScenarioSpec::set_checked).
  const ParamDesc* desc = find_param(axis.param);
  for (const double v : axis.values) {
    if (desc != nullptr) {
      const std::string err = desc->check(v);
      CF_EXPECTS_MSG(err.empty(), "bad sweep value: " + err);
    } else {
      CF_EXPECTS_MSG(v >= 0.0 && v <= 1.0,
                     "bad sweep value: warmup: fraction must be in [0, 1], "
                     "got " + util::format_double(v));
    }
  }
  return axis;
}

std::string SweepSpec::serialize() const {
  std::string out = "seeds " + std::to_string(seeds) + "\n";
  for (const auto& axis : axes) {
    out += "axis " + axis.param + "=";
    for (std::size_t i = 0; i < axis.values.size(); ++i) {
      if (i > 0) out += ',';
      out += util::format_double(axis.values[i]);
    }
    out += '\n';
  }
  return out;
}

SweepSpec SweepSpec::parse(const std::string& text) {
  SweepSpec sweep;
  bool saw_seeds = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const auto end = text.find('\n', pos);
    const std::string line =
        text.substr(pos, end == std::string::npos ? std::string::npos
                                                  : end - pos);
    pos = end == std::string::npos ? text.size() : end + 1;
    if (line.empty()) continue;
    if (line.rfind("seeds ", 0) == 0) {
      char* parse_end = nullptr;
      const char* begin = line.c_str() + 6;
      // Digits only, and no ERANGE saturation: strtoull silently wraps a
      // leading minus ("seeds -1") and clamps overflow ("seeds 2e19+") to
      // 2^64-1 — both must reject, not become a 2^64-run plan.
      const bool starts_with_digit = *begin >= '0' && *begin <= '9';
      errno = 0;
      const unsigned long long v = std::strtoull(begin, &parse_end, 10);
      CF_EXPECTS_MSG(starts_with_digit && *parse_end == '\0' && v >= 1 &&
                         errno != ERANGE,
                     "bad sweep seeds line: " + line);
      sweep.seeds = static_cast<std::size_t>(v);
      saw_seeds = true;
    } else if (line.rfind("axis ", 0) == 0) {
      sweep.axes.push_back(SweepAxis::parse(line.substr(5)));
    } else {
      CF_EXPECTS_MSG(false, "bad sweep line: " + line);
    }
  }
  CF_EXPECTS_MSG(saw_seeds, "sweep text is missing the seeds line");
  return sweep;
}

std::size_t SweepSpec::num_points() const {
  std::size_t n = 1;
  for (const auto& axis : axes) n *= axis.values.size();
  return n;
}

std::vector<double> SweepSpec::point(std::size_t point_index) const {
  CF_EXPECTS(point_index < num_points());
  std::vector<double> out(axes.size());
  // Mixed-radix decomposition, last axis fastest.
  std::size_t rem = point_index;
  for (std::size_t k = axes.size(); k-- > 0;) {
    const auto radix = axes[k].values.size();
    out[k] = axes[k].values[rem % radix];
    rem /= radix;
  }
  return out;
}

ScenarioSpec SweepSpec::instantiate(const ScenarioSpec& base,
                                    std::size_t run_index) const {
  CF_EXPECTS(seeds >= 1);
  CF_EXPECTS(run_index < num_runs());
  const std::size_t point_index = run_index / seeds;

  ScenarioSpec spec = base;
  const auto values = point(point_index);
  for (std::size_t k = 0; k < axes.size(); ++k) {
    CF_EXPECTS_MSG(spec.set(axes[k].param, values[k]),
                   "unknown sweep parameter: " + axes[k].param);
  }
  // Per-run stream derivation AFTER the axes apply, so an axis may sweep
  // the base seed itself and still get decorrelated replications.
  spec.config.protocol.seed =
      util::derive_seed(spec.config.protocol.seed, run_index);
  return spec;
}

}  // namespace creditflow::scenario
