#include "scenario/worker.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <thread>

#include "scenario/coordinator.hpp"
#include "scenario/store.hpp"
#include "util/logging.hpp"
#include "util/socket.hpp"

namespace creditflow::scenario {

namespace {

using Clock = std::chrono::steady_clock;

struct SessionOutcome {
  std::size_t executed = 0;
  std::size_t duplicates = 0;
  bool saw_done = false;
  std::string error;
};

/// Connect with retries until `timeout_seconds` elapses, so workers may
/// start before the coordinator is listening.
util::Socket connect_with_retry(const std::string& host, std::uint16_t port,
                                double timeout_seconds) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_seconds));
  while (true) {
    try {
      return util::Socket::connect(host, port, 1.0);
    } catch (const util::SocketError&) {
      if (Clock::now() >= deadline) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
}

/// One lease loop over one connection. `io_mutex` in the session (not
/// shared across sessions) serializes request/response pairs between the
/// main loop and the heartbeat thread — the coordinator answers strictly
/// in order, so whoever holds the mutex reads its own reply.
SessionOutcome run_session(const std::string& host, std::uint16_t port,
                           const WorkerOptions& options, Executor& executor,
                           std::mutex& callback_mutex) {
  SessionOutcome outcome;
  util::Socket socket;
  try {
    socket = connect_with_retry(host, port, options.connect_timeout_seconds);
  } catch (const util::SocketError& e) {
    outcome.error = e.what();
    return outcome;
  }
  util::SocketReader reader(socket);
  const double io_timeout = options.io_timeout_seconds;

  // ---- Handshake: HELLO → PLAN + payload → rebuild the plan. ------------
  std::string line;
  if (!socket.send_all(std::string("HELLO ") + kSweepProtocolVersion +
                       "\n") ||
      reader.read_line(line, io_timeout) != util::IoStatus::kOk) {
    outcome.error = "handshake failed: no PLAN from coordinator";
    return outcome;
  }
  long long lease_ms = 0;
  std::size_t spec_len = 0;
  std::size_t sweep_len = 0;
  {
    const char* cursor = line.c_str();
    if (line.rfind("PLAN ", 0) != 0) {
      outcome.error = "handshake failed: " + line;
      return outcome;
    }
    char* end = nullptr;
    lease_ms = std::strtoll(cursor + 5, &end, 10);
    spec_len = std::strtoull(end, &end, 10);
    sweep_len = std::strtoull(end, &end, 10);
    if (lease_ms <= 0 || spec_len == 0 || *end != '\0') {
      outcome.error = "malformed PLAN header: " + line;
      return outcome;
    }
  }
  std::string spec_text;
  std::string sweep_text;
  if (reader.read_exact(spec_text, spec_len, io_timeout) !=
          util::IoStatus::kOk ||
      reader.read_exact(sweep_text, sweep_len, io_timeout) !=
          util::IoStatus::kOk) {
    outcome.error = "short PLAN payload";
    return outcome;
  }
  std::optional<SweepPlan> plan;
  try {
    plan.emplace(ScenarioSpec::parse(spec_text), SweepSpec::parse(sweep_text));
  } catch (const std::exception& e) {
    outcome.error = std::string("cannot parse the coordinator's plan: ") +
                    e.what();
    return outcome;
  }

  // ---- Heartbeat: keep leases alive while a run executes. ---------------
  const double heartbeat =
      options.heartbeat_seconds > 0.0
          ? options.heartbeat_seconds
          : std::clamp(static_cast<double>(lease_ms) / 4000.0, 0.05, 5.0);
  std::mutex io_mutex;
  std::atomic<bool> stop{false};
  std::atomic<bool> broken{false};
  std::thread heartbeat_thread([&] {
    auto next_beat = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                        std::chrono::duration<double>(
                                            heartbeat));
    while (!stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      if (Clock::now() < next_beat) continue;
      next_beat = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(
                                         heartbeat));
      const std::lock_guard<std::mutex> lock(io_mutex);
      if (stop.load()) return;
      std::string pong;
      if (!socket.send_all("PING\n") ||
          reader.read_line(pong, io_timeout) != util::IoStatus::kOk ||
          pong != "PONG") {
        broken.store(true);
        return;
      }
    }
  });
  const auto finish = [&](SessionOutcome result) {
    stop.store(true);
    heartbeat_thread.join();
    return result;
  };

  // ---- Lease loop. ------------------------------------------------------
  ExecuteOptions exec_options;
  exec_options.jobs = 1;  // one run per session; sessions are the fan-out
  exec_options.keep_reports = false;
  while (true) {
    if (broken.load()) {
      outcome.error = "lost the coordinator mid-session";
      return finish(std::move(outcome));
    }
    std::string reply;
    {
      const std::lock_guard<std::mutex> lock(io_mutex);
      if (!socket.send_all("NEXT\n") ||
          reader.read_line(reply, io_timeout) != util::IoStatus::kOk) {
        outcome.error = "coordinator stopped answering NEXT";
        return finish(std::move(outcome));
      }
    }
    if (reply == "DONE") {
      outcome.saw_done = true;
      return finish(std::move(outcome));
    }
    if (reply == "WAIT") {
      std::this_thread::sleep_for(std::chrono::duration_cast<
                                  std::chrono::milliseconds>(
          std::chrono::duration<double>(options.wait_sleep_seconds)));
      continue;
    }
    if (reply.rfind("RUN ", 0) != 0) {
      outcome.error = "unexpected coordinator reply: " + reply;
      return finish(std::move(outcome));
    }
    char* end = nullptr;
    const std::size_t run_index = std::strtoull(reply.c_str() + 4, &end, 10);
    if (end == reply.c_str() + 4 || *end != '\0' ||
        run_index >= plan->size()) {
      outcome.error = "bad lease: " + reply;
      return finish(std::move(outcome));
    }

    // Execute through the Executor interface — the same contract the
    // in-process thread pool fulfils, so a run computed here is the run a
    // local sweep would have computed.
    const std::size_t indices[1] = {run_index};
    std::vector<RunResult> computed =
        executor.execute(*plan, indices, exec_options);
    RunResult result = std::move(computed.at(0));
    const std::string record =
        serialize_run_record(plan->key(run_index), result);
    std::string ack;
    {
      const std::lock_guard<std::mutex> lock(io_mutex);
      if (!socket.send_all("RESULT " + std::to_string(record.size()) + "\n" +
                           record) ||
          reader.read_line(ack, io_timeout) != util::IoStatus::kOk) {
        outcome.error = "coordinator vanished while delivering run " +
                        std::to_string(run_index);
        return finish(std::move(outcome));
      }
    }
    if (ack == "OK") {
      ++outcome.executed;
      if (options.on_result) {
        const std::lock_guard<std::mutex> lock(callback_mutex);
        options.on_result(result);
      }
    } else if (ack == "DUP") {
      // The coordinator already had this run (our lease was stolen after a
      // stall, and the thief delivered first). Not an error: the sweep's
      // byte-identical output is already safe.
      ++outcome.duplicates;
    } else {
      outcome.error = "coordinator rejected run " +
                      std::to_string(run_index) + ": " + ack;
      return finish(std::move(outcome));
    }
  }
}

}  // namespace

WorkerReport run_worker(const std::string& host, std::uint16_t port,
                        const WorkerOptions& options) {
  const std::size_t sessions =
      options.sessions != 0
          ? options.sessions
          : std::max(1u, std::thread::hardware_concurrency());

  ThreadPoolExecutor default_executor;
  Executor& executor = options.executor != nullptr ? *options.executor
                                                   : default_executor;

  std::vector<SessionOutcome> outcomes(sessions);
  std::mutex callback_mutex;
  std::vector<std::thread> threads;
  threads.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      outcomes[s] =
          run_session(host, port, options, executor, callback_mutex);
    });
  }
  for (auto& t : threads) t.join();

  WorkerReport report;
  for (const auto& outcome : outcomes) {
    report.runs_executed += outcome.executed;
    report.duplicates += outcome.duplicates;
    if (outcome.saw_done) ++report.sessions_completed;
    if (!outcome.saw_done && !outcome.error.empty() &&
        report.error.empty()) {
      report.error = outcome.error;
    }
  }
  report.completed = report.sessions_completed > 0;
  if (report.completed) {
    // The sweep finished; a sibling session racing the shutdown (its NEXT
    // crossed the coordinator's drain) is not a failure.
    report.error.clear();
  }
  return report;
}

}  // namespace creditflow::scenario
