#include "scenario/worker.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>

#include "scenario/coordinator.hpp"
#include "scenario/store.hpp"
#include "util/backoff.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/socket.hpp"

namespace creditflow::scenario {

namespace {

using Clock = std::chrono::steady_clock;

/// Default root of the per-session backoff jitter streams when the caller
/// leaves WorkerOptions::backoff_seed at 0.
constexpr std::uint64_t kDefaultBackoffSeed = 0xbacc0ff5eedULL;

struct SessionOutcome {
  std::size_t executed = 0;
  std::size_t duplicates = 0;
  std::size_t connect_retries = 0;
  std::size_t wait_retries = 0;
  std::size_t reconnects = 0;
  std::size_t leases_resumed = 0;
  bool saw_done = false;
  std::string error;
};

/// One computed result awaiting acknowledgement — survives reconnects, so
/// a run finished while the link was down is delivered, not recomputed.
struct Delivery {
  std::size_t run_index = 0;
  RunResult result;
  std::string record;  ///< serialized run-record JSONL
  std::string series;  ///< per-run series CSV ("" when not collected)
};

void sleep_seconds(double seconds) {
  std::this_thread::sleep_for(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::duration<double>(seconds)));
}

/// One lease loop with reconnect-and-RESUME. `io_mutex_` serializes
/// request/response pairs between the main loop and the heartbeat thread —
/// the coordinator answers strictly in order, so whoever holds the mutex
/// reads its own reply.
class Session {
 public:
  Session(const std::string& host, std::uint16_t port,
          const WorkerOptions& options, Executor& executor,
          std::mutex& callback_mutex, std::atomic<bool>& sweep_done,
          std::size_t session_index)
      : host_(host),
        port_(port),
        options_(options),
        executor_(executor),
        callback_mutex_(callback_mutex),
        sweep_done_(sweep_done) {
    const std::uint64_t root =
        options.backoff_seed != 0 ? options.backoff_seed
                                  : kDefaultBackoffSeed;
    util::Backoff::Options schedule;
    schedule.initial_seconds = options.wait_sleep_seconds;
    schedule.max_seconds =
        std::max(options.backoff_max_seconds, options.wait_sleep_seconds);
    schedule.seed = util::derive_seed(root, session_index * 2);
    connect_backoff_ = util::Backoff(schedule);
    schedule.seed = util::derive_seed(root, session_index * 2 + 1);
    wait_backoff_ = util::Backoff(schedule);
  }

  SessionOutcome run();

 private:
  bool establish(bool resuming);
  bool attempt(bool resuming, std::string& hard_error);
  bool io_request(const std::string& message, std::string& reply);
  bool deliver_front();
  bool acquire_leases();
  void execute_front_lease();
  void start_heartbeat();

  const std::string& host_;
  const std::uint16_t port_;
  const WorkerOptions& options_;
  Executor& executor_;
  std::mutex& callback_mutex_;
  std::atomic<bool>& sweep_done_;

  std::mutex io_mutex_;
  util::Socket socket_;
  std::optional<util::SocketReader> reader_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> broken_{false};
  std::thread heartbeat_thread_;

  std::optional<SweepPlan> plan_;
  std::string plan_text_;  ///< spec ‖ sweep, for identity checks on resume
  long long lease_ms_ = 0;
  std::size_t series_every_ = 0;
  std::string token_;  ///< current session identity at the coordinator

  std::deque<std::size_t> leased_;
  std::deque<Delivery> undelivered_;

  util::Backoff connect_backoff_;
  util::Backoff wait_backoff_;
  SessionOutcome outcome_;
};

bool Session::io_request(const std::string& message, std::string& reply) {
  const std::lock_guard<std::mutex> lock(io_mutex_);
  if (!socket_.send_all(message) ||
      reader_->read_line(reply, options_.io_timeout_seconds) !=
          util::IoStatus::kOk) {
    broken_.store(true);
    return false;
  }
  return true;
}

bool Session::attempt(bool /*resuming*/, std::string& hard_error) {
  reader_.reset();
  socket_.close();
  try {
    socket_ = util::Socket::connect(host_, port_, 1.0);
  } catch (const util::SocketError&) {
    return false;
  }
  reader_.emplace(socket_);
  const double io_timeout = options_.io_timeout_seconds;

  std::string line;
  if (!socket_.send_all(std::string("HELLO ") + kSweepProtocolVersion +
                        "\n") ||
      reader_->read_line(line, io_timeout) != util::IoStatus::kOk) {
    return false;  // connection-level failure: retry within the window
  }
  if (line.rfind("PLAN ", 0) != 0) {
    hard_error = "handshake failed: " + line;
    return false;
  }
  char* end = nullptr;
  const long long lease_ms = std::strtoll(line.c_str() + 5, &end, 10);
  const std::size_t spec_len = std::strtoull(end, &end, 10);
  const std::size_t sweep_len = std::strtoull(end, &end, 10);
  const std::size_t series_every = std::strtoull(end, &end, 10);
  if (lease_ms <= 0 || spec_len == 0 || *end != ' ' || end[1] == '\0') {
    hard_error = "malformed PLAN header: " + line;
    return false;
  }
  const std::string token(end + 1);
  std::string spec_text;
  std::string sweep_text;
  if (reader_->read_exact(spec_text, spec_len, io_timeout) !=
          util::IoStatus::kOk ||
      reader_->read_exact(sweep_text, sweep_len, io_timeout) !=
          util::IoStatus::kOk) {
    return false;
  }

  if (!plan_) {
    try {
      plan_.emplace(ScenarioSpec::parse(spec_text),
                    SweepSpec::parse(sweep_text));
    } catch (const std::exception& e) {
      hard_error =
          std::string("cannot parse the coordinator's plan: ") + e.what();
      return false;
    }
    plan_text_ = spec_text + sweep_text;
    lease_ms_ = lease_ms;
    series_every_ = series_every;
    token_ = token;
    return true;
  }

  // Reconnect: the coordinator answering this port must still be serving
  // the same plan (a restarted coordinator on the same journal is; some
  // unrelated sweep on a recycled port is not).
  if (spec_text + sweep_text != plan_text_) {
    hard_error = "coordinator now serves a different plan; not resuming";
    return false;
  }
  std::string resumed;
  if (!socket_.send_all("RESUME " + token_ + "\n") ||
      reader_->read_line(resumed, io_timeout) != util::IoStatus::kOk) {
    return false;
  }
  if (resumed.rfind("RESUMED ", 0) != 0) {
    hard_error = "unexpected RESUME reply: " + resumed;
    return false;
  }
  const char* cursor = resumed.c_str() + 8;
  char* rend = nullptr;
  const unsigned long long reclaimed = std::strtoull(cursor, &rend, 10);
  if (rend == cursor) {
    hard_error = "malformed RESUME reply: " + resumed;
    return false;
  }
  leased_.clear();
  for (unsigned long long k = 0; k < reclaimed; ++k) {
    cursor = rend;
    const std::size_t idx = std::strtoull(cursor, &rend, 10);
    if (rend == cursor || idx >= plan_->size()) {
      hard_error = "bad reclaimed lease in: " + resumed;
      return false;
    }
    leased_.push_back(idx);
  }
  if (reclaimed > 0) {
    outcome_.leases_resumed += static_cast<std::size_t>(reclaimed);
    // The coordinator adopted our old identity; keep using it.
  } else {
    token_ = token;  // old session expired — continue under the fresh one
  }
  return true;
}

bool Session::establish(bool resuming) {
  const double window = resuming ? options_.reconnect_window_seconds
                                 : options_.connect_timeout_seconds;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(window));
  const std::lock_guard<std::mutex> lock(io_mutex_);
  connect_backoff_.reset();
  while (true) {
    if (resuming && sweep_done_.load()) {
      outcome_.error = "coordinator gone after the sweep finished";
      return false;
    }
    std::string hard_error;
    if (attempt(resuming, hard_error)) return true;
    if (!hard_error.empty()) {
      outcome_.error = hard_error;
      return false;
    }
    if (Clock::now() >= deadline) {
      outcome_.error = resuming
                           ? "coordinator unreachable past the reconnect "
                             "window"
                           : "cannot connect to the coordinator";
      return false;
    }
    ++outcome_.connect_retries;
    sleep_seconds(connect_backoff_.next());
  }
}

void Session::start_heartbeat() {
  const double heartbeat =
      options_.heartbeat_seconds > 0.0
          ? options_.heartbeat_seconds
          : std::clamp(static_cast<double>(lease_ms_) / 4000.0, 0.05, 5.0);
  heartbeat_thread_ = std::thread([this, heartbeat] {
    auto next_beat =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(heartbeat));
    while (!stop_.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      // A broken link is the main loop's to fix: pinging a dead socket
      // adds nothing, and pinging a fresh one mid-reconnect would race
      // the handshake.
      if (broken_.load() || Clock::now() < next_beat) continue;
      next_beat = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(
                                         heartbeat));
      const std::lock_guard<std::mutex> lock(io_mutex_);
      if (stop_.load() || broken_.load()) continue;
      std::string pong;
      if (!socket_.send_all("PING\n") ||
          reader_->read_line(pong, options_.io_timeout_seconds) !=
              util::IoStatus::kOk ||
          pong != "PONG") {
        broken_.store(true);
      }
    }
  });
}

/// Send the front undelivered result; true → acknowledged (popped), false
/// → either the link broke (broken_) or a hard error (outcome_.error).
bool Session::deliver_front() {
  const Delivery& d = undelivered_.front();
  std::string ack;
  if (!io_request("RESULT " + std::to_string(d.record.size()) + " " +
                      std::to_string(d.series.size()) + "\n" + d.record +
                      d.series,
                  ack)) {
    return false;
  }
  if (ack == "OK") {
    ++outcome_.executed;
    if (options_.on_result) {
      const std::lock_guard<std::mutex> lock(callback_mutex_);
      options_.on_result(undelivered_.front().result);
    }
  } else if (ack == "DUP") {
    // The coordinator already had this run (our lease was stolen after a
    // stall, or we redelivered after a reconnect and the first copy had
    // landed). Not an error: the sweep's output is already safe.
    ++outcome_.duplicates;
  } else {
    outcome_.error = "coordinator rejected run " +
                     std::to_string(d.run_index) + ": " + ack;
    return false;
  }
  undelivered_.pop_front();
  return true;
}

/// Ask for a lease batch; true → leased_ refilled. false → WAIT slept /
/// DONE / broken / hard error (callers re-check state).
bool Session::acquire_leases() {
  std::string reply;
  if (!io_request("NEXT\n", reply)) return false;
  if (reply == "DONE") {
    outcome_.saw_done = true;
    sweep_done_.store(true);
    return false;
  }
  if (reply == "WAIT") {
    ++outcome_.wait_retries;
    sleep_seconds(wait_backoff_.next());
    return false;
  }
  if (reply.rfind("RUN ", 0) != 0) {
    outcome_.error = "unexpected coordinator reply: " + reply;
    return false;
  }
  const char* cursor = reply.c_str() + 3;
  char* end = nullptr;
  while (true) {
    const std::size_t idx = std::strtoull(cursor, &end, 10);
    if (end == cursor) break;
    if (idx >= plan_->size()) {
      outcome_.error = "bad lease: " + reply;
      return false;
    }
    leased_.push_back(idx);
    cursor = end;
  }
  if (leased_.empty()) {
    outcome_.error = "empty lease batch: " + reply;
    return false;
  }
  wait_backoff_.reset();
  return true;
}

void Session::execute_front_lease() {
  const std::size_t run_index = leased_.front();
  leased_.pop_front();

  // Execute through the Executor interface — the same contract the
  // in-process thread pool fulfils, so a run computed here is the run a
  // local sweep would have computed, series bytes included.
  ExecuteOptions exec_options;
  exec_options.jobs = 1;  // one run at a time; sessions are the fan-out
  exec_options.keep_reports = false;
  std::string series;
  if (series_every_ > 0) {
    exec_options.series_every = series_every_;
    exec_options.series_sink = [&series](std::size_t,
                                         const std::string& csv) {
      series = csv;
    };
  }
  const std::size_t indices[1] = {run_index};
  std::vector<RunResult> computed =
      executor_.execute(*plan_, indices, exec_options);
  Delivery d;
  d.run_index = run_index;
  d.result = std::move(computed.at(0));
  d.record = serialize_run_record(plan_->key(run_index), d.result);
  d.series = std::move(series);
  undelivered_.push_back(std::move(d));
}

SessionOutcome Session::run() {
  if (!establish(false)) return outcome_;
  start_heartbeat();

  while (outcome_.error.empty() && !outcome_.saw_done) {
    if (broken_.load()) {
      if (!options_.reconnect) {
        outcome_.error = "lost the coordinator mid-session";
        break;
      }
      ++outcome_.reconnects;
      if (!establish(true)) break;
      broken_.store(false);
      continue;
    }
    // Results computed before (or during) a disconnect go out first: the
    // coordinator may be waiting on exactly these runs.
    if (!undelivered_.empty()) {
      (void)deliver_front();
      continue;
    }
    if (leased_.empty()) {
      (void)acquire_leases();
      continue;
    }
    execute_front_lease();
  }

  stop_.store(true);
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  return outcome_;
}

}  // namespace

WorkerReport run_worker(const std::string& host, std::uint16_t port,
                        const WorkerOptions& options) {
  const std::size_t sessions =
      options.sessions != 0
          ? options.sessions
          : std::max(1u, std::thread::hardware_concurrency());

  ThreadPoolExecutor default_executor;
  Executor& executor = options.executor != nullptr ? *options.executor
                                                   : default_executor;

  std::vector<SessionOutcome> outcomes(sessions);
  std::mutex callback_mutex;
  std::atomic<bool> sweep_done{false};
  std::vector<std::thread> threads;
  threads.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      Session session(host, port, options, executor, callback_mutex,
                      sweep_done, s);
      outcomes[s] = session.run();
    });
  }
  for (auto& t : threads) t.join();

  WorkerReport report;
  for (const auto& outcome : outcomes) {
    report.runs_executed += outcome.executed;
    report.duplicates += outcome.duplicates;
    report.connect_retries += outcome.connect_retries;
    report.wait_retries += outcome.wait_retries;
    report.reconnects += outcome.reconnects;
    report.leases_resumed += outcome.leases_resumed;
    if (outcome.saw_done) ++report.sessions_completed;
    if (!outcome.saw_done && !outcome.error.empty() &&
        report.error.empty()) {
      report.error = outcome.error;
    }
  }
  report.completed = report.sessions_completed > 0;
  if (report.completed) {
    // The sweep finished; a sibling session racing the shutdown (its NEXT
    // crossed the coordinator's drain) is not a failure.
    report.error.clear();
  }
  return report;
}

}  // namespace creditflow::scenario
