#include "scenario/spec.hpp"

#include <cstdlib>
#include <sstream>

#include "scenario/params.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace creditflow::scenario {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

core::MarketConfig ScenarioSpec::materialize() const {
  core::MarketConfig cfg = config;
  if (warmup_fraction > 0.0) {
    cfg.rate_window_start = warmup_fraction * cfg.horizon;
  }
  return cfg;
}

bool ScenarioSpec::set(std::string_view key, double value) {
  if (key == "warmup") {
    warmup_fraction = value;
    return true;
  }
  return apply_param(config, key, value);
}

std::optional<std::string> ScenarioSpec::set_checked(std::string_view key,
                                                     double value) {
  if (key == "warmup") {
    if (!(value >= 0.0 && value <= 1.0)) {
      return "warmup: fraction must be in [0, 1], got " +
             util::format_double(value);
    }
    warmup_fraction = value;
    return std::nullopt;
  }
  return set_param_checked(config, key, value);
}

std::optional<double> ScenarioSpec::get(std::string_view key) const {
  if (key == "warmup") return warmup_fraction;
  return read_param(config, key);
}

std::string ScenarioSpec::serialize() const {
  std::ostringstream out;
  out << "scenario " << name << "\n";
  if (!description.empty()) {
    std::istringstream lines(description);
    std::string line;
    while (std::getline(lines, line)) out << "# " << line << "\n";
  }
  out << "warmup = " << util::format_double(warmup_fraction) << "\n";
  for (const auto& desc : param_table()) {
    out << desc.key << " = " << util::format_double(desc.get(config)) << "\n";
  }
  return out.str();
}

ScenarioSpec ScenarioSpec::parse(const std::string& text) {
  ScenarioSpec spec;
  std::string description;
  std::istringstream lines(text);
  std::string raw;
  while (std::getline(lines, raw)) {
    const std::string_view line = trim(raw);
    if (line.empty()) continue;
    if (line.front() == '#') {
      auto comment = trim(line.substr(1));
      if (!description.empty()) description += '\n';
      description.append(comment);
      continue;
    }
    if (line.rfind("scenario ", 0) == 0) {
      spec.name = std::string(trim(line.substr(9)));
      continue;
    }
    const auto eq = line.find('=');
    CF_EXPECTS_MSG(eq != std::string_view::npos,
                   "scenario line is neither comment nor key = value: " +
                       std::string(line));
    const auto key = trim(line.substr(0, eq));
    const auto value_text = trim(line.substr(eq + 1));
    char* end = nullptr;
    const std::string value_str(value_text);
    const double value = std::strtod(value_str.c_str(), &end);
    CF_EXPECTS_MSG(end != value_str.c_str() && *end == '\0',
                   "bad numeric value for " + std::string(key) + ": " +
                       value_str);
    CF_EXPECTS_MSG(spec.set(key, value),
                   "unknown scenario parameter: " + std::string(key));
  }
  spec.description = std::move(description);
  return spec;
}

}  // namespace creditflow::scenario
