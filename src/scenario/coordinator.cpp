#include "scenario/coordinator.hpp"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <map>
#include <optional>
#include <sstream>

#include "scenario/store.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"
#include "util/math.hpp"
#include "util/socket.hpp"
#include "util/stats.hpp"

namespace creditflow::scenario {

namespace {

using Clock = std::chrono::steady_clock;

/// Ceiling on a RESULT payload announcement: a run record is a few hundred
/// bytes, so anything past this is a corrupt or hostile header.
constexpr std::size_t kMaxResultBytes = std::size_t{16} * 1024 * 1024;

}  // namespace

struct Coordinator::Impl {
  SweepPlan plan;
  Options options;
  /// "PLAN <lease_ms> <spec_len> <sweep_len>\n" + spec text + sweep text,
  /// sent verbatim to every worker that completes the handshake.
  std::string plan_message;
  std::vector<RunKey> keys;  ///< keys[i] = plan.key(i), for validation
  std::optional<RunStore> store;
  util::Listener listener;

  /// One connected worker session.
  struct Conn {
    util::Socket socket;
    std::string inbuf;
    bool hello = false;
    std::size_t payload_remaining = 0;  ///< >0 → mid-RESULT payload
    std::string payload;
    // Status-endpoint bookkeeping (reported, never acted on).
    std::size_t runs_completed = 0;
    Clock::time_point connected_at;
    Clock::time_point last_traffic;
  };
  std::map<int, Conn> conns;  ///< keyed by descriptor

  /// One status-endpoint client mid-request (served and closed per query).
  struct StatusConn {
    util::Socket socket;
    std::string inbuf;
  };
  std::map<int, StatusConn> status_conns;
  util::Listener status_listener;  ///< invalid unless status_port >= 0

  struct Lease {
    int fd = -1;
    Clock::time_point deadline;
    Clock::time_point granted;  ///< for the per-lease wall-time histogram
  };
  std::deque<std::size_t> pending;        ///< grantable run indices
  std::map<std::size_t, Lease> leases;    ///< outstanding grants
  std::vector<RunResult> results;
  std::vector<char> have;                 ///< results[i] filled?
  std::size_t completed = 0;
  bool done = false;
  Clock::time_point drain_deadline;
  Clock::time_point started_at;           ///< run() entry, for elapsed/ETA
  util::Log2Histogram lease_wall_ms;      ///< grant → first completion
  bool ran = false;

  Impl(ScenarioSpec base, SweepSpec sweep, Options opts)
      : plan(std::move(base), std::move(sweep)), options(std::move(opts)) {
    CF_EXPECTS_MSG(options.lease_timeout_seconds > 0.0,
                   "lease timeout must be positive");
    const std::string spec_text = plan.base().serialize();
    const std::string sweep_text = plan.sweep().serialize();
    const auto lease_ms = static_cast<long long>(
        options.lease_timeout_seconds * 1000.0 + 0.5);
    plan_message = "PLAN " + std::to_string(lease_ms) + " " +
                   std::to_string(spec_text.size()) + " " +
                   std::to_string(sweep_text.size()) + "\n" + spec_text +
                   sweep_text;
    keys.reserve(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) keys.push_back(plan.key(i));
    results.resize(plan.size());
    have.assign(plan.size(), 0);
    if (!options.cache_dir.empty()) store.emplace(options.cache_dir);
    listener = util::Listener::bind(options.host, options.port);
    if (options.status_port >= 0) {
      status_listener = util::Listener::bind(
          options.host, static_cast<std::uint16_t>(options.status_port));
    }
  }
};

Coordinator::Coordinator(ScenarioSpec base, SweepSpec sweep, Options options)
    : impl_(std::make_unique<Impl>(std::move(base), std::move(sweep),
                                   std::move(options))) {}

Coordinator::~Coordinator() = default;

std::uint16_t Coordinator::port() const { return impl_->listener.port(); }

std::uint16_t Coordinator::status_port() const {
  return impl_->status_listener.valid() ? impl_->status_listener.port() : 0;
}

std::vector<RunResult> Coordinator::run() {
  Impl& im = *impl_;
  CF_EXPECTS_MSG(!im.ran, "Coordinator::run may only be called once");
  im.ran = true;
  im.started_at = Clock::now();

  // Resolve cache hits up front — exactly the SweepRunner recall path, so
  // warm-store output is byte-identical to the uncached sweep.
  for (std::size_t i = 0; i < im.plan.size(); ++i) {
    const RunResult* cached =
        im.store ? im.store->find(im.keys[i]) : nullptr;
    if (cached == nullptr) {
      im.pending.push_back(i);
      continue;
    }
    RunResult hit = im.plan.labelled_result(i);
    hit.seed = cached->seed;
    hit.metrics = cached->metrics;
    hit.telemetry = cached->telemetry;
    hit.telemetry.from_cache = true;
    hit.error = cached->error;
    ++cache_hits_;
    if (im.options.on_result) im.options.on_result(hit);
    im.results[i] = std::move(hit);
    im.have[i] = 1;
    ++im.completed;
  }
  if (im.completed == im.plan.size()) {
    im.done = true;
    im.drain_deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               im.options.drain_seconds));
  }

  const auto lease_duration = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(im.options.lease_timeout_seconds));

  auto close_conn = [&](int fd) {
    // A dying worker's leases flow straight back to the queue head, so the
    // next NEXT from any live worker steals them immediately.
    for (auto it = im.leases.begin(); it != im.leases.end();) {
      if (it->second.fd == fd) {
        CF_LOG_INFO("coordinator: requeueing run " << it->first
                                                   << " from closed worker");
        im.pending.push_front(it->first);
        ++requeued_;
        it = im.leases.erase(it);
      } else {
        ++it;
      }
    }
    im.conns.erase(fd);
  };

  auto mark_done_if_complete = [&] {
    if (!im.done && im.completed == im.plan.size()) {
      im.done = true;
      im.drain_deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 im.options.drain_seconds));
    }
  };

  /// Handle one completed RESULT payload; false → protocol violation,
  /// close the connection.
  auto handle_result = [&](Impl::Conn& conn, const std::string& payload) {
    RunRecord record;
    try {
      record = parse_run_record(payload);
    } catch (const std::exception& e) {
      CF_LOG_WARN("coordinator: unparseable run record: " << e.what());
      (void)conn.socket.send_all("ERR malformed run record\n");
      return false;
    }
    const std::size_t idx = record.result.run_index;
    if (idx >= im.plan.size() || !(record.key == im.keys[idx])) {
      // A worker on a different plan (other spec text, other binary) can
      // never corrupt the result set: its keys cannot match ours.
      CF_LOG_WARN("coordinator: rejecting record with mismatched key for run "
                  << idx);
      (void)conn.socket.send_all("ERR run key does not match the plan\n");
      return false;
    }
    if (im.have[idx] != 0) {
      ++duplicates_;
      return conn.socket.send_all("DUP\n");
    }
    // First completion wins, whoever delivers it — including a worker whose
    // lease was already revoked. Re-label with this plan's metadata and
    // keep the computed outcome, mirroring the SweepRunner cache merge.
    RunResult merged = im.plan.labelled_result(idx);
    merged.seed = record.result.seed;
    merged.metrics = std::move(record.result.metrics);
    merged.telemetry = record.result.telemetry;
    merged.error = std::move(record.result.error);
    if (im.store) im.store->put(im.keys[idx], merged);
    const auto lease_it = im.leases.find(idx);
    if (lease_it != im.leases.end()) {
      const auto wall =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              Clock::now() - lease_it->second.granted)
              .count();
      im.lease_wall_ms.add(
          wall > 0 ? static_cast<std::uint64_t>(wall) : 0);
      im.leases.erase(lease_it);
    }
    ++conn.runs_completed;
    if (im.options.on_result) im.options.on_result(merged);
    im.results[idx] = std::move(merged);
    im.have[idx] = 1;
    ++im.completed;
    ++executed_;
    mark_done_if_complete();
    return conn.socket.send_all("OK\n");
  };

  /// Handle one protocol line; false → close the connection (either a
  /// violation or an orderly DONE hand-off).
  auto handle_line = [&](Impl::Conn& conn, const std::string& line) {
    if (!conn.hello) {
      if (line == std::string("HELLO ") + kSweepProtocolVersion) {
        conn.hello = true;
        ++workers_seen_;
        return conn.socket.send_all(im.plan_message);
      }
      (void)conn.socket.send_all("ERR expected HELLO " +
                                 std::string(kSweepProtocolVersion) + "\n");
      return false;
    }
    if (line == "PING") return conn.socket.send_all("PONG\n");
    if (line == "NEXT") {
      if (im.completed == im.plan.size()) {
        // Orderly completion: the worker disconnects after reading DONE.
        (void)conn.socket.send_all("DONE\n");
        return false;
      }
      // A requeued run can complete before it is re-granted (its original
      // worker delivered late); skip those so no one re-executes a run the
      // sweep already has.
      while (!im.pending.empty() && im.have[im.pending.front()] != 0) {
        im.pending.pop_front();
      }
      if (im.pending.empty()) return conn.socket.send_all("WAIT\n");
      const std::size_t idx = im.pending.front();
      im.pending.pop_front();
      const Clock::time_point granted = Clock::now();
      im.leases[idx] =
          Impl::Lease{conn.socket.fd(), granted + lease_duration, granted};
      return conn.socket.send_all("RUN " + std::to_string(idx) + "\n");
    }
    if (line.rfind("RESULT ", 0) == 0) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(line.c_str() + 7, &end, 10);
      if (end == line.c_str() + 7 || *end != '\0' || n == 0 ||
          n > kMaxResultBytes) {
        (void)conn.socket.send_all("ERR bad RESULT length\n");
        return false;
      }
      conn.payload_remaining = static_cast<std::size_t>(n);
      conn.payload.clear();
      return true;
    }
    (void)conn.socket.send_all("ERR unknown message\n");
    return false;
  };

  /// Drain conn.inbuf: raw payload bytes first, then complete lines.
  auto process_buffer = [&](Impl::Conn& conn) {
    while (true) {
      if (conn.payload_remaining > 0) {
        const std::size_t take =
            std::min(conn.payload_remaining, conn.inbuf.size());
        conn.payload.append(conn.inbuf, 0, take);
        conn.inbuf.erase(0, take);
        conn.payload_remaining -= take;
        if (conn.payload_remaining > 0) return true;  // need more bytes
        if (!handle_result(conn, conn.payload)) return false;
        continue;
      }
      const auto newline = conn.inbuf.find('\n');
      if (newline == std::string::npos) return true;
      const std::string line = conn.inbuf.substr(0, newline);
      conn.inbuf.erase(0, newline + 1);
      if (!handle_line(conn, line)) return false;
    }
  };

  /// The /status JSON snapshot, rendered from the serving loop's own state
  /// — no locks, nothing the loop doesn't already know.
  auto status_json = [&]() -> std::string {
    const Clock::time_point now = Clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - im.started_at).count();
    const std::size_t remaining = im.plan.size() - im.completed;
    // ETA extrapolated from fresh completions only (cache hits resolve
    // before serving starts); negative → unknown, rendered as null.
    double eta = -1.0;
    if (remaining == 0) {
      eta = 0.0;
    } else if (executed_ > 0 && elapsed > 0.0) {
      eta = static_cast<double>(remaining) * elapsed /
            static_cast<double>(executed_);
    }
    std::ostringstream out;
    out << "{\"plan_runs\":" << im.plan.size()
        << ",\"completed\":" << im.completed
        << ",\"pending\":" << im.pending.size()
        << ",\"leased\":" << im.leases.size()
        << ",\"executed\":" << executed_
        << ",\"cache_hits\":" << cache_hits_
        << ",\"requeued\":" << requeued_
        << ",\"duplicates\":" << duplicates_
        << ",\"workers_seen\":" << workers_seen_
        << ",\"done\":" << (im.done ? "true" : "false")
        << ",\"elapsed_seconds\":" << util::format_double(elapsed)
        << ",\"eta_seconds\":";
    if (eta < 0.0) {
      out << "null";
    } else {
      out << util::format_double(eta);
    }
    out << ",\"lease_wall_ms\":{\"count\":" << im.lease_wall_ms.count()
        << ",\"mean\":" << util::format_double(im.lease_wall_ms.mean())
        << ",\"p50\":"
        << util::format_double(im.lease_wall_ms.approx_quantile(0.5))
        << ",\"p90\":"
        << util::format_double(im.lease_wall_ms.approx_quantile(0.9))
        << ",\"max\":" << im.lease_wall_ms.max() << "},\"workers\":[";
    bool first = true;
    for (const auto& [fd, conn] : im.conns) {
      if (!conn.hello) continue;
      std::size_t active = 0;
      for (const auto& [idx, lease] : im.leases) {
        if (lease.fd == fd) ++active;
      }
      const double age =
          std::chrono::duration<double>(now - conn.last_traffic).count();
      const double connected =
          std::chrono::duration<double>(now - conn.connected_at).count();
      if (!first) out << ',';
      first = false;
      out << "{\"fd\":" << fd << ",\"completed\":" << conn.runs_completed
          << ",\"active_leases\":" << active
          << ",\"throughput_runs_per_s\":"
          << util::format_double(
                 connected > 0.0
                     ? static_cast<double>(conn.runs_completed) / connected
                     : 0.0)
          << ",\"last_heartbeat_age_seconds\":" << util::format_double(age)
          << '}';
    }
    out << "]}";
    return out.str();
  };

  /// The /metrics twin of /status: the same snapshot rendered in
  /// Prometheus text exposition format (one scrape = one poll-loop pass,
  /// same zero-lock state reads). Gauges, not counters, from Prometheus's
  /// point of view — a restarted coordinator restarts the sweep.
  auto metrics_text = [&]() -> std::string {
    const Clock::time_point now = Clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - im.started_at).count();
    std::ostringstream out;
    auto gauge = [&out](std::string_view name, std::string_view help,
                        auto value) {
      out << "# HELP creditflow_sweep_" << name << ' ' << help << '\n'
          << "# TYPE creditflow_sweep_" << name << " gauge\n"
          << "creditflow_sweep_" << name << ' ' << value << '\n';
    };
    gauge("plan_runs", "Total runs in the sweep plan.", im.plan.size());
    gauge("completed_runs", "Runs completed (executed or cache hits).",
          im.completed);
    gauge("pending_runs", "Runs queued and not yet leased.",
          im.pending.size());
    gauge("leased_runs", "Runs currently leased to workers.",
          im.leases.size());
    gauge("executed_runs", "Runs freshly executed by workers.", executed_);
    gauge("cache_hits", "Runs answered from the run store.", cache_hits_);
    gauge("requeued_runs", "Leases revoked after worker silence.",
          requeued_);
    gauge("duplicate_results", "Results delivered for already-done runs.",
          duplicates_);
    gauge("workers_seen", "Distinct workers that ever joined.",
          workers_seen_);
    gauge("done", "1 when every planned run is complete.",
          im.done ? 1 : 0);
    gauge("elapsed_seconds", "Wall time since the coordinator started.",
          util::format_double(elapsed));
    gauge("lease_wall_ms_p50", "Median lease wall time in milliseconds.",
          util::format_double(im.lease_wall_ms.approx_quantile(0.5)));
    gauge("lease_wall_ms_p90", "90th-percentile lease wall time (ms).",
          util::format_double(im.lease_wall_ms.approx_quantile(0.9)));
    out << "# HELP creditflow_sweep_worker_completed_runs Runs completed "
           "per connected worker.\n"
           "# TYPE creditflow_sweep_worker_completed_runs gauge\n";
    for (const auto& [fd, conn] : im.conns) {
      if (!conn.hello) continue;
      out << "creditflow_sweep_worker_completed_runs{fd=\"" << fd << "\"} "
          << conn.runs_completed << '\n';
    }
    return out.str();
  };

  /// Answer one HTTP request on a status connection as soon as its request
  /// line is complete (headers are ignored; one request per connection).
  /// false → close the connection.
  auto serve_status = [&](Impl::StatusConn& sc) {
    const auto newline = sc.inbuf.find('\n');
    if (newline == std::string::npos) {
      return sc.inbuf.size() <= 4096;  // keep waiting, bound the buffer
    }
    std::string line = sc.inbuf.substr(0, newline);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::istringstream request(line);
    std::string method;
    std::string path;
    request >> method >> path;
    std::string status_line;
    std::string body;
    std::string content_type = "application/json";
    if (method == "GET" &&
        (path == "/status" || path.rfind("/status?", 0) == 0)) {
      status_line = "HTTP/1.0 200 OK";
      body = status_json();
    } else if (method == "GET" &&
               (path == "/metrics" || path.rfind("/metrics?", 0) == 0)) {
      status_line = "HTTP/1.0 200 OK";
      body = metrics_text();
      content_type = "text/plain; version=0.0.4";
    } else {
      status_line = "HTTP/1.0 404 Not Found";
      body = "{\"error\":\"unknown path; try GET /status or /metrics\"}";
    }
    const std::string response =
        status_line + "\r\nContent-Type: " + content_type + "\r\n" +
        "Content-Length: " + std::to_string(body.size()) +
        "\r\nConnection: close\r\n\r\n" + body;
    (void)sc.socket.send_all(response);
    return false;
  };

  while (true) {
    const Clock::time_point now = Clock::now();
    // With the status endpoint enabled the early exit is off: scrapers must
    // be able to observe the drained terminal state for the full window.
    if (im.done &&
        (now >= im.drain_deadline ||
         (!im.status_listener.valid() && im.conns.empty() &&
          workers_seen_ > 0))) {
      break;
    }

    // Revoke leases whose workers went silent past the timeout; the runs
    // go to the queue head so the next idle worker steals them.
    for (auto it = im.leases.begin(); it != im.leases.end();) {
      if (now >= it->second.deadline) {
        CF_LOG_WARN("coordinator: lease on run "
                    << it->first << " timed out; requeueing");
        im.pending.push_front(it->first);
        ++requeued_;
        it = im.leases.erase(it);
      } else {
        ++it;
      }
    }

    // Sleep until traffic, the nearest lease deadline, or the drain
    // deadline — whichever comes first.
    Clock::time_point wake = Clock::time_point::max();
    for (const auto& [idx, lease] : im.leases) {
      wake = std::min(wake, lease.deadline);
    }
    if (im.done) wake = std::min(wake, im.drain_deadline);
    int timeout_ms = -1;
    if (wake != Clock::time_point::max()) {
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(wake - now);
      timeout_ms = left.count() <= 0
                       ? 0
                       : static_cast<int>(
                             std::min<long long>(left.count() + 1, 60000));
    }

    std::vector<pollfd> fds;
    fds.reserve(im.conns.size() + im.status_conns.size() + 2);
    fds.push_back(pollfd{im.listener.fd(), POLLIN, 0});
    const std::size_t status_listener_slot =
        im.status_listener.valid() ? fds.size()
                                   : static_cast<std::size_t>(-1);
    if (im.status_listener.valid()) {
      fds.push_back(pollfd{im.status_listener.fd(), POLLIN, 0});
    }
    const std::size_t worker_base = fds.size();
    for (const auto& [fd, conn] : im.conns) {
      fds.push_back(pollfd{fd, POLLIN, 0});
    }
    const std::size_t status_base = fds.size();
    for (const auto& [fd, sc] : im.status_conns) {
      fds.push_back(pollfd{fd, POLLIN, 0});
    }
    const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      CF_LOG_ERROR("coordinator: poll failed; shutting down");
      break;
    }

    if ((fds[0].revents & POLLIN) != 0) {
      util::Socket accepted = im.listener.accept();
      if (accepted.valid()) {
        const int fd = accepted.fd();
        Impl::Conn conn;
        conn.socket = std::move(accepted);
        conn.connected_at = conn.last_traffic = Clock::now();
        im.conns.emplace(fd, std::move(conn));
      }
    }
    if (status_listener_slot != static_cast<std::size_t>(-1) &&
        (fds[status_listener_slot].revents & POLLIN) != 0) {
      util::Socket accepted = im.status_listener.accept();
      if (accepted.valid()) {
        const int fd = accepted.fd();
        im.status_conns.emplace(fd,
                                Impl::StatusConn{std::move(accepted), {}});
      }
    }

    for (std::size_t k = worker_base; k < status_base; ++k) {
      if (fds[k].revents == 0) continue;
      const int fd = fds[k].fd;
      const auto it = im.conns.find(fd);
      if (it == im.conns.end()) continue;
      Impl::Conn& conn = it->second;
      const util::IoStatus status = conn.socket.recv_some(conn.inbuf, 0.0);
      if (status == util::IoStatus::kTimeout) continue;  // spurious wakeup
      if (status != util::IoStatus::kOk) {
        close_conn(fd);
        continue;
      }
      // Any traffic from a worker proves it alive: refresh its leases.
      const Clock::time_point fresh = Clock::now() + lease_duration;
      for (auto& [idx, lease] : im.leases) {
        if (lease.fd == fd) lease.deadline = fresh;
      }
      conn.last_traffic = Clock::now();
      if (!process_buffer(conn)) close_conn(fd);
    }

    for (std::size_t k = status_base; k < fds.size(); ++k) {
      if (fds[k].revents == 0) continue;
      const int fd = fds[k].fd;
      const auto it = im.status_conns.find(fd);
      if (it == im.status_conns.end()) continue;
      Impl::StatusConn& sc = it->second;
      const util::IoStatus status = sc.socket.recv_some(sc.inbuf, 0.0);
      if (status == util::IoStatus::kTimeout) continue;
      if (status != util::IoStatus::kOk || !serve_status(sc)) {
        im.status_conns.erase(fd);
      }
    }
  }

  im.listener.close();
  im.conns.clear();
  im.status_listener.close();
  im.status_conns.clear();

  CF_ENSURES_MSG(im.completed == im.plan.size(),
                 "coordinator exited with incomplete results");
  return std::move(im.results);
}

}  // namespace creditflow::scenario
