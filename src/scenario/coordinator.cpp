#include "scenario/coordinator.hpp"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <optional>
#include <sstream>

#include "scenario/journal.hpp"
#include "scenario/store.hpp"
#include "util/assert.hpp"
#include "util/fsio.hpp"
#include "util/logging.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/socket.hpp"
#include "util/stats.hpp"

namespace creditflow::scenario {

namespace {

using Clock = std::chrono::steady_clock;

/// Ceiling on a RESULT payload announcement: a run record is a few hundred
/// bytes and a series CSV a few MiB at pathological cadences, so anything
/// past this is a corrupt or hostile header.
constexpr std::size_t kMaxResultBytes = std::size_t{16} * 1024 * 1024;

/// Batch sizing window: a worker is granted roughly the number of runs it
/// completes in this many seconds (clamped to [1, lease_batch_max]), so
/// batches stay well inside the lease timeout.
double batch_window_seconds(double lease_timeout_seconds) {
  return std::clamp(lease_timeout_seconds / 4.0, 0.25, 2.0);
}

}  // namespace

struct Coordinator::Impl {
  SweepPlan plan;
  Options options;
  /// "PLAN <lease_ms> <spec_len> <sweep_len> <series_every> " — the
  /// per-session token is appended at handshake time.
  std::string plan_header_prefix;
  /// spec text ‖ sweep text, sent verbatim after the PLAN header.
  std::string plan_payload;
  /// Binds journal state to this exact plan (spec ‖ sweep ‖ size).
  std::string fingerprint;
  std::vector<RunKey> keys;  ///< keys[i] = plan.key(i), for validation
  std::optional<RunStore> store;
  std::optional<Journal> journal;
  util::Listener listener;

  /// One connected worker session.
  struct Conn {
    util::Socket socket;
    std::string inbuf;
    bool hello = false;
    std::string session;  ///< token issued at HELLO (or adopted via RESUME)
    std::size_t payload_remaining = 0;  ///< >0 → mid-RESULT payload
    std::size_t payload_record_bytes = 0;  ///< record prefix of the payload
    std::string payload;
    // Status-endpoint bookkeeping; runs_completed also sizes lease batches.
    std::size_t runs_completed = 0;
    Clock::time_point connected_at;
    Clock::time_point last_traffic;
  };
  std::map<int, Conn> conns;  ///< keyed by descriptor

  /// One status-endpoint client mid-request (served and closed per query).
  struct StatusConn {
    util::Socket socket;
    std::string inbuf;
  };
  std::map<int, StatusConn> status_conns;
  util::Listener status_listener;  ///< invalid unless status_port >= 0

  struct Lease {
    int fd = -1;  ///< -1 → orphaned: owner disconnected, RESUME may reclaim
    std::string session;
    Clock::time_point deadline;
    Clock::time_point granted;  ///< for the per-lease wall-time histogram
  };
  std::deque<std::size_t> pending;        ///< grantable run indices
  std::map<std::size_t, Lease> leases;    ///< outstanding grants
  std::vector<RunResult> results;
  std::vector<char> have;                 ///< results[i] filled?
  std::size_t completed = 0;
  bool done = false;
  Clock::time_point drain_deadline;
  Clock::time_point started_at;           ///< run() entry, for elapsed/ETA
  util::Log2Histogram lease_wall_ms;      ///< grant → first completion
  bool ran = false;

  /// Session-token stream: unique across restarts (wall-clock seeded) and
  /// across sessions (counter mixed in); purely an identifier, no secrecy.
  std::uint64_t token_state;
  std::uint64_t token_counter = 0;

  [[nodiscard]] std::string next_token() {
    const std::uint64_t raw = util::derive_seed(token_state, ++token_counter);
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(raw));
    return std::string(buf);
  }

  Impl(ScenarioSpec base, SweepSpec sweep, Options opts)
      : plan(std::move(base), std::move(sweep)), options(std::move(opts)) {
    CF_EXPECTS_MSG(options.lease_timeout_seconds > 0.0,
                   "lease timeout must be positive");
    CF_EXPECTS_MSG(options.lease_batch_max >= 1,
                   "lease batch size must be at least 1");
    CF_EXPECTS_MSG(options.journal_path.empty() || !options.cache_dir.empty(),
                   "--journal requires a run cache (results must be as "
                   "durable as the scheduling state)");
    const std::string spec_text = plan.base().serialize();
    const std::string sweep_text = plan.sweep().serialize();
    fingerprint = RunKey::of(spec_text + sweep_text, plan.size()).hex();
    const auto lease_ms = static_cast<long long>(
        options.lease_timeout_seconds * 1000.0 + 0.5);
    plan_header_prefix = "PLAN " + std::to_string(lease_ms) + " " +
                         std::to_string(spec_text.size()) + " " +
                         std::to_string(sweep_text.size()) + " " +
                         std::to_string(options.series_every) + " ";
    plan_payload = spec_text + sweep_text;
    keys.reserve(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) keys.push_back(plan.key(i));
    results.resize(plan.size());
    have.assign(plan.size(), 0);
    token_state = static_cast<std::uint64_t>(
        std::chrono::system_clock::now().time_since_epoch().count());
    if (!options.cache_dir.empty()) {
      store.emplace(options.cache_dir, RunStore::Options{options.fsync});
    }
    if (!options.journal_path.empty()) {
      journal.emplace(options.journal_path,
                      Journal::Options{options.fsync});
      const JournalReplay& replay = journal->replayed();
      CF_EXPECTS_MSG(options.resume || replay.events == 0,
                     "journal " + options.journal_path +
                         " already holds a sweep; pass --resume to "
                         "continue it (or point at a fresh journal)");
      if (replay.has_plan) {
        CF_EXPECTS_MSG(replay.fingerprint == fingerprint,
                       "journal " + options.journal_path +
                           " belongs to a different sweep (plan "
                           "fingerprint mismatch)");
      }
      journal->record_plan(fingerprint, plan.size());
    }
    listener = util::Listener::bind(options.host, options.port);
    if (options.status_port >= 0) {
      status_listener = util::Listener::bind(
          options.host, static_cast<std::uint16_t>(options.status_port));
    }
  }
};

Coordinator::Coordinator(ScenarioSpec base, SweepSpec sweep, Options options)
    : impl_(std::make_unique<Impl>(std::move(base), std::move(sweep),
                                   std::move(options))) {}

Coordinator::~Coordinator() = default;

std::uint16_t Coordinator::port() const { return impl_->listener.port(); }

std::uint16_t Coordinator::status_port() const {
  return impl_->status_listener.valid() ? impl_->status_listener.port() : 0;
}

std::vector<RunResult> Coordinator::run() {
  Impl& im = *impl_;
  CF_EXPECTS_MSG(!im.ran, "Coordinator::run may only be called once");
  im.ran = true;
  im.started_at = Clock::now();

  // Resolve cache hits up front — exactly the SweepRunner recall path, so
  // warm-store output is byte-identical to the uncached sweep. A resumed
  // coordinator's previously-executed runs come back this way: the store
  // holds their bytes, the journal holds their scheduling history.
  for (std::size_t i = 0; i < im.plan.size(); ++i) {
    const RunResult* cached =
        im.store ? im.store->find(im.keys[i]) : nullptr;
    if (cached == nullptr) {
      im.pending.push_back(i);
      continue;
    }
    RunResult hit = im.plan.labelled_result(i);
    hit.seed = cached->seed;
    hit.metrics = cached->metrics;
    hit.telemetry = cached->telemetry;
    hit.telemetry.from_cache = true;
    hit.error = cached->error;
    ++cache_hits_;
    if (im.options.on_result) im.options.on_result(hit);
    im.results[i] = std::move(hit);
    im.have[i] = 1;
    ++im.completed;
  }

  const auto lease_duration = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(im.options.lease_timeout_seconds));
  const auto resume_grace = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(
          std::max(0.0, im.options.resume_grace_seconds)));

  // Re-create the orphaned leases a previous incarnation journalled: their
  // sessions may still be alive (they outlived the coordinator) and will
  // reclaim them via RESUME; otherwise the normal lease timeout requeues
  // them. Runs the store already answered stay answered.
  if (im.journal && im.options.resume) {
    const JournalReplay& replay = im.journal->replayed();
    for (const auto& [idx, key] : replay.completed) {
      if (idx < im.have.size() && im.have[idx] == 0) {
        CF_LOG_WARN("coordinator: journal says run "
                    << idx << " completed but the store has no record ("
                    << (key == im.keys[idx] ? "lost append"
                                            : "foreign run key")
                    << "); re-executing");
      }
    }
    for (const auto& [idx, session] : replay.open_leases) {
      if (idx >= im.have.size() || im.have[idx] != 0) continue;
      const auto in_pending =
          std::find(im.pending.begin(), im.pending.end(), idx);
      if (in_pending != im.pending.end()) im.pending.erase(in_pending);
      // Orphans wait only the resume grace: their worker either survived
      // the coordinator crash (it reconnects with RESUME well within the
      // grace) or died with it (requeue fast, don't stall the fleet).
      const Clock::time_point now = Clock::now();
      im.leases[idx] = Impl::Lease{-1, session, now + resume_grace, now};
      ++journal_orphans_;
    }
    if (journal_orphans_ > 0) {
      CF_LOG_INFO("coordinator: resumed " << journal_orphans_
                                          << " orphaned lease(s) from "
                                          << im.journal->path());
    }
  }

  if (im.completed == im.plan.size()) {
    im.done = true;
    im.drain_deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               im.options.drain_seconds));
  }

  auto close_conn = [&](int fd) {
    // A vanished worker's leases are not forfeit yet: they orphan for the
    // resume grace window so the session can reconnect and RESUME them.
    // Only after the grace (or the original lease deadline, whichever is
    // sooner) does the timeout sweep requeue them for the fleet.
    const Clock::time_point grace_deadline = Clock::now() + resume_grace;
    for (auto& [idx, lease] : im.leases) {
      if (lease.fd == fd) {
        CF_LOG_INFO("coordinator: orphaning lease on run "
                    << idx << " (worker disconnected; RESUME window open)");
        lease.fd = -1;
        lease.deadline = std::min(lease.deadline, grace_deadline);
      }
    }
    im.conns.erase(fd);
  };

  auto mark_done_if_complete = [&] {
    if (!im.done && im.completed == im.plan.size()) {
      im.done = true;
      im.drain_deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 im.options.drain_seconds));
    }
  };

  /// Handle one completed RESULT payload (record ‖ series); false → protocol
  /// violation, close the connection.
  auto handle_result = [&](Impl::Conn& conn, const std::string& payload,
                           std::size_t record_bytes) {
    RunRecord record;
    try {
      record = parse_run_record(payload.substr(0, record_bytes));
    } catch (const std::exception& e) {
      CF_LOG_WARN("coordinator: unparseable run record: " << e.what());
      (void)conn.socket.send_all("ERR malformed run record\n");
      return false;
    }
    const std::size_t idx = record.result.run_index;
    if (idx >= im.plan.size() || !(record.key == im.keys[idx])) {
      // A worker on a different plan (other spec text, other binary) can
      // never corrupt the result set: its keys cannot match ours.
      CF_LOG_WARN("coordinator: rejecting record with mismatched key for run "
                  << idx);
      (void)conn.socket.send_all("ERR run key does not match the plan\n");
      return false;
    }
    if (im.have[idx] != 0) {
      ++duplicates_;
      return conn.socket.send_all("DUP\n");
    }
    // First completion wins, whoever delivers it — including a worker whose
    // lease was already revoked. Re-label with this plan's metadata and
    // keep the computed outcome, mirroring the SweepRunner cache merge.
    RunResult merged = im.plan.labelled_result(idx);
    merged.seed = record.result.seed;
    merged.metrics = std::move(record.result.metrics);
    merged.telemetry = record.result.telemetry;
    merged.error = std::move(record.result.error);
    // Durability order: result bytes first (store), then the journal's
    // done event — a crash between the two re-executes nothing (the store
    // answers) and corrupts nothing.
    if (im.store) im.store->put(im.keys[idx], merged);
    if (im.journal) im.journal->record_done(idx, im.keys[idx]);
    if (payload.size() > record_bytes && im.options.series_every > 0 &&
        !im.options.series_out_prefix.empty()) {
      const std::string path = im.options.series_out_prefix + ".run" +
                               std::to_string(idx) + ".csv";
      if (!util::atomic_write_file(
              path, std::string_view(payload).substr(record_bytes))) {
        CF_LOG_WARN("coordinator: failed writing series CSV " << path);
      }
    }
    const auto lease_it = im.leases.find(idx);
    if (lease_it != im.leases.end()) {
      const auto wall =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              Clock::now() - lease_it->second.granted)
              .count();
      im.lease_wall_ms.add(
          wall > 0 ? static_cast<std::uint64_t>(wall) : 0);
      im.leases.erase(lease_it);
    }
    ++conn.runs_completed;
    if (im.options.on_result) im.options.on_result(merged);
    im.results[idx] = std::move(merged);
    im.have[idx] = 1;
    ++im.completed;
    ++executed_;
    mark_done_if_complete();
    if (im.options.abort_after_executed > 0 &&
        executed_ >= im.options.abort_after_executed && !im.done) {
      // Crash injection: state is on disk, the ack is not sent — exactly
      // the window a SIGKILL leaves. The worker redelivers after
      // reconnecting and collects a DUP from our successor.
      throw CoordinatorAborted(
          "coordinator: injected crash after " +
          std::to_string(executed_) + " executed run(s)");
    }
    return conn.socket.send_all("OK\n");
  };

  /// Handle one protocol line; false → close the connection (either a
  /// violation or an orderly DONE hand-off).
  auto handle_line = [&](Impl::Conn& conn, const std::string& line) {
    if (!conn.hello) {
      if (line == std::string("HELLO ") + kSweepProtocolVersion) {
        conn.hello = true;
        conn.session = im.next_token();
        ++workers_seen_;
        return conn.socket.send_all(im.plan_header_prefix + conn.session +
                                    "\n" + im.plan_payload);
      }
      (void)conn.socket.send_all("ERR expected HELLO " +
                                 std::string(kSweepProtocolVersion) + "\n");
      return false;
    }
    if (line == "PING") return conn.socket.send_all("PONG\n");
    if (line.rfind("RESUME ", 0) == 0) {
      // Reclaim the orphaned leases of a previous session: the worker
      // keeps its grants (and any results computed while disconnected)
      // instead of forfeiting them to the requeue path. An unknown or
      // expired token resumes nothing — the worker just starts fresh.
      const std::string token = line.substr(7);
      std::string indices;
      std::size_t reclaimed = 0;
      const Clock::time_point fresh = Clock::now() + lease_duration;
      for (auto& [idx, lease] : im.leases) {
        if (lease.fd != -1 || lease.session != token) continue;
        lease.fd = conn.socket.fd();
        lease.deadline = fresh;
        indices += " " + std::to_string(idx);
        ++reclaimed;
      }
      if (reclaimed > 0) {
        conn.session = token;  // adopt the resumed identity
        leases_resumed_ += reclaimed;
        CF_LOG_INFO("coordinator: session " << token << " resumed "
                                            << reclaimed << " lease(s)");
      }
      return conn.socket.send_all("RESUMED " + std::to_string(reclaimed) +
                                  indices + "\n");
    }
    if (line == "NEXT") {
      if (im.completed == im.plan.size()) {
        // Orderly completion: the worker disconnects after reading DONE.
        (void)conn.socket.send_all("DONE\n");
        return false;
      }
      // A requeued run can complete before it is re-granted (its original
      // worker delivered late); skip those so no one re-executes a run the
      // sweep already has.
      while (!im.pending.empty() && im.have[im.pending.front()] != 0) {
        im.pending.pop_front();
      }
      if (im.pending.empty()) return conn.socket.send_all("WAIT\n");
      // Adaptive batch: grant roughly one batch-window's worth of runs at
      // this worker's measured throughput. Fresh and slow workers get 1,
      // so a straggler's failure forfeits at most one run.
      const double connected = std::chrono::duration<double>(
                                   Clock::now() - conn.connected_at)
                                   .count();
      const double throughput =
          connected > 0.0
              ? static_cast<double>(conn.runs_completed) / connected
              : 0.0;
      const auto want = std::clamp<std::size_t>(
          static_cast<std::size_t>(
              throughput *
              batch_window_seconds(im.options.lease_timeout_seconds)),
          1, im.options.lease_batch_max);
      std::string grant = "RUN";
      const Clock::time_point granted = Clock::now();
      std::size_t issued = 0;
      while (issued < want && !im.pending.empty()) {
        const std::size_t idx = im.pending.front();
        im.pending.pop_front();
        if (im.have[idx] != 0) continue;
        if (im.journal) im.journal->record_grant(idx, conn.session);
        im.leases[idx] = Impl::Lease{conn.socket.fd(), conn.session,
                                     granted + lease_duration, granted};
        grant += " " + std::to_string(idx);
        ++issued;
      }
      if (issued == 0) return conn.socket.send_all("WAIT\n");
      return conn.socket.send_all(grant + "\n");
    }
    if (line.rfind("RESULT ", 0) == 0) {
      char* end = nullptr;
      const unsigned long long record_bytes =
          std::strtoull(line.c_str() + 7, &end, 10);
      unsigned long long series_bytes = 0;
      if (end != line.c_str() + 7 && *end == ' ') {
        const char* series_begin = end;
        series_bytes = std::strtoull(series_begin, &end, 10);
      }
      if (end == line.c_str() + 7 || *end != '\0' || record_bytes == 0 ||
          record_bytes > kMaxResultBytes || series_bytes > kMaxResultBytes) {
        (void)conn.socket.send_all("ERR bad RESULT length\n");
        return false;
      }
      conn.payload_record_bytes = static_cast<std::size_t>(record_bytes);
      conn.payload_remaining =
          static_cast<std::size_t>(record_bytes + series_bytes);
      conn.payload.clear();
      return true;
    }
    (void)conn.socket.send_all("ERR unknown message\n");
    return false;
  };

  /// Drain conn.inbuf: raw payload bytes first, then complete lines.
  auto process_buffer = [&](Impl::Conn& conn) {
    while (true) {
      if (conn.payload_remaining > 0) {
        const std::size_t take =
            std::min(conn.payload_remaining, conn.inbuf.size());
        conn.payload.append(conn.inbuf, 0, take);
        conn.inbuf.erase(0, take);
        conn.payload_remaining -= take;
        if (conn.payload_remaining > 0) return true;  // need more bytes
        if (!handle_result(conn, conn.payload, conn.payload_record_bytes)) {
          return false;
        }
        continue;
      }
      const auto newline = conn.inbuf.find('\n');
      if (newline == std::string::npos) return true;
      const std::string line = conn.inbuf.substr(0, newline);
      conn.inbuf.erase(0, newline + 1);
      if (!handle_line(conn, line)) return false;
    }
  };

  /// The /status JSON snapshot, rendered from the serving loop's own state
  /// — no locks, nothing the loop doesn't already know.
  auto status_json = [&]() -> std::string {
    const Clock::time_point now = Clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - im.started_at).count();
    const std::size_t remaining = im.plan.size() - im.completed;
    // ETA extrapolated from fresh completions only (cache hits resolve
    // before serving starts); negative → unknown, rendered as null.
    double eta = -1.0;
    if (remaining == 0) {
      eta = 0.0;
    } else if (executed_ > 0 && elapsed > 0.0) {
      eta = static_cast<double>(remaining) * elapsed /
            static_cast<double>(executed_);
    }
    std::size_t orphaned = 0;
    for (const auto& [idx, lease] : im.leases) {
      if (lease.fd == -1) ++orphaned;
    }
    std::ostringstream out;
    out << "{\"plan_runs\":" << im.plan.size()
        << ",\"completed\":" << im.completed
        << ",\"pending\":" << im.pending.size()
        << ",\"leased\":" << im.leases.size()
        << ",\"orphaned_leases\":" << orphaned
        << ",\"executed\":" << executed_
        << ",\"cache_hits\":" << cache_hits_
        << ",\"requeued\":" << requeued_
        << ",\"duplicates\":" << duplicates_
        << ",\"workers_seen\":" << workers_seen_
        << ",\"leases_resumed\":" << leases_resumed_
        << ",\"journal_orphans\":" << journal_orphans_
        << ",\"done\":" << (im.done ? "true" : "false")
        << ",\"elapsed_seconds\":" << util::format_double(elapsed)
        << ",\"eta_seconds\":";
    if (eta < 0.0) {
      out << "null";
    } else {
      out << util::format_double(eta);
    }
    out << ",\"lease_wall_ms\":{\"count\":" << im.lease_wall_ms.count()
        << ",\"mean\":" << util::format_double(im.lease_wall_ms.mean())
        << ",\"p50\":"
        << util::format_double(im.lease_wall_ms.approx_quantile(0.5))
        << ",\"p90\":"
        << util::format_double(im.lease_wall_ms.approx_quantile(0.9))
        << ",\"max\":" << im.lease_wall_ms.max() << "},\"workers\":[";
    bool first = true;
    for (const auto& [fd, conn] : im.conns) {
      if (!conn.hello) continue;
      std::size_t active = 0;
      for (const auto& [idx, lease] : im.leases) {
        if (lease.fd == fd) ++active;
      }
      const double age =
          std::chrono::duration<double>(now - conn.last_traffic).count();
      const double connected =
          std::chrono::duration<double>(now - conn.connected_at).count();
      if (!first) out << ',';
      first = false;
      out << "{\"fd\":" << fd << ",\"completed\":" << conn.runs_completed
          << ",\"active_leases\":" << active
          << ",\"throughput_runs_per_s\":"
          << util::format_double(
                 connected > 0.0
                     ? static_cast<double>(conn.runs_completed) / connected
                     : 0.0)
          << ",\"last_heartbeat_age_seconds\":" << util::format_double(age)
          << '}';
    }
    out << "]}";
    return out.str();
  };

  /// The /metrics twin of /status: the same snapshot rendered in
  /// Prometheus text exposition format (one scrape = one poll-loop pass,
  /// same zero-lock state reads). Gauges, not counters, from Prometheus's
  /// point of view — a restarted coordinator restarts the sweep.
  auto metrics_text = [&]() -> std::string {
    const Clock::time_point now = Clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - im.started_at).count();
    std::ostringstream out;
    auto gauge = [&out](std::string_view name, std::string_view help,
                        auto value) {
      out << "# HELP creditflow_sweep_" << name << ' ' << help << '\n'
          << "# TYPE creditflow_sweep_" << name << " gauge\n"
          << "creditflow_sweep_" << name << ' ' << value << '\n';
    };
    gauge("plan_runs", "Total runs in the sweep plan.", im.plan.size());
    gauge("completed_runs", "Runs completed (executed or cache hits).",
          im.completed);
    gauge("pending_runs", "Runs queued and not yet leased.",
          im.pending.size());
    gauge("leased_runs", "Runs currently leased to workers.",
          im.leases.size());
    gauge("executed_runs", "Runs freshly executed by workers.", executed_);
    gauge("cache_hits", "Runs answered from the run store.", cache_hits_);
    gauge("requeued_runs", "Leases revoked after worker silence.",
          requeued_);
    gauge("duplicate_results", "Results delivered for already-done runs.",
          duplicates_);
    gauge("workers_seen", "Distinct workers that ever joined.",
          workers_seen_);
    gauge("leases_resumed", "Leases reclaimed via the RESUME handshake.",
          leases_resumed_);
    gauge("journal_orphans", "Orphaned leases re-created from the journal.",
          journal_orphans_);
    gauge("done", "1 when every planned run is complete.",
          im.done ? 1 : 0);
    gauge("elapsed_seconds", "Wall time since the coordinator started.",
          util::format_double(elapsed));
    gauge("lease_wall_ms_p50", "Median lease wall time in milliseconds.",
          util::format_double(im.lease_wall_ms.approx_quantile(0.5)));
    gauge("lease_wall_ms_p90", "90th-percentile lease wall time (ms).",
          util::format_double(im.lease_wall_ms.approx_quantile(0.9)));
    out << "# HELP creditflow_sweep_worker_completed_runs Runs completed "
           "per connected worker.\n"
           "# TYPE creditflow_sweep_worker_completed_runs gauge\n";
    for (const auto& [fd, conn] : im.conns) {
      if (!conn.hello) continue;
      out << "creditflow_sweep_worker_completed_runs{fd=\"" << fd << "\"} "
          << conn.runs_completed << '\n';
    }
    return out.str();
  };

  /// Answer one HTTP request on a status connection as soon as its request
  /// line is complete (headers are ignored; one request per connection).
  /// false → close the connection.
  auto serve_status = [&](Impl::StatusConn& sc) {
    const auto newline = sc.inbuf.find('\n');
    if (newline == std::string::npos) {
      return sc.inbuf.size() <= 4096;  // keep waiting, bound the buffer
    }
    std::string line = sc.inbuf.substr(0, newline);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::istringstream request(line);
    std::string method;
    std::string path;
    request >> method >> path;
    std::string status_line;
    std::string body;
    std::string content_type = "application/json";
    if (method == "GET" &&
        (path == "/status" || path.rfind("/status?", 0) == 0)) {
      status_line = "HTTP/1.0 200 OK";
      body = status_json();
    } else if (method == "GET" &&
               (path == "/metrics" || path.rfind("/metrics?", 0) == 0)) {
      status_line = "HTTP/1.0 200 OK";
      body = metrics_text();
      content_type = "text/plain; version=0.0.4";
    } else {
      status_line = "HTTP/1.0 404 Not Found";
      body = "{\"error\":\"unknown path; try GET /status or /metrics\"}";
    }
    const std::string response =
        status_line + "\r\nContent-Type: " + content_type + "\r\n" +
        "Content-Length: " + std::to_string(body.size()) +
        "\r\nConnection: close\r\n\r\n" + body;
    (void)sc.socket.send_all(response);
    return false;
  };

  try {
  while (true) {
    const Clock::time_point now = Clock::now();
    // With the status endpoint enabled the early exit is off: scrapers must
    // be able to observe the drained terminal state for the full window.
    if (im.done &&
        (now >= im.drain_deadline ||
         (!im.status_listener.valid() && im.conns.empty() &&
          workers_seen_ > 0))) {
      break;
    }

    // Revoke leases whose deadline passed — a worker gone silent past the
    // lease timeout, or a disconnected session whose RESUME grace expired.
    // The runs go to the queue head so the next idle worker steals them.
    for (auto it = im.leases.begin(); it != im.leases.end();) {
      if (now >= it->second.deadline) {
        CF_LOG_WARN("coordinator: lease on run "
                    << it->first
                    << (it->second.fd == -1
                            ? " lost its worker; requeueing"
                            : " timed out; requeueing"));
        if (im.journal) im.journal->record_requeue(it->first);
        im.pending.push_front(it->first);
        ++requeued_;
        it = im.leases.erase(it);
      } else {
        ++it;
      }
    }

    // Sleep until traffic, the nearest lease deadline, or the drain
    // deadline — whichever comes first.
    Clock::time_point wake = Clock::time_point::max();
    for (const auto& [idx, lease] : im.leases) {
      wake = std::min(wake, lease.deadline);
    }
    if (im.done) wake = std::min(wake, im.drain_deadline);
    int timeout_ms = -1;
    if (wake != Clock::time_point::max()) {
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(wake - now);
      timeout_ms = left.count() <= 0
                       ? 0
                       : static_cast<int>(
                             std::min<long long>(left.count() + 1, 60000));
    }

    std::vector<pollfd> fds;
    fds.reserve(im.conns.size() + im.status_conns.size() + 2);
    fds.push_back(pollfd{im.listener.fd(), POLLIN, 0});
    const std::size_t status_listener_slot =
        im.status_listener.valid() ? fds.size()
                                   : static_cast<std::size_t>(-1);
    if (im.status_listener.valid()) {
      fds.push_back(pollfd{im.status_listener.fd(), POLLIN, 0});
    }
    const std::size_t worker_base = fds.size();
    for (const auto& [fd, conn] : im.conns) {
      fds.push_back(pollfd{fd, POLLIN, 0});
    }
    const std::size_t status_base = fds.size();
    for (const auto& [fd, sc] : im.status_conns) {
      fds.push_back(pollfd{fd, POLLIN, 0});
    }
    const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      CF_LOG_ERROR("coordinator: poll failed; shutting down");
      break;
    }

    if ((fds[0].revents & POLLIN) != 0) {
      util::Socket accepted = im.listener.accept();
      if (accepted.valid()) {
        const int fd = accepted.fd();
        Impl::Conn conn;
        conn.socket = std::move(accepted);
        conn.connected_at = conn.last_traffic = Clock::now();
        im.conns.emplace(fd, std::move(conn));
      }
    }
    if (status_listener_slot != static_cast<std::size_t>(-1) &&
        (fds[status_listener_slot].revents & POLLIN) != 0) {
      util::Socket accepted = im.status_listener.accept();
      if (accepted.valid()) {
        const int fd = accepted.fd();
        im.status_conns.emplace(fd,
                                Impl::StatusConn{std::move(accepted), {}});
      }
    }

    for (std::size_t k = worker_base; k < status_base; ++k) {
      if (fds[k].revents == 0) continue;
      const int fd = fds[k].fd;
      const auto it = im.conns.find(fd);
      if (it == im.conns.end()) continue;
      Impl::Conn& conn = it->second;
      const util::IoStatus status = conn.socket.recv_some(conn.inbuf, 0.0);
      if (status == util::IoStatus::kTimeout) continue;  // spurious wakeup
      if (status != util::IoStatus::kOk) {
        close_conn(fd);
        continue;
      }
      // Any traffic from a worker proves it alive: refresh its leases.
      const Clock::time_point fresh = Clock::now() + lease_duration;
      for (auto& [idx, lease] : im.leases) {
        if (lease.fd == fd) lease.deadline = fresh;
      }
      conn.last_traffic = Clock::now();
      if (!process_buffer(conn)) close_conn(fd);
    }

    for (std::size_t k = status_base; k < fds.size(); ++k) {
      if (fds[k].revents == 0) continue;
      const int fd = fds[k].fd;
      const auto it = im.status_conns.find(fd);
      if (it == im.status_conns.end()) continue;
      Impl::StatusConn& sc = it->second;
      const util::IoStatus status = sc.socket.recv_some(sc.inbuf, 0.0);
      if (status == util::IoStatus::kTimeout) continue;
      if (status != util::IoStatus::kOk || !serve_status(sc)) {
        im.status_conns.erase(fd);
      }
    }
  }
  } catch (const CoordinatorAborted&) {
    // The injected crash behaves exactly like the SIGKILL it stands in
    // for: every socket drops on the spot (workers see a dead peer, not a
    // half-open idle connection), and only the disk state survives.
    im.listener.close();
    im.conns.clear();
    im.status_listener.close();
    im.status_conns.clear();
    throw;
  }

  im.listener.close();
  im.conns.clear();
  im.status_listener.close();
  im.status_conns.clear();

  CF_ENSURES_MSG(im.completed == im.plan.size(),
                 "coordinator exited with incomplete results");
  return std::move(im.results);
}

}  // namespace creditflow::scenario
