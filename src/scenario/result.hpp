// CreditFlow scenario engine: ResultSink — aggregation of sweep runs into
// per-grid-point statistics and their CSV/JSON/console renderings.
//
// Runs are grouped by grid point; each metric aggregates across the seed
// replications into mean ± stddev ± 95% CI. Aggregation iterates runs in
// run-index order, so the emitted bytes are identical regardless of how
// many worker threads produced the results.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "scenario/runner.hpp"
#include "util/table.hpp"

namespace creditflow::scenario {

/// Mean ± spread of one metric across a grid point's replications.
struct MetricStat {
  double mean = 0.0;
  double stddev = 0.0;  ///< sample stddev (n-1); 0 for a single replication
  double ci95 = 0.0;    ///< 1.96 * stddev / sqrt(n)
  std::size_t n = 0;
};

/// One aggregated grid point.
struct AggregateRow {
  std::size_t point_index = 0;
  std::vector<std::pair<std::string, double>> params;
  std::size_t seeds = 0;     ///< successful runs aggregated
  std::size_t failures = 0;  ///< runs that errored (excluded from stats)
  std::vector<std::pair<std::string, MetricStat>> metrics;
  /// Error messages of the failed runs, in run order (one per failure) —
  /// surfaced so a failed grid point explains itself instead of just
  /// counting.
  std::vector<std::string> errors;
};

/// Collects RunResults and renders aggregates.
class ResultSink {
 public:
  void add(RunResult result);
  void add_all(std::vector<RunResult> results);

  [[nodiscard]] std::size_t size() const { return runs_.size(); }
  /// The collected runs, in run-index order (re-sorted lazily on read, so
  /// interleaved shard merges cost one O(n log n) sort, not per-add work).
  [[nodiscard]] const std::vector<RunResult>& runs() const {
    ensure_sorted();
    return runs_;
  }

  /// Include wall-clock telemetry columns (wall_seconds,
  /// purchase_phase_seconds) in runs_csv(). Off by default: timing is
  /// machine-dependent, and the default emission stays byte-reproducible
  /// across reruns, worker counts, and shard merges.
  void set_timing_columns(bool enabled) { timing_columns_ = enabled; }

  /// Per-grid-point aggregation, ordered by point index.
  [[nodiscard]] std::vector<AggregateRow> aggregate() const;

  /// Raw per-run CSV: run metadata + axis values + every metric + rounds
  /// (and, with set_timing_columns(true), per-run wall-time telemetry).
  [[nodiscard]] std::string runs_csv() const;
  /// Aggregated CSV: axis values + seeds + {metric}_mean/_sd/_ci95 columns.
  [[nodiscard]] std::string aggregate_csv() const;
  /// Aggregated JSON array (objects mirror AggregateRow).
  [[nodiscard]] std::string aggregate_json() const;
  /// Console table of selected metrics ("mean ± ci95" cells).
  [[nodiscard]] util::ConsoleTable aggregate_table(
      const std::string& title,
      std::span<const std::string> metric_names) const;

 private:
  void ensure_sorted() const;

  // Mutable so the const renderings can restore run-index order lazily;
  // logically the sink always *is* sorted, the flag just defers the work.
  mutable std::vector<RunResult> runs_;
  mutable bool sorted_ = true;
  bool timing_columns_ = false;
};

}  // namespace creditflow::scenario
