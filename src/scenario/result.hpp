// CreditFlow scenario engine: ResultSink — aggregation of sweep runs into
// per-grid-point statistics and their CSV/JSON/console renderings.
//
// Runs are grouped by grid point; each metric aggregates across the seed
// replications into mean ± stddev ± 95% CI. The sink folds every run into
// per-point state incrementally as it arrives (streaming aggregation), so
// renderings read from the folded state instead of re-scanning the full run
// list — and with set_expected_replications() a grid point's per-run values
// are released the moment its last run lands, making aggregate memory
// O(grid points), not O(runs). The fold performs the *identical* arithmetic,
// in the identical run-index order, as a batch re-scan of the sorted run
// list (see aggregate_from_runs(), the retained reference implementation),
// so the emitted bytes are the same regardless of completion order, worker
// count, or shard-merge interleaving.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "scenario/runner.hpp"
#include "util/table.hpp"

namespace creditflow::scenario {

/// Mean ± spread of one metric across a grid point's replications.
struct MetricStat {
  double mean = 0.0;
  double stddev = 0.0;  ///< sample stddev (n-1); 0 for a single replication
  double ci95 = 0.0;    ///< 1.96 * stddev / sqrt(n)
  std::size_t n = 0;
};

/// One aggregated grid point.
struct AggregateRow {
  std::size_t point_index = 0;
  std::vector<std::pair<std::string, double>> params;
  std::size_t seeds = 0;     ///< successful runs aggregated
  std::size_t failures = 0;  ///< runs that errored (excluded from stats)
  std::vector<std::pair<std::string, MetricStat>> metrics;
  /// Error messages of the failed runs, in run order (one per failure) —
  /// surfaced so a failed grid point explains itself instead of just
  /// counting.
  std::vector<std::string> errors;
};

/// Collects RunResults, folds them incrementally, and renders aggregates.
class ResultSink {
 public:
  void add(RunResult result);
  void add_all(std::vector<RunResult> results);

  /// Runs added so far (including errored ones).
  [[nodiscard]] std::size_t size() const { return added_; }
  /// The collected runs, in run-index order (re-sorted lazily on read, so
  /// interleaved shard merges cost one O(n log n) sort, not per-add work).
  /// Requires run retention (see set_store_runs).
  [[nodiscard]] const std::vector<RunResult>& runs() const;

  /// Include wall-clock telemetry columns (wall_seconds,
  /// purchase_phase_seconds, peak_rss_bytes) in runs_csv(). Off by default:
  /// timing is machine-dependent, and the default emission stays
  /// byte-reproducible across reruns, worker counts, and shard merges.
  void set_timing_columns(bool enabled) { timing_columns_ = enabled; }

  /// Declare how many runs every grid point will receive (the sweep's
  /// seeds). Lets the fold finalize a point — and release its per-run
  /// buffer — as soon as the last replication arrives, bounding fold memory
  /// by the number of *in-flight* points instead of the number of runs.
  /// Adding a run to an already-complete point is then a precondition
  /// violation. 0 (the default) keeps every point open.
  void set_expected_replications(std::size_t runs_per_point);

  /// Retain (default) or drop raw RunResults. Dropping them disables
  /// runs()/runs_csv()/aggregate_from_runs() but shrinks a metrics-only
  /// sweep's footprint to the fold state alone — with expected
  /// replications set, O(grid points) for a 10^6-run grid. Must be chosen
  /// before the first add().
  void set_store_runs(bool enabled);

  /// Per-grid-point aggregation, ordered by point index — rendered from
  /// the incremental fold.
  [[nodiscard]] std::vector<AggregateRow> aggregate() const;

  /// Reference batch implementation: re-derives the aggregation by
  /// scanning the retained runs in run-index order. Bit-for-bit equal to
  /// aggregate() by construction; kept for the streaming-vs-batch
  /// regression tests. Requires run retention.
  [[nodiscard]] std::vector<AggregateRow> aggregate_from_runs() const;

  /// Raw per-run CSV: run metadata + axis values + every metric + rounds
  /// (and, with set_timing_columns(true), per-run wall-time/RSS telemetry).
  /// Requires run retention.
  [[nodiscard]] std::string runs_csv() const;
  /// Aggregated CSV: axis values + seeds + {metric}_mean/_sd/_ci95 columns.
  [[nodiscard]] std::string aggregate_csv() const;
  /// Aggregated JSON array (objects mirror AggregateRow).
  [[nodiscard]] std::string aggregate_json() const;
  /// Console table of selected metrics ("mean ± ci95" cells).
  [[nodiscard]] util::ConsoleTable aggregate_table(
      const std::string& title,
      std::span<const std::string> metric_names) const;

 private:
  /// Per-run state a point holds until it finalizes: exactly what the
  /// batch scan would have read back out of the retained run.
  struct PendingRun {
    std::size_t run_index = 0;
    std::vector<std::pair<std::string, double>> metrics;
    std::string error;
  };
  /// Statistics of one point's replications; what finalize stores and what
  /// a row renders.
  struct FoldedStats {
    std::size_t seeds = 0;
    std::size_t failures = 0;
    std::vector<std::string> errors;
    std::vector<std::pair<std::string, MetricStat>> metrics;
  };
  /// Fold state of one grid point. `pending` buffers replications until the
  /// point completes; finalize_point() then collapses them into `stats` and
  /// releases the buffer. Open points (no declared replication count, or a
  /// shard that owns only part of the point) keep `pending` and fold it on
  /// demand at render time — through a sorted pointer view, never a copy.
  struct PointFold {
    bool seen = false;
    bool finalized = false;
    std::vector<std::pair<std::string, double>> params;
    std::vector<PendingRun> pending;
    FoldedStats stats;
  };

  void fold_add(const RunResult& result);
  /// Collapse `pending` into stats with the batch algorithm: walk a
  /// run-index-sorted view (no copies of the per-run data), sum means in
  /// that order, then a second deviation pass in the same order — the
  /// operation sequence aggregate_from_runs() performs, hence bit-identical
  /// results.
  [[nodiscard]] static FoldedStats fold_pending(
      const std::vector<PendingRun>& pending);
  /// fold_pending + release the per-run buffer (complete points only).
  static void finalize_point(PointFold& point);
  void ensure_sorted() const;

  std::vector<PointFold> fold_;  ///< indexed by point_index
  std::size_t expected_replications_ = 0;  ///< 0 = unknown
  std::size_t added_ = 0;

  // Retained raw runs (store_runs_ mode). Mutable so the const renderings
  // can restore run-index order lazily; logically the sink always *is*
  // sorted, the flag just defers the work.
  mutable std::vector<RunResult> runs_;
  mutable bool sorted_ = true;
  bool store_runs_ = true;
  bool timing_columns_ = false;
};

}  // namespace creditflow::scenario
