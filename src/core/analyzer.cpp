#include "core/analyzer.hpp"

#include <algorithm>
#include <cmath>

#include "econ/gini.hpp"
#include "queueing/approx.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace creditflow::core {

namespace {

void analyze_finite_network(SustainabilityVerdict& verdict,
                            const std::vector<double>& utilization,
                            std::uint64_t total_credits,
                            const AnalyzerOptions& opts) {
  const std::size_t n = utilization.size();
  const queueing::ClosedNetwork network(utilization, total_credits);

  verdict.expected_wealth.resize(n);
  double empty_sum = 0.0;
  double busy_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    verdict.expected_wealth[i] = network.expected_wealth(i);
    empty_sum += network.empty_probability(i);
    busy_sum += network.busy_probability(i);
  }
  verdict.mean_empty_probability = empty_sum / static_cast<double>(n);
  verdict.efficiency_exact = busy_sum / static_cast<double>(n);
  verdict.gini_of_expectations = econ::gini(verdict.expected_wealth);

  const double c = static_cast<double>(total_credits) /
                   static_cast<double>(n);
  verdict.efficiency_eq9 = queueing::efficiency_eq9(c);

  // Expected sample Gini at equilibrium: average the Gini of joint draws.
  // Guard the memory bound of the suffix table (see ClosedNetwork).
  if ((n + 1) * (total_credits + 1) <= 64'000'000ULL &&
      opts.gini_samples > 0) {
    util::Rng rng(opts.seed);
    double acc = 0.0;
    std::vector<double> wealth(n);
    std::vector<double> gini_scratch;
    for (std::size_t s = 0; s < opts.gini_samples; ++s) {
      const auto draw = network.sample_joint(rng);
      for (std::size_t i = 0; i < n; ++i)
        wealth[i] = static_cast<double>(draw[i]);
      acc += econ::gini(wealth, gini_scratch);
    }
    verdict.predicted_gini = acc / static_cast<double>(opts.gini_samples);
  } else {
    // Fall back to the inequality of the expectation profile.
    verdict.predicted_gini = verdict.gini_of_expectations;
  }
}

}  // namespace

SustainabilityVerdict analyze_market(const JacksonMapping& mapping,
                                     const AnalyzerOptions& opts) {
  CF_EXPECTS(mapping.num_peers() >= 2);
  SustainabilityVerdict verdict;

  verdict.irreducible = mapping.transfer.is_irreducible();
  const auto eq = queueing::solve_equilibrium(mapping.transfer);
  verdict.equilibrium_residual = eq.residual;
  verdict.stationary_lambda = eq.lambda;
  verdict.equilibrium_exists =
      eq.converged &&
      std::all_of(eq.lambda.begin(), eq.lambda.end(),
                  [](double l) { return l >= 0.0; }) &&
      *std::max_element(eq.lambda.begin(), eq.lambda.end()) > 0.0;

  verdict.utilization = mapping.utilization;
  CF_EXPECTS(verdict.utilization.size() == mapping.num_peers());

  double min_u = 1.0;
  for (double u : verdict.utilization) min_u = std::min(min_u, u);
  verdict.symmetric_utilization = (1.0 - min_u) <= opts.symmetric_tolerance;

  if (verdict.symmetric_utilization) {
    // Corollary of Sec. V-A: T = +∞, condensation never occurs.
    verdict.condensation.threshold = util::kPosInf;
    verdict.condensation.threshold_finite = false;
    verdict.condensation.average_wealth = mapping.average_wealth;
    verdict.condensation.condensation_predicted = false;
  } else {
    verdict.condensation = queueing::analyze_condensation_empirical(
        verdict.utilization, mapping.average_wealth, opts.condensation);
  }

  analyze_finite_network(verdict, verdict.utilization, mapping.total_credits,
                         opts);
  return verdict;
}

SustainabilityVerdict analyze_utilization(std::vector<double> utilization,
                                          std::uint64_t total_credits,
                                          const AnalyzerOptions& opts) {
  CF_EXPECTS(utilization.size() >= 2);
  SustainabilityVerdict verdict;
  verdict.irreducible = true;        // not applicable in this mode
  verdict.equilibrium_exists = true; // supplied directly
  verdict.utilization = std::move(utilization);

  double min_u = 1.0;
  double max_u = 0.0;
  for (double u : verdict.utilization) {
    CF_EXPECTS_MSG(u >= 0.0, "negative utilization");
    min_u = std::min(min_u, u);
    max_u = std::max(max_u, u);
  }
  CF_EXPECTS_MSG(max_u > 0.0, "all-zero utilization");
  // Normalize to the paper's Eq. (2) scale.
  for (double& u : verdict.utilization) u /= max_u;
  min_u /= max_u;

  const double c = static_cast<double>(total_credits) /
                   static_cast<double>(verdict.utilization.size());
  verdict.symmetric_utilization = (1.0 - min_u) <= opts.symmetric_tolerance;
  if (verdict.symmetric_utilization) {
    verdict.condensation.threshold = util::kPosInf;
    verdict.condensation.threshold_finite = false;
    verdict.condensation.average_wealth = c;
    verdict.condensation.condensation_predicted = false;
  } else {
    verdict.condensation = queueing::analyze_condensation_empirical(
        verdict.utilization, c, opts.condensation);
  }

  analyze_finite_network(verdict, verdict.utilization, total_credits, opts);
  return verdict;
}

}  // namespace creditflow::core
