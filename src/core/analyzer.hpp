// CreditFlow: SustainabilityAnalyzer — the paper's analytical pipeline as a
// single entry point. Given a Jackson-network view of a market (Table I
// mapping) it answers, in order:
//
//  1. does a stable credit circulation exist (Lemma 1), and what is it?
//  2. is asymptotic wealth condensation predicted (Eq. 4, Theorems 2/3)?
//  3. what does the exact finite-network equilibrium look like — expected
//     wealth per peer, Gini index, bankruptcy probabilities (Sec. V-B)?
//  4. how efficient is content exchange at this average wealth (Eq. 9)?
#pragma once

#include <cstdint>
#include <vector>

#include "core/mapping.hpp"
#include "queueing/closed_network.hpp"
#include "queueing/condensation.hpp"

namespace creditflow::core {

/// Everything the analyzer derives about a market.
struct SustainabilityVerdict {
  // Equilibrium existence (Lemma 1).
  bool irreducible = false;
  bool equilibrium_exists = false;   ///< positive stationary λ found
  double equilibrium_residual = 0.0; ///< ||λP − λ||∞
  std::vector<double> stationary_lambda;

  // Utilization profile.
  std::vector<double> utilization;
  bool symmetric_utilization = false;  ///< all u_i ≈ 1 (corollary case)

  // Asymptotic condensation (Theorems 2/3).
  queueing::CondensationAnalysis condensation;

  // Finite-network equilibrium (exact, via Buzen).
  std::vector<double> expected_wealth;   ///< E[B_i]
  double predicted_gini = 0.0;           ///< Gini of a typical joint sample
  double gini_of_expectations = 0.0;     ///< Gini over the E[B_i] profile
  double mean_empty_probability = 0.0;   ///< avg P(B_i = 0)
  double efficiency_eq9 = 0.0;           ///< 1 − e^{-c}
  double efficiency_exact = 0.0;         ///< avg busy probability (exact)
};

/// Analyzer options.
struct AnalyzerOptions {
  double symmetric_tolerance = 0.05;   ///< max deviation of u_i from 1
  std::size_t gini_samples = 64;       ///< joint samples for predicted_gini
  std::uint64_t seed = 7;
  queueing::EmpiricalOptions condensation;
};

/// Run the full pipeline on a mapping.
[[nodiscard]] SustainabilityVerdict analyze_market(
    const JacksonMapping& mapping, const AnalyzerOptions& opts = {});

/// Shortcut: analyze a utilization profile directly (no routing matrix),
/// skipping the equilibrium stage. Used by the analytic benches.
[[nodiscard]] SustainabilityVerdict analyze_utilization(
    std::vector<double> utilization, std::uint64_t total_credits,
    const AnalyzerOptions& opts = {});

}  // namespace creditflow::core
