#include "core/mapping.hpp"

#include <unordered_map>

#include "util/assert.hpp"

namespace creditflow::core {

namespace {

/// Compress alive peer ids to dense indices 0..n-1.
std::unordered_map<p2p::PeerId, std::uint32_t> dense_index(
    const std::vector<p2p::PeerId>& alive) {
  std::unordered_map<p2p::PeerId, std::uint32_t> index;
  index.reserve(alive.size());
  for (std::uint32_t k = 0; k < alive.size(); ++k) index[alive[k]] = k;
  return index;
}

}  // namespace

JacksonMapping mapping_from_market(const p2p::StreamingProtocol& protocol) {
  const auto alive = protocol.alive_peers();
  CF_EXPECTS_MSG(alive.size() >= 2, "need at least two alive peers");
  const auto index = dense_index(alive);
  const std::size_t n = alive.size();

  JacksonMapping m;
  m.transfer = queueing::TransferMatrix(n);
  m.service_rates.resize(n);
  std::vector<p2p::PeerId> nbrs;
  for (std::uint32_t k = 0; k < n; ++k) {
    const auto& peer = protocol.peer(alive[k]);
    m.service_rates[k] = peer.base_spend_rate;
    std::vector<queueing::RoutingEntry> row;
    protocol.overlay().neighbors_into(alive[k], nbrs);
    std::vector<std::uint32_t> dense_nbrs;
    dense_nbrs.reserve(nbrs.size());
    for (auto nb : nbrs) {
      const auto it = index.find(nb);
      if (it != index.end()) dense_nbrs.push_back(it->second);
    }
    if (dense_nbrs.empty()) {
      row.push_back({k, 1.0});
    } else {
      const double share = 1.0 / static_cast<double>(dense_nbrs.size());
      for (auto j : dense_nbrs) row.push_back({j, share});
    }
    m.transfer.set_row(k, std::move(row));
  }

  const auto eq = queueing::solve_equilibrium(m.transfer);
  m.arrival_rates = eq.lambda;
  m.utilization =
      queueing::normalized_utilization(m.arrival_rates, m.service_rates);
  m.total_credits = protocol.ledger().circulating();
  m.average_wealth =
      static_cast<double>(m.total_credits) / static_cast<double>(n);
  return m;
}

JacksonMapping mapping_from_trace(const p2p::StreamingProtocol& protocol,
                                  double now) {
  const auto& trace = protocol.trace();
  CF_EXPECTS_MSG(trace.enabled(), "transaction trace was not enabled");
  CF_EXPECTS_MSG(trace.count() > 0, "no transactions recorded");

  const auto alive = protocol.alive_peers();
  CF_EXPECTS(alive.size() >= 2);
  const auto index = dense_index(alive);
  const std::size_t n = alive.size();

  JacksonMapping m;
  m.transfer = queueing::TransferMatrix(n);
  m.service_rates.resize(n);
  m.arrival_rates.assign(n, 0.0);

  // Row flows: credits each buyer paid to each seller.
  std::vector<std::vector<queueing::RoutingEntry>> rows(n);
  std::vector<double> row_totals(n, 0.0);
  for (const auto& [key, credits] : trace.pair_flows()) {
    const auto buyer = static_cast<p2p::PeerId>(key >> 32);
    const auto seller = static_cast<p2p::PeerId>(key & 0xffffffffULL);
    const auto bi = index.find(buyer);
    const auto si = index.find(seller);
    if (bi == index.end() || si == index.end()) continue;  // departed peers
    rows[bi->second].push_back(
        {si->second, static_cast<double>(credits)});
    row_totals[bi->second] += static_cast<double>(credits);
  }
  for (std::uint32_t k = 0; k < n; ++k) {
    if (row_totals[k] <= 0.0) {
      m.transfer.set_row(k, {{k, 1.0}});
      continue;
    }
    for (auto& e : rows[k]) e.probability /= row_totals[k];
    m.transfer.set_row(k, std::move(rows[k]));
  }

  for (std::uint32_t k = 0; k < n; ++k) {
    const auto& peer = protocol.peer(alive[k]);
    m.service_rates[k] = peer.base_spend_rate;
    const double age = peer.age(now);
    m.arrival_rates[k] =
        age > 0.0 ? static_cast<double>(peer.credits_earned) / age : 0.0;
  }
  // A peer that never earned would zero out the utilization; floor λ at a
  // tiny epsilon so Eq. (2) stays well-defined.
  for (auto& l : m.arrival_rates) {
    if (l <= 0.0) l = 1e-12;
  }
  m.utilization =
      queueing::normalized_utilization(m.arrival_rates, m.service_rates);
  m.total_credits = protocol.ledger().circulating();
  m.average_wealth =
      static_cast<double>(m.total_credits) / static_cast<double>(n);
  return m;
}

}  // namespace creditflow::core
