// CreditFlow: Table I of the paper — the mapping between a credit-based P2P
// system and a (closed) Jackson queueing network.
//
//   P2P overlay                      Queueing network
//   ---------------------------------------------------------------
//   peer i                           queue i
//   unit credit                      job
//   credits B_i held by peer i       jobs queued at queue i
//   total credits M                  total jobs M
//   purchase fraction i→j (p_ij)     routing probability p_ij
//   credit spending rate μ_i         service rate μ_i
//   income earning rate λ_i          arrival rate λ_i
//
// Two constructions are provided: the *prescriptive* mapping derived from a
// market configuration (what the model says the market should do), and the
// *empirical* mapping estimated from a recorded protocol trace (what the
// simulated market actually did). Comparing the two is how the benches
// validate the model against the protocol.
#pragma once

#include <vector>

#include "p2p/protocol.hpp"
#include "queueing/equilibrium.hpp"
#include "queueing/transfer_matrix.hpp"

namespace creditflow::core {

/// A fully-specified Jackson-network view of a credit market.
struct JacksonMapping {
  queueing::TransferMatrix transfer;   ///< P — credit routing
  std::vector<double> arrival_rates;   ///< λ — income earning rates
  std::vector<double> service_rates;   ///< μ — max spending rates
  std::vector<double> utilization;     ///< u — Eq. (2), max-normalized
  std::uint64_t total_credits = 0;     ///< M
  double average_wealth = 0.0;         ///< c = M/N

  [[nodiscard]] std::size_t num_peers() const {
    return service_rates.size();
  }
};

/// Prescriptive mapping: uniform routing over the current overlay
/// neighborhoods (the streaming case of Sec. V-C), λ from the equilibrium
/// λP = λ, μ from the configured nominal spending rates.
[[nodiscard]] JacksonMapping mapping_from_market(
    const p2p::StreamingProtocol& protocol);

/// Empirical mapping estimated from the protocol's transaction trace:
/// p_ij = share of i's payments that went to j; λ_i = credits earned per
/// alive second; μ_i = nominal (configured) spending rate. Requires the
/// trace to have been enabled before the run and at least one transaction.
[[nodiscard]] JacksonMapping mapping_from_trace(
    const p2p::StreamingProtocol& protocol, double now);

}  // namespace creditflow::core
