// CreditFlow: per-round time-series sampler — the trajectory readout
// behind `market_cli --series-out`.
//
// The paper's sustainability story is about *trajectories*: how Gini,
// availability and credit supply evolve round by round, not just where
// they end up. The periodic MarketReport snapshots (every
// snapshot_interval simulated seconds) are too coarse to show when a
// market tips; this sampler hooks the protocol's post-round callback and
// records one row every `every_rounds` rounds, immediately after that
// round's purchases and taxation settle.
//
// Sampling is read-only (consumes no RNG — golden outputs are unaffected)
// and allocation-free at steady state: rows are reserved up front from
// the horizon, and the balance/Gini scratch buffers are the same
// caller-owned snapshot flavors the PR-4 snapshot path uses.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "p2p/protocol.hpp"
#include "strategy/strategy.hpp"

namespace creditflow::core {

/// One sampled row, taken at the end of a protocol round.
struct RoundSample {
  std::uint64_t round = 0;        ///< 1-based protocol round index
  double t = 0.0;                 ///< simulation time of the round
  std::size_t alive_peers = 0;    ///< availability: peers in the market
  double gini_balances = 0.0;     ///< wealth inequality (nan when supply 0)
  double credit_supply = 0.0;     ///< total credits held by alive peers
  double mean_balance = 0.0;      ///< credit_supply / alive_peers
  double mean_buffer_fill = 0.0;  ///< playback-continuity proxy
  // Order-book columns — sampled (and emitted) only when the protocol runs
  // with market_mode=kOrderBook; the default-mode CSV header is pinned.
  double book_depth = 0.0;        ///< resting asks at end of round
  double book_spread = 0.0;       ///< max_ask - min_ask
  double clearing_price = 0.0;    ///< volume/fills of the round
  double fill_ratio = 0.0;        ///< fills / posted quantity of the round
  // Strategy columns — sampled (and emitted) only when the strategy layer
  // is enabled; the default-mode CSV header stays pinned.
  std::array<std::size_t, strategy::kNumStrategies> strat_peers{};
  std::array<double, strategy::kNumStrategies> strat_credits{};
  double staked_total = 0.0;  ///< bonded credit outside circulation
  double honest_fill = 0.0;   ///< mean buffer fill of honest peers only
};

/// Collects RoundSamples from a live protocol; attach via sample() from
/// the protocol's post-round hook (CreditMarket wires this up when
/// MarketConfig::series_every_rounds > 0).
class RoundSeriesSampler {
 public:
  /// `every_rounds` ≥ 1; `expected_rounds` sizes the row reservation (an
  /// estimate — growth past it merely reallocates).
  RoundSeriesSampler(const p2p::StreamingProtocol& protocol,
                     std::size_t every_rounds, std::uint64_t expected_rounds);

  /// Record a row if this round lands on the cadence. Call once per round,
  /// after the round's phases completed.
  void on_round(std::uint64_t round, double t);

  [[nodiscard]] const std::vector<RoundSample>& rows() const { return rows_; }
  [[nodiscard]] std::size_t every_rounds() const { return every_rounds_; }

  /// The rows as CSV (shortest round-trip doubles, one header line):
  /// round,t,alive_peers,gini_balances,credit_supply,mean_balance,
  /// mean_buffer_fill — plus ,book_depth,book_spread,clearing_price,
  /// fill_ratio when the protocol runs in order-book mode.
  [[nodiscard]] std::string csv() const;

 private:
  const p2p::StreamingProtocol& protocol_;
  bool book_mode_ = false;
  bool strat_mode_ = false;
  std::size_t every_rounds_;
  std::vector<RoundSample> rows_;
  // Scratch for the allocation-free snapshot flavors.
  std::vector<double> balances_;
  std::vector<double> gini_scratch_;
};

}  // namespace creditflow::core
