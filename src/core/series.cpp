#include "core/series.hpp"

#include <sstream>

#include "econ/gini.hpp"
#include "util/math.hpp"

namespace creditflow::core {

RoundSeriesSampler::RoundSeriesSampler(const p2p::StreamingProtocol& protocol,
                                       std::size_t every_rounds,
                                       std::uint64_t expected_rounds)
    : protocol_(protocol),
      book_mode_(protocol.config().market_mode ==
                 p2p::ProtocolConfig::MarketMode::kOrderBook),
      every_rounds_(every_rounds == 0 ? 1 : every_rounds) {
  // Reserve everything up front so on_round never allocates: one row per
  // cadence hit plus slack, and snapshot scratch sized to the peer-slot
  // capacity (alive count can never exceed it).
  rows_.reserve(
      static_cast<std::size_t>(expected_rounds / every_rounds_) + 2);
  balances_.reserve(protocol_.config().max_peers);
  gini_scratch_.reserve(protocol_.config().max_peers);
}

void RoundSeriesSampler::on_round(std::uint64_t round, double t) {
  if (round % every_rounds_ != 0) return;

  RoundSample row;
  row.round = round;
  row.t = t;
  row.alive_peers = protocol_.num_alive();

  protocol_.balance_snapshot(balances_);
  double supply = 0.0;
  for (const double b : balances_) supply += b;
  row.credit_supply = supply;
  row.mean_balance =
      balances_.empty() ? 0.0 : supply / static_cast<double>(balances_.size());
  // Same zero-supply convention as the snapshot path: a fully-bankrupt
  // population reads as perfectly equal, not undefined.
  row.gini_balances =
      supply > 0.0 ? econ::gini(balances_, gini_scratch_) : 0.0;
  row.mean_buffer_fill = protocol_.mean_buffer_fill();

  if (book_mode_) {
    const auto stats = protocol_.book_round_stats();
    row.book_depth = stats.depth;
    row.book_spread = stats.spread;
    row.clearing_price = stats.clearing_price;
    row.fill_ratio = stats.fill_ratio;
  }

  rows_.push_back(row);
}

std::string RoundSeriesSampler::csv() const {
  std::ostringstream out;
  out << "round,t,alive_peers,gini_balances,credit_supply,mean_balance,"
         "mean_buffer_fill";
  if (book_mode_) out << ",book_depth,book_spread,clearing_price,fill_ratio";
  out << '\n';
  for (const RoundSample& row : rows_) {
    out << row.round << ',' << util::format_double(row.t) << ','
        << row.alive_peers << ',' << util::format_double(row.gini_balances)
        << ',' << util::format_double(row.credit_supply) << ','
        << util::format_double(row.mean_balance) << ','
        << util::format_double(row.mean_buffer_fill);
    if (book_mode_) {
      out << ',' << util::format_double(row.book_depth) << ','
          << util::format_double(row.book_spread) << ','
          << util::format_double(row.clearing_price) << ','
          << util::format_double(row.fill_ratio);
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace creditflow::core
