#include "core/series.hpp"

#include <limits>
#include <sstream>

#include "econ/gini.hpp"
#include "util/math.hpp"

namespace creditflow::core {

RoundSeriesSampler::RoundSeriesSampler(const p2p::StreamingProtocol& protocol,
                                       std::size_t every_rounds,
                                       std::uint64_t expected_rounds)
    : protocol_(protocol),
      book_mode_(protocol.config().market_mode ==
                 p2p::ProtocolConfig::MarketMode::kOrderBook),
      strat_mode_(protocol.config().strat.enabled()),
      every_rounds_(every_rounds == 0 ? 1 : every_rounds) {
  // Reserve everything up front so on_round never allocates: one row per
  // cadence hit plus slack, and snapshot scratch sized to the peer-slot
  // capacity (alive count can never exceed it).
  rows_.reserve(
      static_cast<std::size_t>(expected_rounds / every_rounds_) + 2);
  balances_.reserve(protocol_.config().max_peers);
  gini_scratch_.reserve(protocol_.config().max_peers);
}

void RoundSeriesSampler::on_round(std::uint64_t round, double t) {
  if (round % every_rounds_ != 0) return;

  RoundSample row;
  row.round = round;
  row.t = t;
  row.alive_peers = protocol_.num_alive();

  protocol_.balance_snapshot(balances_);
  double supply = 0.0;
  for (const double b : balances_) supply += b;
  row.credit_supply = supply;
  row.mean_balance =
      balances_.empty() ? 0.0 : supply / static_cast<double>(balances_.size());
  // Inequality over zero supply is undefined, and 0.0 would read as
  // "perfectly equal" — emit nan so downstream tooling cannot mistake a
  // fully-bankrupt population for a fair one. (format_double prints it as
  // the literal "nan"; the golden-hash pins cover run CSVs, not series.)
  row.gini_balances = supply > 0.0
                          ? econ::gini(balances_, gini_scratch_)
                          : std::numeric_limits<double>::quiet_NaN();
  row.mean_buffer_fill = protocol_.mean_buffer_fill();

  if (book_mode_) {
    const auto stats = protocol_.book_round_stats();
    row.book_depth = stats.depth;
    row.book_spread = stats.spread;
    row.clearing_price = stats.clearing_price;
    row.fill_ratio = stats.fill_ratio;
  }

  if (strat_mode_) {
    const auto breakdown = protocol_.strategy_breakdown();
    row.strat_peers = breakdown.population;
    row.strat_credits = breakdown.credits;
    row.staked_total = breakdown.staked_total;
    const auto honest =
        static_cast<std::size_t>(strategy::Strategy::kHonest);
    row.honest_fill =
        breakdown.population[honest] > 0
            ? breakdown.buffer_fill[honest] /
                  static_cast<double>(breakdown.population[honest])
            : 0.0;
  }

  rows_.push_back(row);
}

std::string RoundSeriesSampler::csv() const {
  std::ostringstream out;
  out << "round,t,alive_peers,gini_balances,credit_supply,mean_balance,"
         "mean_buffer_fill";
  if (book_mode_) out << ",book_depth,book_spread,clearing_price,fill_ratio";
  if (strat_mode_) {
    for (std::size_t s = 0; s < strategy::kNumStrategies; ++s) {
      out << ",strat_" << strategy::name(static_cast<strategy::Strategy>(s))
          << "_peers";
    }
    for (std::size_t s = 0; s < strategy::kNumStrategies; ++s) {
      out << ",strat_" << strategy::name(static_cast<strategy::Strategy>(s))
          << "_credits";
    }
    out << ",strat_staked_total,strat_honest_fill";
  }
  out << '\n';
  for (const RoundSample& row : rows_) {
    out << row.round << ',' << util::format_double(row.t) << ','
        << row.alive_peers << ',' << util::format_double(row.gini_balances)
        << ',' << util::format_double(row.credit_supply) << ','
        << util::format_double(row.mean_balance) << ','
        << util::format_double(row.mean_buffer_fill);
    if (book_mode_) {
      out << ',' << util::format_double(row.book_depth) << ','
          << util::format_double(row.book_spread) << ','
          << util::format_double(row.clearing_price) << ','
          << util::format_double(row.fill_ratio);
    }
    if (strat_mode_) {
      for (const std::size_t n : row.strat_peers) out << ',' << n;
      for (const double c : row.strat_credits) {
        out << ',' << util::format_double(c);
      }
      out << ',' << util::format_double(row.staked_total) << ','
          << util::format_double(row.honest_fill);
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace creditflow::core
