#include "core/market.hpp"

#include <numeric>

#include "econ/gini.hpp"
#include "util/assert.hpp"

namespace creditflow::core {

CreditMarket::CreditMarket(MarketConfig config) : cfg_(std::move(config)) {
  CF_EXPECTS(cfg_.horizon > 0.0);
  CF_EXPECTS(cfg_.snapshot_interval > 0.0);
  CF_EXPECTS(cfg_.snapshot_interval <= cfg_.horizon);
  CF_EXPECTS_MSG(cfg_.rate_window_start < cfg_.horizon,
                 "rate window would open at or after the horizon");
  protocol_ =
      std::make_unique<p2p::StreamingProtocol>(cfg_.protocol, sim_);
  if (cfg_.enable_trace) protocol_->trace().set_enabled(true);
}

void CreditMarket::take_snapshot(double t, MarketReport& report) {
  std::vector<double>& balances = snapshot_balances_;
  protocol_->balance_snapshot(balances);
  if (balances.empty()) return;

  const double total =
      std::accumulate(balances.begin(), balances.end(), 0.0);
  report.mean_balance.add(t, total / static_cast<double>(balances.size()));
  report.alive_peers.add(t, static_cast<double>(balances.size()));
  report.mean_buffer_fill.add(t, protocol_->mean_buffer_fill());
  report.gini_balances.add(
      t, total > 0.0 ? econ::gini(balances, gini_scratch_) : 0.0);

  std::vector<double>& rates = snapshot_rates_;
  protocol_->spend_rate_snapshot(rates);
  const double rate_total =
      std::accumulate(rates.begin(), rates.end(), 0.0);
  report.gini_spend_rates.add(
      t, rate_total > 0.0 ? econ::gini(rates, gini_scratch_) : 0.0);

  if (cfg_.audit_every_snapshot) {
    CF_ENSURES_MSG(protocol_->ledger().audit(),
                   "ledger conservation violated at snapshot");
  }
}

MarketReport CreditMarket::run() {
  CF_EXPECTS_MSG(!ran_, "CreditMarket::run may only be called once");
  ran_ = true;

  MarketReport report;
  if (cfg_.series_every_rounds > 0) {
    const auto expected_rounds = static_cast<std::uint64_t>(
        cfg_.horizon / cfg_.protocol.round_seconds) + 1;
    series_ = std::make_unique<RoundSeriesSampler>(
        *protocol_, cfg_.series_every_rounds, expected_rounds);
    protocol_->set_round_hook([this](std::uint64_t round, double t) {
      series_->on_round(round, t);
    });
  }
  protocol_->start();
  sim_.schedule_periodic(
      sim_.now() + cfg_.snapshot_interval, cfg_.snapshot_interval,
      [this, &report](double t) { take_snapshot(t, report); });
  if (cfg_.rate_window_start >= 0.0) {
    sim_.schedule_at(cfg_.rate_window_start,
                     [this](double) { protocol_->begin_rate_window(); });
  }
  sim_.run_until(cfg_.horizon);

  // Final state.
  report.horizon = cfg_.horizon;
  report.rounds = protocol_->rounds_run();
  report.final_balances = protocol_->balance_snapshot();
  report.final_spend_rates = protocol_->spend_rate_snapshot();
  report.final_download_rates = protocol_->download_rate_snapshot();
  if (cfg_.rate_window_start >= 0.0 && sim_.now() > cfg_.rate_window_start) {
    report.final_windowed_spend_rates = protocol_->windowed_spend_rates();
  }
  if (!report.final_balances.empty()) {
    report.final_wealth = econ::summarize_wealth(report.final_balances);
  }

  auto& metrics = protocol_->metrics();
  report.transactions = metrics.counter("market.transactions");
  report.volume = metrics.counter("market.volume");
  report.tax_collected = protocol_->taxation().total_collected();
  report.tax_redistributed = protocol_->taxation().total_redistributed();
  report.churn_arrivals = metrics.counter("churn.arrivals");
  report.churn_departures = metrics.counter("churn.departures");
  report.overlay_edges_dropped = metrics.counter("overlay.edges_dropped");
  report.churn_arrivals_dropped = metrics.counter("churn.arrivals_dropped");
  report.book_asks_posted = metrics.counter("book.asks_posted");
  report.book_posted_qty = metrics.counter("book.posted_qty");
  report.book_fills = metrics.counter("book.fills");
  report.book_volume = metrics.counter("book.volume");
  report.book_asks_expired = metrics.counter("book.asks_expired");
  report.book_bids_posted = metrics.counter("book.bids_posted");
  report.book_bids_matched = metrics.counter("book.bids_matched");
  report.book_bids_expired = metrics.counter("book.bids_expired");
  report.whitewash_resets = metrics.counter("strat.whitewash_resets");
  report.whitewash_minted = metrics.counter("strat.whitewash_minted");
  report.whitewash_burned = metrics.counter("strat.whitewash_burned");
  report.collusion_transfers = metrics.counter("strat.collusion_transfers");
  report.collusion_volume = metrics.counter("strat.collusion_volume");
  report.stake_locked = metrics.counter("strat.stake_locked");
  report.stake_slashed = metrics.counter("strat.stake_slashed");
  report.stake_topups = metrics.counter("strat.stake_topups");
  if (cfg_.protocol.strat.enabled()) {
    report.final_strategy = protocol_->strategy_breakdown();
  }
  report.ledger_conserved = protocol_->ledger().audit();
  return report;
}

JacksonMapping CreditMarket::empirical_mapping() const {
  return mapping_from_trace(*protocol_, sim_.now());
}

JacksonMapping CreditMarket::prescriptive_mapping() const {
  return mapping_from_market(*protocol_);
}

}  // namespace creditflow::core
