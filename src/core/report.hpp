// CreditFlow: MarketReport — everything a CreditMarket run produces, plus
// console/CSV rendering helpers shared by examples and benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "econ/wealth.hpp"
#include "strategy/strategy.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace creditflow::core {

/// Result of one simulated market run.
struct MarketReport {
  // Time series sampled every snapshot_interval.
  util::TimeSeries gini_balances{"gini.balances"};
  util::TimeSeries gini_spend_rates{"gini.spend_rates"};
  util::TimeSeries mean_balance{"mean.balance"};
  util::TimeSeries mean_buffer_fill{"mean.buffer_fill"};
  util::TimeSeries alive_peers{"alive.peers"};

  // Final-state snapshots (alive peers, unsorted).
  std::vector<double> final_balances;
  std::vector<double> final_spend_rates;
  std::vector<double> final_download_rates;
  econ::WealthSummary final_wealth;
  /// Spend rates over [rate_window_start, horizon]; empty unless the run
  /// was configured with a rate window (MarketConfig::rate_window_start).
  std::vector<double> final_windowed_spend_rates;

  // Market-wide accounting.
  std::uint64_t transactions = 0;
  std::uint64_t volume = 0;
  std::uint64_t tax_collected = 0;
  std::uint64_t tax_redistributed = 0;
  std::uint64_t churn_arrivals = 0;
  std::uint64_t churn_departures = 0;
  std::uint64_t rounds = 0;
  double horizon = 0.0;
  bool ledger_conserved = true;

  // Overlay health (PR-7 SoA edge pool): joins whose preferential links
  // were dropped because the fixed edge pool was exhausted.
  std::uint64_t overlay_edges_dropped = 0;
  std::uint64_t churn_arrivals_dropped = 0;

  // Order-book market accounting (all zero when market_mode=direct).
  std::uint64_t book_asks_posted = 0;    ///< ask posts (incl. reprices)
  std::uint64_t book_posted_qty = 0;     ///< units offered across all posts
  std::uint64_t book_fills = 0;          ///< unit fills (== purchases)
  std::uint64_t book_volume = 0;         ///< credits crossed through the book
  std::uint64_t book_asks_expired = 0;   ///< churn/drain expiries
  std::uint64_t book_bids_posted = 0;    ///< resting limit bids posted
  std::uint64_t book_bids_matched = 0;   ///< bids cleared by a purchase
  std::uint64_t book_bids_expired = 0;   ///< bids expired on buyer churn

  // Strategy-layer accounting (all zero when strat.* is off).
  std::uint64_t whitewash_resets = 0;    ///< identity cycles executed
  std::uint64_t whitewash_minted = 0;    ///< credits re-minted by cycling
  std::uint64_t whitewash_burned = 0;    ///< balances forfeited to cycle
  std::uint64_t collusion_transfers = 0; ///< wash transfers executed
  std::uint64_t collusion_volume = 0;    ///< credits washed in cliques
  std::uint64_t stake_locked = 0;        ///< credits bonded (incl. topups)
  std::uint64_t stake_slashed = 0;       ///< bond forfeited to treasury
  std::uint64_t stake_topups = 0;        ///< revalidation top-up events
  /// Final per-strategy population/credit breakdown (all-honest when the
  /// strategy layer is off).
  strategy::Breakdown final_strategy;

  /// Converged Gini estimate: mean over the trailing 25% of the run.
  [[nodiscard]] double converged_gini() const;

  /// One-line summary for logs/examples.
  [[nodiscard]] std::string summary() const;

  /// Render the Gini evolution as a table (used by several figure benches).
  [[nodiscard]] util::ConsoleTable gini_table(const std::string& title) const;
};

}  // namespace creditflow::core
