#include "core/report.hpp"

#include <sstream>

namespace creditflow::core {

double MarketReport::converged_gini() const {
  if (gini_balances.empty()) return 0.0;
  return gini_balances.tail_mean(0.25);
}

std::string MarketReport::summary() const {
  std::ostringstream oss;
  oss << "rounds=" << rounds << " tx=" << transactions
      << " volume=" << volume << " gini=" << converged_gini()
      << " bankrupt=" << final_wealth.bankrupt_fraction
      << " top10=" << final_wealth.top10_share
      << (ledger_conserved ? "" : " [LEDGER VIOLATION]");
  return oss.str();
}

util::ConsoleTable MarketReport::gini_table(const std::string& title) const {
  util::ConsoleTable table(title);
  table.set_header({"time_s", "gini_balances", "mean_balance",
                    "buffer_fill", "alive"});
  for (std::size_t i = 0; i < gini_balances.size(); ++i) {
    table.add_row({gini_balances.time_at(i), gini_balances.value_at(i),
                   mean_balance.value_at(i), mean_buffer_fill.value_at(i),
                   alive_peers.value_at(i)});
  }
  return table;
}

}  // namespace creditflow::core
