// CreditFlow: CreditMarket — the top-level facade. Configure a market, run
// it on the discrete-event engine, get a MarketReport; optionally extract
// the Table I mapping and hand it to the SustainabilityAnalyzer.
//
// This is the API the examples and figure benches are written against.
#pragma once

#include <memory>
#include <vector>

#include "core/mapping.hpp"
#include "core/report.hpp"
#include "core/series.hpp"
#include "p2p/protocol.hpp"
#include "sim/simulator.hpp"

namespace creditflow::core {

/// Run parameters around the protocol configuration.
struct MarketConfig {
  p2p::ProtocolConfig protocol;
  double horizon = 20000.0;          ///< simulated seconds
  double snapshot_interval = 200.0;  ///< metrics cadence
  bool enable_trace = false;         ///< pairwise flow aggregation for mapping
  bool audit_every_snapshot = true;  ///< assert ledger conservation

  /// When >= 0 (and < horizon), open the protocol's trailing rate window at
  /// this simulation time; the report then carries windowed spend rates
  /// measured over [rate_window_start, horizon] — the paper's "evolved for
  /// a long time" readout (Fig. 1). Negative disables.
  double rate_window_start = -1.0;

  /// When > 0, collect a per-round time series (one RoundSample every N
  /// rounds) readable via CreditMarket::series() after run(). Pure readout:
  /// sampling consumes no RNG and changes no report bytes, so it is
  /// deliberately NOT part of ScenarioSpec (run cache keys are unaffected).
  /// 0 disables.
  std::size_t series_every_rounds = 0;
};

/// One market = one simulator + one protocol instance + metrics collection.
class CreditMarket {
 public:
  explicit CreditMarket(MarketConfig config);

  /// Run to the horizon and return the collected report. Can only be called
  /// once per instance.
  [[nodiscard]] MarketReport run();

  /// Access the live protocol (valid after construction; most useful after
  /// run() for final-state inspection or mapping extraction).
  [[nodiscard]] const p2p::StreamingProtocol& protocol() const {
    return *protocol_;
  }
  [[nodiscard]] const MarketConfig& config() const { return cfg_; }
  [[nodiscard]] double now() const { return sim_.now(); }

  /// The per-round time series collected during run(); nullptr unless
  /// series_every_rounds > 0 (and empty until run() executes).
  [[nodiscard]] const RoundSeriesSampler* series() const {
    return series_.get();
  }

  /// Empirical Table I mapping from the recorded trace (requires
  /// enable_trace and a completed run).
  [[nodiscard]] JacksonMapping empirical_mapping() const;
  /// Prescriptive Table I mapping from the current market state.
  [[nodiscard]] JacksonMapping prescriptive_mapping() const;

 private:
  void take_snapshot(double t, MarketReport& report);

  MarketConfig cfg_;
  sim::Simulator sim_;
  std::unique_ptr<p2p::StreamingProtocol> protocol_;
  // Periodic-snapshot scratch, reused across samples so the metrics cadence
  // allocates nothing once the buffers have warmed up.
  std::vector<double> snapshot_balances_;
  std::vector<double> snapshot_rates_;
  std::vector<double> gini_scratch_;
  std::unique_ptr<RoundSeriesSampler> series_;
  bool ran_ = false;
};

}  // namespace creditflow::core
