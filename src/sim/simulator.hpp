// CreditFlow: simulation driver — a monotone clock over the event queue with
// helpers for relative scheduling and periodic tasks.
#pragma once

#include <functional>
#include <memory>

#include "sim/event_queue.hpp"

namespace creditflow::sim {

/// Discrete-event simulator: schedule work, then run to a horizon.
///
/// Time starts at 0 and only moves forward. Callbacks may schedule further
/// events freely; scheduling into the past (before the current time) is a
/// precondition violation.
class Simulator {
 public:
  Simulator() = default;

  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Schedule at an absolute time >= now().
  EventId schedule_at(double t, EventQueue::Callback cb);
  /// Schedule `delay` seconds from now (delay >= 0).
  EventId schedule_after(double delay, EventQueue::Callback cb);
  /// Cancel a pending event.
  bool cancel(EventId id);

  /// Register a periodic task firing every `interval` starting at
  /// `first_at`; runs until the horizon or until cancelled via the returned
  /// handle's `cancel()`. The callback receives the fire time. The task
  /// body is allocated once here; each subsequent occurrence reschedules
  /// through an inline-storage trampoline, so steady-state periodic firing
  /// performs no heap allocation.
  class PeriodicHandle {
   public:
    PeriodicHandle() = default;
    void cancel() { *cancelled_ = true; }

   private:
    friend class Simulator;
    std::shared_ptr<bool> cancelled_ = std::make_shared<bool>(false);
  };
  PeriodicHandle schedule_periodic(double first_at, double interval,
                                   EventQueue::Callback cb);

  /// Run until the queue drains or time would exceed `horizon`; the clock is
  /// left at min(horizon, last-event time). Returns events executed.
  std::uint64_t run_until(double horizon);

  /// Execute a single event if one is pending within the horizon.
  bool step(double horizon);

 private:
  EventQueue queue_;
  double now_ = 0.0;
};

}  // namespace creditflow::sim
