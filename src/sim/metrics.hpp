// CreditFlow: metrics recorder — named counters, gauges and time series
// collected during simulation runs and exported to reports/benches.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace creditflow::sim {

/// Central metrics sink for a simulation run.
///
/// Counters accumulate monotonically; gauges hold a latest value; series
/// record (time, value) samples. Lookup is by name; creating on first use.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  void increment(const std::string& counter, std::uint64_t by = 1);
  [[nodiscard]] std::uint64_t counter(const std::string& name) const;

  /// Stable pointer to a counter's cell (created zeroed on first use).
  /// Counter cells live as long as the registry itself: std::map nodes
  /// don't move, and clear() resets counter values in place instead of
  /// deallocating the nodes, so a cached cell pointer can never dangle.
  /// Hot loops cache it to skip the per-increment name lookup (and the
  /// std::string construction that goes with it).
  [[nodiscard]] std::uint64_t* counter_cell(const std::string& name);

  void set_gauge(const std::string& gauge, double value);
  [[nodiscard]] double gauge(const std::string& name) const;
  /// Stable pointer to a gauge's cell (created zeroed on first use), under
  /// the same lifetime contract as counter_cell: nodes never move and
  /// clear() zeroes in place, so hot-loop writers cache the pointer once.
  [[nodiscard]] double* gauge_cell(const std::string& name);

  /// Stable pointer to a log2-bucket histogram cell (created empty on
  /// first use). Same lifetime contract as counter_cell: the node never
  /// moves and clear() resets it in place, so cached cells never dangle —
  /// and Log2Histogram::add allocates nothing, keeping histogram updates
  /// legal on the allocation-free round path.
  [[nodiscard]] util::Log2Histogram* histogram_cell(const std::string& name);
  /// Read-only lookup; nullptr when the histogram was never created.
  [[nodiscard]] const util::Log2Histogram* histogram(
      const std::string& name) const;
  [[nodiscard]] std::vector<std::string> histogram_names() const;

  void record(const std::string& series, double t, double value);
  [[nodiscard]] const util::TimeSeries& series(const std::string& name) const;
  [[nodiscard]] bool has_series(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> series_names() const;

  /// Reset everything: counters, gauges and histograms are zeroed *in
  /// place* (their cells — and any cached cell pointers — stay valid),
  /// series are removed.
  void clear();

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, util::Log2Histogram> histograms_;
  std::map<std::string, util::TimeSeries> series_;
};

}  // namespace creditflow::sim
