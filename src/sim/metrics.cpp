#include "sim/metrics.hpp"

#include "util/assert.hpp"

namespace creditflow::sim {

void MetricsRegistry::increment(const std::string& counter, std::uint64_t by) {
  counters_[counter] += by;
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::uint64_t* MetricsRegistry::counter_cell(const std::string& name) {
  return &counters_[name];
}

void MetricsRegistry::set_gauge(const std::string& gauge, double value) {
  gauges_[gauge] = value;
}

double MetricsRegistry::gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

double* MetricsRegistry::gauge_cell(const std::string& name) {
  return &gauges_[name];
}

util::Log2Histogram* MetricsRegistry::histogram_cell(
    const std::string& name) {
  return &histograms_[name];
}

const util::Log2Histogram* MetricsRegistry::histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, _] : histograms_) names.push_back(name);
  return names;
}

void MetricsRegistry::record(const std::string& series, double t,
                             double value) {
  auto it = series_.find(series);
  if (it == series_.end()) {
    it = series_.emplace(series, util::TimeSeries(series)).first;
  }
  it->second.add(t, value);
}

const util::TimeSeries& MetricsRegistry::series(const std::string& name) const {
  const auto it = series_.find(name);
  CF_EXPECTS_MSG(it != series_.end(), "unknown series: " + name);
  return it->second;
}

bool MetricsRegistry::has_series(const std::string& name) const {
  return series_.find(name) != series_.end();
}

std::vector<std::string> MetricsRegistry::series_names() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, _] : series_) names.push_back(name);
  return names;
}

void MetricsRegistry::clear() {
  // Counter/gauge/histogram nodes are kept (values zeroed in place) so
  // cached cell pointers survive a clear; see counter_cell's lifetime
  // contract.
  for (auto& [name, value] : counters_) value = 0;
  for (auto& [name, value] : gauges_) value = 0.0;
  for (auto& [name, hist] : histograms_) hist.reset();
  series_.clear();
}

}  // namespace creditflow::sim
