#include "sim/simulator.hpp"

#include <memory>

#include "util/assert.hpp"

namespace creditflow::sim {

EventId Simulator::schedule_at(double t, EventQueue::Callback cb) {
  CF_EXPECTS_MSG(t >= now_, "cannot schedule into the past");
  return queue_.schedule(t, std::move(cb));
}

EventId Simulator::schedule_after(double delay, EventQueue::Callback cb) {
  CF_EXPECTS(delay >= 0.0);
  return queue_.schedule(now_ + delay, std::move(cb));
}

bool Simulator::cancel(EventId id) { return queue_.cancel(id); }

Simulator::PeriodicHandle Simulator::schedule_periodic(
    double first_at, double interval, std::function<void(double)> cb) {
  CF_EXPECTS(first_at >= now_);
  CF_EXPECTS(interval > 0.0);
  CF_EXPECTS(cb != nullptr);
  PeriodicHandle handle;
  auto cancelled = handle.cancelled_;
  auto task = std::make_shared<std::function<void(double)>>();
  // The queue entry is the sole strong owner of the task cell: each pending
  // occurrence keeps it alive, and the cell itself only holds a weak
  // self-reference (a strong one would be a shared_ptr cycle that leaks the
  // cell and every capture in `cb`).
  auto occurrence = [task](double t) { (*task)(t); };
  *task = [this, interval, cancelled, weak_task = std::weak_ptr(task),
           callback = std::move(cb)](double t) {
    if (*cancelled) return;
    callback(t);
    if (*cancelled) return;
    if (auto strong = weak_task.lock()) {
      schedule_at(t + interval, [strong](double next) { (*strong)(next); });
    }
  };
  schedule_at(first_at, std::move(occurrence));
  return handle;
}

std::uint64_t Simulator::run_until(double horizon) {
  CF_EXPECTS(horizon >= now_);
  std::uint64_t executed = 0;
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    auto fired = queue_.pop();
    CF_ENSURES_MSG(fired.time >= now_, "event time regressed");
    now_ = fired.time;
    fired.callback(fired.time);
    ++executed;
  }
  now_ = horizon;
  return executed;
}

bool Simulator::step(double horizon) {
  if (queue_.empty() || queue_.next_time() > horizon) return false;
  auto fired = queue_.pop();
  now_ = fired.time;
  fired.callback(fired.time);
  return true;
}

}  // namespace creditflow::sim
