#include "sim/simulator.hpp"

#include <memory>

#include "util/assert.hpp"
#include "util/trace.hpp"

namespace creditflow::sim {

EventId Simulator::schedule_at(double t, EventQueue::Callback cb) {
  CF_EXPECTS_MSG(t >= now_, "cannot schedule into the past");
  return queue_.schedule(t, std::move(cb));
}

EventId Simulator::schedule_after(double delay, EventQueue::Callback cb) {
  CF_EXPECTS(delay >= 0.0);
  return queue_.schedule(now_ + delay, std::move(cb));
}

bool Simulator::cancel(EventId id) { return queue_.cancel(id); }

namespace {

/// Heap cell of one periodic task (allocated once at registration). The
/// pending queue entry is the sole strong owner: each occurrence captures
/// only a 16-byte shared_ptr — inside the callback's inline storage — so
/// the steady-state fire/reschedule cycle allocates nothing.
struct PeriodicTask {
  Simulator* sim;
  double interval;
  std::shared_ptr<bool> cancelled;
  EventQueue::Callback callback;

  void fire(double t, const std::shared_ptr<PeriodicTask>& self) {
    if (*cancelled) return;
    callback(t);
    if (*cancelled) return;  // the callback may have cancelled the handle
    sim->schedule_at(t + interval, [self](double next) {
      self->fire(next, self);
    });
  }
};

}  // namespace

Simulator::PeriodicHandle Simulator::schedule_periodic(
    double first_at, double interval, EventQueue::Callback cb) {
  CF_EXPECTS(first_at >= now_);
  CF_EXPECTS(interval > 0.0);
  CF_EXPECTS(cb != nullptr);
  PeriodicHandle handle;
  auto task = std::make_shared<PeriodicTask>(
      PeriodicTask{this, interval, handle.cancelled_, std::move(cb)});
  schedule_at(first_at,
              [task](double t) { task->fire(t, task); });
  return handle;
}

std::uint64_t Simulator::run_until(double horizon) {
  CF_EXPECTS(horizon >= now_);
  std::uint64_t executed = 0;
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    auto fired = queue_.pop();
    CF_ENSURES_MSG(fired.time >= now_, "event time regressed");
    now_ = fired.time;
    {
      const util::TraceSpan span("dispatch", "sim");
      fired.callback(fired.time);
    }
    ++executed;
  }
  now_ = horizon;
  return executed;
}

bool Simulator::step(double horizon) {
  if (queue_.empty() || queue_.next_time() > horizon) return false;
  auto fired = queue_.pop();
  now_ = fired.time;
  {
    const util::TraceSpan span("dispatch", "sim");
    fired.callback(fired.time);
  }
  return true;
}

}  // namespace creditflow::sim
