// CreditFlow: discrete-event core — a binary-heap event queue with stable
// FIFO ordering among simultaneous events and O(1) cancellation.
//
// The queue is allocation-free in steady state: callbacks live in
// generation-tagged slots that are recycled through a free list the moment
// their event fires or is cancelled (so memory is bounded by the *peak*
// number of pending events, not the lifetime event count), and the callback
// type stores captures inline (util::FixedFunction) instead of spilling
// non-trivial captures to the heap the way std::function does. A simulated
// round that schedules as many events as it retires therefore runs without
// a single heap allocation once vector capacities have warmed up.
#pragma once

#include <cstdint>
#include <vector>

#include "util/function.hpp"

namespace creditflow::sim {

/// Opaque handle identifying a scheduled event (for cancellation). Encodes
/// (slot, generation); a handle goes stale — and cancel() returns false —
/// the moment its event fires or is cancelled, even after the underlying
/// slot has been recycled for a newer event.
using EventId = std::uint64_t;

/// Priority queue of (time, sequence)-ordered callbacks.
///
/// Cancellation tombstones the heap entry (the slot's generation is bumped,
/// so the entry no longer matches) and recycles the slot immediately; pop
/// skips stale entries lazily. `size()` reports *live* events.
class EventQueue {
 public:
  /// Inline-storage callback: receives the fire time. 64 bytes covers every
  /// closure the simulator and protocol schedule (the largest is a teardown
  /// guard wrapping a std::function) without a heap fallback; larger
  /// captures fail to compile rather than silently allocating.
  using Callback = util::FixedFunction<void(double), 64>;

  EventQueue() = default;

  /// Schedule `cb` at absolute time `t`; returns a cancellable id.
  /// Events at equal times fire in scheduling order.
  EventId schedule(double t, Callback cb);

  /// Cancel a pending event; returns false when the id already fired,
  /// was already cancelled, or never existed.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }
  /// Time of the earliest live event; requires !empty().
  [[nodiscard]] double next_time() const;

  /// Pop and return the earliest live event; requires !empty().
  struct Fired {
    double time;
    EventId id;
    Callback callback;
  };
  [[nodiscard]] Fired pop();

  /// Drop every pending event.
  void clear();

 private:
  struct Slot {
    Callback callback;
    std::uint32_t generation = 0;  ///< bumped on fire/cancel
  };
  struct Entry {
    double time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] bool entry_live(const Entry& e) const {
    return slots_[e.slot].generation == e.generation;
  }
  /// Retire a live slot: destroy its callback, invalidate outstanding
  /// handles/heap entries, and make the slot reusable.
  void retire(std::uint32_t slot);
  void skip_dead();

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace creditflow::sim
