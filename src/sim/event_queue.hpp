// CreditFlow: discrete-event core — a binary-heap event queue with stable
// FIFO ordering among simultaneous events and O(log n) cancellation.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace creditflow::sim {

/// Opaque handle identifying a scheduled event (for cancellation).
using EventId = std::uint64_t;

/// Priority queue of (time, sequence)-ordered callbacks.
///
/// Cancellation is implemented by tombstoning: cancelled entries stay in the
/// heap and are skipped on pop, so cancel() is O(1) and pop amortizes the
/// cleanup. The queue reports `size()` as the number of *live* events.
class EventQueue {
 public:
  using Callback = std::function<void(double)>;  ///< receives the fire time

  EventQueue() = default;

  /// Schedule `cb` at absolute time `t`; returns a cancellable id.
  /// Events at equal times fire in scheduling order.
  EventId schedule(double t, Callback cb);

  /// Cancel a pending event; returns false when the id already fired,
  /// was already cancelled, or never existed.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }
  /// Time of the earliest live event; requires !empty().
  [[nodiscard]] double next_time() const;

  /// Pop and return the earliest live event; requires !empty().
  struct Fired {
    double time;
    EventId id;
    Callback callback;
  };
  [[nodiscard]] Fired pop();

  /// Drop every pending event.
  void clear();

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void skip_dead();

  std::vector<Entry> heap_;
  // id -> callback; erased on fire/cancel. Vector-backed map keyed densely.
  std::vector<Callback> callbacks_;
  std::vector<bool> alive_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace creditflow::sim
