#include "sim/event_queue.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace creditflow::sim {

namespace {

constexpr EventId make_id(std::uint32_t slot, std::uint32_t generation) {
  return (static_cast<EventId>(generation) << 32) | slot;
}
constexpr std::uint32_t id_slot(EventId id) {
  return static_cast<std::uint32_t>(id);
}
constexpr std::uint32_t id_generation(EventId id) {
  return static_cast<std::uint32_t>(id >> 32);
}

}  // namespace

EventId EventQueue::schedule(double t, Callback cb) {
  CF_EXPECTS_MSG(cb != nullptr, "null event callback");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].callback = std::move(cb);
  heap_.push_back(Entry{t, next_seq_++, slot, slots_[slot].generation});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  return make_id(slot, slots_[slot].generation);
}

bool EventQueue::cancel(EventId id) {
  const std::uint32_t slot = id_slot(id);
  if (slot >= slots_.size()) return false;
  if (slots_[slot].generation != id_generation(id)) return false;
  if (slots_[slot].callback == nullptr) return false;  // never scheduled
  retire(slot);
  --live_;
  return true;
}

void EventQueue::retire(std::uint32_t slot) {
  slots_[slot].callback = nullptr;
  ++slots_[slot].generation;  // invalidates the id and any heap tombstone
  free_slots_.push_back(slot);
}

void EventQueue::skip_dead() {
  while (!heap_.empty() && !entry_live(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

double EventQueue::next_time() const {
  CF_EXPECTS(!empty());
  // Cleaning tombstones mutates only bookkeeping, never logical state; the
  // earliest *live* entry is what callers are asking about.
  auto* self = const_cast<EventQueue*>(this);
  self->skip_dead();
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  CF_EXPECTS(!empty());
  skip_dead();
  CF_ENSURES(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry e = heap_.back();
  heap_.pop_back();
  Fired fired{e.time, make_id(e.slot, e.generation),
              std::move(slots_[e.slot].callback)};
  retire(e.slot);
  --live_;
  return fired;
}

void EventQueue::clear() {
  // Retire (rather than destroy) the slots so ids handed out before the
  // clear stay stale forever instead of aliasing later events.
  for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
    if (!(slots_[slot].callback == nullptr)) retire(slot);
  }
  heap_.clear();
  live_ = 0;
}

}  // namespace creditflow::sim
