#include "sim/event_queue.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace creditflow::sim {

EventId EventQueue::schedule(double t, Callback cb) {
  CF_EXPECTS_MSG(cb != nullptr, "null event callback");
  const EventId id = callbacks_.size();
  callbacks_.push_back(std::move(cb));
  alive_.push_back(true);
  heap_.push_back(Entry{t, next_seq_++, id});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id >= alive_.size() || !alive_[id]) return false;
  alive_[id] = false;
  callbacks_[id] = nullptr;
  --live_;
  return true;
}

void EventQueue::skip_dead() {
  while (!heap_.empty() && !alive_[heap_.front().id]) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

double EventQueue::next_time() const {
  CF_EXPECTS(!empty());
  // const_cast-free variant of skip_dead: scan lazily without mutating by
  // finding the first live entry; the heap root is live after any pop(), so
  // only cancellations since then can interpose. Clean the heap here too.
  auto* self = const_cast<EventQueue*>(this);
  self->skip_dead();
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  CF_EXPECTS(!empty());
  skip_dead();
  CF_ENSURES(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry e = heap_.back();
  heap_.pop_back();
  Fired fired{e.time, e.id, std::move(callbacks_[e.id])};
  alive_[e.id] = false;
  callbacks_[e.id] = nullptr;
  --live_;
  return fired;
}

void EventQueue::clear() {
  heap_.clear();
  callbacks_.clear();
  alive_.clear();
  live_ = 0;
}

}  // namespace creditflow::sim
