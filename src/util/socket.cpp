#include "util/socket.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <vector>

// macOS has no MSG_NOSIGNAL; SO_NOSIGPIPE (set at creation below) covers
// the same write-to-dead-peer case there.
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace creditflow::util {

namespace {

using Clock = std::chrono::steady_clock;

void configure_stream_socket(int fd) {
  // The protocol is many tiny request/response lines; never batch them.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
#ifdef SO_NOSIGPIPE
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#endif
}

struct ResolvedAddress {
  sockaddr_storage storage{};
  socklen_t length = 0;
  int family = AF_INET;
};

/// Every address `host` resolves to, in getaddrinfo order. Callers try
/// them in turn (a dual-stack name may sort an unreachable family first —
/// e.g. an AAAA record while the peer listens on IPv4 only).
std::vector<ResolvedAddress> resolve(const std::string& host,
                                     std::uint16_t port, bool for_bind) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (for_bind) hints.ai_flags = AI_PASSIVE;
  addrinfo* list = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               service.c_str(), &hints, &list);
  if (rc != 0 || list == nullptr) {
    throw SocketError("cannot resolve " + host + ":" + service + ": " +
                      ::gai_strerror(rc));
  }
  std::vector<ResolvedAddress> out;
  for (const addrinfo* entry = list; entry != nullptr;
       entry = entry->ai_next) {
    ResolvedAddress addr;
    std::memcpy(&addr.storage, entry->ai_addr, entry->ai_addrlen);
    addr.length = static_cast<socklen_t>(entry->ai_addrlen);
    addr.family = entry->ai_family;
    out.push_back(addr);
  }
  ::freeaddrinfo(list);
  return out;
}

}  // namespace

bool wait_readable(int fd, double timeout_seconds) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  const int timeout_ms =
      timeout_seconds < 0.0
          ? -1
          : static_cast<int>(timeout_seconds * 1000.0 + 0.999);
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  return rc > 0;
}

// ---- Socket -----------------------------------------------------------------

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

namespace {

/// Non-blocking connect to one resolved address, bounded by the timeout.
Socket connect_one(const ResolvedAddress& addr, const std::string& host,
                   std::uint16_t port, double timeout_seconds) {
  const int fd = ::socket(addr.family, SOCK_STREAM, 0);
  if (fd < 0) throw SocketError("socket(): " + std::string(strerror(errno)));
  Socket socket(fd);
  configure_stream_socket(fd);

  // Non-blocking connect bounded by the timeout, then back to blocking for
  // the (poll-gated) I/O path.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr.storage),
                     addr.length);
  if (rc != 0 && errno != EINPROGRESS) {
    throw SocketError("connect " + host + ":" + std::to_string(port) + ": " +
                      strerror(errno));
  }
  if (rc != 0) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int timeout_ms =
        timeout_seconds < 0.0
            ? -1
            : static_cast<int>(timeout_seconds * 1000.0 + 0.999);
    do {
      rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) {
      throw SocketError("connect " + host + ":" + std::to_string(port) +
                        ": timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      throw SocketError("connect " + host + ":" + std::to_string(port) +
                        ": " + strerror(err));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return socket;
}

}  // namespace

Socket Socket::connect(const std::string& host, std::uint16_t port,
                       double timeout_seconds) {
  // Try every resolved address in order: a dual-stack hostname often
  // sorts a family the peer is not listening on first.
  std::string last_error;
  for (const ResolvedAddress& addr :
       resolve(host, port, /*for_bind=*/false)) {
    try {
      return connect_one(addr, host, port, timeout_seconds);
    } catch (const SocketError& e) {
      last_error = e.what();
    }
  }
  throw SocketError(last_error);
}

bool Socket::send_all(std::string_view data) {
  if (fd_ < 0) return false;
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

IoStatus Socket::recv_some(std::string& out, double timeout_seconds) {
  if (fd_ < 0) return IoStatus::kError;
  if (!wait_readable(fd_, timeout_seconds)) return IoStatus::kTimeout;
  char chunk[4096];
  ssize_t n;
  do {
    n = ::recv(fd_, chunk, sizeof(chunk), 0);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return IoStatus::kError;
  if (n == 0) return IoStatus::kEof;
  out.append(chunk, static_cast<std::size_t>(n));
  return IoStatus::kOk;
}

// ---- Listener ---------------------------------------------------------------

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener Listener::bind(const std::string& host, std::uint16_t port) {
  Listener listener;
  std::string last_error;
  for (const ResolvedAddress& addr : resolve(host, port, /*for_bind=*/true)) {
    const int fd = ::socket(addr.family, SOCK_STREAM, 0);
    if (fd < 0) {
      last_error = "socket(): " + std::string(strerror(errno));
      continue;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr.storage),
               addr.length) != 0) {
      last_error = "bind " + host + ":" + std::to_string(port) + ": " +
                   strerror(errno);
      ::close(fd);
      continue;
    }
    if (::listen(fd, 64) != 0) {
      last_error = "listen: " + std::string(strerror(errno));
      ::close(fd);
      continue;
    }
    listener.fd_ = fd;
    break;
  }
  if (listener.fd_ < 0) throw SocketError(last_error);
  const int fd = listener.fd_;
  sockaddr_storage bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    if (bound.ss_family == AF_INET) {
      listener.port_ =
          ntohs(reinterpret_cast<const sockaddr_in*>(&bound)->sin_port);
    } else if (bound.ss_family == AF_INET6) {
      listener.port_ =
          ntohs(reinterpret_cast<const sockaddr_in6*>(&bound)->sin6_port);
    }
  }
  return listener;
}

Socket Listener::accept() {
  if (fd_ < 0) return Socket();
  int fd;
  do {
    fd = ::accept(fd_, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Socket();
  configure_stream_socket(fd);
  return Socket(fd);
}

// ---- SocketReader -----------------------------------------------------------

IoStatus SocketReader::read_line(std::string& line, double timeout_seconds) {
  const bool forever = timeout_seconds < 0.0;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             forever ? 0.0 : timeout_seconds));
  while (true) {
    const auto newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return IoStatus::kOk;
    }
    const double left =
        forever ? -1.0
                : std::chrono::duration<double>(deadline - Clock::now())
                      .count();
    if (!forever && left <= 0.0) return IoStatus::kTimeout;
    const IoStatus status = socket_.recv_some(buffer_, left);
    if (status != IoStatus::kOk) return status;
  }
}

IoStatus SocketReader::read_exact(std::string& out, std::size_t n,
                                  double timeout_seconds) {
  const bool forever = timeout_seconds < 0.0;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             forever ? 0.0 : timeout_seconds));
  while (buffer_.size() < n) {
    const double left =
        forever ? -1.0
                : std::chrono::duration<double>(deadline - Clock::now())
                      .count();
    if (!forever && left <= 0.0) return IoStatus::kTimeout;
    const IoStatus status = socket_.recv_some(buffer_, left);
    if (status != IoStatus::kOk) return status;
  }
  out.assign(buffer_, 0, n);
  buffer_.erase(0, n);
  return IoStatus::kOk;
}

}  // namespace creditflow::util
