// CreditFlow: deterministic fault-injecting TCP proxy for exercising the
// sweep farm's failure paths in-process.
//
// A FaultProxy sits between a worker and the coordinator (worker connects
// to the proxy, the proxy connects onward to the real target) and injects
// the failures a flaky network produces — short writes that fragment a
// message across segments, delayed delivery, and mid-message disconnects —
// from a seeded random stream. Every fault decision is a pure function of
// (seed, connection index, chunk index), so a test that pins a seed
// replays the same fault schedule; what the kernel cannot pin (TCP chunk
// boundaries) only shifts *where* faults land, never whether the protocol
// must survive them.
//
// Disconnects sever both halves of a proxied connection at once, exactly
// like a dropped link: the worker sees a dead coordinator (and reconnects
// with backoff + RESUME), the coordinator sees a dead worker (and orphans
// its leases for the resume grace window). `disconnect_after_bytes` cuts
// deterministically once a connection has carried that many bytes —
// placing the cut between lease grant and result delivery regardless of
// chunk timing — while `disconnect_probability` cuts probabilistically
// per forwarded chunk. `max_disconnects` bounds total injected cuts so a
// flaky link is flaky finitely and every sweep still terminates.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace creditflow::util {

/// A transparent TCP proxy that corrupts *delivery*, never bytes.
class FaultProxy {
 public:
  struct Options {
    std::string listen_host = "127.0.0.1";
    std::uint16_t listen_port = 0;  ///< 0 picks a free one (see port())
    std::string target_host = "127.0.0.1";
    std::uint16_t target_port = 0;

    std::uint64_t seed = 1;  ///< root of every fault decision stream

    /// Probability a forwarded chunk is fragmented: a prefix is delivered,
    /// the rest follows after a short pause — a short write on the wire.
    double short_write_probability = 0.0;
    /// Probability a forwarded chunk is held back before delivery.
    double delay_probability = 0.0;
    /// Ceiling on any injected pause (uniform in (0, max]).
    double max_delay_seconds = 0.02;

    /// Probability (per forwarded chunk) the connection is cut mid-stream.
    double disconnect_probability = 0.0;
    /// Cut a connection once it has carried this many bytes (both
    /// directions summed); 0 disables. Deterministic placement for tests
    /// that need the cut between a lease and its delivery.
    std::uint64_t disconnect_after_bytes = 0;
    /// Lifetime cap on injected disconnects across all connections.
    std::size_t max_disconnects = static_cast<std::size_t>(-1);
  };

  /// What the proxy did — for asserting that faults actually fired.
  struct Counters {
    std::size_t connections = 0;
    std::size_t short_writes = 0;
    std::size_t delays = 0;
    std::size_t disconnects = 0;
  };

  /// Binds and starts proxying immediately. Throws util::SocketError when
  /// the listen address cannot be bound.
  explicit FaultProxy(Options options);
  ~FaultProxy();  ///< stop() + join all pumps

  FaultProxy(const FaultProxy&) = delete;
  FaultProxy& operator=(const FaultProxy&) = delete;

  /// The bound listen port.
  [[nodiscard]] std::uint16_t port() const;

  /// Stop accepting, sever every live connection, join the pump threads.
  /// Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] Counters counters() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace creditflow::util
