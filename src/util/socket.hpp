// CreditFlow: minimal POSIX TCP wrapper for the distributed sweep
// coordinator and its workers.
//
// Deliberately small: RAII file descriptors, connect-with-timeout,
// bind/listen/accept, send-all, and timeout-bounded receives, plus a
// buffered line reader for the coordinator protocol's newline-delimited
// messages. Everything is plain blocking I/O gated by poll(2); there is no
// TLS, no name resolution beyond getaddrinfo, and no Windows support — the
// sweep fleet this serves is trusted machines on a private network.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace creditflow::util {

/// Thrown when a socket cannot be created, bound, or connected. Runtime
/// I/O on an established connection never throws — reads and writes report
/// status codes so callers can treat a dead peer as an event, not an error.
class SocketError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Outcome of a timeout-bounded receive.
enum class IoStatus {
  kOk,       ///< data arrived (or the full request completed)
  kEof,      ///< orderly shutdown by the peer
  kTimeout,  ///< deadline passed with nothing to read
  kError,    ///< connection reset or another hard failure
};

/// One connected TCP stream; move-only RAII over the descriptor.
class Socket {
 public:
  Socket() = default;
  /// Adopts an already-connected descriptor (e.g. from Listener::accept).
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connect to host:port, waiting at most `timeout_seconds` for the
  /// handshake. Throws SocketError on failure (including timeout).
  [[nodiscard]] static Socket connect(const std::string& host,
                                      std::uint16_t port,
                                      double timeout_seconds);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  void close();

  /// Write all of `data`; false on any failure (a dead peer — with
  /// SIGPIPE suppressed — reports here instead of killing the process).
  [[nodiscard]] bool send_all(std::string_view data);

  /// Append whatever is available (up to a few KiB) to `out`, waiting at
  /// most `timeout_seconds` (0 polls; negative waits forever).
  [[nodiscard]] IoStatus recv_some(std::string& out, double timeout_seconds);

 private:
  int fd_ = -1;
};

/// A listening TCP socket.
class Listener {
 public:
  Listener() = default;
  ~Listener() { close(); }

  Listener(Listener&& other) noexcept : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  Listener& operator=(Listener&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      port_ = other.port_;
      other.fd_ = -1;
    }
    return *this;
  }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Bind host:port (port 0 picks a free one — read it back via port())
  /// and listen. Throws SocketError on failure.
  [[nodiscard]] static Listener bind(const std::string& host,
                                     std::uint16_t port);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  /// The bound port (resolved after bind, so port-0 requests see the real
  /// one).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  void close();

  /// Accept one pending connection; invalid Socket if none is pending or
  /// the accept failed. Call after poll(2) reports the listener readable.
  [[nodiscard]] Socket accept();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Buffered reader over a Socket for newline-delimited protocols with
/// occasional length-prefixed raw payloads. Lines keep no trailing '\n'.
class SocketReader {
 public:
  explicit SocketReader(Socket& socket) : socket_(socket) {}

  /// Read one line, waiting at most `timeout_seconds` for the terminator.
  [[nodiscard]] IoStatus read_line(std::string& line, double timeout_seconds);
  /// Read exactly `n` raw bytes into `out` (replacing its contents).
  [[nodiscard]] IoStatus read_exact(std::string& out, std::size_t n,
                                    double timeout_seconds);

 private:
  Socket& socket_;
  std::string buffer_;
};

/// True if `fd` becomes readable within `timeout_seconds` (negative waits
/// forever).
[[nodiscard]] bool wait_readable(int fd, double timeout_seconds);

}  // namespace creditflow::util
