// CreditFlow: lightweight span tracer emitting Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing).
//
// Design constraints, in priority order:
//
//  1. Disabled cost is one relaxed atomic load and a predictable branch.
//     The simulation's golden-output and zero-allocation guarantees must
//     hold with the tracer compiled in, so recording never consumes RNG
//     and the disabled path touches nothing else.
//  2. Enabled recording is allocation-free at steady state: each thread
//     writes into a pre-reserved ring buffer registered on first use;
//     once the ring is full, new events overwrite the oldest (the tail of
//     a long run is usually what a trace is opened for anyway, and
//     dropped() reports how much history was lost).
//  3. Event names are static strings (string literals); the tracer stores
//     the pointers verbatim. Dynamic names would force per-event copies
//     and allocations, which constraint 2 forbids.
//
// Usage:
//
//   util::Tracer::instance().enable();
//   { util::TraceSpan span("purchase", "phase"); ...work... }
//   util::Tracer::instance().write_json("run.trace.json");
//
// The JSON is the Chrome trace-event "complete event" (ph:"X") format:
// one object per span with microsecond timestamps relative to enable().
// Snapshots are safe to take while other threads record (each ring cell
// is written by exactly one thread; a torn read can at worst misreport a
// span that was in flight), but the intended pattern is to write the file
// after the traced work has quiesced.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace creditflow::util {

/// One recorded span (Chrome "complete event"). POD so ring writes are
/// plain stores.
struct TraceEvent {
  const char* name = nullptr;  ///< static string
  const char* cat = nullptr;   ///< static string
  std::int64_t ts_us = 0;      ///< start, µs since enable()
  std::int64_t dur_us = 0;
  std::uint32_t tid = 0;      ///< registration-order thread number
  const char* arg_name = nullptr;  ///< static string; nullptr → no arg
  std::uint64_t arg = 0;
};

/// Process-wide trace collector. All methods are thread-safe.
class Tracer {
 public:
  static Tracer& instance();

  /// Start (or restart) collection. Allocates nothing per event afterward:
  /// each recording thread's ring is reserved to `events_per_thread` on
  /// that thread's first record(). Re-enabling clears prior events.
  void enable(std::size_t events_per_thread = kDefaultCapacity);
  /// Stop collection; recorded events stay readable until the next
  /// enable() or clear().
  void disable();
  /// The no-op branch. Relaxed: a span that straddles an enable/disable
  /// edge may be dropped, never torn (TraceSpan re-checks nothing — it
  /// captures the decision at construction).
  [[nodiscard]] static bool enabled() {
    return enabled_flag().load(std::memory_order_relaxed);
  }

  /// Record one complete span. No-op when disabled. `name`, `cat` and
  /// `arg_name` must be static strings.
  void record(const char* name, const char* cat, std::int64_t ts_us,
              std::int64_t dur_us, const char* arg_name = nullptr,
              std::uint64_t arg = 0);

  /// Microseconds since enable(); only meaningful while enabled.
  [[nodiscard]] std::int64_t now_us() const;

  /// All recorded events, sorted by start time.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  /// Chrome trace-event JSON ({"traceEvents":[...]}).
  [[nodiscard]] std::string json() const;
  /// Write json() to `path`; false (with a log line) on I/O failure.
  bool write_json(const std::string& path) const;

  /// Events lost to ring wrap-around since enable().
  [[nodiscard]] std::uint64_t dropped() const;
  /// Drop all recorded events and unregister the rings.
  void clear();

  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

 private:
  Tracer() = default;

  struct Ring {
    std::vector<TraceEvent> events;  ///< reserved once; ring once full
    std::size_t next = 0;            ///< overwrite cursor when full
    std::uint64_t recorded = 0;      ///< lifetime count (for dropped())
    std::uint32_t tid = 0;
  };

  static std::atomic<bool>& enabled_flag();
  [[nodiscard]] Ring& local_ring();

  mutable std::mutex mutex_;  ///< guards rings_ registration + snapshots
  std::vector<std::unique_ptr<Ring>> rings_;
  std::size_t capacity_ = kDefaultCapacity;
  /// Bumped by enable()/clear() so threads re-register stale cached rings.
  std::atomic<std::uint64_t> generation_{0};
  std::chrono::steady_clock::time_point epoch_{};
};

/// RAII span: records [construction, destruction) as one complete event.
/// The enabled decision is captured at construction, so a span open across
/// a disable() still completes consistently.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "sim",
                     const char* arg_name = nullptr, std::uint64_t arg = 0) {
    if (Tracer::enabled()) {
      name_ = name;
      cat_ = cat;
      arg_name_ = arg_name;
      arg_ = arg;
      start_us_ = Tracer::instance().now_us();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      Tracer& tracer = Tracer::instance();
      tracer.record(name_, cat_, start_us_, tracer.now_us() - start_us_,
                    arg_name_, arg_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  const char* arg_name_ = nullptr;
  std::uint64_t arg_ = 0;
  std::int64_t start_us_ = 0;
};

}  // namespace creditflow::util
