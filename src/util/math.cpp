#include "util/math.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "util/assert.hpp"

namespace creditflow::util {

std::string format_double(double v) {
  if (std::isnan(v)) return "nan";
  char buf[64];
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

double log_add_exp(double a, double b) {
  if (a == kNegInf) return b;
  if (b == kNegInf) return a;
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  return hi + std::log1p(std::exp(lo - hi));
}

double log_sum_exp(std::span<const double> xs) {
  double hi = kNegInf;
  for (double x : xs) hi = std::max(hi, x);
  if (hi == kNegInf) return kNegInf;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - hi);
  return hi + std::log(sum);
}

double log_binomial(std::uint64_t n, std::uint64_t k) {
  CF_EXPECTS(k <= n);
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double log_binomial_pmf(std::uint64_t n, std::uint64_t k, double p) {
  CF_EXPECTS(k <= n);
  CF_EXPECTS(p >= 0.0 && p <= 1.0);
  if (p == 0.0) return k == 0 ? 0.0 : kNegInf;
  if (p == 1.0) return k == n ? 0.0 : kNegInf;
  return log_binomial(n, k) + static_cast<double>(k) * std::log(p) +
         static_cast<double>(n - k) * std::log1p(-p);
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  CF_EXPECTS(n >= 2);
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = lo + static_cast<double>(i) * step;
  out.back() = hi;
  return out;
}

namespace {

double simpson(double a, double fa, double b, double fb, double fm) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive_simpson_rec(const std::function<double(double)>& f, double a,
                            double fa, double b, double fb, double m,
                            double fm, double whole, double tol, int depth) {
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(a, fa, m, fm, flm);
  const double right = simpson(m, fm, b, fb, frm);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptive_simpson_rec(f, a, fa, m, fm, lm, flm, left, 0.5 * tol,
                              depth - 1) +
         adaptive_simpson_rec(f, m, fm, b, fb, rm, frm, right, 0.5 * tol,
                              depth - 1);
}

}  // namespace

double integrate(const std::function<double(double)>& f, double a, double b,
                 double tol, int max_depth) {
  CF_EXPECTS(a <= b);
  CF_EXPECTS(tol > 0.0);
  if (a == b) return 0.0;
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fb = f(b);
  const double fm = f(m);
  const double whole = simpson(a, fa, b, fb, fm);
  return adaptive_simpson_rec(f, a, fa, b, fb, m, fm, whole, tol, max_depth);
}

LimitResult limit_from_below(const std::function<double(double)>& g,
                             int j_start, int j_end, double rel_tol) {
  CF_EXPECTS(j_start >= 1 && j_start < j_end);
  CF_EXPECTS(rel_tol > 0.0);
  LimitResult result;
  double prev = g(1.0 - std::ldexp(1.0, -j_start));
  double prev_growth = 0.0;
  int growth_streak = 0;
  for (int j = j_start + 1; j <= j_end; ++j) {
    const double z = 1.0 - std::ldexp(1.0, -j);
    const double cur = g(z);
    const double growth = cur - prev;
    const double scale = std::max({std::abs(cur), std::abs(prev), 1.0});
    if (std::abs(growth) <= rel_tol * scale) {
      result.value = cur;
      result.diverges = false;
      return result;
    }
    // For a divergent integrand (mass at w=1) the increments g(z_{j+1})-g(z_j)
    // do not decay: they approach a constant (logarithmic divergence) or grow
    // (polynomial divergence). Declare divergence after a sustained streak.
    if (growth > 0.0 && growth >= 0.8 * prev_growth) {
      ++growth_streak;
    } else {
      growth_streak = 0;
    }
    if (growth_streak >= 6) {
      result.value = kPosInf;
      result.diverges = true;
      return result;
    }
    prev_growth = growth;
    prev = cur;
  }
  // Ran out of refinement levels without clear convergence: extrapolate the
  // final value but do not claim divergence.
  result.value = prev;
  result.diverges = false;
  return result;
}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

double& Matrix::at(std::size_t r, std::size_t c) {
  CF_EXPECTS(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  CF_EXPECTS(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::span<const double> Matrix::row(std::size_t r) const {
  CF_EXPECTS(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

std::vector<double> Matrix::left_multiply(std::span<const double> x) const {
  CF_EXPECTS(x.size() == rows_);
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const double* row_ptr = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += xr * row_ptr[c];
  }
  return y;
}

std::vector<double> Matrix::right_multiply(std::span<const double> x) const {
  CF_EXPECTS(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = data_.data() + r * cols_;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += row_ptr[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  return t;
}

std::vector<double> solve_linear(Matrix a, std::vector<double> b) {
  CF_EXPECTS(a.rows() == a.cols());
  CF_EXPECTS(b.size() == a.rows());
  const std::size_t n = a.rows();
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  // LU with partial pivoting, operating on a copy.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(a.at(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(a.at(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    CF_ENSURES_MSG(best > 1e-300, "singular matrix in solve_linear");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(a.at(col, c), a.at(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    const double diag = a.at(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a.at(r, col) / diag;
      if (factor == 0.0) continue;
      a.at(r, col) = 0.0;
      for (std::size_t c = col + 1; c < n; ++c)
        a.at(r, c) -= factor * a.at(col, c);
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a.at(i, c) * x[c];
    x[i] = acc / a.at(i, i);
  }
  return x;
}

std::vector<double> stationary_from_stochastic(const Matrix& p) {
  CF_EXPECTS(p.rows() == p.cols());
  const std::size_t n = p.rows();
  CF_EXPECTS(n > 0);
  // Solve (P^T - I) x = 0 with the last equation replaced by sum(x) = 1.
  Matrix a(n, n, 0.0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      a.at(r, c) = p.at(c, r) - (r == c ? 1.0 : 0.0);
  for (std::size_t c = 0; c < n; ++c) a.at(n - 1, c) = 1.0;
  std::vector<double> b(n, 0.0);
  b[n - 1] = 1.0;
  auto x = solve_linear(std::move(a), std::move(b));
  // Numerical noise can leave tiny negatives; clamp and renormalize.
  double sum = 0.0;
  for (double& v : x) {
    v = std::max(v, 0.0);
    sum += v;
  }
  CF_ENSURES_MSG(sum > 0.0, "stationary solve produced a zero vector");
  for (double& v : x) v /= sum;
  return x;
}

}  // namespace creditflow::util
