#include "util/chart.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/assert.hpp"

namespace creditflow::util {

namespace {

constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@', '%', '&'};

}  // namespace

std::string render_chart(const std::vector<ChartSeries>& series,
                         const ChartOptions& options) {
  CF_EXPECTS(!series.empty());
  CF_EXPECTS(options.width >= 16 && options.height >= 4);
  for (const auto& s : series) {
    CF_EXPECTS_MSG(s.series != nullptr && !s.series->empty(),
                   "chart series must be non-empty");
  }

  // Determine ranges.
  double x_lo = series[0].series->times().front();
  double x_hi = x_lo;
  double y_lo = options.y_min;
  double y_hi = options.y_max;
  if (options.y_auto) {
    y_lo = series[0].series->values().front();
    y_hi = y_lo;
  }
  for (const auto& s : series) {
    const auto ts = s.series->times();
    x_lo = std::min(x_lo, ts.front());
    x_hi = std::max(x_hi, ts.back());
    if (options.y_auto) {
      for (double v : s.series->values()) {
        y_lo = std::min(y_lo, v);
        y_hi = std::max(y_hi, v);
      }
    }
  }
  if (y_hi - y_lo < 1e-12) y_hi = y_lo + 1.0;
  if (x_hi - x_lo < 1e-12) x_hi = x_lo + 1.0;

  // Rasterize.
  std::vector<std::string> grid(options.height,
                                std::string(options.width, ' '));
  for (std::size_t k = 0; k < series.size(); ++k) {
    const char glyph = kGlyphs[k % sizeof(kGlyphs)];
    const auto& ts = *series[k].series;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      const double xf = (ts.time_at(i) - x_lo) / (x_hi - x_lo);
      const double yf =
          std::clamp((ts.value_at(i) - y_lo) / (y_hi - y_lo), 0.0, 1.0);
      const auto col = std::min(
          options.width - 1,
          static_cast<std::size_t>(xf * static_cast<double>(options.width)));
      const auto row = std::min(
          options.height - 1,
          static_cast<std::size_t>((1.0 - yf) *
                                   static_cast<double>(options.height - 1)));
      grid[row][col] = glyph;
    }
  }

  // Compose with a y-axis.
  std::ostringstream out;
  if (!options.title.empty()) out << options.title << '\n';
  for (std::size_t row = 0; row < options.height; ++row) {
    const double y =
        y_hi - (y_hi - y_lo) * static_cast<double>(row) /
                   static_cast<double>(options.height - 1);
    out << std::setw(8) << std::fixed << std::setprecision(3) << y << " |"
        << grid[row] << '\n';
  }
  out << std::string(9, ' ') << '+' << std::string(options.width, '-')
      << '\n';
  out << std::setw(9) << ' ' << std::fixed << std::setprecision(0) << x_lo;
  const std::string hi_label = [&] {
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(0) << x_hi;
    return oss.str();
  }();
  const std::size_t pad =
      options.width > hi_label.size() + 8 ? options.width - hi_label.size() - 8
                                          : 1;
  out << std::string(pad, ' ') << hi_label << '\n';
  for (std::size_t k = 0; k < series.size(); ++k) {
    out << "  " << kGlyphs[k % sizeof(kGlyphs)] << " = " << series[k].label
        << '\n';
  }
  return out.str();
}

}  // namespace creditflow::util
