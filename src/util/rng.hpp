// CreditFlow: deterministic pseudo-random generation for simulations.
//
// All stochastic components of the library draw from Rng so that every
// experiment is reproducible from a single 64-bit seed. The core generator is
// xoshiro256** (public domain, Blackman & Vigna), seeded through SplitMix64.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "util/assert.hpp"

namespace creditflow::util {

/// FNV-1a over an arbitrary byte string. The default basis is the standard
/// 64-bit offset; passing another basis yields an independent hash of the
/// same bytes (the scenario cache combines two to form a 128-bit run key).
/// Pure and stateless: the same bytes hash identically across processes and
/// platforms, which is what lets content-addressed cache entries survive
/// restarts.
[[nodiscard]] constexpr std::uint64_t fnv1a64(
    std::string_view bytes, std::uint64_t basis = 0xcbf29ce484222325ULL) {
  std::uint64_t h = basis;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// SplitMix64 stream; used to expand seeds and derive independent substreams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  [[nodiscard]] std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Derive an independent seed for the `index`-th logical substream of
/// `base_seed`. Pure function of its arguments (no shared state), so sweep
/// workers on any thread can derive their run seed without synchronization,
/// and run k of a sweep always sees the same stream regardless of which
/// worker executes it or in what order. Two SplitMix64 finalization rounds
/// over (base, index) decorrelate even adjacent indices and adjacent bases.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t base_seed,
                                                  std::uint64_t index) {
  auto mix = [](std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = mix(z);
  z = mix(z + 0x9e3779b97f4a7c15ULL);
  return z;
}

/// xoshiro256** generator with a rich distribution toolkit.
///
/// Satisfies UniformRandomBitGenerator so it can also feed <random>
/// distributions, though the member samplers below are preferred (stable
/// results across standard libraries).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed via SplitMix64 expansion; any 64-bit value (including 0) is fine.
  explicit Rng(std::uint64_t seed = 0x9d2c5680cafe4321ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Raw 64 random bits. Inline (with the other one-liners below): these
  /// fire millions of times per simulated run, squarely on the purchase
  /// and seeding hot paths.
  result_type operator()() { return next_u64(); }
  std::uint64_t next_u64() {
    const auto rotl = [](std::uint64_t x, int k) {
      return (x << k) | (x >> (64 - k));
    };
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Derive an independent generator (distinct logical stream).
  [[nodiscard]] Rng split();

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    // 53 random bits into [0,1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }
  /// Uniform double in [lo, hi); requires lo < hi.
  [[nodiscard]] double uniform(double lo, double hi);
  /// Uniform integer in [0, n); requires n > 0. Unbiased (Lemire rejection).
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) {
    CF_EXPECTS(n > 0);
    // Lemire's nearly-divisionless unbiased bounded generation.
    __extension__ using U128 = unsigned __int128;
    std::uint64_t x = next_u64();
    U128 m = static_cast<U128>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = next_u64();
        m = static_cast<U128>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }
  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial with success probability p in [0, 1].
  [[nodiscard]] bool bernoulli(double p) {
    CF_EXPECTS(p >= 0.0 && p <= 1.0);
    return uniform() < p;
  }

  /// Exponential with given rate (mean 1/rate); requires rate > 0.
  [[nodiscard]] double exponential(double rate);
  /// Standard normal via Box-Muller (cached second variate).
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0);
  /// Log-normal such that the *mean* of the variate is `mean` and the
  /// coefficient of variation is `cv`; requires mean > 0, cv >= 0.
  [[nodiscard]] double lognormal_mean_cv(double mean, double cv);
  /// Poisson with the given mean >= 0 (inversion for small, PTRD-style
  /// normal-approximation rejection for large means).
  [[nodiscard]] std::uint64_t poisson(double mean);
  /// Geometric on {0,1,2,...} with success probability p in (0, 1].
  [[nodiscard]] std::uint64_t geometric(double p);
  /// Pareto/power-law sample: continuous density f(x) ∝ x^-alpha on
  /// [xmin, xmax]; requires alpha > 1, 0 < xmin < xmax.
  [[nodiscard]] double power_law(double alpha, double xmin, double xmax);
  /// Discrete power-law degree sample: P(D=d) ∝ d^-alpha, d in [dmin, dmax].
  [[nodiscard]] std::uint64_t power_law_int(double alpha, std::uint64_t dmin,
                                            std::uint64_t dmax);

  /// Sample an index proportionally to non-negative `weights`
  /// (linear scan; use AliasTable/FenwickSampler for repeated draws).
  /// Requires at least one strictly positive weight.
  [[nodiscard]] std::size_t discrete(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[uniform_index(i)]);
    }
  }

  /// Pick a uniformly random element; requires non-empty span.
  template <typename T>
  [[nodiscard]] const T& pick(std::span<const T> v) {
    CF_EXPECTS(!v.empty());
    return v[uniform_index(v.size())];
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Static alias table for O(1) sampling from a fixed discrete distribution.
class AliasTable {
 public:
  AliasTable() = default;
  /// Build from non-negative weights with a positive sum.
  explicit AliasTable(std::span<const double> weights);

  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const { return prob_.size(); }
  [[nodiscard]] bool empty() const { return prob_.empty(); }

 private:
  std::vector<double> prob_;
  std::vector<std::size_t> alias_;
};

/// Fenwick-tree-backed sampler over mutable non-negative weights:
/// O(log n) update and O(log n) weighted sample. Used by the CTMC simulator
/// where per-queue rates switch on/off as queues empty and fill.
class FenwickSampler {
 public:
  /// Create with n zero weights.
  explicit FenwickSampler(std::size_t n = 0);

  void resize(std::size_t n);
  [[nodiscard]] std::size_t size() const { return weights_.size(); }

  /// Set weight of index i (>= 0).
  void set(std::size_t i, double w);
  [[nodiscard]] double get(std::size_t i) const;
  /// Sum of all weights.
  [[nodiscard]] double total() const;
  /// Sample index i with probability weight_i / total(); requires total()>0.
  [[nodiscard]] std::size_t sample(Rng& rng) const;

 private:
  [[nodiscard]] std::size_t upper_bound(double x) const;

  std::vector<double> tree_;     // 1-based Fenwick prefix sums
  std::vector<double> weights_;  // raw weights for get()/set deltas
};

}  // namespace creditflow::util
