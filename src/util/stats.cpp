#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace creditflow::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

double RunningStats::cv() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
  CF_EXPECTS(alpha > 0.0 && alpha <= 1.0);
}

void Ewma::add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ += alpha_ * (x - value_);
  }
}

void Ewma::reset() {
  value_ = 0.0;
  initialized_ = false;
}

double quantile(std::span<const double> data, double q) {
  CF_EXPECTS(!data.empty());
  CF_EXPECTS(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

std::vector<double> quantiles(std::span<const double> data,
                              std::span<const double> qs) {
  CF_EXPECTS(!data.empty());
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) {
    CF_EXPECTS(q >= 0.0 && q <= 1.0);
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    out.push_back(sorted[lo] + frac * (sorted[hi] - sorted[lo]));
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  CF_EXPECTS(lo < hi);
  CF_EXPECTS(bins > 0);
}

void Histogram::add(double x, double weight) {
  CF_EXPECTS(weight >= 0.0);
  const double w = bin_width();
  auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / w));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0.0);
  total_ = 0.0;
}

double Histogram::bin_width() const {
  return (hi_ - lo_) / static_cast<double>(counts_.size());
}

double Histogram::count(std::size_t bin) const {
  CF_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double Histogram::center(std::size_t bin) const {
  CF_EXPECTS(bin < counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * bin_width();
}

std::vector<double> Histogram::density() const {
  std::vector<double> d(counts_.size(), 0.0);
  if (total_ <= 0.0) return d;
  const double norm = total_ * bin_width();
  for (std::size_t i = 0; i < counts_.size(); ++i) d[i] = counts_[i] / norm;
  return d;
}

void TimeSeries::add(double t, double v) {
  CF_EXPECTS_MSG(t_.empty() || t >= t_.back(), "time must be non-decreasing");
  t_.push_back(t);
  v_.push_back(v);
}

void TimeSeries::clear() {
  t_.clear();
  v_.clear();
}

double TimeSeries::time_at(std::size_t i) const {
  CF_EXPECTS(i < t_.size());
  return t_[i];
}

double TimeSeries::value_at(std::size_t i) const {
  CF_EXPECTS(i < v_.size());
  return v_[i];
}

double TimeSeries::last_value() const {
  CF_EXPECTS(!v_.empty());
  return v_.back();
}

double TimeSeries::tail_mean(double fraction) const {
  CF_EXPECTS(fraction > 0.0 && fraction <= 1.0);
  CF_EXPECTS(!empty());
  const double t_start =
      t_.back() - fraction * (t_.back() - t_.front());
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < t_.size(); ++i) {
    if (t_[i] >= t_start) {
      sum += v_[i];
      ++n;
    }
  }
  return n == 0 ? v_.back() : sum / static_cast<double>(n);
}

void Log2Histogram::reset() {
  counts_.fill(0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0;
  max_ = 0;
}

void Log2Histogram::merge(const Log2Histogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

std::uint64_t Log2Histogram::bucket_lo(std::size_t bucket) {
  CF_EXPECTS(bucket < kBuckets);
  return bucket == 0 ? 0 : std::uint64_t{1} << (bucket - 1);
}

std::uint64_t Log2Histogram::bucket_hi(std::size_t bucket) {
  CF_EXPECTS(bucket < kBuckets);
  if (bucket == 0) return 1;
  if (bucket == kBuckets - 1) return ~std::uint64_t{0};
  return std::uint64_t{1} << bucket;
}

double Log2Histogram::approx_quantile(double q) const {
  CF_EXPECTS(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (counts_[b] == 0) continue;
    const std::uint64_t next = seen + counts_[b];
    if (static_cast<double>(next) >= target) {
      const double lo = static_cast<double>(bucket_lo(b));
      const double hi = static_cast<double>(bucket_hi(b));
      const double within =
          counts_[b] == 0
              ? 0.0
              : (target - static_cast<double>(seen)) /
                    static_cast<double>(counts_[b]);
      const double est = lo + within * (hi - lo);
      return std::clamp(est, static_cast<double>(min_),
                        static_cast<double>(max_));
    }
    seen = next;
  }
  return static_cast<double>(max_);
}

double TimeSeries::tail_oscillation(double fraction) const {
  CF_EXPECTS(fraction > 0.0 && fraction <= 1.0);
  CF_EXPECTS(!empty());
  const double t_start = t_.back() - fraction * (t_.back() - t_.front());
  double worst = 0.0;
  bool prev_set = false;
  double prev = 0.0;
  for (std::size_t i = 0; i < t_.size(); ++i) {
    if (t_[i] < t_start) continue;
    if (prev_set) worst = std::max(worst, std::abs(v_[i] - prev));
    prev = v_[i];
    prev_set = true;
  }
  return worst;
}

}  // namespace creditflow::util
