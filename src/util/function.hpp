// CreditFlow: FixedFunction — a move-only callable with inline storage.
//
// std::function falls back to heap allocation for any capture that is not
// trivially copyable (a shared_ptr, a weak_ptr, another std::function), which
// puts an allocation on every periodic-event reschedule — once per simulated
// round. FixedFunction stores any callable up to `Capacity` bytes in place
// (enforced at compile time, non-trivial captures included), so the event
// queue's steady-state schedule/fire cycle never touches the heap.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace creditflow::util {

template <typename Signature, std::size_t Capacity>
class FixedFunction;

/// Move-only callable wrapper with `Capacity` bytes of inline storage.
/// Oversized or over-aligned callables are a compile error, never a silent
/// heap fallback — capacity pressure shows up at the capture site.
template <typename R, typename... Args, std::size_t Capacity>
class FixedFunction<R(Args...), Capacity> {
 public:
  FixedFunction() = default;
  FixedFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>,
                             FixedFunction> &&
             std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>)
  FixedFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "callable exceeds FixedFunction inline capacity");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "callable over-aligned for FixedFunction storage");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    invoke_ = [](void* target, Args... args) -> R {
      return (*static_cast<Fn*>(target))(std::forward<Args>(args)...);
    };
    manage_ = [](void* dst, void* src) {
      if (dst != nullptr) {  // move-construct dst from src, destroying src
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
      }
      static_cast<Fn*>(src)->~Fn();
    };
  }

  FixedFunction(FixedFunction&& other) noexcept { move_from(other); }

  FixedFunction& operator=(FixedFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  FixedFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  FixedFunction(const FixedFunction&) = delete;
  FixedFunction& operator=(const FixedFunction&) = delete;

  ~FixedFunction() { reset(); }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  friend bool operator==(const FixedFunction& f, std::nullptr_t) {
    return f.invoke_ == nullptr;
  }

  R operator()(Args... args) {
    return invoke_(static_cast<void*>(storage_),
                   std::forward<Args>(args)...);
  }

 private:
  void reset() {
    if (manage_ != nullptr) {
      manage_(nullptr, static_cast<void*>(storage_));
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  void move_from(FixedFunction& other) {
    if (other.manage_ != nullptr) {
      other.manage_(static_cast<void*>(storage_),
                    static_cast<void*>(other.storage_));
      invoke_ = other.invoke_;
      manage_ = other.manage_;
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[Capacity];
  R (*invoke_)(void*, Args...) = nullptr;
  /// dst != nullptr: move-construct *dst from *src, then destroy *src.
  /// dst == nullptr: destroy *src.
  void (*manage_)(void* dst, void* src) = nullptr;
};

}  // namespace creditflow::util
