#include "util/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace creditflow::util {

namespace {

std::atomic<int>& level_storage() {
  static std::atomic<int> level = [] {
    const char* env = std::getenv("CREDITFLOW_LOG");
    return static_cast<int>(env ? parse_log_level(env) : LogLevel::kWarn);
  }();
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() {
  return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

namespace detail {

void emit(LogLevel level, const std::string& message) {
  static std::mutex mu;
  const std::lock_guard<std::mutex> lock(mu);
  std::cerr << "[creditflow " << level_name(level) << "] " << message << '\n';
}

}  // namespace detail

}  // namespace creditflow::util
