// CreditFlow: capped exponential backoff with seeded jitter.
//
// The retry policy shared by every reconnect/poll loop in the sweep farm
// (worker connect, WAIT polling, coordinator reattach). Deterministic by
// construction: the delay sequence is a pure function of the seed and the
// retry count, so a test that pins a seed replays the exact same waits —
// the same discipline the simulation core applies to every other random
// stream.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/rng.hpp"

namespace creditflow::util {

/// Capped exponential backoff: delay k is `initial * 2^k`, capped at `max`,
/// multiplied by a jitter factor drawn uniformly from [1 - jitter, 1].
/// Jitter pulls delays *down* from the exponential envelope, so the cap is
/// a hard ceiling and a fleet of workers sharing a restart moment spreads
/// out instead of reconnecting in lockstep.
class Backoff {
 public:
  struct Options {
    double initial_seconds = 0.05;  ///< first delay (pre-jitter)
    double max_seconds = 1.0;       ///< hard ceiling on any delay
    double jitter = 0.25;           ///< fraction of the delay jitter may shave
    std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  };

  Backoff() : Backoff(Options{}) {}
  explicit Backoff(Options options)
      : options_(options), rng_(options.seed) {}

  /// The next delay in seconds; each call advances the schedule.
  [[nodiscard]] double next() {
    double delay = options_.initial_seconds;
    // Doubling with a multiplicative cap instead of pow(): retries_ is
    // unbounded and the loop exits as soon as the cap is reached.
    for (std::uint64_t k = 0; k < retries_ && delay < options_.max_seconds;
         ++k) {
      delay *= 2.0;
    }
    delay = std::min(delay, options_.max_seconds);
    ++retries_;
    const double shave = options_.jitter * rng_.uniform();
    return delay * (1.0 - shave);
  }

  /// Forget the history: the next delay starts from initial_seconds again.
  /// Call after a successful attempt.
  void reset() {
    lifetime_ += retries_;
    retries_ = 0;
  }

  /// Delays handed out since construction (never reset — this is the
  /// retry counter surfaced in WorkerReport).
  [[nodiscard]] std::uint64_t total_retries() const { return total(); }
  [[nodiscard]] std::uint64_t total() const { return lifetime_ + retries_; }

 private:
  Options options_;
  Rng rng_;
  std::uint64_t retries_ = 0;
  std::uint64_t lifetime_ = 0;
};

}  // namespace creditflow::util
