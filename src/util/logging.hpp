// CreditFlow: minimal leveled logger. Level comes from CREDITFLOW_LOG
// (trace|debug|info|warn|error; default warn) so library users and benches
// can raise verbosity without recompiling.
#pragma once

#include <sstream>
#include <string>

namespace creditflow::util {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log level (initialized once from the environment).
[[nodiscard]] LogLevel log_level();
/// Override the global log level programmatically (e.g., in tests).
void set_log_level(LogLevel level);
/// Parse a level name; unknown names yield kWarn.
[[nodiscard]] LogLevel parse_log_level(const std::string& name);

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Stream-style log statement; evaluates its message lazily.
#define CF_LOG(level_enum, expr)                                          \
  do {                                                                    \
    if (static_cast<int>(level_enum) >=                                   \
        static_cast<int>(::creditflow::util::log_level())) {              \
      std::ostringstream cf_log_oss;                                      \
      cf_log_oss << expr;                                                 \
      ::creditflow::util::detail::emit(level_enum, cf_log_oss.str());     \
    }                                                                     \
  } while (false)

#define CF_LOG_TRACE(expr) CF_LOG(::creditflow::util::LogLevel::kTrace, expr)
#define CF_LOG_DEBUG(expr) CF_LOG(::creditflow::util::LogLevel::kDebug, expr)
#define CF_LOG_INFO(expr) CF_LOG(::creditflow::util::LogLevel::kInfo, expr)
#define CF_LOG_WARN(expr) CF_LOG(::creditflow::util::LogLevel::kWarn, expr)
#define CF_LOG_ERROR(expr) CF_LOG(::creditflow::util::LogLevel::kError, expr)

}  // namespace creditflow::util
