// CreditFlow: durable file primitives for the sweep farm's persistent
// state — the RunStore cache, the coordinator's write-ahead journal, and
// the aggregate output files.
//
// Two primitives, both POSIX-fd based so durability is a real property and
// not a stdio buffering accident:
//
//   AppendFile — an O_APPEND record log. Each append is a single write(2),
//   so concurrent appenders interleave at record boundaries; an optional
//   fsync per append upgrades "survives a process kill" to "survives a
//   power cut". Opening detects a torn final line (a writer killed
//   mid-append) and repairs it by prefixing the next record with '\n'.
//
//   atomic_write_file — whole-file replace via temp file + rename(2), so a
//   reader (or a crash) never observes a torn aggregate CSV/JSON: the path
//   either holds the old complete bytes or the new complete bytes.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace creditflow::util {

/// Append-only record log over a POSIX descriptor.
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile() { close(); }

  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Open (creating if absent) for appending. With fsync_on_append every
  /// append is followed by fsync(2). Throws util::PreconditionError when
  /// the file cannot be opened.
  void open(const std::string& path, bool fsync_on_append);

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }

  /// True when the file existed and its last byte was not '\n' — a torn
  /// tail from a killed writer. The first append_record repairs it.
  [[nodiscard]] bool opened_mid_line() const { return needs_newline_; }

  /// Append `record` plus a trailing '\n' as one write (prefixed by a
  /// repair '\n' when the existing tail was torn). Throws
  /// util::PreconditionError on I/O failure.
  void append_record(std::string_view record);

  void close();

 private:
  int fd_ = -1;
  bool fsync_on_append_ = false;
  bool needs_newline_ = false;
  std::string path_;
};

/// Replace `path` with `content` atomically: write a sibling temp file,
/// optionally fsync it, then rename over the target. Returns false (after
/// cleaning up the temp file) on any failure instead of throwing — callers
/// report the path in their own error style.
[[nodiscard]] bool atomic_write_file(const std::string& path,
                                     std::string_view content,
                                     bool fsync_file = false);

}  // namespace creditflow::util
