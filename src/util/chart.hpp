// CreditFlow: terminal line charts. The figure benches complement their
// tables with a small ASCII rendering of each series so the *shape* the
// paper plots (convergence, separation of curves, crossovers) is visible
// directly in the console output.
#pragma once

#include <string>
#include <vector>

#include "util/stats.hpp"

namespace creditflow::util {

/// Options for render_chart.
struct ChartOptions {
  std::size_t width = 72;    ///< plot columns (excluding axis labels)
  std::size_t height = 16;   ///< plot rows
  double y_min = 0.0;        ///< fixed lower bound (y_auto overrides)
  double y_max = 1.0;        ///< fixed upper bound (y_auto overrides)
  bool y_auto = false;       ///< derive bounds from the data
  std::string title;
};

/// One named series; consecutive series get distinct glyphs (*, +, o, x, …).
struct ChartSeries {
  std::string label;
  const TimeSeries* series = nullptr;
};

/// Render one or more time series into a multi-line ASCII chart with a
/// y-axis scale, an x-range footer and a glyph legend. Series must be
/// non-empty and share a comparable x-range (the union is used).
[[nodiscard]] std::string render_chart(const std::vector<ChartSeries>& series,
                                       const ChartOptions& options = {});

}  // namespace creditflow::util
