// CreditFlow: contract-checking macros (Core Guidelines I.6/I.8 style).
#pragma once

#include <stdexcept>
#include <string>

namespace creditflow::util {

/// Thrown when a precondition (caller error) is violated.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an internal invariant (library bug) is violated.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void fail_precondition(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  throw PreconditionError(std::string("precondition failed: ") + expr + " at " +
                          file + ":" + std::to_string(line) +
                          (msg.empty() ? "" : (" — " + msg)));
}

[[noreturn]] inline void fail_invariant(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  throw InvariantError(std::string("invariant failed: ") + expr + " at " +
                       file + ":" + std::to_string(line) +
                       (msg.empty() ? "" : (" — " + msg)));
}

}  // namespace creditflow::util

/// Check a caller-facing precondition; throws PreconditionError on violation.
#define CF_EXPECTS(cond)                                                     \
  do {                                                                       \
    if (!(cond))                                                             \
      ::creditflow::util::fail_precondition(#cond, __FILE__, __LINE__, {});  \
  } while (false)

/// Check a caller-facing precondition with an explanatory message.
#define CF_EXPECTS_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond))                                                             \
      ::creditflow::util::fail_precondition(#cond, __FILE__, __LINE__, msg); \
  } while (false)

/// Check an internal invariant; throws InvariantError on violation.
#define CF_ENSURES(cond)                                                   \
  do {                                                                     \
    if (!(cond))                                                           \
      ::creditflow::util::fail_invariant(#cond, __FILE__, __LINE__, {});   \
  } while (false)

/// Check an internal invariant with an explanatory message.
#define CF_ENSURES_MSG(cond, msg)                                          \
  do {                                                                     \
    if (!(cond))                                                           \
      ::creditflow::util::fail_invariant(#cond, __FILE__, __LINE__, msg);  \
  } while (false)
