#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace creditflow::util {

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  // xoshiro requires a non-zero state; SplitMix64 makes all-zero output
  // astronomically unlikely, but guard anyway.
  if (std::all_of(s_.begin(), s_.end(), [](auto w) { return w == 0; })) {
    s_[0] = 0x1234567890abcdefULL;
  }
}

Rng Rng::split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

double Rng::uniform(double lo, double hi) {
  CF_EXPECTS(lo < hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CF_EXPECTS(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi-lo < 2^63, safe
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::exponential(double rate) {
  CF_EXPECTS(rate > 0.0);
  double u = uniform();
  // Avoid log(0): uniform() < 1 always, but 1-u may round to 0 only if u==1.
  return -std::log1p(-u) / rate;
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= std::numeric_limits<double>::min());
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::lognormal_mean_cv(double mean, double cv) {
  CF_EXPECTS(mean > 0.0 && cv >= 0.0);
  if (cv == 0.0) return mean;
  const double sigma2 = std::log1p(cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(normal(mu, std::sqrt(sigma2)));
}

std::uint64_t Rng::poisson(double mean) {
  CF_EXPECTS(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Inversion by sequential search.
    const double l = std::exp(-mean);
    double p = 1.0;
    std::uint64_t k = 0;
    do {
      ++k;
      p *= uniform();
    } while (p > l);
    return k - 1;
  }
  // Atkinson-style normal approximation with rejection for large means.
  const double c = 0.767 - 3.36 / mean;
  const double beta = 3.14159265358979323846 / std::sqrt(3.0 * mean);
  const double alpha = beta * mean;
  const double k = std::log(c) - mean - std::log(beta);
  while (true) {
    const double u = uniform();
    if (u <= 0.0 || u >= 1.0) continue;
    const double x = (alpha - std::log((1.0 - u) / u)) / beta;
    const double n = std::floor(x + 0.5);
    if (n < 0.0) continue;
    const double v = uniform();
    if (v <= 0.0) continue;
    const double y = alpha - beta * x;
    const double lhs = y + std::log(v / ((1.0 + std::exp(y)) * (1.0 + std::exp(y))));
    const double rhs = k + n * std::log(mean) - std::lgamma(n + 1.0);
    if (lhs <= rhs) return static_cast<std::uint64_t>(n);
  }
}

std::uint64_t Rng::geometric(double p) {
  CF_EXPECTS(p > 0.0 && p <= 1.0);
  if (p == 1.0) return 0;
  const double u = uniform();
  return static_cast<std::uint64_t>(std::floor(std::log1p(-u) / std::log1p(-p)));
}

double Rng::power_law(double alpha, double xmin, double xmax) {
  CF_EXPECTS(alpha > 1.0);
  CF_EXPECTS(xmin > 0.0 && xmin < xmax);
  // Inverse CDF of truncated Pareto.
  const double a1 = 1.0 - alpha;
  const double lo = std::pow(xmin, a1);
  const double hi = std::pow(xmax, a1);
  const double u = uniform();
  return std::pow(lo + u * (hi - lo), 1.0 / a1);
}

std::uint64_t Rng::power_law_int(double alpha, std::uint64_t dmin,
                                 std::uint64_t dmax) {
  CF_EXPECTS(dmin >= 1 && dmin <= dmax);
  if (dmin == dmax) return dmin;
  // Continuous approximation with rounding, accepted via discrete correction.
  // For the modest ranges used in overlays a direct CDF inversion over the
  // (dmax - dmin + 1) support is exact and cheap enough when the range is
  // small; fall back to continuous sampling for wide ranges.
  const std::uint64_t range = dmax - dmin + 1;
  if (range <= 4096) {
    double total = 0.0;
    for (std::uint64_t d = dmin; d <= dmax; ++d)
      total += std::pow(static_cast<double>(d), -alpha);
    double u = uniform() * total;
    for (std::uint64_t d = dmin; d <= dmax; ++d) {
      u -= std::pow(static_cast<double>(d), -alpha);
      if (u <= 0.0) return d;
    }
    return dmax;
  }
  const double x = power_law(alpha, static_cast<double>(dmin),
                             static_cast<double>(dmax) + 1.0);
  return std::min(dmax, static_cast<std::uint64_t>(std::floor(x)));
}

std::size_t Rng::discrete(std::span<const double> weights) {
  CF_EXPECTS(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CF_EXPECTS_MSG(w >= 0.0, "negative weight");
    total += w;
  }
  CF_EXPECTS_MSG(total > 0.0, "all weights zero");
  double u = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  // Rounding may leave u marginally positive; return last positive weight.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

AliasTable::AliasTable(std::span<const double> weights) {
  CF_EXPECTS(!weights.empty());
  const std::size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    CF_EXPECTS_MSG(w >= 0.0, "negative weight");
    total += w;
  }
  CF_EXPECTS_MSG(total > 0.0, "all weights zero");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i)
    scaled[i] = weights[i] * static_cast<double>(n) / total;

  std::vector<std::size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::size_t i : large) prob_[i] = 1.0;
  for (std::size_t i : small) prob_[i] = 1.0;  // numeric leftovers
}

std::size_t AliasTable::sample(Rng& rng) const {
  CF_EXPECTS(!prob_.empty());
  const std::size_t i = rng.uniform_index(prob_.size());
  return rng.uniform() < prob_[i] ? i : alias_[i];
}

FenwickSampler::FenwickSampler(std::size_t n) { resize(n); }

void FenwickSampler::resize(std::size_t n) {
  tree_.assign(n + 1, 0.0);
  weights_.assign(n, 0.0);
}

void FenwickSampler::set(std::size_t i, double w) {
  CF_EXPECTS(i < weights_.size());
  CF_EXPECTS_MSG(w >= 0.0, "negative weight");
  const double delta = w - weights_[i];
  if (delta == 0.0) return;
  weights_[i] = w;
  for (std::size_t j = i + 1; j < tree_.size(); j += j & (~j + 1)) {
    tree_[j] += delta;
  }
}

double FenwickSampler::get(std::size_t i) const {
  CF_EXPECTS(i < weights_.size());
  return weights_[i];
}

double FenwickSampler::total() const {
  double sum = 0.0;
  // Total = prefix sum over the whole array.
  std::size_t j = weights_.size();
  while (j > 0) {
    sum += tree_[j];
    j -= j & (~j + 1);
  }
  return sum;
}

std::size_t FenwickSampler::upper_bound(double x) const {
  // Find smallest index i such that prefix_sum(i+1) > x.
  std::size_t pos = 0;
  std::size_t bitmask = 1;
  while ((bitmask << 1) <= weights_.size()) bitmask <<= 1;
  for (; bitmask != 0; bitmask >>= 1) {
    const std::size_t next = pos + bitmask;
    if (next < tree_.size() && tree_[next] <= x) {
      x -= tree_[next];
      pos = next;
    }
  }
  return pos;  // 0-based index of the selected weight
}

std::size_t FenwickSampler::sample(Rng& rng) const {
  const double t = total();
  CF_EXPECTS_MSG(t > 0.0, "cannot sample from all-zero weights");
  double x = rng.uniform() * t;
  std::size_t i = upper_bound(x);
  if (i >= weights_.size()) i = weights_.size() - 1;
  // Skip any zero-weight landing caused by floating point edge cases.
  while (i > 0 && weights_[i] == 0.0) --i;
  if (weights_[i] == 0.0) {
    for (std::size_t j = 0; j < weights_.size(); ++j) {
      if (weights_[j] > 0.0) return j;
    }
  }
  return i;
}

}  // namespace creditflow::util
