#include "util/table.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "util/assert.hpp"

namespace creditflow::util {

ConsoleTable::ConsoleTable(std::string title) : title_(std::move(title)) {}

void ConsoleTable::set_header(std::vector<std::string> header) {
  CF_EXPECTS(!header.empty());
  CF_EXPECTS_MSG(rows_.empty(), "set_header before adding rows");
  header_ = std::move(header);
}

void ConsoleTable::add_row(std::vector<Cell> row) {
  CF_EXPECTS_MSG(row.size() == header_.size(),
                 "row size must match header size");
  rows_.push_back(std::move(row));
}

void ConsoleTable::set_precision(int digits) {
  CF_EXPECTS(digits >= 0 && digits <= 17);
  precision_ = digits;
}

std::string ConsoleTable::format_cell(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&c)) return std::to_string(*i);
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision_) << std::get<double>(c);
  return oss.str();
}

void ConsoleTable::print(std::ostream& os) const {
  CF_EXPECTS_MSG(!header_.empty(), "table has no header");
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rendered) print_row(row);
}

void ConsoleTable::print() const { print(std::cout); }

namespace {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string ConsoleTable::to_csv() const {
  std::ostringstream oss;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    oss << (c == 0 ? "" : ",") << csv_escape(header_[c]);
  }
  oss << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      oss << (c == 0 ? "" : ",") << csv_escape(format_cell(row[c]));
    }
    oss << '\n';
  }
  return oss.str();
}

std::optional<std::string> write_csv_if_configured(const ConsoleTable& table,
                                                   const std::string& name) {
  const char* dir = std::getenv("CREDITFLOW_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return std::nullopt;
  std::filesystem::create_directories(dir);
  const auto path = std::filesystem::path(dir) / (name + ".csv");
  std::ofstream ofs(path);
  if (!ofs) return std::nullopt;
  ofs << table.to_csv();
  return path.string();
}

}  // namespace creditflow::util
