#include "util/fsio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "util/assert.hpp"

namespace creditflow::util {

namespace {

/// write(2) the whole buffer, riding out EINTR and short writes.
bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(other.fd_),
      fsync_on_append_(other.fsync_on_append_),
      needs_newline_(other.needs_newline_),
      path_(std::move(other.path_)) {
  other.fd_ = -1;
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    fsync_on_append_ = other.fsync_on_append_;
    needs_newline_ = other.needs_newline_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

void AppendFile::open(const std::string& path, bool fsync_on_append) {
  close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
               0644);
  CF_EXPECTS_MSG(fd_ >= 0, "cannot open " + path + " for append: " +
                               std::strerror(errno));
  path_ = path;
  fsync_on_append_ = fsync_on_append;
  needs_newline_ = false;
  // Peek at the existing tail through a read-only descriptor: an O_APPEND
  // fd cannot seek-and-read reliably once another writer shares the file.
  const int probe = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (probe >= 0) {
    const off_t size = ::lseek(probe, 0, SEEK_END);
    if (size > 0) {
      char last = '\n';
      if (::lseek(probe, size - 1, SEEK_SET) == size - 1 &&
          ::read(probe, &last, 1) == 1) {
        needs_newline_ = last != '\n';
      }
    }
    ::close(probe);
  }
}

void AppendFile::append_record(std::string_view record) {
  CF_EXPECTS_MSG(fd_ >= 0, "append_record on a closed AppendFile");
  std::string buffer;
  buffer.reserve(record.size() + 2);
  if (needs_newline_) buffer += '\n';
  buffer.append(record);
  buffer += '\n';
  CF_EXPECTS_MSG(write_all(fd_, buffer.data(), buffer.size()),
                 "failed appending to " + path_ + ": " +
                     std::strerror(errno));
  needs_newline_ = false;
  if (fsync_on_append_) {
    CF_EXPECTS_MSG(::fsync(fd_) == 0, "fsync failed on " + path_ + ": " +
                                          std::strerror(errno));
  }
}

void AppendFile::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool atomic_write_file(const std::string& path, std::string_view content,
                       bool fsync_file) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  bool ok = write_all(fd, content.data(), content.size());
  if (ok && fsync_file) ok = ::fsync(fd) == 0;
  ok = (::close(fd) == 0) && ok;
  if (ok) ok = ::rename(tmp.c_str(), path.c_str()) == 0;
  if (!ok) ::unlink(tmp.c_str());
  return ok;
}

}  // namespace creditflow::util
