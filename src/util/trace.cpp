#include "util/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/logging.hpp"

namespace creditflow::util {

namespace {

/// Per-thread cache of the registered ring, tagged with the tracer
/// generation it belongs to; enable()/clear() bump the generation so a
/// stale pointer (into a destroyed ring) is never dereferenced.
struct LocalRingCache {
  void* ring = nullptr;
  std::uint64_t generation = 0;
};
thread_local LocalRingCache t_ring_cache;

}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::atomic<bool>& Tracer::enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

void Tracer::enable(std::size_t events_per_thread) {
  const std::lock_guard<std::mutex> lock(mutex_);
  rings_.clear();
  capacity_ = std::max<std::size_t>(events_per_thread, 16);
  epoch_ = std::chrono::steady_clock::now();
  generation_.fetch_add(1, std::memory_order_relaxed);
  enabled_flag().store(true, std::memory_order_relaxed);
}

void Tracer::disable() {
  enabled_flag().store(false, std::memory_order_relaxed);
}

std::int64_t Tracer::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::Ring& Tracer::local_ring() {
  const std::uint64_t gen = generation_.load(std::memory_order_relaxed);
  if (t_ring_cache.ring != nullptr && t_ring_cache.generation == gen) {
    return *static_cast<Ring*>(t_ring_cache.ring);
  }
  // First record() on this thread since enable(): register a ring. This is
  // the only allocating step of the recording path — one-time warm-up.
  const std::lock_guard<std::mutex> lock(mutex_);
  rings_.push_back(std::make_unique<Ring>());
  Ring& ring = *rings_.back();
  ring.events.reserve(capacity_);
  ring.tid = static_cast<std::uint32_t>(rings_.size());
  t_ring_cache.ring = &ring;
  t_ring_cache.generation = gen;
  return ring;
}

void Tracer::record(const char* name, const char* cat, std::int64_t ts_us,
                    std::int64_t dur_us, const char* arg_name,
                    std::uint64_t arg) {
  if (!enabled()) return;
  Ring& ring = local_ring();
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.tid = ring.tid;
  ev.arg_name = arg_name;
  ev.arg = arg;
  if (ring.events.size() < ring.events.capacity()) {
    ring.events.push_back(ev);  // within reserve: no allocation
  } else {
    ring.events[ring.next] = ev;  // full: overwrite the oldest
    ring.next = ring.next + 1 == ring.events.size() ? 0 : ring.next + 1;
  }
  ++ring.recorded;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> all;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::size_t total = 0;
    for (const auto& ring : rings_) total += ring->events.size();
    all.reserve(total);
    for (const auto& ring : rings_) {
      all.insert(all.end(), ring->events.begin(), ring->events.end());
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return all;
}

std::string Tracer::json() const {
  const std::vector<TraceEvent> events = snapshot();
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << ev.name << "\",\"cat\":\"" << ev.cat
        << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << ev.tid
        << ",\"ts\":" << ev.ts_us << ",\"dur\":" << ev.dur_us;
    if (ev.arg_name != nullptr) {
      out << ",\"args\":{\"" << ev.arg_name << "\":" << ev.arg << '}';
    }
    out << '}';
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
  return out.str();
}

bool Tracer::write_json(const std::string& path) const {
  std::ofstream out(path);
  out << json();
  if (!out) {
    CF_LOG_ERROR("tracer: failed to write " << path);
    return false;
  }
  return true;
}

std::uint64_t Tracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t dropped = 0;
  for (const auto& ring : rings_) {
    dropped += ring->recorded - ring->events.size();
  }
  return dropped;
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  rings_.clear();
  generation_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace creditflow::util
