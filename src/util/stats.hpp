// CreditFlow: summary statistics, histograms and time series used by the
// simulator's metrics layer and the benchmark harnesses.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace creditflow::util {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);
  /// Merge another accumulator (parallel Welford combination).
  void merge(const RunningStats& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] double mean() const;
  /// Population variance (n denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }
  /// Coefficient of variation (stddev/mean); 0 when mean is 0.
  [[nodiscard]] double cv() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponentially weighted moving average with configurable smoothing.
class Ewma {
 public:
  /// alpha in (0, 1]: weight of the newest observation.
  explicit Ewma(double alpha);

  void add(double x);
  void reset();
  [[nodiscard]] bool initialized() const { return initialized_; }
  /// Current smoothed value; 0 before the first observation.
  [[nodiscard]] double value() const { return value_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Quantile of a sample (linear interpolation between order statistics).
/// q in [0,1]; requires non-empty data. Does not modify the input.
[[nodiscard]] double quantile(std::span<const double> data, double q);

/// All requested quantiles with a single sort.
[[nodiscard]] std::vector<double> quantiles(std::span<const double> data,
                                            std::span<const double> qs);

/// Fixed-width binned histogram over [lo, hi); out-of-range samples are
/// clamped into the edge bins so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);
  void reset();

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] double bin_width() const;
  [[nodiscard]] double count(std::size_t bin) const;
  [[nodiscard]] double total() const { return total_; }
  /// Midpoint of a bin.
  [[nodiscard]] double center(std::size_t bin) const;
  /// Normalized density estimate per bin (integrates to ~1).
  [[nodiscard]] std::vector<double> density() const;

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Power-of-two bucketed histogram of non-negative integer samples
/// (latencies in µs/ns, candidate-set sizes, queue depths). Bucket 0 holds
/// zeros; bucket b ≥ 1 holds [2^(b-1), 2^b). Fixed inline storage, so
/// add() is allocation-free and a registry can hand out stable cells; the
/// trade-off is ~2× worst-case relative error on quantile readouts, which
/// is the right deal for order-of-magnitude observability.
class Log2Histogram {
 public:
  /// Bucket 0 plus one bucket per magnitude of a 64-bit sample.
  static constexpr std::size_t kBuckets = 65;

  void add(std::uint64_t x) {
    ++counts_[bucket_of(x)];
    ++count_;
    sum_ += x;
    if (count_ == 1 || x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  void reset();
  /// Accumulate another histogram (bucket-wise; min/max/sum merge exactly).
  void merge(const Log2Histogram& other);

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t x) {
    return x == 0 ? 0 : static_cast<std::size_t>(std::bit_width(x));
  }
  /// Inclusive lower edge of a bucket.
  [[nodiscard]] static std::uint64_t bucket_lo(std::size_t bucket);
  /// Exclusive upper edge (saturates at UINT64_MAX for the top bucket).
  [[nodiscard]] static std::uint64_t bucket_hi(std::size_t bucket);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t bucket) const {
    return counts_[bucket];
  }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }

  /// Approximate quantile (q in [0,1]): linear interpolation within the
  /// bucket where the cumulative count crosses q·count, clamped to the
  /// observed [min, max]. 0 on an empty histogram.
  [[nodiscard]] double approx_quantile(double q) const;

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// A (time, value) series with basic reductions; the metrics recorder and the
/// figure benches exchange these.
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void add(double t, double v);
  void clear();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return t_.size(); }
  [[nodiscard]] bool empty() const { return t_.empty(); }
  [[nodiscard]] std::span<const double> times() const { return t_; }
  [[nodiscard]] std::span<const double> values() const { return v_; }
  [[nodiscard]] double time_at(std::size_t i) const;
  [[nodiscard]] double value_at(std::size_t i) const;
  [[nodiscard]] double last_value() const;
  /// Mean of values over the last `fraction` of the time span (for
  /// "converged value" readouts); fraction in (0, 1].
  [[nodiscard]] double tail_mean(double fraction) const;
  /// Largest |v(t2)-v(t1)| between consecutive points in the tail window;
  /// a small value indicates the series has settled.
  [[nodiscard]] double tail_oscillation(double fraction) const;

 private:
  std::string name_;
  std::vector<double> t_;
  std::vector<double> v_;
};

}  // namespace creditflow::util
