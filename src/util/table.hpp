// CreditFlow: console tables and CSV emission for the benchmark harnesses.
//
// Every figure bench prints an aligned table of the series the paper plots;
// when the environment variable CREDITFLOW_CSV_DIR is set, the same data is
// also written as CSV files for external plotting.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace creditflow::util {

/// A cell is either text or a number (formatted with fixed precision).
using Cell = std::variant<std::string, double, std::int64_t>;

/// Column-aligned console table with an optional title.
class ConsoleTable {
 public:
  explicit ConsoleTable(std::string title = {});

  /// Set header labels; defines the column count.
  void set_header(std::vector<std::string> header);
  /// Append one row; its size must match the header.
  void add_row(std::vector<Cell> row);
  /// Digits after the decimal point for double cells (default 4).
  void set_precision(int digits);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const { return header_.size(); }

  /// Render to a stream with box-drawing-free ASCII alignment.
  void print(std::ostream& os) const;
  /// Render to stdout.
  void print() const;
  /// Serialize as CSV (header + rows, RFC-ish quoting of commas/quotes).
  [[nodiscard]] std::string to_csv() const;

 private:
  [[nodiscard]] std::string format_cell(const Cell& c) const;

  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

/// Write a table as `<name>.csv` under $CREDITFLOW_CSV_DIR, if set.
/// Returns the path written, or nullopt when the env var is absent.
std::optional<std::string> write_csv_if_configured(const ConsoleTable& table,
                                                   const std::string& name);

}  // namespace creditflow::util
