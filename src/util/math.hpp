// CreditFlow: numeric kernels shared by the queueing analytics —
// log-domain arithmetic (Buzen's algorithm at large populations), dense
// linear solves (stationary flow equations), quadrature and one-sided limit
// extrapolation (the condensation threshold integral, Eq. 4 of the paper).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace creditflow::util {

inline constexpr double kNegInf = -std::numeric_limits<double>::infinity();
inline constexpr double kPosInf = std::numeric_limits<double>::infinity();

/// Deterministic shortest decimal form that round-trips the exact double:
/// the same value always yields the same bytes, whole numbers print as
/// integers ("20", not "2e+01"), NaN prints as "nan". Shared by scenario
/// serialization, sweep CSV/JSON emission, and the run-store cache, whose
/// byte-identical-output contracts all rest on this one rendering.
[[nodiscard]] std::string format_double(double v);

/// log(exp(a) + exp(b)) without overflow; handles -inf identities.
[[nodiscard]] double log_add_exp(double a, double b);

/// log(sum_i exp(x_i)); returns -inf for empty input.
[[nodiscard]] double log_sum_exp(std::span<const double> xs);

/// log(n choose k) via lgamma; requires 0 <= k <= n.
[[nodiscard]] double log_binomial(std::uint64_t n, std::uint64_t k);

/// log of the binomial PMF: log C(n,k) + k log(p) + (n-k) log(1-p).
/// Requires p in (0,1) unless k pins the degenerate case.
[[nodiscard]] double log_binomial_pmf(std::uint64_t n, std::uint64_t k,
                                      double p);

/// n evenly spaced points from lo to hi inclusive; requires n >= 2.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t n);

/// Adaptive Simpson quadrature of f over [a, b] to the given absolute
/// tolerance. `max_depth` bounds recursion.
[[nodiscard]] double integrate(const std::function<double(double)>& f,
                               double a, double b, double tol = 1e-10,
                               int max_depth = 40);

/// Result of a one-sided limit estimation (see `limit_from_below`).
struct LimitResult {
  double value = 0.0;     ///< estimated limit (kPosInf when diverging)
  bool diverges = false;  ///< true when g grows without bound as z -> 1-
};

/// Estimate lim_{z->1^-} g(z) by evaluating g at z_j = 1 - 2^{-j},
/// j = start..end, and testing for convergence vs. growth. This matches the
/// structure of the paper's threshold constant T (Eq. 4), whose integrand
/// blows up only when the utilization density carries mass near w = 1.
[[nodiscard]] LimitResult limit_from_below(
    const std::function<double(double)>& g, int j_start = 4, int j_end = 18,
    double rel_tol = 1e-4);

/// Dense square matrix in row-major order with the handful of operations the
/// library needs (no external BLAS/LAPACK dependency).
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;
  [[nodiscard]] std::span<const double> row(std::size_t r) const;

  /// y = x * A (row-vector times matrix); requires x.size() == rows().
  [[nodiscard]] std::vector<double> left_multiply(
      std::span<const double> x) const;
  /// y = A * x; requires x.size() == cols().
  [[nodiscard]] std::vector<double> right_multiply(
      std::span<const double> x) const;
  [[nodiscard]] Matrix transposed() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve A x = b by LU decomposition with partial pivoting.
/// Throws PreconditionError on dimension mismatch and InvariantError when the
/// matrix is numerically singular.
[[nodiscard]] std::vector<double> solve_linear(Matrix a,
                                               std::vector<double> b);

/// Solve the singular homogeneous system x (P - I) = 0 for a row-stochastic
/// P, normalized so sum(x) = 1 — i.e., the stationary distribution. Uses the
/// standard replace-one-equation-with-normalization trick on the transpose.
[[nodiscard]] std::vector<double> stationary_from_stochastic(const Matrix& p);

}  // namespace creditflow::util
