#include "util/faultnet.hpp"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/socket.hpp"

namespace creditflow::util {

namespace {

/// Sleep granularity of the pump loops — also the bound on how long stop()
/// waits for a pump to notice the shutdown flag.
constexpr int kPollMs = 20;

}  // namespace

struct FaultProxy::Impl {
  Options options;
  Listener listener;
  std::atomic<bool> stopping{false};

  std::atomic<std::size_t> connections{0};
  std::atomic<std::size_t> short_writes{0};
  std::atomic<std::size_t> delays{0};
  std::atomic<std::size_t> disconnects{0};

  std::mutex threads_mutex;
  std::vector<std::thread> pumps;
  std::thread acceptor;

  explicit Impl(Options opts) : options(std::move(opts)) {
    listener = Listener::bind(options.listen_host, options.listen_port);
  }

  /// Claim one injected disconnect against the lifetime cap.
  bool take_disconnect_budget() {
    std::size_t used = disconnects.load();
    while (used < options.max_disconnects) {
      if (disconnects.compare_exchange_weak(used, used + 1)) return true;
    }
    return false;
  }

  void sleep_interruptible(double seconds) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds));
    while (!stopping.load() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(kPollMs));
    }
  }

  /// Forward one chunk with fault decisions from `rng`. Returns false when
  /// the connection must be severed (injected cut or a dead peer).
  bool forward_chunk(Socket& dst, const std::string& chunk, Rng& rng,
                     std::uint64_t& carried) {
    std::size_t deliver = chunk.size();
    bool cut = false;

    // Deterministic cut: sever exactly at the configured byte offset of
    // the connection's total carried traffic, delivering the prefix — a
    // short write *and* a mid-message disconnect in one event.
    if (options.disconnect_after_bytes > 0 &&
        carried < options.disconnect_after_bytes &&
        carried + deliver >= options.disconnect_after_bytes &&
        take_disconnect_budget()) {
      deliver = static_cast<std::size_t>(options.disconnect_after_bytes -
                                         carried);
      cut = true;
    }
    // Probabilistic cut: a random prefix of this chunk, then the axe.
    if (!cut && options.disconnect_probability > 0.0 &&
        rng.bernoulli(options.disconnect_probability) &&
        take_disconnect_budget()) {
      deliver = static_cast<std::size_t>(
          rng.uniform(0.0, static_cast<double>(deliver)));
      cut = true;
    }
    if (!cut && options.delay_probability > 0.0 &&
        rng.bernoulli(options.delay_probability)) {
      delays.fetch_add(1);
      sleep_interruptible(rng.uniform(0.0, options.max_delay_seconds));
    }
    if (!cut && deliver > 1 && options.short_write_probability > 0.0 &&
        rng.bernoulli(options.short_write_probability)) {
      // Fragment the chunk: deliver a strict prefix now, the rest after a
      // pause — the receiver must reassemble across reads.
      const auto split = static_cast<std::size_t>(
          rng.uniform(1.0, static_cast<double>(deliver)));
      short_writes.fetch_add(1);
      if (!dst.send_all(std::string_view(chunk).substr(0, split))) {
        return false;
      }
      carried += split;
      sleep_interruptible(rng.uniform(0.0, options.max_delay_seconds));
      if (stopping.load()) return false;
      if (!dst.send_all(std::string_view(chunk).substr(split, deliver -
                                                                  split))) {
        return false;
      }
      carried += deliver - split;
      return true;
    }

    if (deliver > 0 &&
        !dst.send_all(std::string_view(chunk).substr(0, deliver))) {
      return false;
    }
    carried += deliver;
    if (cut) {
      CF_LOG_INFO("faultnet: injected disconnect after " << carried
                                                         << " bytes");
    }
    return !cut;
  }

  /// Shuttle bytes between one accepted client and a fresh upstream
  /// connection until either side dies, a fault cuts the link, or the
  /// proxy stops.
  void pump(Socket client, std::size_t conn_index) {
    Socket upstream;
    try {
      upstream =
          Socket::connect(options.target_host, options.target_port, 5.0);
    } catch (const SocketError& e) {
      CF_LOG_WARN("faultnet: upstream connect failed: " << e.what());
      return;
    }
    Rng rng(derive_seed(options.seed, conn_index));
    std::uint64_t carried = 0;
    std::string chunk;
    while (!stopping.load()) {
      pollfd fds[2] = {{client.fd(), POLLIN, 0}, {upstream.fd(), POLLIN, 0}};
      const int rc = ::poll(fds, 2, kPollMs);
      if (rc < 0) return;
      if (rc == 0) continue;
      for (int side = 0; side < 2; ++side) {
        if ((fds[side].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
          continue;
        }
        Socket& from = side == 0 ? client : upstream;
        Socket& to = side == 0 ? upstream : client;
        chunk.clear();
        const IoStatus status = from.recv_some(chunk, 0.0);
        if (status == IoStatus::kTimeout) continue;
        if (status != IoStatus::kOk) return;
        if (!forward_chunk(to, chunk, rng, carried)) return;
      }
    }
  }

  void accept_loop() {
    while (!stopping.load()) {
      if (!wait_readable(listener.fd(), 0.05)) continue;
      Socket client = listener.accept();
      if (!client.valid()) continue;
      const std::size_t index = connections.fetch_add(1);
      const std::lock_guard<std::mutex> lock(threads_mutex);
      if (stopping.load()) return;
      pumps.emplace_back([this, index, c = std::move(client)]() mutable {
        pump(std::move(c), index);
      });
    }
  }
};

FaultProxy::FaultProxy(Options options)
    : impl_(std::make_unique<Impl>(std::move(options))) {
  impl_->acceptor = std::thread([impl = impl_.get()] {
    impl->accept_loop();
  });
}

FaultProxy::~FaultProxy() { stop(); }

std::uint16_t FaultProxy::port() const { return impl_->listener.port(); }

void FaultProxy::stop() {
  if (impl_->stopping.exchange(true)) return;
  if (impl_->acceptor.joinable()) impl_->acceptor.join();
  impl_->listener.close();
  std::vector<std::thread> pumps;
  {
    const std::lock_guard<std::mutex> lock(impl_->threads_mutex);
    pumps.swap(impl_->pumps);
  }
  for (auto& t : pumps) t.join();
}

FaultProxy::Counters FaultProxy::counters() const {
  return Counters{impl_->connections.load(), impl_->short_writes.load(),
                  impl_->delays.load(), impl_->disconnects.load()};
}

}  // namespace creditflow::util
