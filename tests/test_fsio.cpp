// Tests for the durable file primitives underneath the sweep farm —
// AppendFile's torn-tail detection/repair, atomic_write_file's
// all-or-nothing replace — and for the Backoff schedule every retry loop
// shares (deterministic under a pinned seed, capped, jitter-bounded).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "util/backoff.hpp"
#include "util/fsio.hpp"

namespace creditflow::util {
namespace {

std::filesystem::path scratch_dir(const std::string& name) {
  const auto dir =
      std::filesystem::path(::testing::TempDir()) / "creditflow_fsio" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

// ---- AppendFile ----------------------------------------------------------

TEST(AppendFile, AppendsNewlineTerminatedRecords) {
  const auto path = scratch_dir("append") / "log.jsonl";
  AppendFile log;
  log.open(path.string(), /*fsync_on_append=*/false);
  EXPECT_TRUE(log.is_open());
  EXPECT_FALSE(log.opened_mid_line());  // fresh file, nothing torn
  log.append_record("one");
  log.append_record("two");
  log.close();
  EXPECT_EQ(slurp(path), "one\ntwo\n");
}

TEST(AppendFile, ReopeningACleanFileAppendsAfterTheTail) {
  const auto path = scratch_dir("reopen") / "log.jsonl";
  {
    AppendFile log;
    log.open(path.string(), false);
    log.append_record("first");
  }
  AppendFile log;
  log.open(path.string(), false);
  EXPECT_FALSE(log.opened_mid_line());
  log.append_record("second");
  log.close();
  EXPECT_EQ(slurp(path), "first\nsecond\n");
}

TEST(AppendFile, TornTailIsDetectedAndRepairedByTheNextAppend) {
  const auto path = scratch_dir("torn") / "log.jsonl";
  // A writer killed mid-append leaves a line without its terminator.
  {
    std::ofstream out(path, std::ios::binary);
    out << "complete\npartia";  // no trailing '\n'
  }
  AppendFile log;
  log.open(path.string(), false);
  EXPECT_TRUE(log.opened_mid_line());
  log.append_record("next");
  log.close();
  // The repair newline isolates the torn fragment on its own line, so a
  // lenient line-oriented reader skips exactly one record.
  EXPECT_EQ(slurp(path), "complete\npartia\nnext\n");
}

TEST(AppendFile, FsyncModeStillWritesTheSameBytes) {
  const auto path = scratch_dir("fsync") / "log.jsonl";
  AppendFile log;
  log.open(path.string(), /*fsync_on_append=*/true);
  log.append_record("durable");
  log.close();
  EXPECT_EQ(slurp(path), "durable\n");
}

// ---- atomic_write_file ---------------------------------------------------

TEST(AtomicWriteFile, CreatesAndReplacesWholeFiles) {
  const auto dir = scratch_dir("atomic");
  const auto path = dir / "out.csv";
  ASSERT_TRUE(atomic_write_file(path.string(), "v1\n"));
  EXPECT_EQ(slurp(path), "v1\n");
  ASSERT_TRUE(atomic_write_file(path.string(), "v2 with more bytes\n"));
  EXPECT_EQ(slurp(path), "v2 with more bytes\n");
  // No temp-file litter: the rename consumed it (or failure unlinked it).
  std::size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST(AtomicWriteFile, FailureReportsFalseInsteadOfThrowing) {
  EXPECT_FALSE(atomic_write_file("/nonexistent-dir/nope/out.csv", "x"));
}

// ---- Backoff -------------------------------------------------------------

TEST(Backoff, SameSeedReplaysTheSameSchedule) {
  Backoff::Options options;
  options.seed = 42;
  Backoff a(options);
  Backoff b(options);
  for (int k = 0; k < 20; ++k) {
    EXPECT_DOUBLE_EQ(a.next(), b.next()) << k;
  }
}

TEST(Backoff, DelaysGrowExponentiallyUnderTheCapAndJitterBound) {
  Backoff::Options options;
  options.initial_seconds = 0.05;
  options.max_seconds = 1.0;
  options.jitter = 0.25;
  options.seed = 7;
  Backoff backoff(options);
  for (int k = 0; k < 30; ++k) {
    const double envelope = std::min(0.05 * std::pow(2.0, k), 1.0);
    const double delay = backoff.next();
    EXPECT_LE(delay, envelope) << k;            // jitter only shaves down
    EXPECT_GE(delay, envelope * 0.75 - 1e-12) << k;  // ...at most 25%
  }
  EXPECT_EQ(backoff.total(), 30u);
}

TEST(Backoff, ResetRestartsTheScheduleButKeepsTheLifetimeCount) {
  Backoff::Options options;
  options.jitter = 0.0;  // exact delays for this test
  Backoff backoff(options);
  EXPECT_DOUBLE_EQ(backoff.next(), 0.05);
  EXPECT_DOUBLE_EQ(backoff.next(), 0.10);
  backoff.reset();
  EXPECT_DOUBLE_EQ(backoff.next(), 0.05);  // back to the initial delay
  EXPECT_EQ(backoff.total(), 3u);          // ...but history is not erased
}

}  // namespace
}  // namespace creditflow::util
