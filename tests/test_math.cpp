// Tests for util/math: log-domain arithmetic, quadrature, limits, and the
// dense linear algebra used by the equilibrium solvers.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace creditflow::util {
namespace {

TEST(LogAddExp, MatchesDirectComputation) {
  EXPECT_NEAR(log_add_exp(std::log(2.0), std::log(3.0)), std::log(5.0),
              1e-12);
}

TEST(LogAddExp, HandlesNegInfinity) {
  EXPECT_DOUBLE_EQ(log_add_exp(kNegInf, 1.5), 1.5);
  EXPECT_DOUBLE_EQ(log_add_exp(1.5, kNegInf), 1.5);
  EXPECT_DOUBLE_EQ(log_add_exp(kNegInf, kNegInf), kNegInf);
}

TEST(LogAddExp, NoOverflowForLargeInputs) {
  const double big = 5000.0;
  EXPECT_NEAR(log_add_exp(big, big), big + std::log(2.0), 1e-9);
}

TEST(LogSumExp, SumsCorrectly) {
  const std::vector<double> xs = {std::log(1.0), std::log(2.0),
                                  std::log(3.0)};
  EXPECT_NEAR(log_sum_exp(xs), std::log(6.0), 1e-12);
}

TEST(LogSumExp, EmptyIsNegInf) {
  EXPECT_DOUBLE_EQ(log_sum_exp({}), kNegInf);
}

TEST(LogBinomial, SmallValuesExact) {
  EXPECT_NEAR(log_binomial(5, 2), std::log(10.0), 1e-12);
  EXPECT_NEAR(log_binomial(10, 0), 0.0, 1e-12);
  EXPECT_NEAR(log_binomial(10, 10), 0.0, 1e-12);
}

TEST(LogBinomialPmf, SumsToOne) {
  const std::uint64_t n = 30;
  const double p = 0.3;
  double total = 0.0;
  for (std::uint64_t k = 0; k <= n; ++k) {
    total += std::exp(log_binomial_pmf(n, k, p));
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(LogBinomialPmf, DegenerateP) {
  EXPECT_DOUBLE_EQ(log_binomial_pmf(5, 0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(log_binomial_pmf(5, 3, 0.0), kNegInf);
  EXPECT_DOUBLE_EQ(log_binomial_pmf(5, 5, 1.0), 0.0);
}

TEST(Linspace, EndpointsAndSpacing) {
  const auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
}

TEST(Integrate, PolynomialExact) {
  // ∫0..1 x^2 = 1/3.
  const double result =
      integrate([](double x) { return x * x; }, 0.0, 1.0, 1e-12);
  EXPECT_NEAR(result, 1.0 / 3.0, 1e-10);
}

TEST(Integrate, TranscendentalAccuracy) {
  const double result =
      integrate([](double x) { return std::exp(-x); }, 0.0, 5.0, 1e-12);
  EXPECT_NEAR(result, 1.0 - std::exp(-5.0), 1e-9);
}

TEST(Integrate, EmptyInterval) {
  EXPECT_DOUBLE_EQ(integrate([](double) { return 7.0; }, 2.0, 2.0), 0.0);
}

TEST(LimitFromBelow, ConvergentFunction) {
  // g(z) = 1/(2-z) -> 1 as z -> 1-.
  const auto r = limit_from_below([](double z) { return 1.0 / (2.0 - z); });
  EXPECT_FALSE(r.diverges);
  EXPECT_NEAR(r.value, 1.0, 1e-3);
}

TEST(LimitFromBelow, DivergentFunction) {
  // g(z) = 1/(1-z) blows up.
  const auto r = limit_from_below([](double z) { return 1.0 / (1.0 - z); });
  EXPECT_TRUE(r.diverges);
  EXPECT_TRUE(std::isinf(r.value));
}

TEST(LimitFromBelow, LogarithmicDivergenceDetected) {
  const auto r =
      limit_from_below([](double z) { return -std::log(1.0 - z); });
  EXPECT_TRUE(r.diverges);
}

TEST(Matrix, MultiplyIdentity) {
  Matrix id(3, 3);
  for (std::size_t i = 0; i < 3; ++i) id.at(i, i) = 1.0;
  const std::vector<double> x = {1.0, 2.0, 3.0};
  EXPECT_EQ(id.left_multiply(x), x);
  EXPECT_EQ(id.right_multiply(x), x);
}

TEST(Matrix, LeftMultiply) {
  Matrix m(2, 2);
  m.at(0, 0) = 1.0;
  m.at(0, 1) = 2.0;
  m.at(1, 0) = 3.0;
  m.at(1, 1) = 4.0;
  const std::vector<double> x = {1.0, 1.0};
  const auto y = m.left_multiply(x);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(Matrix, TransposedSwapsIndices) {
  Matrix m(2, 3);
  m.at(0, 2) = 5.0;
  const auto t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.at(2, 0), 5.0);
}

TEST(SolveLinear, KnownSystem) {
  Matrix a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  const auto x = solve_linear(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinear, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  const auto x = solve_linear(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinear, SingularThrows) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  EXPECT_THROW((void)solve_linear(a, {1.0, 2.0}), InvariantError);
}

TEST(StationaryFromStochastic, TwoStateChain) {
  // P = [[0.9, 0.1], [0.5, 0.5]] has stationary (5/6, 1/6).
  Matrix p(2, 2);
  p.at(0, 0) = 0.9;
  p.at(0, 1) = 0.1;
  p.at(1, 0) = 0.5;
  p.at(1, 1) = 0.5;
  const auto pi = stationary_from_stochastic(p);
  EXPECT_NEAR(pi[0], 5.0 / 6.0, 1e-10);
  EXPECT_NEAR(pi[1], 1.0 / 6.0, 1e-10);
}

TEST(StationaryFromStochastic, UniformForDoublyStochastic) {
  Matrix p(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) p.at(i, j) = 1.0 / 3.0;
  const auto pi = stationary_from_stochastic(p);
  for (double v : pi) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace creditflow::util
