// Tests for econ/gini, econ/lorenz, econ/wealth — the paper's condensation
// metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "econ/gini.hpp"
#include "econ/lorenz.hpp"
#include "econ/wealth.hpp"
#include "util/rng.hpp"

namespace creditflow::econ {
namespace {

TEST(Gini, PerfectEqualityIsZero) {
  const std::vector<double> w(100, 7.0);
  EXPECT_NEAR(gini(w), 0.0, 1e-12);
}

TEST(Gini, SingleOwnerApproachesOne) {
  std::vector<double> w(100, 0.0);
  w[42] = 1000.0;
  EXPECT_NEAR(gini(w), 0.99, 1e-9);  // (n-1)/n
}

TEST(Gini, KnownSmallSample) {
  // For {0, 1}: G = 1/2 exactly.
  const std::vector<double> w = {0.0, 1.0};
  EXPECT_NEAR(gini(w), 0.5, 1e-12);
}

TEST(Gini, ScaleInvariant) {
  util::Rng rng(3);
  std::vector<double> w(200);
  for (auto& x : w) x = rng.uniform(0.0, 10.0);
  std::vector<double> scaled = w;
  for (auto& x : scaled) x *= 123.0;
  EXPECT_NEAR(gini(w), gini(scaled), 1e-12);
}

TEST(Gini, UniformSampleNearOneThird) {
  // Uniform(0,1) has Gini 1/3.
  util::Rng rng(7);
  std::vector<double> w(200000);
  for (auto& x : w) x = rng.uniform();
  EXPECT_NEAR(gini(w), 1.0 / 3.0, 0.01);
}

TEST(Gini, ExponentialSampleNearHalf) {
  util::Rng rng(11);
  std::vector<double> w(200000);
  for (auto& x : w) x = rng.exponential(1.0);
  EXPECT_NEAR(gini(w), 0.5, 0.01);
}

TEST(Gini, RejectsNegativeOrZeroTotal) {
  const std::vector<double> neg = {1.0, -1.0};
  EXPECT_THROW((void)gini(neg), util::PreconditionError);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW((void)gini(zeros), util::PreconditionError);
}

TEST(GiniFromPmf, DegenerateDistributionIsZero) {
  std::vector<double> pmf(11, 0.0);
  pmf[10] = 1.0;  // everyone has exactly 10
  EXPECT_NEAR(gini_from_pmf(pmf), 0.0, 1e-12);
}

TEST(GiniFromPmf, GeometricMatchesClosedForm) {
  // Geometric on {0,1,...} with parameter q has Gini 1/(1+q)... derived:
  // G = q/(1+q) wait — E|X-Y|/(2μ) with μ=q/(1-q) gives 1/(1+q).
  const double q = 0.8;
  std::vector<double> pmf(400);
  for (std::size_t b = 0; b < pmf.size(); ++b) {
    pmf[b] = (1.0 - q) * std::pow(q, static_cast<double>(b));
  }
  EXPECT_NEAR(gini_from_pmf(pmf), 1.0 / (1.0 + q), 1e-6);
}

TEST(GiniFromPmf, MatchesSampleGini) {
  // PMF {0: .5, 10: .5} -> i.i.d. sample Gini -> E|X-Y|/(2μ) = .5*10/(2*5)
  // = 0.5.
  std::vector<double> pmf(11, 0.0);
  pmf[0] = 0.5;
  pmf[10] = 0.5;
  EXPECT_NEAR(gini_from_pmf(pmf), 0.5, 1e-12);
}

TEST(GiniFromPmf, UnnormalizedPmfAccepted) {
  std::vector<double> pmf = {1.0, 0.0, 3.0};  // mass 4
  std::vector<double> normalized = {0.25, 0.0, 0.75};
  EXPECT_NEAR(gini_from_pmf(pmf), gini_from_pmf(normalized), 1e-12);
}

TEST(Lorenz, EqualityCurveIsDiagonal) {
  const std::vector<double> w(10, 2.0);
  const auto curve = lorenz_from_samples(w);
  for (std::size_t k = 0; k < curve.size(); ++k) {
    EXPECT_NEAR(curve.wealth_share[k], curve.population_share[k], 1e-12);
  }
  EXPECT_NEAR(gini_from_lorenz(curve), 0.0, 1e-12);
}

TEST(Lorenz, CurveIsMonotoneAndBelowDiagonal) {
  util::Rng rng(13);
  std::vector<double> w(500);
  for (auto& x : w) x = rng.exponential(0.5);
  const auto curve = lorenz_from_samples(w);
  double prev = 0.0;
  for (std::size_t k = 0; k < curve.size(); ++k) {
    EXPECT_GE(curve.wealth_share[k] + 1e-12, prev);
    EXPECT_LE(curve.wealth_share[k], curve.population_share[k] + 1e-9);
    prev = curve.wealth_share[k];
  }
  EXPECT_DOUBLE_EQ(curve.wealth_share.back(), 1.0);
  EXPECT_DOUBLE_EQ(curve.population_share.back(), 1.0);
}

TEST(Lorenz, GiniFromLorenzMatchesDirect) {
  util::Rng rng(17);
  std::vector<double> w(2000);
  for (auto& x : w) x = rng.exponential(1.0);
  const auto curve = lorenz_from_samples(w);
  EXPECT_NEAR(gini_from_lorenz(curve), gini(w), 1e-3);
}

TEST(Lorenz, ShareAtInterpolates) {
  const std::vector<double> w = {1.0, 1.0, 2.0};  // total 4
  const auto curve = lorenz_from_samples(w);
  EXPECT_NEAR(curve.share_at(0.0), 0.0, 1e-12);
  EXPECT_NEAR(curve.share_at(1.0), 1.0, 1e-12);
  // Bottom 2/3 of peers hold 2/4 = 0.5.
  EXPECT_NEAR(curve.share_at(2.0 / 3.0), 0.5, 1e-9);
}

TEST(Lorenz, FromPmfMatchesLargeSample) {
  // Binomial-ish PMF via direct enumeration vs sampled wealth.
  std::vector<double> pmf = {0.25, 0.5, 0.25};  // values 0,1,2; mean 1
  const auto curve = lorenz_from_pmf(pmf);
  EXPECT_NEAR(gini_from_lorenz(curve), gini_from_pmf(pmf), 1e-9);
}

TEST(Lorenz, RejectsZeroMean) {
  std::vector<double> pmf = {1.0};  // all mass at value 0
  EXPECT_THROW((void)lorenz_from_pmf(pmf), util::PreconditionError);
}

TEST(Wealth, SummaryFields) {
  const std::vector<double> w = {0.0, 0.0, 1.0, 3.0, 6.0};
  const auto s = summarize_wealth(w);
  EXPECT_DOUBLE_EQ(s.total, 10.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_DOUBLE_EQ(s.bankrupt_fraction, 0.4);
  EXPECT_GT(s.gini, 0.4);
  EXPECT_DOUBLE_EQ(s.top10_share, 0.6);  // top 1 of 5 holds 6/10
}

TEST(Wealth, AllBankruptIsReportedNotRejected) {
  const std::vector<double> w(5, 0.0);
  const auto s = summarize_wealth(w);
  EXPECT_DOUBLE_EQ(s.bankrupt_fraction, 1.0);
  EXPECT_DOUBLE_EQ(s.gini, 0.0);
}

TEST(Wealth, TopShare) {
  const std::vector<double> w = {1.0, 1.0, 1.0, 1.0, 6.0};
  EXPECT_DOUBLE_EQ(top_share(w, 0.2), 0.6);
  EXPECT_DOUBLE_EQ(top_share(w, 1.0), 1.0);
}

TEST(Wealth, FractionBelow) {
  const std::vector<double> w = {0.0, 1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(fraction_below(w, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(fraction_below(w, 0.5), 0.25);
}

TEST(Wealth, SortedAscending) {
  const std::vector<double> w = {3.0, 1.0, 2.0};
  const auto s = sorted_ascending(w);
  EXPECT_EQ(s, (std::vector<double>{1.0, 2.0, 3.0}));
}

}  // namespace
}  // namespace creditflow::econ
