// Market-level property tests: across a grid of configurations (endowment,
// pricing scheme, population, policies) the market must preserve its core
// invariants — credit conservation, bounded metrics, determinism, and
// economically sane behaviour.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "core/market.hpp"
#include "econ/gini.hpp"

namespace creditflow::core {
namespace {

struct GridPoint {
  std::uint64_t credits;
  econ::PricingKind pricing;
  bool dynamic_spending;
  bool tax;
  bool churn;
};

class MarketProperty : public ::testing::TestWithParam<GridPoint> {};

MarketConfig config_for(const GridPoint& g) {
  MarketConfig cfg;
  cfg.protocol.initial_peers = 64;
  cfg.protocol.max_peers = g.churn ? 160 : 64;
  cfg.protocol.initial_credits = g.credits;
  cfg.protocol.seed = 1234;
  cfg.protocol.pricing.kind = g.pricing;
  cfg.protocol.pricing.poisson_mean = 1.0;
  cfg.protocol.spending.dynamic = g.dynamic_spending;
  cfg.protocol.spending.dynamic_threshold =
      static_cast<double>(g.credits);
  cfg.protocol.tax.enabled = g.tax;
  cfg.protocol.tax.rate = 0.15;
  cfg.protocol.tax.threshold = 0.8 * static_cast<double>(g.credits);
  cfg.protocol.churn.enabled = g.churn;
  cfg.protocol.churn.arrival_rate = 0.3;
  cfg.protocol.churn.mean_lifespan = 150.0;
  cfg.horizon = 250.0;
  cfg.snapshot_interval = 25.0;
  return cfg;
}

TEST_P(MarketProperty, InvariantsHold) {
  const auto& g = GetParam();
  CreditMarket market(config_for(g));
  const auto report = market.run();

  // 1. Ledger conservation (checked at every snapshot too, via the audit).
  EXPECT_TRUE(report.ledger_conserved);

  // 2. In a closed market the circulating supply is exactly N*c; with tax
  //    enabled the treasury may temporarily hold part of it.
  if (!g.churn) {
    const auto total = static_cast<double>(64 * g.credits);
    const double circulating = std::accumulate(
        report.final_balances.begin(), report.final_balances.end(), 0.0);
    EXPECT_LE(circulating, total + 1e-9);
    if (!g.tax) {
      EXPECT_NEAR(circulating, total, 1e-9);
    }
  }

  // 3. Gini metrics live in [0, 1).
  for (std::size_t i = 0; i < report.gini_balances.size(); ++i) {
    EXPECT_GE(report.gini_balances.value_at(i), 0.0);
    EXPECT_LT(report.gini_balances.value_at(i), 1.0);
  }

  // 4. Trade happened and rates are bounded by the protocol's physics:
  //    nobody can download faster than stream_rate + backlog catch-up,
  //    i.e. window/round worth of chunks per second.
  EXPECT_GT(report.transactions, 0u);
  for (double r : report.final_download_rates) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 48.0 + 2.0);
  }

  // 5. Buffer fill is a fraction.
  for (std::size_t i = 0; i < report.mean_buffer_fill.size(); ++i) {
    EXPECT_GE(report.mean_buffer_fill.value_at(i), 0.0);
    EXPECT_LE(report.mean_buffer_fill.value_at(i), 1.0);
  }

  // 6. Tax bookkeeping is consistent.
  EXPECT_GE(report.tax_collected, report.tax_redistributed);
  if (!g.tax) {
    EXPECT_EQ(report.tax_collected, 0u);
  }

  // 7. Determinism: the same config reruns identically.
  CreditMarket twin(config_for(g));
  const auto rerun = twin.run();
  EXPECT_EQ(rerun.transactions, report.transactions);
  EXPECT_EQ(rerun.final_balances, report.final_balances);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MarketProperty,
    ::testing::Values(
        GridPoint{10, econ::PricingKind::kUniform, false, false, false},
        GridPoint{50, econ::PricingKind::kUniform, false, false, false},
        GridPoint{200, econ::PricingKind::kUniform, false, false, false},
        GridPoint{50, econ::PricingKind::kPoisson, false, false, false},
        GridPoint{50, econ::PricingKind::kPerSeller, false, false, false},
        GridPoint{50, econ::PricingKind::kLinearSize, false, false, false},
        GridPoint{50, econ::PricingKind::kUniform, true, false, false},
        GridPoint{50, econ::PricingKind::kUniform, false, true, false},
        GridPoint{50, econ::PricingKind::kUniform, false, false, true},
        GridPoint{50, econ::PricingKind::kPoisson, true, true, false},
        GridPoint{100, econ::PricingKind::kUniform, true, true, true}));

// Pricing scheme changes the volume/transaction ratio in the expected way:
// mean price ~1 for uniform(1) and poisson(1), ~2 for per-seller [1,3].
TEST(MarketPricingProperty, VolumeTracksMeanPrice) {
  auto run_with = [](econ::PricingKind kind) {
    GridPoint g{50, kind, false, false, false};
    CreditMarket market(config_for(g));
    const auto report = market.run();
    return static_cast<double>(report.volume) /
           static_cast<double>(report.transactions);
  };
  EXPECT_NEAR(run_with(econ::PricingKind::kUniform), 1.0, 1e-9);
  // Poisson(1) conditioned on affordable purchases: mean near 1.
  EXPECT_NEAR(run_with(econ::PricingKind::kPoisson), 1.0, 0.25);
  EXPECT_NEAR(run_with(econ::PricingKind::kPerSeller), 2.0, 0.35);
}

// Churn invariant: minted = initial + arrivals*c; burned = departures' takes.
TEST(MarketChurnProperty, MintBurnAccounting) {
  GridPoint g{30, econ::PricingKind::kUniform, false, false, true};
  CreditMarket market(config_for(g));
  const auto report = market.run();
  const auto& ledger = market.protocol().ledger();
  EXPECT_EQ(ledger.total_minted(),
            (64 + report.churn_arrivals) * 30);
  EXPECT_TRUE(ledger.audit());
}

}  // namespace
}  // namespace creditflow::core
