// Tests for econ/pricing and econ/taxation.
#include <gtest/gtest.h>

#include <cmath>

#include "econ/pricing.hpp"
#include "util/assert.hpp"
#include "econ/taxation.hpp"

namespace creditflow::econ {
namespace {

TEST(UniformPricing, FlatEverywhere) {
  UniformPricing p(3);
  EXPECT_EQ(p.price(0, 0), 3u);
  EXPECT_EQ(p.price(99, 12345), 3u);
  EXPECT_DOUBLE_EQ(p.mean_price(), 3.0);
}

TEST(UniformPricing, RejectsZeroPrice) {
  EXPECT_THROW(UniformPricing(0), util::PreconditionError);
}

TEST(PoissonPricing, DeterministicPerPair) {
  PoissonPricing p(1.0);
  EXPECT_EQ(p.price(4, 77), p.price(4, 77));
  EXPECT_EQ(p.price(9, 1), p.price(9, 1));
}

TEST(PoissonPricing, EmpiricalMeanMatches) {
  PoissonPricing p(1.0);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(
        p.price(static_cast<std::uint32_t>(i % 500),
                static_cast<std::uint64_t>(i)));
  }
  EXPECT_NEAR(sum / n, 1.0, 0.02);
  EXPECT_DOUBLE_EQ(p.mean_price(), 1.0);
}

TEST(PoissonPricing, ZeroPricesOccurWithoutFloor) {
  PoissonPricing p(1.0);
  int zeros = 0;
  for (int i = 0; i < 2000; ++i) {
    if (p.price(1, static_cast<std::uint64_t>(i)) == 0) ++zeros;
  }
  // P(X=0) = e^-1 ~ 0.37.
  EXPECT_GT(zeros, 500);
  EXPECT_LT(zeros, 1000);
}

TEST(PoissonPricing, FloorRespected) {
  PoissonPricing p(1.0, /*min_price=*/1);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(p.price(2, static_cast<std::uint64_t>(i)), 1u);
  }
  EXPECT_GT(p.mean_price(), 1.0);  // flooring raises the mean above 1
}

TEST(PerSellerPricing, StablePerSellerVariedAcross) {
  PerSellerPricing p(1, 5);
  const auto first = p.price(3, 0);
  for (int c = 1; c < 50; ++c) {
    EXPECT_EQ(p.price(3, static_cast<std::uint64_t>(c)), first);
  }
  bool varied = false;
  for (std::uint32_t s = 0; s < 50 && !varied; ++s) {
    varied = p.price(s, 0) != first;
  }
  EXPECT_TRUE(varied);
  EXPECT_DOUBLE_EQ(p.mean_price(), 3.0);
}

TEST(LinearSizePricing, WithinLinearRange) {
  LinearSizePricing p(2, 3, 4);
  for (int c = 0; c < 200; ++c) {
    const auto v = p.price(0, static_cast<std::uint64_t>(c));
    EXPECT_GE(v, 2u);
    EXPECT_LE(v, 2u + 3u * 3u);
    // All sellers agree on a chunk's size-derived price.
    EXPECT_EQ(p.price(7, static_cast<std::uint64_t>(c)), v);
  }
}

TEST(MakePricing, DispatchesAllKinds) {
  PricingParams params;
  params.kind = PricingKind::kUniform;
  EXPECT_NE(make_pricing(params), nullptr);
  params.kind = PricingKind::kPoisson;
  EXPECT_NE(make_pricing(params), nullptr);
  params.kind = PricingKind::kPerSeller;
  EXPECT_NE(make_pricing(params), nullptr);
  params.kind = PricingKind::kLinearSize;
  EXPECT_NE(make_pricing(params), nullptr);
}

TEST(Taxation, DisabledCollectsNothing) {
  TaxationEngine tax(TaxPolicy{});
  EXPECT_EQ(tax.on_income(1, 100, 1000), 0u);
  EXPECT_EQ(tax.treasury(), 0u);
}

TEST(Taxation, BelowThresholdUntaxed) {
  TaxPolicy policy{true, 0.2, 50.0};
  TaxationEngine tax(policy);
  EXPECT_EQ(tax.on_income(1, 10, 40), 0u);  // wealth 40 <= 50
  EXPECT_EQ(tax.treasury(), 0u);
}

TEST(Taxation, CollectsProportionOfIncome) {
  TaxPolicy policy{true, 0.5, 10.0};
  TaxationEngine tax(policy);
  // Income 4, rate 0.5 -> 2 units collected immediately.
  EXPECT_EQ(tax.on_income(1, 4, 100), 2u);
  EXPECT_EQ(tax.treasury(), 2u);
  EXPECT_EQ(tax.total_collected(), 2u);
}

TEST(Taxation, FractionalLiabilityAccrues) {
  TaxPolicy policy{true, 0.1, 0.0};
  TaxationEngine tax(policy);
  std::uint64_t collected = 0;
  for (int i = 0; i < 10; ++i) {
    collected += tax.on_income(7, 1, 1000);  // 0.1 per sale
  }
  EXPECT_EQ(collected, 1u);  // 10 * 0.1 = 1 whole credit
}

TEST(Taxation, FractionalDebtIsPerPeer) {
  TaxPolicy policy{true, 0.5, 0.0};
  TaxationEngine tax(policy);
  EXPECT_EQ(tax.on_income(1, 1, 100), 0u);  // 0.5 accrued for peer 1
  EXPECT_EQ(tax.on_income(2, 1, 100), 0u);  // 0.5 accrued for peer 2
  EXPECT_EQ(tax.on_income(1, 1, 100), 1u);  // peer 1 reaches 1.0
  EXPECT_EQ(tax.on_income(2, 1, 100), 1u);
}

TEST(Taxation, RedistributionWhenTreasuryFull) {
  TaxPolicy policy{true, 0.5, 0.0};
  TaxationEngine tax(policy);
  (void)tax.on_income(1, 20, 100);  // 10 collected
  EXPECT_FALSE(tax.try_redistribute(11));
  EXPECT_TRUE(tax.try_redistribute(10));
  EXPECT_EQ(tax.treasury(), 0u);
  EXPECT_EQ(tax.total_redistributed(), 10u);
}

TEST(Taxation, CollectionCappedByBalance) {
  TaxPolicy policy{true, 0.9, 0.0};
  TaxationEngine tax(policy);
  // Income 100 at rate 0.9 would be 90, but the peer only holds 5 now.
  EXPECT_EQ(tax.on_income(1, 100, 5), 5u);
}

TEST(Taxation, ForgetPeerDropsDebt) {
  TaxPolicy policy{true, 0.5, 0.0};
  TaxationEngine tax(policy);
  (void)tax.on_income(1, 1, 100);  // 0.5 accrued
  tax.forget_peer(1);
  EXPECT_EQ(tax.on_income(1, 1, 100), 0u);  // starts at 0.5 again
}

TEST(Taxation, RejectsInvalidPolicy) {
  EXPECT_THROW(TaxationEngine(TaxPolicy{true, 1.5, 0.0}),
               util::PreconditionError);
  EXPECT_THROW(TaxationEngine(TaxPolicy{true, -0.1, 0.0}),
               util::PreconditionError);
}

}  // namespace
}  // namespace creditflow::econ
