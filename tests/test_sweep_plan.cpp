// Tests for the sweep execution API v2: SweepPlan run keys and shard
// partitions, the run-record format, the RunStore cache (including the
// only-compute-the-new-grid-points contract, asserted by counting executor
// invocations), shard-and-merge byte-identical output, and SweepAxis::parse
// input validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <thread>

#include "scenario/scenario.hpp"

namespace creditflow::scenario {
namespace {

ScenarioSpec tiny_base() {
  ScenarioSpec spec;
  spec.name = "tiny";
  spec.config.protocol.initial_peers = 40;
  spec.config.protocol.max_peers = 40;
  spec.config.protocol.initial_credits = 30;
  spec.config.protocol.seed = 2012;
  spec.config.horizon = 60.0;
  spec.config.snapshot_interval = 15.0;
  return spec;
}

SweepSpec tiny_sweep() {
  SweepSpec sweep;
  sweep.axes.push_back(SweepAxis::parse("credits=20,40"));
  sweep.axes.push_back(SweepAxis::parse("tax.rate=0,0.2"));
  sweep.seeds = 2;
  return sweep;
}

/// A fresh (pre-cleaned) per-test scratch directory.
std::filesystem::path scratch_dir(const std::string& name) {
  const auto dir =
      std::filesystem::path(::testing::TempDir()) / "creditflow_test" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Executor decorator that records which run indices were computed.
class CountingExecutor final : public Executor {
 public:
  std::vector<RunResult> execute(const SweepPlan& plan,
                                 std::span<const std::size_t> run_indices,
                                 const ExecuteOptions& options) override {
    executed_.insert(executed_.end(), run_indices.begin(),
                     run_indices.end());
    return inner_.execute(plan, run_indices, options);
  }

  [[nodiscard]] const std::vector<std::size_t>& executed() const {
    return executed_;
  }
  void reset() { executed_.clear(); }

 private:
  ThreadPoolExecutor inner_;
  std::vector<std::size_t> executed_;
};

// ---- SweepAxis::parse input validation -----------------------------------

TEST(SweepAxisParse, RejectsMalformedInputs) {
  // No key=value shape at all.
  EXPECT_THROW((void)SweepAxis::parse("credits"), util::PreconditionError);
  // Empty value list.
  EXPECT_THROW((void)SweepAxis::parse("credits="), util::PreconditionError);
  // Reversed range.
  EXPECT_THROW((void)SweepAxis::parse("credits=100:50:10"),
               util::PreconditionError);
  // Zero and negative step.
  EXPECT_THROW((void)SweepAxis::parse("credits=1:5:0"),
               util::PreconditionError);
  EXPECT_THROW((void)SweepAxis::parse("credits=1:5:-1"),
               util::PreconditionError);
  // Unknown parameter key.
  EXPECT_THROW((void)SweepAxis::parse("no_such_param=1,2"),
               util::PreconditionError);
  // Garbage numbers, including an empty list element.
  EXPECT_THROW((void)SweepAxis::parse("credits=abc"),
               util::PreconditionError);
  EXPECT_THROW((void)SweepAxis::parse("credits=1,,2"),
               util::PreconditionError);
  EXPECT_THROW((void)SweepAxis::parse("credits=1:xyz"),
               util::PreconditionError);
}

TEST(SweepAxisParse, AcceptsTheDocumentedForms) {
  EXPECT_EQ(SweepAxis::parse("credits=7").values,
            (std::vector<double>{7.0}));
  EXPECT_EQ(SweepAxis::parse("credits=1,2,3").values,
            (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(SweepAxis::parse("credits=10:30:10").values,
            (std::vector<double>{10.0, 20.0, 30.0}));
  // Degenerate-but-valid range: lo == hi.
  EXPECT_EQ(SweepAxis::parse("credits=5:5:1").values,
            (std::vector<double>{5.0}));
}

// ---- RunKey --------------------------------------------------------------

TEST(RunKey, HexRoundTrips) {
  const RunKey key{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(key.hex(), "0123456789abcdeffedcba9876543210");
  const auto back = RunKey::from_hex(key.hex());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, key);

  EXPECT_FALSE(RunKey::from_hex("too short").has_value());
  EXPECT_FALSE(
      RunKey::from_hex("0123456789abcdeffedcba987654321g").has_value());
}

TEST(RunKey, SurvivesSpecSerializationRoundTrip) {
  // The cross-process stability contract: a key derived from a spec that
  // went through serialize() → parse() → serialize() is unchanged, because
  // the text form round-trips bit-exactly.
  const SweepPlan plan(tiny_base(), tiny_sweep());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const ScenarioSpec inst = plan.spec(i);
    const ScenarioSpec reparsed = ScenarioSpec::parse(inst.serialize());
    EXPECT_EQ(RunKey::of(inst.serialize(), i),
              RunKey::of(reparsed.serialize(), i));
    EXPECT_EQ(plan.key(i), RunKey::of(reparsed.serialize(), i));
  }
}

TEST(RunKey, DistinctAcrossRunsAndSensitiveToEveryInput) {
  const SweepPlan plan(tiny_base(), tiny_sweep());
  std::set<std::string> keys;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    keys.insert(plan.key(i).hex());
  }
  EXPECT_EQ(keys.size(), plan.size());

  // Same text, different index → different key; different text, same
  // index → different key.
  const std::string text = plan.spec(0).serialize();
  EXPECT_NE(RunKey::of(text, 0), RunKey::of(text, 1));
  EXPECT_NE(RunKey::of(text, 0), RunKey::of(text + " ", 0));
}

// ---- SweepPlan -----------------------------------------------------------

TEST(SweepPlan, ShardsPartitionTheRunList) {
  const SweepPlan plan(tiny_base(), tiny_sweep());
  ASSERT_EQ(plan.size(), 8u);

  for (const std::size_t n : {1u, 2u, 3u, 8u, 11u}) {
    std::vector<std::size_t> combined;
    for (std::size_t i = 0; i < n; ++i) {
      const auto part = plan.shard(i, n);
      // Strided partition: every member of shard i is ≡ i (mod n).
      for (const std::size_t run : part) EXPECT_EQ(run % n, i);
      combined.insert(combined.end(), part.begin(), part.end());
    }
    std::sort(combined.begin(), combined.end());
    EXPECT_EQ(combined, plan.all_runs()) << n << " shards";
  }

  EXPECT_THROW((void)plan.shard(2, 2), util::PreconditionError);
}

TEST(SweepPlan, LabelledResultCarriesPlanMetadata) {
  const SweepPlan plan(tiny_base(), tiny_sweep());
  const RunResult r = plan.labelled_result(5);
  EXPECT_EQ(r.run_index, 5u);
  EXPECT_EQ(r.point_index, 2u);
  EXPECT_EQ(r.seed_index, 1u);
  ASSERT_EQ(r.params.size(), 2u);
  EXPECT_EQ(r.params[0].first, "credits");
  EXPECT_EQ(r.params[0].second, 40.0);
  EXPECT_EQ(r.params[1].first, "tax.rate");
  EXPECT_EQ(r.params[1].second, 0.0);
  EXPECT_TRUE(r.metrics.empty());
  EXPECT_TRUE(r.error.empty());

  // The instantiated spec reflects the same grid point, with the per-run
  // derived seed.
  const ScenarioSpec spec = plan.spec(5);
  EXPECT_EQ(spec.get("credits"), 40.0);
  EXPECT_EQ(spec.get("tax.rate"), 0.0);
  EXPECT_EQ(spec.config.protocol.seed,
            util::derive_seed(tiny_base().config.protocol.seed, 5));
}

// ---- Run records ---------------------------------------------------------

TEST(RunRecord, SerializeParseRoundTrip) {
  RunResult r;
  r.run_index = 3;
  r.point_index = 1;
  r.seed_index = 1;
  r.seed = 0xdeadbeefcafe1234ULL;
  r.params = {{"credits", 20.0}, {"tax.rate", 0.2}};
  r.metrics = {{"converged_gini", 0.12345678901234567},
               {"gini_windowed_spend",
                std::numeric_limits<double>::quiet_NaN()},
               {"transactions", 155347.0}};
  r.telemetry.wall_seconds = 0.125;
  r.telemetry.purchase_phase_seconds = 0.0625;
  r.telemetry.rounds = 200;

  const RunKey key{1, 2};
  const RunRecord back = parse_run_record(serialize_run_record(key, r));
  EXPECT_EQ(back.key, key);
  EXPECT_EQ(back.result.run_index, r.run_index);
  EXPECT_EQ(back.result.point_index, r.point_index);
  EXPECT_EQ(back.result.seed_index, r.seed_index);
  EXPECT_EQ(back.result.seed, r.seed);
  EXPECT_EQ(back.result.params, r.params);
  ASSERT_EQ(back.result.metrics.size(), r.metrics.size());
  for (std::size_t k = 0; k < r.metrics.size(); ++k) {
    EXPECT_EQ(back.result.metrics[k].first, r.metrics[k].first);
    const double a = r.metrics[k].second;
    const double b = back.result.metrics[k].second;
    if (std::isnan(a)) {
      EXPECT_TRUE(std::isnan(b));
    } else {
      EXPECT_EQ(a, b);  // bit-exact through the text form
    }
  }
  EXPECT_EQ(back.result.telemetry.wall_seconds, r.telemetry.wall_seconds);
  EXPECT_EQ(back.result.telemetry.purchase_phase_seconds,
            r.telemetry.purchase_phase_seconds);
  EXPECT_EQ(back.result.telemetry.rounds, r.telemetry.rounds);
  EXPECT_TRUE(back.result.error.empty());
}

TEST(RunRecord, ErrorStringsSurviveEscaping) {
  RunResult r;
  r.error = "bad \"config\": peers < 2\n\ttab and \\ backslash \x01";
  const RunRecord back = parse_run_record(serialize_run_record(RunKey{}, r));
  EXPECT_EQ(back.result.error, r.error);
}

TEST(RunRecord, ParseRejectsGarbage) {
  EXPECT_THROW((void)parse_run_record("not json"), util::PreconditionError);
  EXPECT_THROW((void)parse_run_record("{\"key\":\"zz\"}"),
               util::PreconditionError);
  EXPECT_THROW((void)parse_run_record("{\"unknown_field\":1}"),
               util::PreconditionError);
  EXPECT_THROW((void)read_run_records("/no/such/file.jsonl"),
               util::PreconditionError);
}

// ---- RunStore ------------------------------------------------------------

TEST(RunStore, PersistsAcrossInstances) {
  const auto dir = scratch_dir("store_persist");

  RunResult r;
  r.run_index = 0;
  r.seed = 42;
  r.metrics = {{"m", 1.5}};
  r.telemetry.rounds = 10;
  const RunKey key{7, 9};
  {
    RunStore store(dir.string());
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(store.find(key), nullptr);
    store.put(key, r);
    EXPECT_EQ(store.size(), 1u);
    store.put(key, r);  // duplicate put is a no-op
    EXPECT_EQ(store.size(), 1u);
  }
  {
    RunStore store(dir.string());  // fresh instance, same directory
    EXPECT_EQ(store.size(), 1u);
    const RunResult* found = store.find(key);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->seed, 42u);
    ASSERT_EQ(found->metrics.size(), 1u);
    EXPECT_EQ(found->metrics[0].second, 1.5);
    EXPECT_EQ(found->telemetry.rounds, 10u);
  }
}

TEST(RunStore, NeverStoresErroredRuns) {
  const auto dir = scratch_dir("store_errors");
  RunStore store(dir.string());
  RunResult failed;
  failed.error = "boom";
  store.put(RunKey{1, 1}, failed);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.find(RunKey{1, 1}), nullptr);
}

// ---- RunStore robustness -------------------------------------------------

/// A minimal valid stored run for robustness tests.
RunResult small_result(std::size_t run_index, double metric) {
  RunResult r;
  r.run_index = run_index;
  r.seed = 1000 + run_index;
  r.metrics = {{"m", metric}};
  r.telemetry.rounds = 5;
  return r;
}

TEST(RunStoreRobustness, TruncatedTrailingLineIsSkippedAndRepaired) {
  const auto dir = scratch_dir("store_truncated");
  std::string path;
  {
    RunStore store(dir.string());
    store.put(RunKey{1, 1}, small_result(0, 0.5));
    store.put(RunKey{2, 2}, small_result(1, 0.75));
    path = store.path();
  }

  // Simulate a writer killed mid-append: chop the final record in half,
  // leaving no trailing newline.
  {
    std::ifstream in(path);
    std::string intact;
    std::string doomed;
    ASSERT_TRUE(std::getline(in, intact));
    ASSERT_TRUE(std::getline(in, doomed));
    std::ofstream out(path, std::ios::trunc);
    out << intact << "\n" << doomed.substr(0, doomed.size() / 2);
  }

  // Loading must not crash and must not surface the torn record.
  RunStore store(dir.string());
  EXPECT_EQ(store.size(), 1u);
  EXPECT_NE(store.find(RunKey{1, 1}), nullptr);
  EXPECT_EQ(store.find(RunKey{2, 2}), nullptr);

  // The next append must start on a fresh line — never fuse with the torn
  // tail — so a reload sees both the survivor and the new record.
  store.put(RunKey{3, 3}, small_result(2, 0.25));
  RunStore reloaded(dir.string());
  EXPECT_EQ(reloaded.size(), 2u);
  EXPECT_NE(reloaded.find(RunKey{1, 1}), nullptr);
  const RunResult* fresh = reloaded.find(RunKey{3, 3});
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->metrics.at(0).second, 0.25);
}

TEST(RunStoreRobustness, CorruptedLinesNeverCrashOrDoubleCount) {
  const auto dir = scratch_dir("store_corrupt");
  std::string path;
  {
    RunStore store(dir.string());
    store.put(RunKey{1, 1}, small_result(0, 0.5));
    path = store.path();
  }
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"key\":\"zz\"}\n";             // malformed key
    out << "complete garbage, not json\n";   // not a record at all
    // The same valid record twice (a torn concurrent write): must load
    // exactly once.
    const std::string dup =
        serialize_run_record(RunKey{4, 4}, small_result(3, 0.125));
    out << dup << "\n" << dup << "\n";
  }
  RunStore store(dir.string());
  EXPECT_EQ(store.size(), 2u);
  EXPECT_NE(store.find(RunKey{1, 1}), nullptr);
  EXPECT_NE(store.find(RunKey{4, 4}), nullptr);
}

TEST(RunStoreRobustness, ConcurrentAppendFromTwoExecutors) {
  // Two executors sharing one store directory — each holds its own
  // RunStore over the same runs.jsonl and appends concurrently. Every
  // record must survive intact (single-write appends interleave at line
  // boundaries), keys written by both sides must not double-count, and a
  // fresh load must parse the whole file without a complaint.
  const auto dir = scratch_dir("store_concurrent");
  constexpr std::size_t kPerWriter = 200;
  constexpr std::size_t kOverlap = 50;  // keys both writers race to claim

  auto writer = [&](std::uint64_t salt, std::size_t first_key) {
    RunStore store(dir.string());
    for (std::size_t k = 0; k < kPerWriter; ++k) {
      const std::uint64_t key_id = first_key + k;
      store.put(RunKey{key_id, key_id},
                small_result(key_id, static_cast<double>(key_id)));
      (void)salt;
    }
  };
  std::thread a(writer, 1, 0);
  std::thread b(writer, 2, kPerWriter - kOverlap);
  a.join();
  b.join();

  RunStore merged(dir.string());
  const std::size_t distinct = 2 * kPerWriter - kOverlap;
  EXPECT_EQ(merged.size(), distinct);
  for (std::size_t key_id = 0; key_id < distinct; ++key_id) {
    const RunResult* found = merged.find(RunKey{key_id, key_id});
    ASSERT_NE(found, nullptr) << "key " << key_id;
    EXPECT_EQ(found->metrics.at(0).second, static_cast<double>(key_id));
  }
}

// ---- SweepSpec text round-trip -------------------------------------------

TEST(SweepSpecSerialize, RoundTripsBitExactly) {
  SweepSpec sweep;
  sweep.axes.push_back(SweepAxis::parse("credits=20,40"));
  sweep.axes.push_back(SweepAxis::parse("tax.rate=0.05:0.2:0.05"));
  sweep.axes.push_back(SweepAxis::parse("spend_cv=0.30000000000000004"));
  sweep.seeds = 7;

  const SweepSpec back = SweepSpec::parse(sweep.serialize());
  EXPECT_EQ(back.seeds, sweep.seeds);
  ASSERT_EQ(back.axes.size(), sweep.axes.size());
  for (std::size_t k = 0; k < sweep.axes.size(); ++k) {
    EXPECT_EQ(back.axes[k].param, sweep.axes[k].param);
    EXPECT_EQ(back.axes[k].values, sweep.axes[k].values);  // bit-exact
  }
  // And the canonical stability property the coordinator protocol rests
  // on: serialize ∘ parse ∘ serialize is the identity on the text form.
  EXPECT_EQ(SweepSpec::parse(sweep.serialize()).serialize(),
            sweep.serialize());
}

TEST(SweepSpecSerialize, ParseRejectsGarbage) {
  EXPECT_THROW((void)SweepSpec::parse("axis credits=1,2"),
               util::PreconditionError);  // missing seeds
  EXPECT_THROW((void)SweepSpec::parse("seeds 0"), util::PreconditionError);
  EXPECT_THROW((void)SweepSpec::parse("seeds x"), util::PreconditionError);
  // strtoull would silently wrap a negative to 2^64-1 and saturate an
  // overflowing value there too; both must reject.
  EXPECT_THROW((void)SweepSpec::parse("seeds -1"), util::PreconditionError);
  EXPECT_THROW((void)SweepSpec::parse("seeds 20000000000000000000"),
               util::PreconditionError);
  EXPECT_THROW((void)SweepSpec::parse("seeds 2\naxis nope=1"),
               util::PreconditionError);
  EXPECT_THROW((void)SweepSpec::parse("seeds 2\nbogus line"),
               util::PreconditionError);
  const SweepSpec minimal = SweepSpec::parse("seeds 3\n");
  EXPECT_EQ(minimal.seeds, 3u);
  EXPECT_TRUE(minimal.axes.empty());
}

// ---- Cache behavior through SweepRunner ----------------------------------

TEST(SweepRunnerCache, WideningAnAxisOnlyComputesTheNewRuns) {
  const auto dir = scratch_dir("cache_widen");
  CountingExecutor counter;

  auto run_with = [&](const char* tax_axis) {
    SweepSpec sweep;
    sweep.axes.push_back(SweepAxis::parse("credits=20,40"));
    sweep.axes.push_back(SweepAxis::parse(tax_axis));
    sweep.seeds = 2;
    SweepRunner::Options options;
    options.jobs = 2;
    options.keep_reports = false;
    options.cache_dir = dir.string();
    options.executor = &counter;
    SweepRunner runner(tiny_base(), sweep, options);
    return runner.run();
  };

  // Cold: every run executes.
  const auto cold = run_with("tax.rate=0,0.2");
  EXPECT_EQ(cold.size(), 8u);
  EXPECT_EQ(counter.executed().size(), 8u);

  // Warm, same grid: zero executions, identical output bytes.
  counter.reset();
  const auto warm = run_with("tax.rate=0,0.2");
  EXPECT_TRUE(counter.executed().empty());
  ResultSink cold_sink, warm_sink;
  cold_sink.add_all(cold);
  warm_sink.add_all(warm);
  EXPECT_EQ(cold_sink.runs_csv(), warm_sink.runs_csv());
  EXPECT_EQ(cold_sink.aggregate_csv(), warm_sink.aggregate_csv());
  EXPECT_EQ(cold_sink.aggregate_json(), warm_sink.aggregate_json());
  for (const auto& r : warm) {
    EXPECT_TRUE(r.telemetry.from_cache) << r.run_index;
  }

  // Widen the credits axis (the slowest-varying one, so existing runs keep
  // their indices and hence their derived seeds): only the 4 runs of the
  // new credits=60 points execute.
  counter.reset();
  SweepSpec wide;
  wide.axes.push_back(SweepAxis::parse("credits=20,40,60"));
  wide.axes.push_back(SweepAxis::parse("tax.rate=0,0.2"));
  wide.seeds = 2;
  SweepRunner::Options options;
  options.jobs = 2;
  options.keep_reports = false;
  options.cache_dir = dir.string();
  options.executor = &counter;
  SweepRunner runner(tiny_base(), wide, options);
  const auto grown = runner.run();
  ASSERT_EQ(grown.size(), 12u);
  EXPECT_EQ(counter.executed().size(), 4u);
  for (const std::size_t executed : counter.executed()) {
    EXPECT_GE(executed, 8u);  // exactly the new credits=60 grid points
  }
  EXPECT_EQ(runner.cache_hits(), 8u);
  EXPECT_EQ(runner.executed(), 4u);

  // The recalled prefix is bit-identical to the cold computation.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(grown[i].seed, cold[i].seed);
    ASSERT_EQ(grown[i].metrics.size(), cold[i].metrics.size());
    for (std::size_t k = 0; k < cold[i].metrics.size(); ++k) {
      const double a = cold[i].metrics[k].second;
      const double b = grown[i].metrics[k].second;
      if (std::isnan(a)) {
        EXPECT_TRUE(std::isnan(b));
      } else {
        EXPECT_EQ(a, b);
      }
    }
  }
}

TEST(SweepRunnerCache, CacheRequiresMetricsOnlyRuns) {
  SweepRunner::Options options;
  options.cache_dir = scratch_dir("cache_guard").string();
  options.keep_reports = true;  // incompatible: the store holds no reports
  EXPECT_THROW(SweepRunner(tiny_base(), tiny_sweep(), options),
               util::PreconditionError);
}

// ---- Shard-and-merge determinism ----------------------------------------

TEST(SweepRunnerShard, TwoShardsMergeByteIdenticalToOneShot) {
  // The reference single-process run.
  SweepRunner::Options reference_options;
  reference_options.jobs = 1;
  reference_options.keep_reports = false;
  SweepRunner reference(tiny_base(), tiny_sweep(), reference_options);
  ResultSink reference_sink;
  reference_sink.add_all(reference.run());

  // Two shards at different (and deliberately unequal) jobs counts, merged
  // through the run-record text format — the full distributed path.
  ResultSink merged_sink;
  for (std::size_t shard = 0; shard < 2; ++shard) {
    SweepRunner::Options options;
    options.jobs = shard == 0 ? 3 : 1;
    options.keep_reports = false;
    options.shard_index = shard;
    options.shard_count = 2;
    SweepRunner runner(tiny_base(), tiny_sweep(), options);
    const auto partial = runner.run();
    EXPECT_EQ(partial.size(), 4u);
    const SweepPlan plan(tiny_base(), tiny_sweep());
    for (const auto& r : partial) {
      // Round-trip through the interchange format, as market_cli --merge
      // does.
      const auto record = parse_run_record(
          serialize_run_record(plan.key(r.run_index), r));
      merged_sink.add(record.result);
    }
  }

  EXPECT_EQ(merged_sink.runs_csv(), reference_sink.runs_csv());
  EXPECT_EQ(merged_sink.aggregate_csv(), reference_sink.aggregate_csv());
  EXPECT_EQ(merged_sink.aggregate_json(), reference_sink.aggregate_json());
}

// ---- Telemetry -----------------------------------------------------------

TEST(RunTelemetry, PopulatedOnExecutionAndSurfacedInCsv) {
  const auto result = run_scenario(tiny_base());
  EXPECT_TRUE(result.error.empty());
  EXPECT_GT(result.telemetry.wall_seconds, 0.0);
  EXPECT_GE(result.telemetry.purchase_phase_seconds, 0.0);
  EXPECT_LE(result.telemetry.purchase_phase_seconds,
            result.telemetry.wall_seconds);
  EXPECT_GT(result.telemetry.rounds, 0u);
  EXPECT_FALSE(result.telemetry.from_cache);

  ResultSink sink;
  sink.add(result);
  // rounds is always emitted; wall-clock columns only on request (they are
  // machine-dependent and would break byte-reproducibility).
  const std::string plain = sink.runs_csv();
  EXPECT_NE(plain.find(",error,rounds"), std::string::npos);
  EXPECT_EQ(plain.find("wall_seconds"), std::string::npos);
  sink.set_timing_columns(true);
  const std::string timed = sink.runs_csv();
  EXPECT_NE(timed.find(",error,rounds,wall_seconds,purchase_phase_seconds"),
            std::string::npos);
}

}  // namespace
}  // namespace creditflow::scenario
