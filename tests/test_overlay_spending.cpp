// Tests for p2p/overlay (dynamic membership) and p2p/spending policies.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "p2p/overlay.hpp"
#include "p2p/spending.hpp"
#include "util/rng.hpp"

namespace creditflow::p2p {
namespace {

TEST(Overlay, InitFromGraph) {
  util::Rng rng(1);
  const auto g = graph::ring_lattice(10, 1);
  Overlay o(16);
  o.init_from_graph(g);
  EXPECT_EQ(o.num_active(), 10u);
  EXPECT_TRUE(o.is_active(0));
  EXPECT_FALSE(o.is_active(12));
  EXPECT_EQ(o.degree(0), 2u);
  EXPECT_DOUBLE_EQ(o.mean_degree(), 2.0);
}

TEST(Overlay, JoinAttachesRequestedLinks) {
  util::Rng rng(2);
  const auto g = graph::complete(6);
  Overlay o(10);
  o.init_from_graph(g);
  o.join(7, 3, rng);
  EXPECT_TRUE(o.is_active(7));
  EXPECT_EQ(o.degree(7), 3u);
  EXPECT_EQ(o.num_active(), 7u);
  // Bidirectional edges (nested queries: caller-owned scratch keeps the
  // outer list stable while the inner one is materialized).
  std::vector<std::uint32_t> nbrs;
  std::vector<std::uint32_t> back_nbrs;
  o.neighbors_into(7, nbrs);
  for (auto nbr : nbrs) {
    bool found = false;
    o.neighbors_into(nbr, back_nbrs);
    for (auto back : back_nbrs) {
      if (back == 7) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(Overlay, JoinCapsAtPopulation) {
  util::Rng rng(3);
  Overlay o(5);
  const auto g = graph::complete(2);
  o.init_from_graph(g);
  o.join(4, 10, rng);  // only 2 possible targets
  EXPECT_EQ(o.degree(4), 2u);
}

TEST(Overlay, FirstJoinHasNoNeighbors) {
  util::Rng rng(4);
  Overlay o(3);
  o.join(1, 5, rng);
  EXPECT_TRUE(o.is_active(1));
  EXPECT_EQ(o.degree(1), 0u);
}

TEST(Overlay, LeaveRemovesEdgesBothSides) {
  util::Rng rng(5);
  const auto g = graph::complete(4);
  Overlay o(4);
  o.init_from_graph(g);
  o.leave(2);
  EXPECT_FALSE(o.is_active(2));
  EXPECT_EQ(o.num_active(), 3u);
  EXPECT_EQ(o.degree(2), 0u);
  for (auto p : {0u, 1u, 3u}) {
    o.for_each_neighbor(p, [](std::uint32_t nbr) { EXPECT_NE(nbr, 2u); });
    EXPECT_EQ(o.degree(p), 2u);
  }
}

TEST(Overlay, RejoinAfterLeave) {
  util::Rng rng(6);
  const auto g = graph::complete(4);
  Overlay o(4);
  o.init_from_graph(g);
  o.leave(1);
  o.join(1, 2, rng);
  EXPECT_TRUE(o.is_active(1));
  EXPECT_EQ(o.degree(1), 2u);
}

TEST(Overlay, DoubleLeaveThrows) {
  util::Rng rng(7);
  const auto g = graph::complete(3);
  Overlay o(3);
  o.init_from_graph(g);
  o.leave(0);
  EXPECT_THROW(o.leave(0), util::PreconditionError);
}

TEST(Overlay, PreferentialAttachmentFavorsHighDegree) {
  util::Rng rng(8);
  // Star: node 0 has degree 9, leaves have degree 1. New joiners with one
  // link should predominantly attach to the hub.
  const auto g = graph::star(10);
  int hub_attachments = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    Overlay o(11);
    o.init_from_graph(g);
    o.join(10, 1, rng);
    o.for_each_neighbor(10, [&](std::uint32_t nbr) {
      if (nbr == 0) ++hub_attachments;
    });
  }
  // Hub weight = (9+1)/(9+1 + 9*(1+1)) ~ 0.36 ≥ uniform 0.1.
  EXPECT_GT(hub_attachments, trials / 5);
}

TEST(Overlay, ActivePeersList) {
  util::Rng rng(9);
  const auto g = graph::complete(3);
  Overlay o(5);
  o.init_from_graph(g);
  o.leave(1);
  const auto active = o.active_peers();
  const std::vector<std::uint32_t> expected{0, 2};
  EXPECT_TRUE(std::equal(active.begin(), active.end(), expected.begin(),
                         expected.end()));
}

TEST(Overlay, ActivePeersStayAscendingUnderChurn) {
  // The dense active array must mirror the ascending-id order the engine's
  // deterministic walks (seeding, snapshots, taxation) depend on, through
  // arbitrary join/leave interleavings.
  util::Rng rng(10);
  const auto g = graph::complete(6);
  Overlay o(12);
  o.init_from_graph(g);
  o.leave(3);
  o.leave(0);
  o.join(9, 2, rng);
  o.join(0, 2, rng);
  o.leave(5);
  o.join(11, 1, rng);
  const auto active = o.active_peers();
  const std::vector<std::uint32_t> expected{0, 1, 2, 4, 9, 11};
  ASSERT_EQ(active.size(), expected.size());
  EXPECT_TRUE(std::equal(active.begin(), active.end(), expected.begin()));
  for (std::uint32_t p = 0; p < 12; ++p) {
    const bool listed =
        std::find(active.begin(), active.end(), p) != active.end();
    EXPECT_EQ(o.is_active(p), listed) << "peer " << p;
  }
}

TEST(Overlay, LowestInactiveSlotTracksMembership) {
  util::Rng rng(11);
  Overlay o(130);  // spans three 64-bit bitmap words
  const auto g = graph::complete(4);
  o.init_from_graph(g);
  ASSERT_TRUE(o.lowest_inactive_slot().has_value());
  EXPECT_EQ(*o.lowest_inactive_slot(), 4u);
  o.leave(2);
  EXPECT_EQ(*o.lowest_inactive_slot(), 2u);
  o.join(2, 1, rng);
  EXPECT_EQ(*o.lowest_inactive_slot(), 4u);
  // Fill every slot: the overlay reports no free slot instead of a bogus
  // id from the bitmap's padding bits.
  for (std::uint32_t p = 4; p < 130; ++p) o.join(p, 1, rng);
  EXPECT_FALSE(o.lowest_inactive_slot().has_value());
  o.leave(129);
  EXPECT_EQ(*o.lowest_inactive_slot(), 129u);
}

TEST(Overlay, EdgePoolRecyclesCells) {
  // Leaves must return every incident cell to the free list, so sustained
  // churn cannot grow the pool footprint.
  util::Rng rng(12);
  const auto g = graph::complete(6);
  Overlay o(12);
  o.init_from_graph(g);
  const std::size_t baseline = o.edge_cells_in_use();
  EXPECT_EQ(baseline, 2u * 15u);  // K6: 15 undirected edges
  for (int round = 0; round < 50; ++round) {
    o.join(7, 3, rng);
    o.join(8, 2, rng);
    o.leave(7);
    o.leave(8);
    EXPECT_EQ(o.edge_cells_in_use(), baseline);
  }
  EXPECT_EQ(o.edges_dropped(), 0u);
}

TEST(Overlay, EdgePoolExhaustionRefusesNotGrows) {
  // A pool sized for exactly the bootstrap graph refuses further edges
  // (counted, not thrown) and resumes once a leave frees cells.
  util::Rng rng(13);
  const auto g = graph::complete(4);  // 6 undirected edges = 12 cells
  Overlay o(8, /*edge_cells=*/12);
  o.init_from_graph(g);
  EXPECT_EQ(o.edge_cells_in_use(), 12u);
  o.join(5, 2, rng);  // pool is full: join attaches nothing
  EXPECT_TRUE(o.is_active(5));
  EXPECT_EQ(o.degree(5), 0u);
  EXPECT_GT(o.edges_dropped(), 0u);
  const auto dropped = o.edges_dropped();
  o.leave(0);  // frees 6 cells
  EXPECT_TRUE(o.add_edge(5, 1));
  EXPECT_EQ(o.degree(5), 1u);
  EXPECT_EQ(o.edges_dropped(), dropped);
}

TEST(Overlay, RemovalPreservesSwapWithBackOrder) {
  // Neighbor-list order after a removal must match the retired
  // vector<vector> engine: the tail entry is moved into the removed
  // entry's position (swap-with-back), not compacted in place — every
  // RNG-consuming walk depends on this order.
  util::Rng rng(14);
  Overlay o(8);
  const auto g = graph::complete(5);
  o.init_from_graph(g);
  // Row 0 starts as [1, 2, 3, 4] (graph order). Removing 2 moves the
  // back (4) into its slot: [1, 4, 3].
  o.leave(2);
  std::vector<std::uint32_t> nbrs;
  o.neighbors_into(0, nbrs);
  EXPECT_EQ(nbrs, (std::vector<std::uint32_t>{1, 4, 3}));
  // Removing the new back (3) just pops it: [1, 4].
  o.leave(3);
  o.neighbors_into(0, nbrs);
  EXPECT_EQ(nbrs, (std::vector<std::uint32_t>{1, 4}));
  // Removing the head (1) moves 4 forward: [4].
  o.leave(1);
  o.neighbors_into(0, nbrs);
  EXPECT_EQ(nbrs, (std::vector<std::uint32_t>{4}));
}

TEST(FixedSpending, BudgetIsRateTimesRound) {
  FixedSpending policy;
  EXPECT_DOUBLE_EQ(policy.round_budget(4.0, 0, 2.0), 8.0);
  EXPECT_DOUBLE_EQ(policy.round_budget(4.0, 1000000, 2.0), 8.0);
}

TEST(DynamicSpending, MatchesPaperRule) {
  // μ_i = μ_s B/m above the threshold, μ_s below (Sec. VI-D).
  DynamicSpending policy(100.0);
  EXPECT_DOUBLE_EQ(policy.round_budget(4.0, 50, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(policy.round_budget(4.0, 100, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(policy.round_budget(4.0, 200, 1.0), 8.0);
  EXPECT_DOUBLE_EQ(policy.round_budget(4.0, 1000, 1.0), 40.0);
}

TEST(DynamicSpending, RejectsNonPositiveThreshold) {
  EXPECT_THROW(DynamicSpending(0.0), util::PreconditionError);
}

TEST(MakeSpendingPolicy, Dispatch) {
  SpendingParams fixed;
  EXPECT_EQ(make_spending_policy(fixed)->name(), "fixed");
  SpendingParams dynamic;
  dynamic.dynamic = true;
  dynamic.dynamic_threshold = 42.0;
  EXPECT_NE(make_spending_policy(dynamic)->name().find("dynamic"),
            std::string::npos);
}

}  // namespace
}  // namespace creditflow::p2p
