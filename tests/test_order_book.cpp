// Tests for market/order_book and its protocol wiring: price-time
// priority under interleaved insert/cancel, partial-fill conservation,
// ask expiry on seller death, and a book-vs-naive-scan equivalence
// oracle. The book is the PR-8 purchase path; everything here pins the
// invariants the crossing strategies rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "market/order_book.hpp"
#include "p2p/protocol.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace creditflow::market {
namespace {

std::vector<AskView> walk(const OrderBook& book) {
  std::vector<AskView> out;
  book.for_each_ask([&](const AskView& ask) { out.push_back(ask); });
  return out;
}

/// The naive reference order: every resting ask sorted by (price, seq).
/// Price-time priority is exactly "the walk equals this sort".
std::vector<AskView> naive_order(std::vector<AskView> asks) {
  std::sort(asks.begin(), asks.end(), [](const AskView& a, const AskView& b) {
    return a.price != b.price ? a.price < b.price : a.seq < b.seq;
  });
  return asks;
}

void expect_same_order(const std::vector<AskView>& got,
                       const std::vector<AskView>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].seller, want[i].seller) << "position " << i;
    EXPECT_EQ(got[i].price, want[i].price) << "position " << i;
    EXPECT_EQ(got[i].quantity, want[i].quantity) << "position " << i;
  }
}

TEST(OrderBook, PriceTimePriorityUnderInterleavedInsertCancel) {
  OrderBook book(16, 10);
  book.post_ask(3, 5, 4);
  book.post_ask(7, 2, 1);
  book.post_ask(1, 5, 2);   // same level as 3, behind it
  book.post_ask(9, 2, 3);   // same level as 7, behind it
  book.post_ask(4, 8, 1);
  expect_same_order(walk(book), naive_order(walk(book)));

  const AskView best = book.best_ask();
  EXPECT_EQ(best.seller, 7u);
  EXPECT_EQ(best.price, 2u);

  // Cancel the level-2 head: 9 becomes best; 3 still ahead of 1 at 5.
  EXPECT_TRUE(book.cancel_ask(7));
  EXPECT_EQ(book.best_ask().seller, 9u);
  expect_same_order(walk(book), naive_order(walk(book)));

  // Reprice 3 down into level 2: it forfeits time priority — it joins
  // BEHIND 9 even though 3's original post predates 9's.
  book.post_ask(3, 2, 4);
  const auto order = walk(book);
  ASSERT_GE(order.size(), 2u);
  EXPECT_EQ(order[0].seller, 9u);
  EXPECT_EQ(order[1].seller, 3u);
  expect_same_order(order, naive_order(order));

  // Re-insert 7 at its old price: fresh seq, back of the level-2 queue.
  book.post_ask(7, 2, 1);
  const auto order2 = walk(book);
  ASSERT_GE(order2.size(), 3u);
  EXPECT_EQ(order2[0].seller, 9u);
  EXPECT_EQ(order2[1].seller, 3u);
  EXPECT_EQ(order2[2].seller, 7u);
  expect_same_order(order2, naive_order(order2));
}

TEST(OrderBook, PartialFillConservation) {
  OrderBook book(8, 10);
  book.post_ask(2, 3, 5);
  book.post_ask(5, 4, 2);
  EXPECT_EQ(book.open_quantity(), 7u);
  EXPECT_EQ(book.depth(), 2u);

  // Partial fills conserve quantity one unit at a time; the ask survives
  // until its last unit and then expires in place.
  EXPECT_EQ(book.fill_one(2), 4u);
  EXPECT_EQ(book.fill_one(2), 3u);
  EXPECT_EQ(book.open_quantity(), 5u);
  EXPECT_EQ(book.depth(), 2u);
  EXPECT_TRUE(book.has_ask(2));

  EXPECT_EQ(book.fill_one(5), 1u);
  EXPECT_EQ(book.fill_one(5), 0u);
  EXPECT_FALSE(book.has_ask(5));
  EXPECT_EQ(book.depth(), 1u);
  EXPECT_EQ(book.open_quantity(), 3u);

  // The walked quantities always sum to open_quantity.
  std::uint64_t sum = 0;
  for (const AskView& a : walk(book)) sum += a.quantity;
  EXPECT_EQ(sum, book.open_quantity());
}

TEST(OrderBook, RestingBidsTrackDepthAndClearOnMatch) {
  OrderBook book(8, 10);
  EXPECT_EQ(book.bid_depth(), 0u);
  book.post_bid(1, 3);
  book.post_bid(4, 2);
  book.post_bid(1, 5);  // replace, not a second bid
  EXPECT_EQ(book.bid_depth(), 2u);
  EXPECT_EQ(book.bid_limit(1), 5u);
  book.on_bid_matched(1);
  EXPECT_FALSE(book.has_bid(1));
  EXPECT_TRUE(book.cancel_bid(4));
  EXPECT_FALSE(book.cancel_bid(4));
  EXPECT_EQ(book.bid_depth(), 0u);
}

TEST(OrderBook, BookVsNaiveScanOracleAtDepthOne) {
  // Fuzz a mirror model with random interleaved posts / cancels / fills
  // and require best_ask() (the depth-1 readout every crossing strategy
  // reduces to) to agree with a naive full scan after every operation.
  constexpr std::size_t kSellers = 24;
  OrderBook book(kSellers, 6);
  std::vector<AskView> mirror(kSellers);  // quantity 0 = absent
  util::Rng rng(177);
  std::uint64_t seq = 0;

  auto naive_best = [&]() -> const AskView* {
    const AskView* best = nullptr;
    for (const AskView& a : mirror) {
      if (a.quantity == 0) continue;
      if (best == nullptr || a.price < best->price ||
          (a.price == best->price && a.seq < best->seq)) {
        best = &a;
      }
    }
    return best;
  };

  for (int step = 0; step < 4000; ++step) {
    const auto s = static_cast<p2p::PeerId>(rng.uniform_index(kSellers));
    switch (rng.uniform_index(3)) {
      case 0: {  // post / reprice
        const auto price = static_cast<Credits>(1 + rng.uniform_index(6));
        const auto qty = static_cast<std::uint32_t>(1 + rng.uniform_index(4));
        book.post_ask(s, price, qty);
        mirror[s] = AskView{s, price, qty, ++seq};
        break;
      }
      case 1: {  // cancel
        EXPECT_EQ(book.cancel_ask(s), mirror[s].quantity > 0);
        mirror[s].quantity = 0;
        break;
      }
      default: {  // fill one unit if an ask rests
        if (mirror[s].quantity == 0) break;
        EXPECT_EQ(book.fill_one(s), mirror[s].quantity - 1);
        --mirror[s].quantity;
        break;
      }
    }
    const AskView* want = naive_best();
    const AskView got = book.best_ask();
    if (want == nullptr) {
      EXPECT_EQ(got.quantity, 0u) << "step " << step;
      EXPECT_EQ(book.depth(), 0u);
    } else {
      EXPECT_EQ(got.seller, want->seller) << "step " << step;
      EXPECT_EQ(got.price, want->price) << "step " << step;
      EXPECT_EQ(got.quantity, want->quantity) << "step " << step;
    }
  }
}

p2p::ProtocolConfig book_config(std::uint64_t seed) {
  p2p::ProtocolConfig cfg;
  cfg.initial_peers = 80;
  cfg.max_peers = 120;
  cfg.initial_credits = 60;
  cfg.seed = seed;
  cfg.market_mode = p2p::ProtocolConfig::MarketMode::kOrderBook;
  cfg.book.base_price = 2;
  cfg.book.ask_pricing =
      p2p::ProtocolConfig::OrderBookConfig::AskPricing::kAdaptive;
  return cfg;
}

TEST(OrderBookProtocol, FillConservationAgainstLedger) {
  // Every purchase in book mode is a book fill: the book's fill/volume
  // counters must agree with the market-wide transaction accounting, and
  // the ledger must still conserve credits to the unit.
  sim::Simulator sim;
  p2p::StreamingProtocol proto(book_config(21), sim);
  proto.start();
  sim.run_until(400.0);

  auto& metrics = proto.metrics();
  EXPECT_GT(metrics.counter("book.fills"), 0u);
  EXPECT_EQ(metrics.counter("book.fills"),
            metrics.counter("market.transactions"));
  EXPECT_EQ(metrics.counter("book.volume"),
            metrics.counter("market.volume"));
  EXPECT_TRUE(proto.ledger().audit());

  const OrderBook* book = proto.order_book();
  ASSERT_NE(book, nullptr);
  EXPECT_LE(book->depth(), proto.num_alive());
}

TEST(OrderBookProtocol, AskExpiryOnSellerDeath) {
  auto cfg = book_config(22);
  cfg.churn.enabled = true;
  cfg.churn.arrival_rate = 0.5;
  cfg.churn.mean_lifespan = 120.0;
  sim::Simulator sim;
  p2p::StreamingProtocol proto(cfg, sim);
  proto.start();
  sim.run_until(600.0);

  EXPECT_GT(proto.metrics().counter("churn.departures"), 0u);
  EXPECT_GT(proto.metrics().counter("book.asks_expired"), 0u)
      << "departures never expired a resting ask";

  // No dead seller may keep an ask on the book.
  const OrderBook* book = proto.order_book();
  ASSERT_NE(book, nullptr);
  book->for_each_ask([&](const AskView& ask) {
    EXPECT_TRUE(proto.peer(ask.seller).alive)
        << "dead seller " << ask.seller << " still resting";
  });
}

TEST(OrderBookProtocol, DirectModeCarriesNoBook) {
  sim::Simulator sim;
  p2p::ProtocolConfig cfg;
  cfg.initial_peers = 40;
  cfg.max_peers = 40;
  cfg.initial_credits = 30;
  cfg.seed = 23;
  p2p::StreamingProtocol proto(cfg, sim);
  proto.start();
  sim.run_until(100.0);
  EXPECT_EQ(proto.order_book(), nullptr);
  EXPECT_EQ(proto.metrics().counter("book.fills"), 0u);
}

}  // namespace
}  // namespace creditflow::market
