// Protocol mode coverage: windowed rate measurement, churn population law
// (with the mortal bootstrap cohort), seller-choice modes, and the
// injection policy interplay with churn and tax.
#include <gtest/gtest.h>

#include <numeric>

#include "p2p/protocol.hpp"
#include "sim/simulator.hpp"

namespace creditflow::p2p {
namespace {

ProtocolConfig base() {
  ProtocolConfig cfg;
  cfg.initial_peers = 80;
  cfg.max_peers = 80;
  cfg.initial_credits = 50;
  cfg.seed = 7;
  return cfg;
}

TEST(WindowedRates, MatchLedgerDeltas) {
  sim::Simulator sim;
  StreamingProtocol proto(base(), sim);
  proto.start();
  sim.run_until(100.0);

  std::vector<std::uint64_t> spent_before(80);
  for (PeerId id = 0; id < 80; ++id) {
    spent_before[id] = proto.peer(id).credits_spent;
  }
  proto.begin_rate_window();
  sim.run_until(150.0);

  const auto rates = proto.windowed_spend_rates();
  const auto alive = proto.alive_peers();
  ASSERT_EQ(rates.size(), alive.size());
  for (std::size_t k = 0; k < alive.size(); ++k) {
    const double expected =
        static_cast<double>(proto.peer(alive[k]).credits_spent -
                            spent_before[alive[k]]) /
        50.0;
    EXPECT_NEAR(rates[k], expected, 1e-12);
  }
}

TEST(WindowedRates, RequiresOpenWindow) {
  sim::Simulator sim;
  StreamingProtocol proto(base(), sim);
  proto.start();
  sim.run_until(10.0);
  EXPECT_THROW((void)proto.windowed_spend_rates(), util::PreconditionError);
  proto.begin_rate_window();
  EXPECT_THROW((void)proto.windowed_spend_rates(), util::PreconditionError);
  sim.run_until(11.0);
  EXPECT_NO_THROW((void)proto.windowed_spend_rates());
}

TEST(ChurnPopulation, SettlesAtArrivalRateTimesLifespan) {
  sim::Simulator sim;
  auto cfg = base();
  cfg.initial_peers = 100;
  cfg.max_peers = 300;
  cfg.churn.enabled = true;
  cfg.churn.arrival_rate = 1.0;
  cfg.churn.mean_lifespan = 100.0;  // expected population = 100
  StreamingProtocol proto(cfg, sim);
  proto.start();

  // After several lifespans the population fluctuates around 100 — the
  // bootstrap cohort must be mortal for this to hold.
  sim.run_until(600.0);
  util::RunningStats pop;
  for (int probe = 0; probe < 20; ++probe) {
    sim.run_until(600.0 + 10.0 * probe);
    pop.add(static_cast<double>(proto.num_alive()));
  }
  EXPECT_NEAR(pop.mean(), 100.0, 25.0);
  EXPECT_EQ(proto.metrics().counter("churn.arrivals_dropped"), 0u);
}

TEST(SellerChoice, AllModesTradeAndConserve) {
  using Choice = ProtocolConfig::SellerChoice;
  for (const auto choice : {Choice::kAvailabilityUniform,
                            Choice::kFillWeighted, Choice::kCheapestAsk}) {
    sim::Simulator sim;
    auto cfg = base();
    cfg.seller_choice = choice;
    StreamingProtocol proto(cfg, sim);
    proto.start();
    sim.run_until(120.0);
    EXPECT_GT(proto.metrics().counter("market.transactions"), 500u);
    EXPECT_TRUE(proto.ledger().audit());
  }
}

TEST(SellerChoice, AuctionNeverPaysAboveUniformPriceForSamePair) {
  // With uniform pricing all asks are equal, so the auction degenerates to
  // picking the first owner — behaviour must stay healthy.
  sim::Simulator sim;
  auto cfg = base();
  cfg.seller_choice = ProtocolConfig::SellerChoice::kCheapestAsk;
  StreamingProtocol proto(cfg, sim);
  proto.start();
  sim.run_until(200.0);
  EXPECT_GT(proto.mean_buffer_fill(), 0.6);
}

TEST(Injection, WorksTogetherWithChurnAndTax) {
  sim::Simulator sim;
  auto cfg = base();
  cfg.max_peers = 200;
  cfg.churn.enabled = true;
  cfg.churn.arrival_rate = 0.5;
  cfg.churn.mean_lifespan = 80.0;
  cfg.tax.enabled = true;
  cfg.tax.rate = 0.1;
  cfg.tax.threshold = 40.0;
  cfg.injection.enabled = true;
  cfg.injection.interval_seconds = 25.0;
  cfg.injection.credits_per_peer = 1;
  StreamingProtocol proto(cfg, sim);
  proto.start();
  sim.run_until(400.0);
  EXPECT_TRUE(proto.ledger().audit());
  EXPECT_GT(proto.metrics().counter("injection.minted"), 0u);
  EXPECT_GT(proto.metrics().counter("churn.departures"), 0u);
}

TEST(DepartTimes, TrackedForChurningPeers) {
  sim::Simulator sim;
  auto cfg = base();
  cfg.max_peers = 160;
  cfg.churn.enabled = true;
  cfg.churn.arrival_rate = 0.5;
  cfg.churn.mean_lifespan = 50.0;
  StreamingProtocol proto(cfg, sim);
  proto.start();
  sim.run_until(100.0);
  for (PeerId id : proto.alive_peers()) {
    EXPECT_GT(proto.peer(id).depart_time, sim.now());
  }
}

}  // namespace
}  // namespace creditflow::p2p
