// Tests for queueing/closed_network (Buzen), queueing/mva, and
// queueing/approx — the product-form machinery of Sec. IV/V of the paper.
//
// The key validations are against brute-force enumeration of the state
// space for small (N, M), and cross-validation Buzen vs MVA for larger ones.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "queueing/approx.hpp"
#include "queueing/closed_network.hpp"
#include "queueing/mva.hpp"
#include "util/rng.hpp"

namespace creditflow::queueing {
namespace {

/// Brute force: enumerate all compositions of M over N queues, weight each
/// state by prod u_i^{b_i}, and accumulate marginals/expectations.
struct BruteForce {
  std::vector<std::vector<double>> marginals;  // [queue][b]
  std::vector<double> expected;
  double normalization = 0.0;

  BruteForce(const std::vector<double>& u, std::uint64_t m) {
    const std::size_t n = u.size();
    marginals.assign(n, std::vector<double>(m + 1, 0.0));
    expected.assign(n, 0.0);
    std::vector<std::uint64_t> state(n, 0);
    enumerate(u, m, 0, 1.0, state);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::uint64_t b = 0; b <= m; ++b) {
        marginals[i][b] /= normalization;
        expected[i] += static_cast<double>(b) * marginals[i][b];
      }
    }
  }

  void enumerate(const std::vector<double>& u, std::uint64_t remaining,
                 std::size_t k, double weight,
                 std::vector<std::uint64_t>& state) {
    if (k + 1 == u.size()) {
      state[k] = remaining;
      const double w =
          weight * std::pow(u[k], static_cast<double>(remaining));
      normalization += w;
      for (std::size_t i = 0; i < u.size(); ++i)
        marginals[i][state[i]] += w;
      return;
    }
    for (std::uint64_t b = 0; b <= remaining; ++b) {
      state[k] = b;
      enumerate(u, remaining - b, k + 1,
                weight * std::pow(u[k], static_cast<double>(b)), state);
    }
  }
};

TEST(ClosedNetwork, MatchesBruteForceSymmetric) {
  const std::vector<double> u = {1.0, 1.0, 1.0};
  const std::uint64_t m = 6;
  const ClosedNetwork net(u, m);
  const BruteForce ref(u, m);
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_NEAR(net.expected_wealth(i), ref.expected[i], 1e-10);
    for (std::uint64_t b = 0; b <= m; ++b) {
      EXPECT_NEAR(net.marginal_pmf(i, b), ref.marginals[i][b], 1e-10)
          << "queue " << i << " b " << b;
    }
  }
}

TEST(ClosedNetwork, MatchesBruteForceAsymmetric) {
  const std::vector<double> u = {1.0, 0.6, 0.3, 0.8};
  const std::uint64_t m = 5;
  const ClosedNetwork net(u, m);
  const BruteForce ref(u, m);
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_NEAR(net.expected_wealth(i), ref.expected[i], 1e-10);
    for (std::uint64_t b = 0; b <= m; ++b) {
      EXPECT_NEAR(net.marginal_pmf(i, b), ref.marginals[i][b], 1e-10);
    }
  }
}

TEST(ClosedNetwork, MarginalsSumToOne) {
  const std::vector<double> u = {1.0, 0.5, 0.25, 0.9, 0.7};
  const ClosedNetwork net(u, 40);
  for (std::size_t i = 0; i < u.size(); ++i) {
    const auto pmf = net.marginal(i);
    const double total = std::accumulate(pmf.begin(), pmf.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(ClosedNetwork, ExpectedWealthSumsToM) {
  const std::vector<double> u = {1.0, 0.4, 0.8, 0.2, 0.6, 0.9};
  const std::uint64_t m = 100;
  const ClosedNetwork net(u, m);
  double total = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) total += net.expected_wealth(i);
  EXPECT_NEAR(total, static_cast<double>(m), 1e-6);
}

TEST(ClosedNetwork, HigherUtilizationHoldsMoreWealth) {
  const std::vector<double> u = {1.0, 0.5};
  const ClosedNetwork net(u, 50);
  EXPECT_GT(net.expected_wealth(0), net.expected_wealth(1));
  EXPECT_LT(net.empty_probability(0), net.empty_probability(1));
}

TEST(ClosedNetwork, NearCriticalQueueCondenses) {
  // One queue at u=1, the rest well below: almost all credits pile onto the
  // critical queue — the paper's condensation configuration.
  std::vector<double> u(10, 0.3);
  u[0] = 1.0;
  const std::uint64_t m = 500;
  const ClosedNetwork net(u, m);
  EXPECT_GT(net.expected_wealth(0), 0.95 * static_cast<double>(m));
}

TEST(ClosedNetwork, SymmetricExpectationIsAverageWealth) {
  const std::vector<double> u(8, 1.0);
  const ClosedNetwork net(u, 80);
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_NEAR(net.expected_wealth(i), 10.0, 1e-8);
  }
}

TEST(ClosedNetwork, LargePopulationStableInLogSpace) {
  // M = 50000, N = 50 — the paper's Fig. 2 upper curve. This overflows any
  // linear-domain implementation; log-space Buzen must stay finite & exact.
  const std::vector<double> u(50, 1.0);
  const std::uint64_t m = 50000;
  const ClosedNetwork net(u, m);
  EXPECT_TRUE(std::isfinite(net.log_normalization(m)));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(net.expected_wealth(i), 1000.0, 1e-3);
  }
  // Exact closed form at symmetric utilization (uniform over compositions):
  // P(B_i = 0) = (N-1)/(M+N-1).
  const double p0 = net.empty_probability(0);
  EXPECT_NEAR(p0, 49.0 / 50049.0, 1e-9);
}

TEST(ClosedNetwork, TailProbabilityMonotone) {
  const std::vector<double> u = {1.0, 0.7, 0.4};
  const ClosedNetwork net(u, 30);
  for (std::size_t i = 0; i < u.size(); ++i) {
    double prev = 1.0;
    for (std::uint64_t b = 0; b <= 31; ++b) {
      const double t = net.tail_probability(i, b);
      EXPECT_LE(t, prev + 1e-12);
      prev = t;
    }
    EXPECT_DOUBLE_EQ(net.tail_probability(i, 31), 0.0);
  }
}

TEST(ClosedNetwork, ZeroUtilizationQueueHoldsNothing) {
  const std::vector<double> u = {1.0, 0.0, 0.5};
  const ClosedNetwork net(u, 20);
  EXPECT_DOUBLE_EQ(net.expected_wealth(1), 0.0);
  EXPECT_DOUBLE_EQ(net.marginal_pmf(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(net.empty_probability(1), 1.0);
}

TEST(ClosedNetwork, BusyPlusEmptyIsOne) {
  const std::vector<double> u = {1.0, 0.3, 0.6};
  const ClosedNetwork net(u, 15);
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_NEAR(net.busy_probability(i) + net.empty_probability(i), 1.0,
                1e-12);
  }
}

TEST(ClosedNetwork, JointSampleSumsToM) {
  util::Rng rng(5);
  const std::vector<double> u = {1.0, 0.5, 0.8, 0.2};
  const std::uint64_t m = 37;
  const ClosedNetwork net(u, m);
  for (int trial = 0; trial < 20; ++trial) {
    const auto s = net.sample_joint(rng);
    const auto total =
        std::accumulate(s.begin(), s.end(), std::uint64_t{0});
    EXPECT_EQ(total, m);
  }
}

TEST(ClosedNetwork, JointSampleMeansMatchExpectations) {
  util::Rng rng(9);
  const std::vector<double> u = {1.0, 0.5, 0.25};
  const std::uint64_t m = 12;
  const ClosedNetwork net(u, m);
  std::vector<double> mean(u.size(), 0.0);
  const int trials = 20000;
  for (int trial = 0; trial < trials; ++trial) {
    const auto s = net.sample_joint(rng);
    for (std::size_t i = 0; i < u.size(); ++i)
      mean[i] += static_cast<double>(s[i]);
  }
  for (std::size_t i = 0; i < u.size(); ++i) {
    mean[i] /= trials;
    EXPECT_NEAR(mean[i], net.expected_wealth(i),
                0.05 * static_cast<double>(m));
  }
}

TEST(Mva, MatchesBuzenExpectations) {
  const std::vector<double> u = {1.0, 0.6, 0.3, 0.85, 0.45};
  const std::uint64_t m = 60;
  const ClosedNetwork net(u, m);
  const auto mva = exact_mva(u, m);
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_NEAR(mva.expected_wealth[i], net.expected_wealth(i), 1e-6);
  }
}

TEST(Mva, SymmetricCase) {
  const std::vector<double> u(10, 1.0);
  const auto mva = exact_mva(u, 100);
  for (double l : mva.expected_wealth) EXPECT_NEAR(l, 10.0, 1e-9);
}

TEST(Mva, RejectsAllZeroDemand) {
  const std::vector<double> u = {0.0, 0.0};
  EXPECT_THROW((void)exact_mva(u, 5), util::PreconditionError);
}

TEST(ApproxEq8, IsBinomialMarginal) {
  const std::size_t n = 10;
  const std::uint64_t m = 40;
  const auto pmf = approx_marginal_eq8(n, m);
  double total = 0.0;
  double mean = 0.0;
  for (std::uint64_t b = 0; b <= m; ++b) {
    total += pmf[b];
    mean += static_cast<double>(b) * pmf[b];
  }
  EXPECT_NEAR(total, 1.0, 1e-10);
  EXPECT_NEAR(mean, static_cast<double>(m) / n, 1e-8);  // Binomial mean M/N
}

TEST(ApproxEq8, MatchesPaperFormulaPointwise) {
  // Eq. (8): Q{B=b} = ((N-1)/N)^M C(M,b) e^{-b ln(N-1)}.
  const std::size_t n = 7;
  const std::uint64_t m = 12;
  for (std::uint64_t b = 0; b <= m; ++b) {
    double binom = 1.0;
    for (std::uint64_t k = 0; k < b; ++k) {
      binom *= static_cast<double>(m - k) / static_cast<double>(k + 1);
    }
    const double paper =
        std::pow(static_cast<double>(n - 1) / n, static_cast<double>(m)) *
        binom *
        std::exp(-static_cast<double>(b) * std::log(static_cast<double>(n - 1)));
    EXPECT_NEAR(approx_pmf_eq8(n, m, b), paper, 1e-10);
  }
}

TEST(ApproxEq6, ReducesToEq8WhenSymmetric) {
  const std::vector<double> u(6, 1.0);
  const std::uint64_t m = 18;
  const auto eq6 = approx_marginal_eq6(u, 2, m);
  const auto eq8 = approx_marginal_eq8(u.size(), m);
  for (std::uint64_t b = 0; b <= m; ++b) {
    EXPECT_NEAR(eq6[b], eq8[b], 1e-12);
  }
}

TEST(ApproxEq6, ZeroUtilizationPeerIsPoor) {
  const std::vector<double> u = {1.0, 0.0, 1.0};
  const auto pmf = approx_marginal_eq6(u, 1, 10);
  EXPECT_DOUBLE_EQ(pmf[0], 1.0);
}

TEST(Efficiency, Eq9MatchesFiniteAtLargeN) {
  // 1 - ((N-1)/N)^{cN} -> 1 - e^{-c}.
  const double c = 3.0;
  const std::size_t n = 4000;
  const auto m = static_cast<std::uint64_t>(c * static_cast<double>(n));
  EXPECT_NEAR(efficiency_finite(n, m), efficiency_eq9(c), 1e-3);
}

TEST(Efficiency, IncreasingInWealth) {
  EXPECT_LT(efficiency_eq9(0.5), efficiency_eq9(1.0));
  EXPECT_LT(efficiency_eq9(1.0), efficiency_eq9(5.0));
  EXPECT_NEAR(efficiency_eq9(0.0), 0.0, 1e-12);
}

// Property sweep: Buzen vs MVA across randomized utilizations and sizes.
class BuzenMvaProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(BuzenMvaProperty, ExpectationsAgree) {
  const auto [n, m] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n) * 1000 + m);
  std::vector<double> u(static_cast<std::size_t>(n));
  for (auto& ui : u) ui = rng.uniform(0.05, 1.0);
  u[0] = 1.0;
  const ClosedNetwork net(u, m);
  const auto mva = exact_mva(u, m);
  double total = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_NEAR(mva.expected_wealth[i], net.expected_wealth(i), 1e-5);
    total += net.expected_wealth(i);
  }
  EXPECT_NEAR(total, static_cast<double>(m), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BuzenMvaProperty,
    ::testing::Values(std::make_tuple(2, std::uint64_t{10}),
                      std::make_tuple(5, std::uint64_t{25}),
                      std::make_tuple(10, std::uint64_t{100}),
                      std::make_tuple(20, std::uint64_t{300}),
                      std::make_tuple(40, std::uint64_t{50}),
                      std::make_tuple(8, std::uint64_t{1000})));

}  // namespace
}  // namespace creditflow::queueing
