// Tests for graph: adjacency structure, connectivity, and the overlay
// topology generators (including the paper's scale-free shape).
#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace creditflow::graph {
namespace {

TEST(Graph, AddEdgeBasics) {
  Graph g(4);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(0, 1));  // duplicate
  EXPECT_FALSE(g.add_edge(1, 0));  // duplicate reversed
  EXPECT_FALSE(g.add_edge(2, 2));  // self loop
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(Graph, MeanDegree) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_DOUBLE_EQ(g.mean_degree(), 1.0);
}

TEST(Graph, NeighborsSpan) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  const auto n = g.neighbors(0);
  EXPECT_EQ(n.size(), 2u);
}

TEST(Connectivity, DisconnectedDetected) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(is_connected(g));
  EXPECT_EQ(giant_component_size(g), 2u);
  const auto labels = connected_components(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_NE(labels[0], labels[2]);
}

TEST(Connectivity, ConnectedGraph) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(giant_component_size(g), 3u);
}

TEST(Generators, ErdosRenyiDensity) {
  util::Rng rng(1);
  const auto g = erdos_renyi(200, 0.1, rng);
  const double expected = 0.1 * 199.0;
  EXPECT_NEAR(g.mean_degree(), expected, expected * 0.15);
}

TEST(Generators, RingLattice) {
  const auto g = ring_lattice(10, 2);
  EXPECT_TRUE(is_connected(g));
  for (NodeId u = 0; u < 10; ++u) EXPECT_EQ(g.degree(u), 4u);
}

TEST(Generators, CompleteGraph) {
  const auto g = complete(6);
  EXPECT_EQ(g.num_edges(), 15u);
  for (NodeId u = 0; u < 6; ++u) EXPECT_EQ(g.degree(u), 5u);
}

TEST(Generators, StarGraph) {
  const auto g = star(5);
  EXPECT_EQ(g.degree(0), 4u);
  for (NodeId u = 1; u < 5; ++u) EXPECT_EQ(g.degree(u), 1u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, PowerLawDegreeSequenceMeanTargeted) {
  util::Rng rng(7);
  ScaleFreeParams params;
  params.exponent = 2.5;
  params.target_mean_degree = 20.0;
  const auto degrees = power_law_degree_sequence(2000, params, rng);
  const double mean =
      static_cast<double>(std::accumulate(degrees.begin(), degrees.end(),
                                          std::uint64_t{0})) /
      static_cast<double>(degrees.size());
  EXPECT_NEAR(mean, 20.0, 2.0);
  const auto sum =
      std::accumulate(degrees.begin(), degrees.end(), std::uint64_t{0});
  EXPECT_EQ(sum % 2, 0u);
}

TEST(Generators, ScaleFreeIsConnectedWithTargetMean) {
  util::Rng rng(11);
  ScaleFreeParams params;  // paper defaults: k=2.5, mean 20
  const auto g = scale_free(1000, params, rng);
  EXPECT_TRUE(is_connected(g));
  EXPECT_NEAR(g.mean_degree(), 20.0, 3.0);
}

TEST(Generators, ScaleFreeHasHeavyTail) {
  util::Rng rng(13);
  ScaleFreeParams params;
  const auto g = scale_free(1500, params, rng);
  const auto stats = degree_stats(g);
  // Heavy tail: max degree far above the mean, negative log-log slope.
  EXPECT_GT(stats.max, 3.0 * stats.mean);
  EXPECT_LT(stats.loglog_slope, -1.0);
  EXPECT_GT(stats.cv, 0.5);
}

TEST(Generators, BarabasiAlbertConnected) {
  util::Rng rng(17);
  const auto g = barabasi_albert(500, 5, rng);
  EXPECT_TRUE(is_connected(g));
  // Mean degree approaches 2m.
  EXPECT_NEAR(g.mean_degree(), 10.0, 1.5);
}

TEST(Generators, MakeConnectedLinksComponents) {
  util::Rng rng(19);
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(4, 5);
  make_connected(g, rng);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, DegreeStatsOnRegularGraph) {
  const auto g = ring_lattice(50, 3);
  const auto stats = degree_stats(g);
  EXPECT_DOUBLE_EQ(stats.mean, 6.0);
  EXPECT_DOUBLE_EQ(stats.min, 6.0);
  EXPECT_DOUBLE_EQ(stats.max, 6.0);
  EXPECT_DOUBLE_EQ(stats.cv, 0.0);
}

}  // namespace
}  // namespace creditflow::graph
