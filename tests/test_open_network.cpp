// Tests for queueing/open_network: traffic equations, stability, and M/M/1
// product-form marginals.
#include <gtest/gtest.h>

#include "queueing/open_network.hpp"

namespace creditflow::queueing {
namespace {

TEST(OpenNetwork, SingleQueueMm1) {
  TransferMatrix p(1);
  p.set_row(0, {});
  const OpenNetwork net(p, {1.0}, {2.0});
  EXPECT_TRUE(net.solution().stable);
  EXPECT_NEAR(net.solution().lambda[0], 1.0, 1e-12);
  EXPECT_NEAR(net.solution().rho[0], 0.5, 1e-12);
  EXPECT_NEAR(net.expected_wealth(0), 1.0, 1e-12);
  EXPECT_NEAR(net.empty_probability(0), 0.5, 1e-12);
  EXPECT_NEAR(net.marginal_pmf(0, 2), 0.5 * 0.25, 1e-12);
}

TEST(OpenNetwork, TandemTrafficEquations) {
  TransferMatrix p(2);
  p.set_row(0, {{1, 1.0}});
  p.set_row(1, {});
  const OpenNetwork net(p, {0.6, 0.0}, {1.0, 1.0});
  EXPECT_NEAR(net.solution().lambda[0], 0.6, 1e-12);
  EXPECT_NEAR(net.solution().lambda[1], 0.6, 1e-12);
  EXPECT_TRUE(net.solution().stable);
}

TEST(OpenNetwork, FeedbackLoopAmplifiesTraffic) {
  // Queue 0 feeds back to itself with prob 0.5: λ = γ + 0.5 λ => λ = 2γ.
  TransferMatrix p(1);
  p.set_row(0, {{0, 0.5}});
  const OpenNetwork net(p, {0.4}, {2.0});
  EXPECT_NEAR(net.solution().lambda[0], 0.8, 1e-12);
  EXPECT_TRUE(net.solution().stable);
}

TEST(OpenNetwork, InstabilityDetected) {
  TransferMatrix p(1);
  p.set_row(0, {});
  const OpenNetwork net(p, {3.0}, {2.0});
  EXPECT_FALSE(net.solution().stable);
  EXPECT_THROW((void)net.expected_wealth(0), util::PreconditionError);
  EXPECT_THROW((void)net.marginal_pmf(0, 1), util::PreconditionError);
}

TEST(OpenNetwork, MarginalSumsToOne) {
  TransferMatrix p(1);
  p.set_row(0, {{0, 0.25}});
  const OpenNetwork net(p, {0.5}, {1.5});
  double total = 0.0;
  for (std::uint64_t b = 0; b < 200; ++b) total += net.marginal_pmf(0, b);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(OpenNetwork, RequiresExternalArrivals) {
  TransferMatrix p(1);
  p.set_row(0, {});
  EXPECT_THROW(OpenNetwork(p, {0.0}, {1.0}), util::PreconditionError);
}

TEST(OpenNetwork, RejectsSuperStochasticRouting) {
  TransferMatrix p(1);
  p.set_row(0, {{0, 1.5}});
  EXPECT_THROW(OpenNetwork(p, {1.0}, {1.0}), util::PreconditionError);
}

TEST(OpenNetwork, ThreeQueueMesh) {
  // Splitting: q0 routes half to q1, half to q2; all exit after.
  TransferMatrix p(3);
  p.set_row(0, {{1, 0.5}, {2, 0.5}});
  p.set_row(1, {});
  p.set_row(2, {});
  const OpenNetwork net(p, {1.0, 0.0, 0.0}, {2.0, 1.0, 1.0});
  EXPECT_NEAR(net.solution().lambda[1], 0.5, 1e-12);
  EXPECT_NEAR(net.solution().lambda[2], 0.5, 1e-12);
  EXPECT_TRUE(net.solution().stable);
  EXPECT_NEAR(net.expected_wealth(1), 1.0, 1e-12);  // rho=0.5
}

}  // namespace
}  // namespace creditflow::queueing
