// Tests for the scenario engine's declarative layer: the parameter
// namespace, spec serialization round-trips, sweep-axis parsing and grid
// expansion, and the built-in registry presets.
#include <gtest/gtest.h>

#include <cmath>

#include "core/market.hpp"
#include "scenario/scenario.hpp"

namespace creditflow::scenario {
namespace {

TEST(Params, ApplyAndReadRoundTrip) {
  core::MarketConfig cfg;
  EXPECT_TRUE(apply_param(cfg, "credits", 250));
  EXPECT_EQ(cfg.protocol.initial_credits, 250u);
  EXPECT_DOUBLE_EQ(read_param(cfg, "credits").value(), 250.0);

  EXPECT_TRUE(apply_param(cfg, "tax.rate", 0.15));
  EXPECT_DOUBLE_EQ(cfg.protocol.tax.rate, 0.15);
  EXPECT_TRUE(apply_param(cfg, "churn.enabled", 1));
  EXPECT_TRUE(cfg.protocol.churn.enabled);
}

TEST(Params, AliasesResolve) {
  core::MarketConfig cfg;
  EXPECT_TRUE(apply_param(cfg, "c", 77));
  EXPECT_EQ(cfg.protocol.initial_credits, 77u);
  EXPECT_TRUE(apply_param(cfg, "n", 321));
  EXPECT_EQ(cfg.protocol.initial_peers, 321u);
}

TEST(Params, UnknownKeyRejectedUntouched) {
  core::MarketConfig cfg;
  const auto before = cfg.protocol.initial_credits;
  EXPECT_FALSE(apply_param(cfg, "no_such_knob", 1.0));
  EXPECT_EQ(cfg.protocol.initial_credits, before);
  EXPECT_FALSE(read_param(cfg, "no_such_knob").has_value());
}

TEST(Params, PeersRaisesMaxPeersButExplicitMaxWins) {
  core::MarketConfig cfg;
  EXPECT_TRUE(apply_param(cfg, "peers", 5000));
  EXPECT_EQ(cfg.protocol.initial_peers, 5000u);
  EXPECT_GE(cfg.protocol.max_peers, 5000u);
  EXPECT_TRUE(apply_param(cfg, "max_peers", 6000));
  EXPECT_EQ(cfg.protocol.max_peers, 6000u);
}

TEST(Params, TableCoversEveryKeyBothWays) {
  // Every table entry must be readable and writable through its own key.
  core::MarketConfig cfg;
  for (const auto& desc : param_table()) {
    const auto value = read_param(cfg, desc.key);
    ASSERT_TRUE(value.has_value()) << desc.key;
    EXPECT_TRUE(apply_param(cfg, desc.key, *value)) << desc.key;
  }
}

TEST(ScenarioSpec, SerializeParseRoundTrip) {
  ScenarioSpec spec = ScenarioRegistry::builtin().get("fig09_taxation");
  const std::string text = spec.serialize();
  const ScenarioSpec parsed = ScenarioSpec::parse(text);

  EXPECT_EQ(parsed.name, spec.name);
  EXPECT_EQ(parsed.description, spec.description);
  EXPECT_DOUBLE_EQ(parsed.warmup_fraction, spec.warmup_fraction);
  // Bit-exact equality of every parameter...
  for (const auto& desc : param_table()) {
    EXPECT_EQ(desc.get(parsed.config), desc.get(spec.config)) << desc.key;
  }
  // ...and therefore of the whole text form.
  EXPECT_EQ(parsed.serialize(), text);
}

TEST(ScenarioSpec, RoundTripPreservesUglyDoubles) {
  ScenarioSpec spec;
  spec.name = "precision";
  ASSERT_TRUE(spec.set("tax.rate", 0.1));
  ASSERT_TRUE(spec.set("snapshot_interval", 15000.0 / 30.0));
  ASSERT_TRUE(spec.set("base_spend_rate", 1.0 / 3.0));
  const ScenarioSpec parsed = ScenarioSpec::parse(spec.serialize());
  EXPECT_EQ(parsed.config.protocol.tax.rate, 0.1);
  EXPECT_EQ(parsed.config.snapshot_interval, 15000.0 / 30.0);
  EXPECT_EQ(parsed.config.protocol.base_spend_rate, 1.0 / 3.0);
}

TEST(ScenarioSpec, ParseRejectsGarbage) {
  EXPECT_THROW((void)ScenarioSpec::parse("credits = notanumber"),
               util::PreconditionError);
  EXPECT_THROW((void)ScenarioSpec::parse("bogus_key = 3"),
               util::PreconditionError);
  EXPECT_THROW((void)ScenarioSpec::parse("just some words"),
               util::PreconditionError);
}

TEST(ScenarioSpec, MaterializeResolvesWarmup) {
  ScenarioSpec spec;
  spec.config.horizon = 4000.0;
  spec.warmup_fraction = 0.75;
  const auto cfg = spec.materialize();
  EXPECT_DOUBLE_EQ(cfg.rate_window_start, 3000.0);
  spec.warmup_fraction = 0.0;
  EXPECT_LT(spec.materialize().rate_window_start, 0.0);
}

TEST(SweepAxis, ParsesRangeListAndScalar) {
  const SweepAxis range = SweepAxis::parse("credits=50:800:50");
  EXPECT_EQ(range.param, "credits");
  ASSERT_EQ(range.values.size(), 16u);
  EXPECT_DOUBLE_EQ(range.values.front(), 50.0);
  EXPECT_DOUBLE_EQ(range.values.back(), 800.0);

  const SweepAxis list = SweepAxis::parse("tax.rate=0.1,0.2");
  ASSERT_EQ(list.values.size(), 2u);
  EXPECT_DOUBLE_EQ(list.values[1], 0.2);

  const SweepAxis scalar = SweepAxis::parse("peers=400");
  ASSERT_EQ(scalar.values.size(), 1u);
  EXPECT_DOUBLE_EQ(scalar.values[0], 400.0);

  // Default step of 1.
  const SweepAxis unit = SweepAxis::parse("seed=1:4");
  EXPECT_EQ(unit.values.size(), 4u);
}

TEST(SweepAxis, RejectsMalformedAxes) {
  EXPECT_THROW((void)SweepAxis::parse("credits"), util::PreconditionError);
  EXPECT_THROW((void)SweepAxis::parse("nope=1:3"), util::PreconditionError);
  EXPECT_THROW((void)SweepAxis::parse("credits=10:5"),
               util::PreconditionError);
  EXPECT_THROW((void)SweepAxis::parse("credits=1:10:0"),
               util::PreconditionError);
  EXPECT_THROW((void)SweepAxis::parse("credits=a,b"),
               util::PreconditionError);
}

TEST(SweepSpec, GridExpansionCountAndOrder) {
  SweepSpec sweep;
  sweep.axes.push_back(SweepAxis::parse("credits=50,100,200"));
  sweep.axes.push_back(SweepAxis::parse("tax.rate=0.1,0.2"));
  sweep.axes.push_back(SweepAxis::parse("tax.threshold=20:80:20"));
  sweep.seeds = 4;

  EXPECT_EQ(sweep.num_points(), 3u * 2u * 4u);
  EXPECT_EQ(sweep.num_runs(), 24u * 4u);

  // First axis slowest, last fastest.
  EXPECT_EQ(sweep.point(0), (std::vector<double>{50, 0.1, 20}));
  EXPECT_EQ(sweep.point(1), (std::vector<double>{50, 0.1, 40}));
  EXPECT_EQ(sweep.point(4), (std::vector<double>{50, 0.2, 20}));
  EXPECT_EQ(sweep.point(8), (std::vector<double>{100, 0.1, 20}));
  EXPECT_EQ(sweep.point(23), (std::vector<double>{200, 0.2, 80}));
}

TEST(SweepSpec, InstantiateAppliesAxesAndDerivesSeeds) {
  ScenarioSpec base;
  base.config.protocol.seed = 2012;
  SweepSpec sweep;
  sweep.axes.push_back(SweepAxis::parse("credits=50,100"));
  sweep.seeds = 3;

  const ScenarioSpec run0 = sweep.instantiate(base, 0);
  const ScenarioSpec run4 = sweep.instantiate(base, 4);
  EXPECT_EQ(run0.config.protocol.initial_credits, 50u);
  EXPECT_EQ(run4.config.protocol.initial_credits, 100u);
  // Replications of one point share the grid values but not the stream.
  const ScenarioSpec run3 = sweep.instantiate(base, 3);
  EXPECT_EQ(run3.config.protocol.initial_credits, 100u);
  EXPECT_NE(run3.config.protocol.seed, run4.config.protocol.seed);
  // And instantiation is pure: same run index, same seed.
  EXPECT_EQ(sweep.instantiate(base, 4).config.protocol.seed,
            run4.config.protocol.seed);
}

TEST(Registry, BuiltinPresetsResolve) {
  const auto& reg = ScenarioRegistry::builtin();
  EXPECT_GE(reg.size(), 11u);
  for (const auto& name : reg.names()) {
    SCOPED_TRACE(name);
    const ScenarioSpec spec = reg.get(name);
    EXPECT_EQ(spec.name, name);
    EXPECT_FALSE(spec.description.empty());
    // Every preset must be constructible as a market (validates the
    // config against every protocol precondition) and round-trip safe.
    const auto cfg = spec.materialize();
    EXPECT_NO_THROW(core::CreditMarket market(cfg));
    EXPECT_EQ(ScenarioSpec::parse(spec.serialize()).serialize(),
              spec.serialize());
  }
  // The figures the engine replaces are all present.
  for (const char* name :
       {"fig01_condensed", "fig01_balanced", "fig07_symmetric",
        "fig08_asymmetric", "fig09_taxation", "fig10_dynamic_spending",
        "fig11_churn", "ext01_auction", "ext02_injection"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
  }
}

TEST(Registry, UnknownScenarioThrows) {
  EXPECT_THROW((void)ScenarioRegistry::builtin().get("fig99"),
               util::PreconditionError);
  EXPECT_EQ(ScenarioRegistry::builtin().find("fig99"), nullptr);
}

TEST(Registry, AddReplacesByName) {
  ScenarioRegistry reg;
  ScenarioSpec a;
  a.name = "x";
  a.config.horizon = 100.0;
  reg.add(a);
  a.config.horizon = 200.0;
  reg.add(a);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_DOUBLE_EQ(reg.get("x").config.horizon, 200.0);
}

TEST(RateWindow, MarketReportsWindowedSpendRates) {
  core::MarketConfig cfg;
  cfg.protocol.initial_peers = 60;
  cfg.protocol.max_peers = 60;
  cfg.protocol.initial_credits = 40;
  cfg.protocol.seed = 7;
  cfg.horizon = 120.0;
  cfg.snapshot_interval = 20.0;
  cfg.rate_window_start = 90.0;
  core::CreditMarket market(cfg);
  const auto report = market.run();
  ASSERT_EQ(report.final_windowed_spend_rates.size(), 60u);
  double total = 0.0;
  for (const double r : report.final_windowed_spend_rates) total += r;
  EXPECT_GT(total, 0.0);

  // Without a window the vector stays empty.
  cfg.rate_window_start = -1.0;
  core::CreditMarket plain(cfg);
  EXPECT_TRUE(plain.run().final_windowed_spend_rates.empty());
}

}  // namespace
}  // namespace creditflow::scenario
