// Tests for the parallel sweep runner and the result sink: thread-count
// invariance (the determinism contract), error capture, metric extraction,
// and mean ± CI aggregation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "scenario/scenario.hpp"

namespace creditflow::scenario {
namespace {

/// A market small enough that a full grid runs in well under a second.
ScenarioSpec tiny_base() {
  ScenarioSpec spec;
  spec.name = "tiny";
  spec.config.protocol.initial_peers = 40;
  spec.config.protocol.max_peers = 40;
  spec.config.protocol.initial_credits = 30;
  spec.config.protocol.seed = 2012;
  spec.config.horizon = 60.0;
  spec.config.snapshot_interval = 15.0;
  return spec;
}

SweepSpec tiny_sweep() {
  SweepSpec sweep;
  sweep.axes.push_back(SweepAxis::parse("credits=20,40"));
  sweep.axes.push_back(SweepAxis::parse("tax.rate=0,0.2"));
  sweep.seeds = 2;
  return sweep;
}

std::vector<RunResult> run_with_jobs(std::size_t jobs) {
  SweepRunner::Options options;
  options.jobs = jobs;
  SweepRunner runner(tiny_base(), tiny_sweep(), options);
  return runner.run();
}

TEST(SweepRunner, ParallelMatchesSerialBitForBit) {
  const auto serial = run_with_jobs(1);
  const auto parallel = run_with_jobs(4);
  ASSERT_EQ(serial.size(), 8u);
  ASSERT_EQ(parallel.size(), 8u);

  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(serial[i].run_index, parallel[i].run_index);
    EXPECT_EQ(serial[i].seed, parallel[i].seed);
    ASSERT_EQ(serial[i].metrics.size(), parallel[i].metrics.size());
    for (std::size_t k = 0; k < serial[i].metrics.size(); ++k) {
      EXPECT_EQ(serial[i].metrics[k].first, parallel[i].metrics[k].first);
      const double a = serial[i].metrics[k].second;
      const double b = parallel[i].metrics[k].second;
      if (std::isnan(a)) {
        EXPECT_TRUE(std::isnan(b)) << serial[i].metrics[k].first;
      } else {
        EXPECT_EQ(a, b) << serial[i].metrics[k].first;  // bit-identical
      }
    }
  }

  // The emitted artifacts are byte-identical too.
  ResultSink sink_serial;
  sink_serial.add_all(serial);
  ResultSink sink_parallel;
  sink_parallel.add_all(parallel);
  EXPECT_EQ(sink_serial.runs_csv(), sink_parallel.runs_csv());
  EXPECT_EQ(sink_serial.aggregate_csv(), sink_parallel.aggregate_csv());
  EXPECT_EQ(sink_serial.aggregate_json(), sink_parallel.aggregate_json());
}

TEST(SweepRunner, MoreJobsThanRunsIsFine) {
  SweepRunner::Options options;
  options.jobs = 32;
  SweepRunner runner(tiny_base(), tiny_sweep(), options);
  EXPECT_EQ(runner.run().size(), 8u);
}

TEST(SweepRunner, RunIndexLayoutAndDistinctSeeds) {
  const auto results = run_with_jobs(2);
  std::set<std::uint64_t> seeds;
  for (const auto& r : results) {
    EXPECT_EQ(r.point_index, r.run_index / 2);
    EXPECT_EQ(r.seed_index, r.run_index % 2);
    EXPECT_TRUE(r.error.empty()) << r.error;
    seeds.insert(r.seed);
    ASSERT_EQ(r.params.size(), 2u);
    EXPECT_EQ(r.params[0].first, "credits");
    EXPECT_EQ(r.params[1].first, "tax.rate");
  }
  EXPECT_EQ(seeds.size(), results.size());  // no correlated replications
}

TEST(SweepRunner, MetricsCoverTheStandardReadouts) {
  const auto result = run_scenario(tiny_base());
  EXPECT_TRUE(result.error.empty());
  for (const char* name :
       {"converged_gini", "final_gini", "mean_buffer_fill",
        "exchange_efficiency", "mean_spend_rate", "ledger_conserved"}) {
    EXPECT_FALSE(std::isnan(result.metric(name))) << name;
  }
  EXPECT_DOUBLE_EQ(result.metric("ledger_conserved"), 1.0);
  EXPECT_GT(result.metric("transactions"), 0.0);
  EXPECT_GT(result.metric("mean_buffer_fill"), 0.5);
  // Absent metrics answer NaN instead of throwing.
  EXPECT_TRUE(std::isnan(result.metric("no_such_metric")));
}

TEST(SweepRunner, WarmupProducesWindowedGini) {
  ScenarioSpec spec = tiny_base();
  spec.warmup_fraction = 0.5;
  const auto result = run_scenario(spec);
  EXPECT_TRUE(result.error.empty());
  EXPECT_FALSE(std::isnan(result.metric("gini_windowed_spend")));
  EXPECT_EQ(result.report.final_windowed_spend_rates.size(), 40u);
}

TEST(SweepRunner, InvalidConfigIsCapturedNotThrown) {
  ScenarioSpec spec = tiny_base();
  SweepSpec sweep;
  // peers=1 violates the protocol's initial_peers >= 2 precondition.
  sweep.axes.push_back(SweepAxis::parse("peers=1,40"));
  SweepRunner::Options options;
  options.jobs = 2;
  SweepRunner runner(spec, sweep, options);
  const auto results = runner.run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].error.empty());
  EXPECT_TRUE(results[0].metrics.empty());
  EXPECT_TRUE(results[1].error.empty());

  // The sink reports the failure without poisoning the aggregate.
  ResultSink sink;
  sink.add_all(results);
  const auto rows = sink.aggregate();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].failures, 1u);
  EXPECT_EQ(rows[0].seeds, 0u);
  EXPECT_EQ(rows[1].seeds, 1u);

  // Renderings survive an all-failed grid point: the CSV takes its metric
  // header from the surviving point and pads the failed row, the table
  // marks the failed point instead of throwing.
  const std::string agg = sink.aggregate_csv();
  EXPECT_NE(agg.find("converged_gini_mean"), std::string::npos);
  const std::string header = agg.substr(0, agg.find('\n'));
  const auto header_commas = std::count(header.begin(), header.end(), ',');
  std::istringstream lines(agg);
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), header_commas);
  }
  const std::vector<std::string> cols = {"converged_gini"};
  const auto table = sink.aggregate_table("with failure", cols);
  EXPECT_EQ(table.rows(), 2u);

  // The failed point's error message is carried into the aggregate — both
  // the struct and the JSON rendering — not just counted.
  ASSERT_EQ(rows[0].errors.size(), 1u);
  EXPECT_EQ(rows[0].errors[0], results[0].error);
  EXPECT_TRUE(rows[1].errors.empty());
  const std::string json = sink.aggregate_json();
  EXPECT_NE(json.find("\"errors\": [\""), std::string::npos);
  // The message itself appears (JSON-escaped) in the emitted document.
  EXPECT_NE(json.find("initial_peers"), std::string::npos) << json;
}

TEST(SweepRunner, KeepReportsFalseDropsTimeSeries) {
  SweepRunner::Options options;
  options.jobs = 1;
  options.keep_reports = false;
  SweepRunner runner(tiny_base(), SweepSpec{}, options);
  const auto results = runner.run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].report.final_balances.empty());
  EXPECT_FALSE(results[0].metrics.empty());  // scalars survive
}

TEST(SweepRunner, ProgressCallbackSeesEveryRun) {
  std::set<std::size_t> seen;
  SweepRunner::Options options;
  options.jobs = 3;
  options.on_result = [&](const RunResult& r) { seen.insert(r.run_index); };
  SweepRunner runner(tiny_base(), tiny_sweep(), options);
  (void)runner.run();
  EXPECT_EQ(seen.size(), 8u);
}

TEST(ResultSink, JsonMapsNanToNull) {
  // Without a rate window gini_windowed_spend is NaN; the JSON rendering
  // must degrade it to null ("nan" is not valid JSON).
  ResultSink sink;
  sink.add(run_scenario(tiny_base()));
  const std::string json = sink.aggregate_json();
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_NE(json.find("\"gini_windowed_spend\": {\"mean\": null"),
            std::string::npos);
}

TEST(ResultSink, AggregateComputesMeanAndCi) {
  ResultSink sink;
  const double values[] = {1.0, 2.0, 3.0, 4.0};
  for (std::size_t s = 0; s < 4; ++s) {
    RunResult r;
    r.run_index = s;
    r.point_index = 0;
    r.seed_index = s;
    r.params = {{"credits", 100.0}};
    r.metrics = {{"m", values[s]}};
    sink.add(r);
  }
  const auto rows = sink.aggregate();
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].metrics.size(), 1u);
  const MetricStat& stat = rows[0].metrics[0].second;
  EXPECT_EQ(stat.n, 4u);
  EXPECT_DOUBLE_EQ(stat.mean, 2.5);
  // Sample stddev of {1,2,3,4} is sqrt(5/3).
  EXPECT_NEAR(stat.stddev, std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_NEAR(stat.ci95, 1.96 * stat.stddev / 2.0, 1e-12);
}

TEST(ResultSink, AddOutOfOrderStillSortsByRunIndex) {
  ResultSink sink;
  for (const std::size_t idx : {3, 0, 2, 1}) {
    RunResult r;
    r.run_index = idx;
    r.point_index = idx / 2;
    r.metrics = {{"m", static_cast<double>(idx)}};
    sink.add(r);
  }
  const auto& runs = sink.runs();
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].run_index, i);
  }
}

TEST(ResultSink, CsvAndTableRender) {
  ResultSink sink;
  sink.add_all(run_with_jobs(2));
  const std::string runs_csv = sink.runs_csv();
  EXPECT_NE(runs_csv.find("run_index,point_index,seed_index,seed,credits,"
                          "tax.rate,converged_gini"),
            std::string::npos);
  const std::string agg = sink.aggregate_csv();
  EXPECT_NE(agg.find("converged_gini_mean,converged_gini_sd,"
                     "converged_gini_ci95"),
            std::string::npos);
  // 4 grid points + header.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(agg.begin(), agg.end(), '\n')),
            5u);

  const std::vector<std::string> cols = {"converged_gini",
                                         "mean_buffer_fill"};
  const auto table = sink.aggregate_table("tiny sweep", cols);
  EXPECT_EQ(table.rows(), 4u);
  EXPECT_EQ(table.cols(), 2u + 1u + 2u);  // params + seeds + metrics
  EXPECT_THROW((void)sink.aggregate_table(
                   "bad", std::vector<std::string>{"nope"}),
               util::PreconditionError);
}

}  // namespace
}  // namespace creditflow::scenario
