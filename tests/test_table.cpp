// Tests for util/table and util/logging.
#include <gtest/gtest.h>

#include <sstream>

#include "util/assert.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace creditflow::util {
namespace {

TEST(ConsoleTable, RendersAlignedColumns) {
  ConsoleTable t("demo");
  t.set_header({"name", "value"});
  t.add_row({std::string("alpha"), 1.5});
  t.add_row({std::string("b"), std::int64_t{42}});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.5000"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(ConsoleTable, PrecisionControlsDoubles) {
  ConsoleTable t;
  t.set_header({"x"});
  t.set_precision(2);
  t.add_row({3.14159});
  std::ostringstream oss;
  t.print(oss);
  EXPECT_NE(oss.str().find("3.14"), std::string::npos);
  EXPECT_EQ(oss.str().find("3.1416"), std::string::npos);
}

TEST(ConsoleTable, RowSizeMismatchThrows) {
  ConsoleTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), PreconditionError);
}

TEST(ConsoleTable, CsvEscapesSpecials) {
  ConsoleTable t;
  t.set_header({"text", "n"});
  t.add_row({std::string("hello, \"world\""), std::int64_t{1}});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"hello, \"\"world\"\"\""), std::string::npos);
}

TEST(ConsoleTable, CsvHasHeaderAndRows) {
  ConsoleTable t;
  t.set_header({"a", "b"});
  t.add_row({1.0, 2.0});
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv.substr(0, 4), "a,b\n");
  EXPECT_NE(csv.find("1.0000,2.0000"), std::string::npos);
}

TEST(Logging, ParseLevels) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kWarn);
}

TEST(Logging, SetAndGetLevel) {
  const auto prev = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(prev);
}

}  // namespace
}  // namespace creditflow::util
