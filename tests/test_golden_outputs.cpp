// Golden byte-equality regression tests: the refactored allocation-free
// simulation core must reproduce the pre-refactor engine's sweep output
// byte for byte. Each test runs a small sweep in-process and pins the
// FNV-1a hash of the rendered bytes against constants captured from the
// engine before the zero-alloc round loop, span-based active-peer
// iteration, and streaming aggregation landed.
//
// These hashes are deliberately brittle: ANY change to simulation
// arithmetic, RNG consumption order, active-peer iteration order, metric
// emission, or number formatting trips them. A failure is not noise — it
// means previously published sweep outputs are no longer reproducible. If
// the change is intentional (a new metric column, a protocol behavior fix),
// re-capture the constants and say so loudly in the PR.
//
// Hash stability across build types was verified at capture time: -O0 and
// -O2 GCC builds produce identical bytes (x86-64 SSE2 double arithmetic,
// no FMA contraction), so one set of constants serves Debug and Release CI.
#include <gtest/gtest.h>

#include "scenario/scenario.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace creditflow::scenario {
namespace {

ResultSink run_sweep(const char* preset, double horizon, SweepSpec sweep) {
  const ScenarioSpec* base = ScenarioRegistry::builtin().find(preset);
  if (base == nullptr) ADD_FAILURE() << "missing preset " << preset;
  ScenarioSpec spec = *base;
  spec.set("horizon", horizon);
  spec.set("snapshot_interval", horizon / 4.0);
  SweepRunner::Options options;
  options.jobs = 1;
  options.keep_reports = false;
  SweepRunner runner(spec, std::move(sweep), options);
  ResultSink sink;
  sink.add_all(runner.run());
  return sink;
}

void expect_hashes(const ResultSink& sink, std::uint64_t aggregate_csv,
                   std::uint64_t aggregate_json, std::uint64_t runs_csv) {
  EXPECT_EQ(util::fnv1a64(sink.aggregate_csv()), aggregate_csv);
  EXPECT_EQ(util::fnv1a64(sink.aggregate_json()), aggregate_json);
  EXPECT_EQ(util::fnv1a64(sink.runs_csv()), runs_csv);
}

TEST(GoldenOutputs, Fig11ChurnSweepMatchesPreRefactorEngine) {
  // The churn-heavy case: exercises join/leave on the dense active-peer
  // array, the free-slot scan, span-based seeding/taxation/snapshot walks,
  // and the recycled event-queue slots — every path the refactor touched.
  SweepSpec sweep;
  sweep.axes.push_back(SweepAxis::parse("churn.arrival_rate=1,2"));
  sweep.axes.push_back(SweepAxis::parse("churn.mean_lifespan=100,200"));
  sweep.seeds = 2;
  const ResultSink sink = run_sweep("fig11_churn", 400.0, std::move(sweep));
  expect_hashes(sink, 0xbd9622db89f1920bULL, 0x1d7620dbf7cda782ULL,
                0xc27d93ece3617262ULL);
}

TEST(GoldenOutputs, Fig11ChurnSweepIdenticalWithTracingEnabled) {
  // Observability must be a pure readout: with the span tracer live (and
  // the purchase-latency histogram it gates), the same sweep must land the
  // same pinned hashes byte for byte — tracing consumes no RNG and changes
  // no emitted bytes.
  util::Tracer::instance().enable();
  SweepSpec sweep;
  sweep.axes.push_back(SweepAxis::parse("churn.arrival_rate=1,2"));
  sweep.axes.push_back(SweepAxis::parse("churn.mean_lifespan=100,200"));
  sweep.seeds = 2;
  const ResultSink sink = run_sweep("fig11_churn", 400.0, std::move(sweep));
  EXPECT_GT(util::Tracer::instance().snapshot().size(), 0u)
      << "tracing was supposed to be live during the sweep";
  util::Tracer::instance().disable();
  util::Tracer::instance().clear();
  expect_hashes(sink, 0xbd9622db89f1920bULL, 0x1d7620dbf7cda782ULL,
                0xc27d93ece3617262ULL);
}

TEST(GoldenOutputs, Fig09TaxationSweepMatchesPreRefactorEngine) {
  // The closed-market taxation case: redistribution iterates the active
  // span and the cached tax.redistributions counter cell.
  SweepSpec sweep;
  sweep.axes.push_back(SweepAxis::parse("tax.rate=0.1,0.2"));
  sweep.seeds = 2;
  const ResultSink sink =
      run_sweep("fig09_taxation", 400.0, std::move(sweep));
  expect_hashes(sink, 0x358101665fc3a5f4ULL, 0x2bdb17bb58addb64ULL,
                0x5a2827253bad8536ULL);
}

}  // namespace
}  // namespace creditflow::scenario
