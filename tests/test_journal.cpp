// Tests for the coordinator's crash-safe write-ahead journal: event
// round-trips, lenient replay (torn tails, duplicate grants, unknown run
// indices), the hard fingerprint conflict, and the coordinator-level
// recovery semantics — a journalled completion whose record is missing
// from the store is re-executed, never trusted blindly.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "scenario/journal.hpp"
#include "scenario/scenario.hpp"
#include "util/assert.hpp"

namespace creditflow::scenario {
namespace {

std::filesystem::path scratch_dir(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   "creditflow_journal" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

constexpr const char* kFingerprint = "0123456789abcdef0123456789abcdef";

RunKey key_of(std::uint64_t hi, std::uint64_t lo) {
  RunKey key;
  key.hi = hi;
  key.lo = lo;
  return key;
}

TEST(Journal, EventsRoundTripThroughReplay) {
  const auto path = (scratch_dir("roundtrip") / "sweep.journal").string();
  {
    Journal journal(path);
    journal.record_plan(kFingerprint, 8);
    journal.record_grant(0, "aaaaaaaaaaaaaaaa");
    journal.record_grant(1, "bbbbbbbbbbbbbbbb");
    journal.record_done(0, key_of(1, 2));
    journal.record_requeue(1);
    journal.record_grant(2, "bbbbbbbbbbbbbbbb");
  }
  const JournalReplay replay = replay_journal(path);
  EXPECT_TRUE(replay.has_plan);
  EXPECT_EQ(replay.fingerprint, kFingerprint);
  EXPECT_EQ(replay.plan_runs, 8u);
  EXPECT_EQ(replay.events, 6u);
  EXPECT_EQ(replay.skipped, 0u);
  // Run 0 completed, run 1's grant was closed by the requeue; only run 2
  // remains an open (orphaned) lease.
  ASSERT_EQ(replay.completed.size(), 1u);
  EXPECT_EQ(replay.completed.at(0), key_of(1, 2));
  ASSERT_EQ(replay.open_leases.size(), 1u);
  EXPECT_EQ(replay.open_leases.at(2), "bbbbbbbbbbbbbbbb");
}

TEST(Journal, MissingFileReplaysEmpty) {
  const auto path = (scratch_dir("missing") / "never-written").string();
  const JournalReplay replay = replay_journal(path);
  EXPECT_FALSE(replay.has_plan);
  EXPECT_EQ(replay.events, 0u);
}

TEST(Journal, TornTailIsSkippedNotFatal) {
  const auto path = (scratch_dir("torn") / "sweep.journal").string();
  {
    Journal journal(path);
    journal.record_plan(kFingerprint, 4);
    journal.record_grant(3, "cccccccccccccccc");
  }
  {
    // The writer died mid-append: the final line has no terminator and is
    // structurally incomplete.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << R"({"ev":"done","run":3,"ke)";
  }
  const JournalReplay replay = replay_journal(path);
  EXPECT_EQ(replay.events, 2u);
  EXPECT_EQ(replay.skipped, 1u);
  EXPECT_TRUE(replay.completed.empty());  // the torn done never applied
  ASSERT_EQ(replay.open_leases.size(), 1u);
  EXPECT_EQ(replay.open_leases.at(3), "cccccccccccccccc");

  // Appending through a fresh Journal repairs the torn tail first, so the
  // next event lands on its own intact line.
  {
    Journal journal(path);
    journal.record_done(3, key_of(7, 9));
  }
  const JournalReplay repaired = replay_journal(path);
  EXPECT_EQ(repaired.skipped, 1u);
  ASSERT_EQ(repaired.completed.size(), 1u);
  EXPECT_EQ(repaired.completed.at(3), key_of(7, 9));
  EXPECT_TRUE(repaired.open_leases.empty());
}

TEST(Journal, DuplicateGrantLastSessionWins) {
  const auto path = (scratch_dir("dup_grant") / "sweep.journal").string();
  {
    Journal journal(path);
    journal.record_plan(kFingerprint, 4);
    journal.record_grant(1, "aaaaaaaaaaaaaaaa");
    // The lease timed out and was re-granted to another session; on
    // replay the newer grant owns the orphan.
    journal.record_grant(1, "bbbbbbbbbbbbbbbb");
  }
  const JournalReplay replay = replay_journal(path);
  EXPECT_EQ(replay.duplicate_grants, 1u);
  ASSERT_EQ(replay.open_leases.size(), 1u);
  EXPECT_EQ(replay.open_leases.at(1), "bbbbbbbbbbbbbbbb");
}

TEST(Journal, EventsBeyondThePlanAreDropped) {
  const auto path = (scratch_dir("unknown_run") / "sweep.journal").string();
  {
    Journal journal(path);
    journal.record_plan(kFingerprint, 2);
    journal.record_grant(0, "aaaaaaaaaaaaaaaa");
    journal.record_grant(99, "aaaaaaaaaaaaaaaa");  // not in this plan
    journal.record_done(99, key_of(1, 1));
  }
  const JournalReplay replay = replay_journal(path);
  EXPECT_EQ(replay.skipped, 2u);
  EXPECT_EQ(replay.open_leases.size(), 1u);
  EXPECT_TRUE(replay.completed.empty());
}

TEST(Journal, ConflictingPlanFingerprintsAreAHardError) {
  const auto path = (scratch_dir("conflict") / "sweep.journal").string();
  {
    Journal journal(path);
    journal.record_plan(kFingerprint, 4);
    journal.record_plan("ffffffffffffffffffffffffffffffff", 4);
  }
  EXPECT_THROW(replay_journal(path), util::PreconditionError);
}

// ---- Coordinator-level recovery semantics --------------------------------

ScenarioSpec tiny_base() {
  ScenarioSpec spec;
  spec.name = "tiny";
  spec.config.protocol.initial_peers = 40;
  spec.config.protocol.max_peers = 40;
  spec.config.protocol.initial_credits = 30;
  spec.config.protocol.seed = 2012;
  spec.config.horizon = 60.0;
  spec.config.snapshot_interval = 15.0;
  return spec;
}

SweepSpec tiny_sweep() {
  SweepSpec sweep;
  sweep.axes.push_back(SweepAxis::parse("credits=20,40"));
  sweep.seeds = 2;
  return sweep;
}

TEST(Journal, CoordinatorRejectsAJournalFromADifferentSweep) {
  const auto dir = scratch_dir("foreign_plan");
  const std::string journal_path = (dir / "sweep.journal").string();
  {
    Journal journal(journal_path);
    journal.record_plan(kFingerprint, 4);  // some other sweep's fingerprint
  }
  Coordinator::Options options;
  options.cache_dir = (dir / "cache").string();
  options.journal_path = journal_path;
  options.resume = true;
  EXPECT_THROW(Coordinator(tiny_base(), tiny_sweep(), options),
               util::PreconditionError);
}

TEST(Journal, CoordinatorRequiresACacheNextToTheJournal) {
  Coordinator::Options options;
  options.journal_path =
      (scratch_dir("no_cache") / "sweep.journal").string();
  EXPECT_THROW(Coordinator(tiny_base(), tiny_sweep(), options),
               util::PreconditionError);
}

TEST(Journal, DoneEventWithoutAStoreRecordIsReExecuted) {
  // The journal claims run 0 completed, but the store never got the
  // record (a lost append). The resumed coordinator must re-execute it —
  // the journal schedules, only the store vouches for result bytes.
  const auto dir = scratch_dir("lost_append");
  const std::string journal_path = (dir / "sweep.journal").string();
  const ScenarioSpec base = tiny_base();
  const SweepSpec sweep = tiny_sweep();
  const SweepPlan plan(base, sweep);
  {
    Journal journal(journal_path);
    journal.record_plan(
        RunKey::of(base.serialize() + sweep.serialize(), plan.size()).hex(),
        plan.size());
    journal.record_done(0, plan.key(0));
  }

  Coordinator::Options options;
  options.cache_dir = (dir / "cache").string();
  options.journal_path = journal_path;
  options.resume = true;
  Coordinator coordinator(base, sweep, options);
  std::vector<RunResult> results;
  std::thread serve([&] { results = coordinator.run(); });
  WorkerReport report;
  std::thread worker([&] {
    report = run_worker("127.0.0.1", coordinator.port(), WorkerOptions{});
  });
  worker.join();
  serve.join();

  EXPECT_TRUE(report.completed) << report.error;
  EXPECT_EQ(coordinator.cache_hits(), 0u);
  EXPECT_EQ(coordinator.executed(), plan.size());  // run 0 included
  ASSERT_EQ(results.size(), plan.size());
  for (const auto& r : results) {
    EXPECT_TRUE(r.error.empty()) << r.run_index << ": " << r.error;
  }
}

}  // namespace
}  // namespace creditflow::scenario
