// Tests for the work-stealing sweep coordinator and its socket workers:
// the determinism-under-chaos contract. An in-process coordinator serves a
// plan to worker threads over loopback TCP, and in every scenario — clean
// multi-worker execution, a warm RunStore, a worker killed mid-run, a
// worker whose heartbeats stall past the lease timeout, duplicate and
// corrupt deliveries — the merged run-record set and the aggregate
// CSV/JSON must be byte-identical to a single-process ThreadPoolExecutor
// run of the same spec, with exactly one record per RunKey.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "scenario/scenario.hpp"
#include "util/rng.hpp"
#include "util/socket.hpp"

namespace creditflow::scenario {
namespace {

ScenarioSpec tiny_base() {
  ScenarioSpec spec;
  spec.name = "tiny";
  spec.config.protocol.initial_peers = 40;
  spec.config.protocol.max_peers = 40;
  spec.config.protocol.initial_credits = 30;
  spec.config.protocol.seed = 2012;
  spec.config.horizon = 60.0;
  spec.config.snapshot_interval = 15.0;
  return spec;
}

SweepSpec tiny_sweep() {
  SweepSpec sweep;
  sweep.axes.push_back(SweepAxis::parse("credits=20,40"));
  sweep.axes.push_back(SweepAxis::parse("tax.rate=0,0.2"));
  sweep.seeds = 2;
  return sweep;
}

/// A fresh (pre-cleaned) per-test scratch directory.
std::filesystem::path scratch_dir(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   "creditflow_coordinator" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Every rendering whose bytes the distributed path must reproduce.
struct Rendered {
  std::string records;  ///< the merged run-record set, in run_index order
  std::string runs_csv;
  std::string aggregate_csv;
  std::string aggregate_json;
};

Rendered render(const ScenarioSpec& base, const SweepSpec& sweep,
                const std::vector<RunResult>& results) {
  const SweepPlan plan(base, sweep);
  Rendered out;
  for (const auto& r : results) {
    // Wall-clock/RSS telemetry is honestly machine- and run-dependent (two
    // executions of the same run never time identically); every other
    // record byte — key, metadata, params, metrics, rounds, error — must
    // reproduce exactly, so zero the timing fields and compare the rest.
    RunResult deterministic = r;
    deterministic.telemetry.wall_seconds = 0.0;
    deterministic.telemetry.purchase_phase_seconds = 0.0;
    deterministic.telemetry.seed_phase_seconds = 0.0;
    deterministic.telemetry.tax_phase_seconds = 0.0;
    deterministic.telemetry.peak_rss_bytes = 0;
    deterministic.telemetry.from_cache = false;
    out.records += serialize_run_record(plan.key(r.run_index), deterministic);
    out.records += '\n';
  }
  ResultSink sink;
  sink.add_all(results);
  out.runs_csv = sink.runs_csv();
  out.aggregate_csv = sink.aggregate_csv();
  out.aggregate_json = sink.aggregate_json();
  return out;
}

void expect_identical(const Rendered& a, const Rendered& b) {
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.runs_csv, b.runs_csv);
  EXPECT_EQ(a.aggregate_csv, b.aggregate_csv);
  EXPECT_EQ(a.aggregate_json, b.aggregate_json);
}

/// The single-process reference: the in-process thread-pool executor.
std::vector<RunResult> reference_results(const ScenarioSpec& base,
                                         const SweepSpec& sweep) {
  SweepRunner::Options options;
  options.jobs = 1;
  options.keep_reports = false;
  SweepRunner runner(base, sweep, options);
  return runner.run();
}

/// Runs Coordinator::run() on its own thread, capturing the results (or
/// the error) for the test body to join on.
class ServeThread {
 public:
  explicit ServeThread(Coordinator& coordinator)
      : thread_([this, &coordinator] {
          try {
            results_ = coordinator.run();
          } catch (const std::exception& e) {
            error_ = e.what();
          }
        }) {}

  std::vector<RunResult> join() {
    thread_.join();
    EXPECT_EQ(error_, "");
    return std::move(results_);
  }

  /// Join a run() expected to throw (crash injection); returns the error.
  std::string join_error() {
    thread_.join();
    return error_;
  }

 private:
  std::vector<RunResult> results_;
  std::string error_;
  std::thread thread_;
};

/// A hand-driven protocol client for fault injection: it speaks just
/// enough of the wire format to take leases, deliver (or withhold, or
/// duplicate, or corrupt) results, and vanish abruptly.
class RawClient {
 public:
  explicit RawClient(std::uint16_t port)
      : socket_(util::Socket::connect("127.0.0.1", port, 5.0)),
        reader_(socket_) {}

  /// HELLO → PLAN; returns the plan the coordinator transmitted. The v2
  /// header carries the series cadence and this session's resume token.
  SweepPlan handshake() {
    EXPECT_TRUE(socket_.send_all(std::string("HELLO ") +
                                 kSweepProtocolVersion + "\n"));
    const std::string header = read_line();
    long long lease_ms = 0;
    std::size_t spec_len = 0;
    std::size_t sweep_len = 0;
    char token[64] = {0};
    EXPECT_EQ(std::sscanf(header.c_str(), "PLAN %lld %zu %zu %zu %63s",
                          &lease_ms, &spec_len, &sweep_len, &series_every_,
                          token),
              5)
        << header;
    token_ = token;
    EXPECT_EQ(token_.size(), 16u) << header;
    std::string spec_text;
    std::string sweep_text;
    EXPECT_EQ(reader_.read_exact(spec_text, spec_len, 5.0),
              util::IoStatus::kOk);
    EXPECT_EQ(reader_.read_exact(sweep_text, sweep_len, 5.0),
              util::IoStatus::kOk);
    return SweepPlan(ScenarioSpec::parse(spec_text),
                     SweepSpec::parse(sweep_text));
  }

  /// The session token the coordinator issued in PLAN.
  [[nodiscard]] const std::string& token() const { return token_; }
  /// The series cadence announced in PLAN.
  [[nodiscard]] std::size_t series_every() const { return series_every_; }

  /// RESUME a previous session's token; returns the reclaimed run indices.
  std::vector<std::size_t> resume(const std::string& token) {
    const std::string reply = request("RESUME " + token);
    EXPECT_EQ(reply.rfind("RESUMED ", 0), 0u) << reply;
    std::vector<std::size_t> indices;
    std::istringstream in(reply.substr(8));
    std::size_t count = 0;
    in >> count;
    std::size_t idx = 0;
    while (in >> idx) indices.push_back(idx);
    EXPECT_EQ(indices.size(), count) << reply;
    return indices;
  }

  /// Send one line, read one reply line.
  std::string request(const std::string& line) {
    EXPECT_TRUE(socket_.send_all(line + "\n"));
    return read_line();
  }

  /// NEXT until a lease batch is granted (skipping WAIT); returns all the
  /// granted run indices.
  std::vector<std::size_t> lease_batch() {
    for (int attempt = 0; attempt < 100; ++attempt) {
      const std::string reply = request("NEXT");
      if (reply.rfind("RUN ", 0) == 0) {
        std::vector<std::size_t> indices;
        std::istringstream in(reply.substr(4));
        std::size_t idx = 0;
        while (in >> idx) indices.push_back(idx);
        EXPECT_FALSE(indices.empty()) << reply;
        return indices;
      }
      EXPECT_EQ(reply, "WAIT");
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ADD_FAILURE() << "no lease granted after 100 attempts";
    return {};
  }

  /// lease_batch(), expecting (and returning) a single run index.
  std::size_t lease() {
    const auto batch = lease_batch();
    EXPECT_EQ(batch.size(), 1u);
    return batch.empty() ? 0 : batch.front();
  }

  /// Deliver a pre-serialized run record (plus an optional series blob);
  /// returns the coordinator's reply (OK / DUP / ERR ...).
  std::string deliver(const std::string& record,
                      const std::string& series = "") {
    EXPECT_TRUE(socket_.send_all("RESULT " + std::to_string(record.size()) +
                                 " " + std::to_string(series.size()) + "\n" +
                                 record + series));
    return read_line();
  }

  /// Abrupt disconnect — the "kill -9 mid-run" a dead worker looks like.
  void vanish() { socket_.close(); }

 private:
  std::string read_line() {
    std::string line;
    EXPECT_EQ(reader_.read_line(line, 5.0), util::IoStatus::kOk);
    return line;
  }

  util::Socket socket_;
  util::SocketReader reader_;
  std::string token_;
  std::size_t series_every_ = 0;
};

/// Compute the honest run record a correct worker would deliver for
/// `run_index` of `plan`.
std::string honest_record(const SweepPlan& plan, std::size_t run_index) {
  ThreadPoolExecutor executor;
  ExecuteOptions options;
  options.jobs = 1;
  options.keep_reports = false;
  const std::size_t indices[1] = {run_index};
  const auto results = executor.execute(plan, indices, options);
  return serialize_run_record(plan.key(run_index), results.at(0));
}

// ---- Clean distributed execution -----------------------------------------

TEST(Coordinator, MultiWorkerRunIsByteIdenticalToThreadPool) {
  const auto reference = reference_results(tiny_base(), tiny_sweep());

  Coordinator::Options options;
  options.lease_timeout_seconds = 30.0;
  Coordinator coordinator(tiny_base(), tiny_sweep(), options);
  ServeThread serve(coordinator);

  // An asymmetric fleet: one two-session worker and one single-session
  // worker, all stealing from the same queue.
  WorkerOptions two_sessions;
  two_sessions.sessions = 2;
  WorkerOptions one_session;
  one_session.sessions = 1;
  WorkerReport report_a;
  WorkerReport report_b;
  std::thread worker_a([&] {
    report_a = run_worker("127.0.0.1", coordinator.port(), two_sessions);
  });
  std::thread worker_b([&] {
    report_b = run_worker("127.0.0.1", coordinator.port(), one_session);
  });
  worker_a.join();
  worker_b.join();
  const auto results = serve.join();

  EXPECT_TRUE(report_a.completed) << report_a.error;
  EXPECT_TRUE(report_b.completed) << report_b.error;
  EXPECT_EQ(report_a.runs_executed + report_b.runs_executed, 8u);
  EXPECT_EQ(coordinator.executed(), 8u);
  EXPECT_EQ(coordinator.cache_hits(), 0u);
  EXPECT_EQ(coordinator.duplicates(), 0u);
  EXPECT_EQ(coordinator.workers_seen(), 3u);  // three sessions connected

  ASSERT_EQ(results.size(), reference.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].run_index, i);
  }
  expect_identical(render(tiny_base(), tiny_sweep(), results),
                   render(tiny_base(), tiny_sweep(), reference));
}

TEST(Coordinator, Fig11ChurnSweepMatchesThePinnedGoldenHashes) {
  // The strongest cross-check available: the distributed path must land on
  // the *same* pinned golden constants as test_golden_outputs.cpp does for
  // the single-process engine — one coordinator, two workers, churn-heavy
  // open-market runs, and not a byte of drift end to end.
  const ScenarioSpec* preset =
      ScenarioRegistry::builtin().find("fig11_churn");
  ASSERT_NE(preset, nullptr);
  ScenarioSpec spec = *preset;
  spec.set("horizon", 400.0);
  spec.set("snapshot_interval", 100.0);
  SweepSpec sweep;
  sweep.axes.push_back(SweepAxis::parse("churn.arrival_rate=1,2"));
  sweep.axes.push_back(SweepAxis::parse("churn.mean_lifespan=100,200"));
  sweep.seeds = 2;

  Coordinator coordinator(spec, sweep, Coordinator::Options{});
  ServeThread serve(coordinator);
  WorkerOptions worker_options;
  worker_options.sessions = 1;
  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([&] {
      const auto report =
          run_worker("127.0.0.1", coordinator.port(), worker_options);
      EXPECT_TRUE(report.completed) << report.error;
    });
  }
  for (auto& t : workers) t.join();
  const auto results = serve.join();

  ResultSink sink;
  sink.add_all(results);
  EXPECT_EQ(util::fnv1a64(sink.aggregate_csv()), 0xbd9622db89f1920bULL);
  EXPECT_EQ(util::fnv1a64(sink.aggregate_json()), 0x1d7620dbf7cda782ULL);
  EXPECT_EQ(util::fnv1a64(sink.runs_csv()), 0xc27d93ece3617262ULL);
}

// ---- Live status endpoint ------------------------------------------------

TEST(Coordinator, StatusEndpointServesLiveAndDrainedState) {
  Coordinator::Options options;
  options.status_port = 0;  // ephemeral second listener
  options.drain_seconds = 5.0;
  Coordinator coordinator(tiny_base(), tiny_sweep(), options);
  ASSERT_NE(coordinator.status_port(), 0);
  ASSERT_NE(coordinator.status_port(), coordinator.port());
  ServeThread serve(coordinator);

  // One HTTP request per connection; the coordinator closes after the body.
  const auto fetch = [&](const std::string& request_line) {
    util::Socket s =
        util::Socket::connect("127.0.0.1", coordinator.status_port(), 5.0);
    EXPECT_TRUE(s.send_all(request_line + "\r\n\r\n"));
    std::string response;
    while (s.recv_some(response, 5.0) == util::IoStatus::kOk) {
    }
    return response;
  };
  const auto has = [](const std::string& haystack, const std::string& needle) {
    return haystack.find(needle) != std::string::npos;
  };

  // Mid-flight, before any worker connects: the plan is visible, nothing
  // has completed, and the response is a well-formed HTTP/JSON exchange.
  const std::string before = fetch("GET /status HTTP/1.0");
  EXPECT_TRUE(has(before, "HTTP/1.0 200 OK")) << before;
  EXPECT_TRUE(has(before, "Content-Type: application/json")) << before;
  EXPECT_TRUE(has(before, "\"plan_runs\":8")) << before;
  EXPECT_TRUE(has(before, "\"completed\":0")) << before;
  EXPECT_TRUE(has(before, "\"done\":false")) << before;
  EXPECT_TRUE(has(before, "\"workers\":[]")) << before;

  // Unknown paths get a 404, not a hang or a protocol error.
  const std::string lost = fetch("GET /nope HTTP/1.0");
  EXPECT_TRUE(has(lost, "404")) << lost;
  EXPECT_TRUE(has(lost, "try GET /status")) << lost;

  WorkerReport report;
  std::thread worker([&] {
    report = run_worker("127.0.0.1", coordinator.port(), WorkerOptions{});
  });
  worker.join();
  EXPECT_TRUE(report.completed) << report.error;

  // The workers are gone, but within the drain window a final scrape still
  // observes the drained terminal state — that is the whole point of
  // keeping the loop alive when the endpoint is enabled.
  const std::string after = fetch("GET /status HTTP/1.0");
  EXPECT_TRUE(has(after, "HTTP/1.0 200 OK")) << after;
  EXPECT_TRUE(has(after, "\"completed\":8")) << after;
  EXPECT_TRUE(has(after, "\"executed\":8")) << after;
  EXPECT_TRUE(has(after, "\"pending\":0")) << after;
  EXPECT_TRUE(has(after, "\"leased\":0")) << after;
  EXPECT_TRUE(has(after, "\"done\":true")) << after;
  EXPECT_TRUE(has(after, "\"eta_seconds\":0")) << after;
  EXPECT_TRUE(has(after, "\"lease_wall_ms\":{\"count\":8")) << after;

  const auto results = serve.join();
  EXPECT_EQ(results.size(), 8u);
  expect_identical(render(tiny_base(), tiny_sweep(), results),
                   render(tiny_base(), tiny_sweep(),
                          reference_results(tiny_base(), tiny_sweep())));
}

// ---- Warm RunStore -------------------------------------------------------

TEST(Coordinator, WarmRunStoreExecutesZeroRuns) {
  const auto dir = scratch_dir("warm_store");
  const auto reference = reference_results(tiny_base(), tiny_sweep());

  auto distributed_run = [&](std::size_t& executed, std::size_t& hits) {
    Coordinator::Options options;
    options.cache_dir = dir.string();
    options.drain_seconds = 5.0;  // generous: the worker must reach DONE
    Coordinator coordinator(tiny_base(), tiny_sweep(), options);
    ServeThread serve(coordinator);
    WorkerReport report;
    std::thread worker([&] {
      report = run_worker("127.0.0.1", coordinator.port(), WorkerOptions{});
    });
    worker.join();
    const auto results = serve.join();
    EXPECT_TRUE(report.completed) << report.error;
    executed = coordinator.executed();
    hits = coordinator.cache_hits();
    return results;
  };

  std::size_t cold_executed = 0;
  std::size_t cold_hits = 0;
  const auto cold = distributed_run(cold_executed, cold_hits);
  EXPECT_EQ(cold_executed, 8u);
  EXPECT_EQ(cold_hits, 0u);

  // Second sweep over the now-warm shared store: zero runs execute, every
  // result is recalled, and the output bytes do not move.
  std::size_t warm_executed = 0;
  std::size_t warm_hits = 0;
  const auto warm = distributed_run(warm_executed, warm_hits);
  EXPECT_EQ(warm_executed, 0u);
  EXPECT_EQ(warm_hits, 8u);
  for (const auto& r : warm) {
    EXPECT_TRUE(r.telemetry.from_cache) << r.run_index;
  }

  expect_identical(render(tiny_base(), tiny_sweep(), cold),
                   render(tiny_base(), tiny_sweep(), reference));
  expect_identical(render(tiny_base(), tiny_sweep(), warm),
                   render(tiny_base(), tiny_sweep(), reference));
}

// ---- Fault injection -----------------------------------------------------

TEST(CoordinatorFaults, AbruptWorkerDeathMidRunRequeuesItsLease) {
  const auto reference = reference_results(tiny_base(), tiny_sweep());

  Coordinator::Options options;
  options.lease_timeout_seconds = 60.0;  // death is detected, not timed out
  Coordinator coordinator(tiny_base(), tiny_sweep(), options);
  ServeThread serve(coordinator);

  // The victim takes a lease and dies without a word — exactly what the
  // coordinator sees when a worker process is SIGKILLed mid-run.
  {
    RawClient victim(coordinator.port());
    (void)victim.handshake();
    const std::size_t leased = victim.lease();
    EXPECT_LT(leased, 8u);
    victim.vanish();
  }

  // A healthy worker then completes the whole sweep, including the
  // re-queued run.
  WorkerReport report;
  std::thread worker([&] {
    report = run_worker("127.0.0.1", coordinator.port(), WorkerOptions{});
  });
  worker.join();
  const auto results = serve.join();

  EXPECT_TRUE(report.completed) << report.error;
  EXPECT_EQ(report.runs_executed, 8u);
  EXPECT_GE(coordinator.requeued(), 1u);
  EXPECT_EQ(coordinator.executed(), 8u);
  expect_identical(render(tiny_base(), tiny_sweep(), results),
                   render(tiny_base(), tiny_sweep(), reference));
}

/// Executor decorator that stalls before computing — a worker too slow for
/// its lease.
class SlowExecutor final : public Executor {
 public:
  explicit SlowExecutor(double delay_seconds) : delay_(delay_seconds) {}

  std::vector<RunResult> execute(const SweepPlan& plan,
                                 std::span<const std::size_t> run_indices,
                                 const ExecuteOptions& options) override {
    std::this_thread::sleep_for(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::duration<double>(delay_)));
    return inner_.execute(plan, run_indices, options);
  }

 private:
  double delay_;
  ThreadPoolExecutor inner_;
};

TEST(CoordinatorFaults, StalledHeartbeatLosesTheLeaseAndTheRunIsStolen) {
  const auto reference = reference_results(tiny_base(), tiny_sweep());

  Coordinator::Options options;
  options.lease_timeout_seconds = 0.3;
  options.drain_seconds = 5.0;  // outlive the slow worker's late delivery
  Coordinator coordinator(tiny_base(), tiny_sweep(), options);
  ServeThread serve(coordinator);

  // The laggard: heartbeats effectively disabled, every run stalled well
  // past the lease timeout. Its leases expire mid-run; its deliveries
  // arrive after the thief's and must be discarded as duplicates.
  SlowExecutor slow(1.0);
  WorkerOptions slow_options;
  slow_options.sessions = 1;
  slow_options.executor = &slow;
  slow_options.heartbeat_seconds = 1000.0;
  WorkerReport slow_report;
  std::thread laggard([&] {
    slow_report = run_worker("127.0.0.1", coordinator.port(), slow_options);
  });

  // Give the laggard time to take its first lease and stall, then unleash
  // a healthy heartbeating worker that steals the expired lease.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  WorkerReport fast_report;
  std::thread healthy([&] {
    fast_report = run_worker("127.0.0.1", coordinator.port(), WorkerOptions{});
  });

  laggard.join();
  healthy.join();
  const auto results = serve.join();

  EXPECT_TRUE(fast_report.completed) << fast_report.error;
  EXPECT_GE(coordinator.requeued(), 1u);   // the stalled lease was revoked
  EXPECT_GE(coordinator.duplicates(), 1u); // the late twin was discarded
  EXPECT_EQ(coordinator.executed(), 8u);   // …and exactly 8 runs recorded
  expect_identical(render(tiny_base(), tiny_sweep(), results),
                   render(tiny_base(), tiny_sweep(), reference));
}

TEST(CoordinatorFaults, DuplicateDeliveryOfAStoredKeyIsDiscarded) {
  const auto reference = reference_results(tiny_base(), tiny_sweep());

  Coordinator coordinator(tiny_base(), tiny_sweep(), Coordinator::Options{});
  ServeThread serve(coordinator);

  {
    RawClient client(coordinator.port());
    const SweepPlan plan = client.handshake();
    const std::size_t leased = client.lease();
    const std::string record = honest_record(plan, leased);
    EXPECT_EQ(client.deliver(record), "OK");
    // The same completion again — a worker double-reporting after a retry.
    EXPECT_EQ(client.deliver(record), "DUP");
    client.vanish();
  }

  WorkerReport report;
  std::thread worker([&] {
    report = run_worker("127.0.0.1", coordinator.port(), WorkerOptions{});
  });
  worker.join();
  const auto results = serve.join();

  EXPECT_TRUE(report.completed) << report.error;
  EXPECT_EQ(coordinator.duplicates(), 1u);
  EXPECT_EQ(coordinator.executed(), 8u);
  expect_identical(render(tiny_base(), tiny_sweep(), results),
                   render(tiny_base(), tiny_sweep(), reference));
}

TEST(CoordinatorFaults, MismatchedRunKeyIsRejectedNotRecorded) {
  const auto reference = reference_results(tiny_base(), tiny_sweep());

  Coordinator coordinator(tiny_base(), tiny_sweep(), Coordinator::Options{});
  ServeThread serve(coordinator);

  {
    RawClient saboteur(coordinator.port());
    const SweepPlan plan = saboteur.handshake();
    const std::size_t leased = saboteur.lease();
    // A record whose key belongs to a *different* run index — what a
    // worker on a mismatched plan (or binary) would deliver.
    const std::size_t other = (leased + 1) % plan.size();
    RunResult forged = plan.labelled_result(leased);
    forged.metrics = {{"converged_gini", 0.0}};
    const std::string bad_record =
        serialize_run_record(plan.key(other), forged);
    const std::string reply = saboteur.deliver(bad_record);
    EXPECT_EQ(reply.rfind("ERR", 0), 0u) << reply;
  }

  WorkerReport report;
  std::thread worker([&] {
    report = run_worker("127.0.0.1", coordinator.port(), WorkerOptions{});
  });
  worker.join();
  const auto results = serve.join();

  EXPECT_TRUE(report.completed) << report.error;
  EXPECT_EQ(report.runs_executed, 8u);  // the forgery contributed nothing
  expect_identical(render(tiny_base(), tiny_sweep(), results),
                   render(tiny_base(), tiny_sweep(), reference));
}

// ---- Protocol v2: RESUME, batched leases, crash recovery -----------------

TEST(CoordinatorResume, VanishedSessionReclaimsItsLeaseViaResume) {
  const auto reference = reference_results(tiny_base(), tiny_sweep());

  Coordinator::Options options;
  options.resume_grace_seconds = 30.0;  // reclaim must beat the requeue
  Coordinator coordinator(tiny_base(), tiny_sweep(), options);
  ServeThread serve(coordinator);

  // A session takes a lease, computes the run, and loses its connection
  // before delivering — then comes back under the same token.
  std::string token;
  std::size_t leased = 0;
  std::string record;
  {
    RawClient first(coordinator.port());
    const SweepPlan plan = first.handshake();
    token = first.token();
    leased = first.lease();
    record = honest_record(plan, leased);
    first.vanish();
  }
  {
    RawClient returned(coordinator.port());
    (void)returned.handshake();
    EXPECT_NE(returned.token(), token);  // fresh connection, fresh token
    const auto reclaimed = returned.resume(token);
    ASSERT_EQ(reclaimed.size(), 1u);
    EXPECT_EQ(reclaimed.front(), leased);
    // The reclaimed lease is live again: delivering its run is a first
    // completion, not a duplicate or an expired-lease discard.
    EXPECT_EQ(returned.deliver(record), "OK");
    returned.vanish();
  }

  WorkerReport report;
  std::thread worker([&] {
    report = run_worker("127.0.0.1", coordinator.port(), WorkerOptions{});
  });
  worker.join();
  const auto results = serve.join();

  EXPECT_TRUE(report.completed) << report.error;
  EXPECT_EQ(coordinator.leases_resumed(), 1u);
  EXPECT_EQ(coordinator.requeued(), 0u);  // nothing was forfeited
  EXPECT_EQ(coordinator.executed(), 8u);
  expect_identical(render(tiny_base(), tiny_sweep(), results),
                   render(tiny_base(), tiny_sweep(), reference));
}

TEST(CoordinatorResume, UnknownTokenResumesNothing) {
  Coordinator coordinator(tiny_base(), tiny_sweep(), Coordinator::Options{});
  ServeThread serve(coordinator);
  {
    RawClient client(coordinator.port());
    (void)client.handshake();
    // RESUMED 0, not ERR: the worker simply starts fresh.
    EXPECT_TRUE(client.resume("0123456789abcdef").empty());
    client.vanish();
  }
  WorkerReport report;
  std::thread worker([&] {
    report = run_worker("127.0.0.1", coordinator.port(), WorkerOptions{});
  });
  worker.join();
  (void)serve.join();
  EXPECT_TRUE(report.completed) << report.error;
  EXPECT_EQ(coordinator.leases_resumed(), 0u);
}

TEST(Coordinator, AdaptiveLeaseBatchGrowsWithMeasuredThroughput) {
  Coordinator::Options options;
  options.lease_batch_max = 4;
  Coordinator coordinator(tiny_base(), tiny_sweep(), options);
  ServeThread serve(coordinator);

  {
    RawClient client(coordinator.port());
    const SweepPlan plan = client.handshake();
    // A fresh connection has no throughput history: the first grant is a
    // single run, so a straggler's failure forfeits at most one.
    const auto first = client.lease_batch();
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(client.deliver(honest_record(plan, first.front())), "OK");
    // One instant completion measures as enormous throughput: the next
    // grant fills the whole batch ceiling.
    const auto second = client.lease_batch();
    EXPECT_EQ(second.size(), 4u);
    for (const auto idx : second) {
      EXPECT_EQ(client.deliver(honest_record(plan, idx)), "OK");
    }
    client.vanish();
  }

  WorkerReport report;
  std::thread worker([&] {
    report = run_worker("127.0.0.1", coordinator.port(), WorkerOptions{});
  });
  worker.join();
  (void)serve.join();
  EXPECT_TRUE(report.completed) << report.error;
}

TEST(CoordinatorResume, CrashedCoordinatorResumesByteIdenticalToGolden) {
  // The tentpole contract end to end: a coordinator crash-injected (the
  // deterministic SIGKILL stand-in) after 3 completions, restarted with
  // --resume on the same journal + cache, must finish the sweep executing
  // only the missing runs — and land on the *same pinned golden hashes*
  // the single-process engine and the uninterrupted distributed sweep do.
  const ScenarioSpec* preset =
      ScenarioRegistry::builtin().find("fig11_churn");
  ASSERT_NE(preset, nullptr);
  ScenarioSpec spec = *preset;
  spec.set("horizon", 400.0);
  spec.set("snapshot_interval", 100.0);
  SweepSpec sweep;
  sweep.axes.push_back(SweepAxis::parse("churn.arrival_rate=1,2"));
  sweep.axes.push_back(SweepAxis::parse("churn.mean_lifespan=100,200"));
  sweep.seeds = 2;

  const auto dir = scratch_dir("journal_resume");
  const std::string journal = (dir / "sweep.journal").string();
  const std::string cache = (dir / "cache").string();

  // Phase 1: crash after the third fresh completion, worker attached.
  {
    Coordinator::Options options;
    options.cache_dir = cache;
    options.journal_path = journal;
    options.abort_after_executed = 3;
    Coordinator coordinator(spec, sweep, options);
    ServeThread serve(coordinator);
    WorkerOptions worker_options;
    worker_options.reconnect = false;  // this worker dies with the crash
    WorkerReport report;
    std::thread worker([&] {
      report = run_worker("127.0.0.1", coordinator.port(), worker_options);
    });
    const std::string error = serve.join_error();
    EXPECT_NE(error.find("injected crash"), std::string::npos) << error;
    worker.join();
    EXPECT_FALSE(report.completed);
    EXPECT_EQ(coordinator.executed(), 3u);
  }

  // A *fresh* coordinator must refuse the stale journal loudly...
  {
    Coordinator::Options options;
    options.cache_dir = cache;
    options.journal_path = journal;
    EXPECT_THROW(Coordinator(spec, sweep, options), util::PreconditionError);
  }

  // ...and a resumed one recalls the 3 completed runs, re-creates the
  // orphaned leases, and executes exactly the 5 missing ones.
  Coordinator::Options options;
  options.cache_dir = cache;
  options.journal_path = journal;
  options.resume = true;
  options.resume_grace_seconds = 0.2;  // phase 1's worker is not coming back
  Coordinator coordinator(spec, sweep, options);
  ServeThread serve(coordinator);
  WorkerReport report;
  std::thread worker([&] {
    report = run_worker("127.0.0.1", coordinator.port(), WorkerOptions{});
  });
  worker.join();
  const auto results = serve.join();

  EXPECT_TRUE(report.completed) << report.error;
  EXPECT_EQ(coordinator.cache_hits(), 3u);
  EXPECT_EQ(coordinator.executed(), 5u);
  EXPECT_GE(coordinator.journal_orphans(), 1u);  // phase 1 died mid-lease
  ASSERT_EQ(results.size(), 8u);

  ResultSink sink;
  sink.add_all(results);
  EXPECT_EQ(util::fnv1a64(sink.aggregate_csv()), 0xbd9622db89f1920bULL);
  EXPECT_EQ(util::fnv1a64(sink.aggregate_json()), 0x1d7620dbf7cda782ULL);
  EXPECT_EQ(util::fnv1a64(sink.runs_csv()), 0xc27d93ece3617262ULL);
}

// ---- Remote series streaming ---------------------------------------------

TEST(Coordinator, RemoteSeriesFilesAreByteIdenticalToLocalExecution) {
  const auto dir = scratch_dir("remote_series");
  const SweepPlan plan(tiny_base(), tiny_sweep());

  // Reference: the local thread-pool executor writing its own files.
  {
    ThreadPoolExecutor executor;
    ExecuteOptions exec;
    exec.jobs = 1;
    exec.keep_reports = false;
    exec.series_every = 2;
    exec.series_out_prefix = (dir / "local").string();
    std::vector<std::size_t> all(plan.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    (void)executor.execute(plan, all, exec);
  }

  // Distributed: workers collect the series and stream it back with each
  // RESULT; the coordinator writes the files.
  Coordinator::Options options;
  options.series_every = 2;
  options.series_out_prefix = (dir / "dist").string();
  Coordinator coordinator(tiny_base(), tiny_sweep(), options);
  ServeThread serve(coordinator);
  WorkerReport report;
  std::thread worker([&] {
    report = run_worker("127.0.0.1", coordinator.port(), WorkerOptions{});
  });
  worker.join();
  (void)serve.join();
  EXPECT_TRUE(report.completed) << report.error;

  const auto slurp = [](const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
  };
  for (std::size_t idx = 0; idx < plan.size(); ++idx) {
    const std::string suffix = ".run" + std::to_string(idx) + ".csv";
    const std::string local = slurp(dir / ("local" + suffix));
    EXPECT_FALSE(local.empty()) << idx;
    EXPECT_EQ(slurp(dir / ("dist" + suffix)), local) << idx;
  }
}

// ---- Worker backoff telemetry --------------------------------------------

TEST(Coordinator, StarvedSessionsReportWaitRetries) {
  // One run, two sessions: whichever session leases it stalls in a slow
  // executor while the other polls NEXT → WAIT through the backoff
  // schedule until DONE. The retries surface in the worker report.
  SweepSpec one_run;
  one_run.axes.push_back(SweepAxis::parse("credits=30"));
  one_run.seeds = 1;
  Coordinator coordinator(tiny_base(), one_run, Coordinator::Options{});
  ServeThread serve(coordinator);

  SlowExecutor slow(0.5);
  WorkerOptions options;
  options.sessions = 2;
  options.executor = &slow;
  WorkerReport report;
  std::thread worker([&] {
    report = run_worker("127.0.0.1", coordinator.port(), options);
  });
  worker.join();
  (void)serve.join();

  EXPECT_TRUE(report.completed) << report.error;
  EXPECT_EQ(report.runs_executed, 1u);
  EXPECT_GE(report.wait_retries, 1u);
}

}  // namespace
}  // namespace creditflow::scenario
